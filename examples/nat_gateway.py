#!/usr/bin/env python3
"""MazuNAT scenario: a NAT gateway offloaded to the switch.

Reproduces the §6.2 narrative: the address-translation tables live on the
switch, the port-allocation counter becomes a P4 register incremented on
the data plane, and only connection-establishing packets visit the server
(paying the Table-3 state-synchronization latency before release).

Run:  python examples/nat_gateway.py
"""

from repro.eval.profiles import build_baseline, build_gallium
from repro.net.headers import TcpFlags
from repro.sim.latency import LatencyModel
from repro.workloads.packets import make_tcp_packet


def main() -> None:
    nat = build_gallium("mazunat")
    baseline = build_baseline("mazunat")
    latency = LatencyModel()

    print("=== State placement ===")
    for name, placement in sorted(nat.plan.placements.items()):
        print(f"  {name:14s} {placement.kind.value}")
    print()

    print("=== Outbound connections (internal -> external) ===")
    total_sync_us = 0.0
    for client in range(1, 6):
        syn = make_tcp_packet(
            f"192.168.1.{client}", "8.8.4.4", 40000 + client, 443,
            flags=TcpFlags.SYN,
        )
        journey = nat.process_packet(syn, ingress_port=1)
        total_sync_us += journey.sync_wait_us
        print(
            f"  client {client}: SYN translated to"
            f" {syn.ip.saddr}:{syn.tcp.sport}"
            f"  (slow path, {journey.sync_tables} tables synced,"
            f" held {journey.sync_wait_us:.0f} µs)"
        )

    print("\n=== Steady-state data packets ===")
    fast = 0
    for client in range(1, 6):
        for _ in range(20):
            data = make_tcp_packet(
                f"192.168.1.{client}", "8.8.4.4", 40000 + client, 443,
            )
            journey = nat.process_packet(data, ingress_port=1)
            fast += journey.fast_path
    print(f"  {fast}/100 data packets handled entirely on the switch")

    print("\n=== Return traffic (external -> internal) ===")
    reply = make_tcp_packet("8.8.4.4", "100.64.0.1", 443, 2048,
                            ingress_port=2)
    journey = nat.process_packet(reply, ingress_port=2)
    print(
        f"  reply to external port 2048 -> {reply.ip.daddr}:"
        f"{reply.tcp.dport}  [{'fast' if journey.fast_path else 'slow'}]"
    )
    stray = make_tcp_packet("8.8.4.4", "100.64.0.1", 443, 9999,
                            ingress_port=2)
    journey = nat.process_packet(stray, ingress_port=2)
    print(f"  stray external packet -> {journey.verdict} on the switch")

    print("\n=== Latency comparison (established flow, 100B packets) ===")
    base = baseline.process_packet(
        make_tcp_packet("192.168.1.1", "8.8.4.4", 40001, 443), 1
    )
    baseline_us = latency.baseline_us(base.instructions, 100)
    gallium_us = latency.fast_path_us(100)
    print(f"  FastClick : {baseline_us:.2f} µs")
    print(f"  Gallium   : {gallium_us:.2f} µs"
          f"  ({1 - gallium_us / baseline_us:.0%} lower)")

    print(f"\nport counter register now at:"
          f" {nat.switch.registers['port_counter'].value}")


if __name__ == "__main__":
    main()
