#!/usr/bin/env python3
"""Compile all five evaluation middleboxes and write the artifacts.

Produces, under ``out/``, what the paper's toolchain hands to deployment:
one ``<name>.p4`` program (pre+post partitions, ingress-dispatched) and
one ``<name>_server.cc`` DPDK application per middlebox, plus a Table-1
style summary.

Run:  python examples/compile_all.py [output_dir]
"""

import sys
from pathlib import Path

from repro.compiler import compile_lowered
from repro.eval.reporting import render_table
from repro.middleboxes import load


def main() -> None:
    out_dir = Path(sys.argv[1] if len(sys.argv) > 1 else "out")
    out_dir.mkdir(parents=True, exist_ok=True)
    rows = []
    for name in ("mazunat", "lb", "firewall", "proxy", "trojan"):
        bundle = load(name)
        result = compile_lowered(bundle.lowered)
        p4_path = out_dir / f"{name}.p4"
        cpp_path = out_dir / f"{name}_server.cc"
        p4_path.write_text(result.p4_source)
        cpp_path.write_text(result.cpp_source)
        counts = result.plan.counts()
        rows.append(
            [
                bundle.display_name,
                result.input_loc(),
                result.p4_loc(),
                result.cpp_loc(),
                f"{counts['pre']}/{counts['non_off']}/{counts['post']}",
                f"{result.plan.to_server.byte_size()}B",
            ]
        )
        print(f"wrote {p4_path} and {cpp_path}")
    print()
    print(
        render_table(
            ["Middlebox", "Input LoC", "P4 LoC", "C++ LoC",
             "pre/server/post", "shim"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
