#!/usr/bin/env python3
"""Datacenter load balancing under the CONGA workloads (Figures 8/9).

Deploys the L4 load balancer, measures its profile with live traffic, then
runs the enterprise and data-mining flow-size workloads through the fluid
simulator, comparing Gallium (1 core) against FastClick on 4 cores —
throughput (Figure 8) and flow-completion time by size bin (Figure 9).

Run:  python examples/datacenter_lb.py
"""

from repro.eval.experiments import figure8_workloads, figure9_fct
from repro.eval.profiles import profile_middlebox
from repro.eval.reporting import render_table
from repro.workloads.iperf import IperfWorkload, middlebox_stream


def main() -> None:
    print("=== Measured execution profile (live pipeline) ===")
    workload = IperfWorkload(connections=10, packets_per_connection=40)
    profile = profile_middlebox("lb", middlebox_stream("lb", workload))
    print(f"  packets driven          : {profile.packets}")
    print(f"  slow-path fraction      : {profile.slow_fraction:.1%}")
    print(f"  baseline cost           :"
          f" {profile.baseline_instructions_per_packet:.0f} IR instrs/packet")
    print(f"  server cost per punt    :"
          f" {profile.server_instructions_per_punt:.0f} IR instrs")
    print(f"  sync latency per update :"
          f" {profile.sync_wait_avg_us:.0f} µs")
    print(f"  verdict mismatches      : {profile.verdict_mismatches}")
    print()

    print("=== Figure 8: workload throughput (Gbps) ===")
    header, rows = figure8_workloads("lb", flows=1200)
    print(render_table(header, rows))
    print()

    print("=== Figure 9: flow completion time by size bin (µs) ===")
    header, rows = figure9_fct("lb", flows=1200)
    print(render_table(header, rows))
    print()
    print("Note the paper's shape: the FCT reduction concentrates on long")
    print("flows (their packets ride the switch fast path); short flows pay")
    print("the connection-setup slow path either way.")


if __name__ == "__main__":
    main()
