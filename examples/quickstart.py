#!/usr/bin/env python3
"""Quickstart: compile, deploy, and drive the paper's MiniLB example.

Walks the full Gallium pipeline on the running example of §4:

1. parse the C++ Click-style source,
2. partition it (Figure 4) and synthesize the shim headers (Figure 5),
3. emit the P4 program,
4. deploy on the behavioral switch + server pair and push packets through,
   watching the slow path install state and later packets take the
   switch-only fast path.

Run:  python examples/quickstart.py
"""

from repro.compiler import compile_source
from repro.ir.printer import format_function
from repro.middleboxes import load_source
from repro.net.addresses import ip
from repro.runtime import GalliumMiddlebox
from repro.workloads.packets import make_tcp_packet


def main() -> None:
    source = load_source("minilb")
    print("=== Input middlebox (C++ subset) ===")
    print(source)

    result = compile_source(source, filename="minilb.cc")
    plan = result.plan

    print("=== Partitioning (paper Figure 4) ===")
    print(plan.summary())
    print()
    for title, function in (
        ("pre-processing (switch)", plan.pre),
        ("non-offloaded (server)", plan.non_offloaded),
        ("post-processing (switch)", plan.post),
    ):
        print(f"--- {title} ---")
        print(format_function(function))
        print()

    print("=== Shim headers (paper Figure 5) ===")
    for layout in (result.shim_to_server, result.shim_to_switch):
        fields = ", ".join(
            f"{f.name}:{f.width_bits}b" for f in layout.fields
        )
        print(f"{layout.direction}: {layout.byte_size} bytes [{fields}]")
    print()

    print("=== Generated P4 (first 40 lines) ===")
    print("\n".join(result.p4_source.splitlines()[:40]))
    print(f"... ({result.p4_loc()} lines total)\n")

    # Deploy and run traffic.
    middlebox = GalliumMiddlebox(plan, result.switch_program)
    middlebox.state.vectors["backends"] = [
        int(ip("10.0.1.1")),
        int(ip("10.0.1.2")),
    ]
    middlebox.install()

    print("=== Packet walk ===")
    for round_name in ("first packets (slow path)", "replays (fast path)"):
        for client in range(1, 4):
            packet = make_tcp_packet(
                f"192.168.1.{client}", "10.0.0.100", 5000, 80
            )
            journey = middlebox.process_packet(packet, ingress_port=1)
            path = "FAST (switch only)" if journey.fast_path else (
                f"slow (server, sync {journey.sync_wait_us:.0f} µs)"
            )
            print(
                f"  {round_name}: client {client} -> backend"
                f" {packet.ip.daddr}  [{path}]"
            )
    counters = middlebox.switch.counters()
    print(f"\nswitch counters: {counters}")
    print(f"fast-path fraction: {middlebox.fast_path_fraction():.0%}")


if __name__ == "__main__":
    main()
