"""Replay every committed fault-scenario reproducer (tests/faults_corpus/).

Each corpus entry is a fault schedule that once exposed a runtime bug in
the deployment's fault handling; after the fix it must replay through the
fault oracle with its recorded expectation (``degraded_ok``) and no
violation.  A regression here means a previously-fixed fault-handling bug
is back — the entry's ``description`` names the original bug.
"""

import pytest

from repro.faults.corpus import CORPUS_DIR, load_corpus, replay_entry

ENTRIES = load_corpus()


def test_corpus_present():
    """The campaign-found runtime bugs are all represented."""
    names = {entry.name for entry in ENTRIES}
    assert {
        "timeout_then_fail_exhaustion",
    } <= names, f"missing corpus entries in {CORPUS_DIR}"


@pytest.mark.parametrize(
    "entry", ENTRIES, ids=[entry.name for entry in ENTRIES]
)
def test_corpus_entry_replays_clean(entry):
    result = replay_entry(entry)
    assert result.outcome.value == entry.expect and result.violation is None, (
        f"{entry.name}: {entry.description}\n"
        f"outcome={result.outcome.value}"
        f" violation={result.violation} error={result.error}"
    )
