"""Replay every committed gauntlet reproducer (tests/difftest_corpus/).

Each corpus entry is a minimized program that once exposed a compiler
divergence; after the fix it must replay with its recorded expectation
(``agree``).  A regression here means a previously-fixed compiler bug is
back — the entry's ``description`` names the original bug.
"""

import pytest

from repro.difftest.corpus import CORPUS_DIR, load_corpus, replay_entry

ENTRIES = load_corpus()


def test_corpus_present():
    """The four gauntlet-found compiler bugs are all represented."""
    names = {entry.name for entry in ENTRIES}
    assert {
        "remat_nonp4_into_post",
        "stranded_offloaded_register_write",
        "table_stage_erase_insert",
        "l4_alias_hoist",
        "cached_post_register_rmw",
    } <= names, f"missing corpus entries in {CORPUS_DIR}"


@pytest.mark.parametrize(
    "entry", ENTRIES, ids=[entry.name for entry in ENTRIES]
)
def test_corpus_entry_replays_clean(entry):
    result = replay_entry(entry)
    assert result.outcome.value == entry.expect, (
        f"{entry.name}: {entry.description}\n"
        f"outcome={result.outcome.value}"
        f" divergence={result.divergence} error={result.error}"
    )
