"""Property-based compiler fuzzing.

Hypothesis generates small random middleboxes in the C++ subset
(header reads, ALU chains, a map lookup with hit/miss arms, optional
inserts and rewrites), compiles each through the full pipeline, deploys
it, and checks the deployed switch+server pair against the unpartitioned
interpretation on a random packet burst — the paper's functional
equivalence goal, checked over program space instead of five fixed inputs.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.partition.partitioner import PartitionError
from repro.runtime.baseline import FastClickRuntime
from repro.runtime.deployment import GalliumMiddlebox, compile_middlebox
from repro.ir.lowering import lower_program
from repro.lang.parser import parse_program
from repro.workloads.packets import make_tcp_packet

_FIELDS = ["saddr", "daddr"]
_OPS = ["+", "-", "^", "&", "|"]


@st.composite
def middlebox_source(draw):
    """One random middlebox in the subset."""
    n_alu = draw(st.integers(1, 4))
    ops = [draw(st.sampled_from(_OPS)) for _ in range(n_alu)]
    constants = [draw(st.integers(1, 0xFFFF)) for _ in range(n_alu)]
    field = draw(st.sampled_from(_FIELDS))
    do_insert = draw(st.booleans())
    do_rewrite = draw(st.booleans())
    rewrite_on_hit = draw(st.booleans())
    key_mask = draw(st.sampled_from(["0xFF", "0xFFF", "0xFFFF"]))

    lines = [
        "class Fuzz {",
        "  // @gallium: max_entries=4096",
        "  HashMap<uint16_t, uint32_t> table;",
        "  void process(Packet *pkt) {",
        "    iphdr *ip = pkt->network_header();",
        f"    uint32_t acc = ip->{field};",
    ]
    for op, constant in zip(ops, constants):
        lines.append(f"    acc = acc {op} {constant};")
    lines.append(f"    uint16_t key = (uint16_t)(acc & {key_mask});")
    lines.append("    uint32_t *hit = table.find(&key);")
    lines.append("    if (hit != NULL) {")
    if rewrite_on_hit:
        lines.append("      ip->daddr = *hit;")
    lines.append("      pkt->send();")
    lines.append("    } else {")
    if do_insert:
        lines.append("      uint32_t fresh = acc ^ 7;")
        lines.append("      table.insert(&key, &fresh);")
    if do_rewrite:
        lines.append("      ip->daddr = acc;")
    verdict = draw(st.sampled_from(["send", "drop"]))
    lines.append(f"      pkt->{verdict}();")
    lines.append("    }")
    lines.append("  }")
    lines.append("};")
    return "\n".join(lines)


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(source=middlebox_source(), seed=st.integers(0, 2**16))
def test_random_middlebox_equivalence(source, seed):
    lowered = lower_program(parse_program(source, "fuzz.cc"))
    try:
        plan, program = compile_middlebox(lowered)
    except PartitionError:
        pytest.fail(f"partitioning failed for:\n{source}")
    deployed = GalliumMiddlebox(plan, program)
    deployed.install()
    baseline = FastClickRuntime(lowered)
    baseline.install()

    rng = random.Random(seed)
    for _ in range(25):
        packet = make_tcp_packet(
            f"10.{rng.randint(0, 3)}.{rng.randint(0, 9)}.{rng.randint(1, 9)}",
            f"10.9.{rng.randint(0, 3)}.{rng.randint(1, 9)}",
            rng.randint(1, 9), 80,
        )
        clone = packet.copy()
        base = baseline.process_packet(clone, 1)
        journey = deployed.process_packet(packet, 1)
        assert base.verdict == journey.verdict, source
        if base.verdict == "send":
            assert str(clone.ip.daddr) == str(packet.ip.daddr), source
            assert str(clone.ip.saddr) == str(packet.ip.saddr), source
    assert deployed.state.maps["table"] == baseline.state.maps["table"], source
    # The switch's replicated copy converged too.
    if "table" in deployed.switch.tables:
        assert (
            deployed.switch.tables["table"].snapshot()
            == baseline.state.maps["table"]
        ), source
