"""Property-based compiler fuzzing via the difftest generator.

Hypothesis draws integer seeds; each seed deterministically expands (via
``repro.difftest.generator``) into a random middlebox over the *full*
supported subset — 8/16-bit fields, TCP+UDP, multiple maps with
hit/miss/insert/erase arms, nested conditionals, overflow arithmetic,
wide constants, bounded loops — which the three-way oracle then checks:
FastClick baseline vs. the deployed switch+server pair vs. the cached
deployment, over a seeded packet burst.  This is the paper's functional
equivalence goal checked over program space instead of five fixed inputs;
the standalone gauntlet (``python -m repro difftest``) runs the same
oracle at much larger scale.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.difftest.generator import generate_program
from repro.difftest.oracle import Outcome, StreamSpec, run_oracle


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(0, 2**32 - 1), stream_seed=st.integers(0, 2**16))
def test_random_middlebox_equivalence(seed, stream_seed):
    program = generate_program(seed)
    stream = StreamSpec(seed=stream_seed, count=15)
    result = run_oracle(program.source(), stream)
    # PARTITION_REJECTED is acceptable: the generator intentionally emits
    # resource-boundary programs that may exceed the switch budgets.
    assert result.outcome in (Outcome.AGREE, Outcome.PARTITION_REJECTED), (
        f"seed={seed} stream_seed={stream_seed}"
        f" outcome={result.outcome.value}"
        f" divergence={result.divergence}"
        f" error={result.error}\n{program.source()}"
    )
