"""Functional-equivalence tests (the paper's first goal, §3.1).

Three implementations of every middlebox are driven with the same random
packet streams:

1. the **deployed Gallium pipeline** (switch model + server runtime),
2. the **unpartitioned interpretation** (FastClick baseline),
3. the **independent Python reference** written from the prose description.

All three must agree on verdicts and header rewrites for every packet, and
(1) and (2) must agree on final state.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.click.packet import Packet
from repro.eval.profiles import build_baseline, build_gallium
from repro.middleboxes import MIDDLEBOX_NAMES
from repro.net.addresses import ip
from repro.net.headers import TcpFlags
from repro.workloads.packets import make_tcp_packet, make_udp_packet
from tests.conftest import get_bundle


def random_stream(name: str, rng: random.Random, count: int):
    packets = []
    for _ in range(count):
        saddr = f"192.168.1.{rng.randint(1, 20)}"
        if name == "mazunat":
            if rng.random() < 0.7:
                packets.append(
                    (make_tcp_packet(saddr, "8.8.4.4",
                                     rng.randint(1000, 1010), 80,
                                     ingress_port=1), 1)
                )
            else:
                packets.append(
                    (make_tcp_packet("8.8.4.4", "100.64.0.1", 80,
                                     rng.randint(2048, 2080),
                                     ingress_port=2), 2)
                )
        elif name == "firewall":
            index = rng.randint(0, 70)
            host = (index % 250) + 1
            port = 2 if rng.random() < 0.3 else 1
            src = f"192.168.1.{host}" if port == 1 else f"10.0.0.{host}"
            dst = f"10.0.0.{host}" if port == 1 else f"192.168.1.{host}"
            sport = 1000 + index if port == 1 else 80
            dport = 80 if port == 1 else 1000 + index
            packets.append(
                (make_tcp_packet(src, dst, sport, dport, ingress_port=port),
                 port)
            )
        elif name == "trojan":
            flags = rng.choice(
                [TcpFlags.SYN, TcpFlags.ACK, TcpFlags.ACK,
                 TcpFlags.FIN | TcpFlags.ACK]
            )
            dport = rng.choice([22, 80, 6667, 5001, 21])
            payload = rng.choice(
                [b"", b"GET /index.html HTTP/1.1", b"RETR file.zip",
                 b"plain data"]
            )
            packets.append(
                (make_tcp_packet(saddr, "10.0.0.5", rng.randint(1000, 1004),
                                 dport, flags=flags, payload=payload,
                                 ingress_port=1), 1)
            )
        elif name == "proxy":
            dport = rng.choice([80, 8080, 443, 22])
            if rng.random() < 0.2:
                packets.append(
                    (make_udp_packet(saddr, "10.0.0.9", 999, dport,
                                     ingress_port=1), 1)
                )
            else:
                packets.append(
                    (make_tcp_packet(saddr, "10.0.0.9", 999, dport,
                                     ingress_port=1), 1)
                )
        else:  # minilb, lb
            flags = rng.choice(
                [TcpFlags.SYN, TcpFlags.ACK, TcpFlags.ACK,
                 TcpFlags.FIN | TcpFlags.ACK, TcpFlags.RST]
            )
            if name == "lb" and rng.random() < 0.25:
                packets.append(
                    (make_udp_packet(saddr, "10.0.0.100",
                                     rng.randint(5000, 5008), 53,
                                     ingress_port=1), 1)
                )
            else:
                packets.append(
                    (make_tcp_packet(saddr, "10.0.0.100",
                                     rng.randint(5000, 5008), 80,
                                     flags=flags, ingress_port=1), 1)
                )
    return packets


def seed_minilb(gallium=None, baseline=None, reference=None):
    backends = [int(ip("10.0.1.1")), int(ip("10.0.1.2"))]
    if gallium is not None:
        gallium.state.vectors["backends"] = list(backends)
        gallium.sync_all_state()
    if baseline is not None:
        baseline.state.vectors["backends"] = list(backends)
    return backends


def observable(packet, verdict):
    if verdict != "send":
        return (verdict,)
    l4 = packet.l4
    return (
        verdict,
        str(packet.ip.saddr),
        str(packet.ip.daddr),
        l4.sport if l4 else 0,
        l4.dport if l4 else 0,
    )


@pytest.mark.parametrize("seed", [1, 2, 3])
@pytest.mark.parametrize("name", MIDDLEBOX_NAMES)
def test_gallium_equals_baseline(name, seed):
    """Deployed pipeline ≡ unpartitioned program: verdicts, rewrites, state."""
    rng = random.Random(seed)
    gallium = build_gallium(name)
    baseline = build_baseline(name)
    if name == "minilb":
        seed_minilb(gallium, baseline)
    for packet, ingress in random_stream(name, rng, 150):
        clone = packet.copy()
        base_result = baseline.process_packet(clone, ingress)
        journey = gallium.process_packet(packet, ingress)
        assert observable(clone, base_result.verdict) == observable(
            packet, journey.verdict
        ), f"{name}: divergence on {packet!r}"
    gallium_state = gallium.state.snapshot()
    baseline_state = baseline.state.snapshot()
    # Switch-resident registers are authoritative on the switch.
    for register_name, register in gallium.switch.registers.items():
        placement = gallium.plan.placements[register_name]
        if placement.kind.value == "switch_register":
            gallium_state["scalars"][register_name] = register.value
    assert gallium_state["maps"] == baseline_state["maps"]
    assert gallium_state["scalars"] == baseline_state["scalars"]


@pytest.mark.parametrize("name", MIDDLEBOX_NAMES)
def test_baseline_equals_reference(name):
    """Compiled-from-source semantics ≡ independent Python reference."""
    rng = random.Random(7)
    bundle = get_bundle(name)
    baseline = build_baseline(name)
    reference = bundle.make_reference()
    if name == "minilb":
        from repro.click.vector import Vector

        backends = seed_minilb(baseline=baseline)
        reference.backends = Vector(backends)
    for packet, ingress in random_stream(name, rng, 150):
        ref_packet = Packet(packet.copy())
        ref_packet.raw.ingress_port = ingress
        reference.push(ref_packet)
        base_result = baseline.process_packet(packet, ingress)
        ref_verdict = (
            "send" if ref_packet.action.value == "send" else "drop"
        )
        assert observable(ref_packet.raw, ref_verdict) == observable(
            packet, base_result.verdict
        ), f"{name}: reference divergence"


@pytest.mark.parametrize("name", MIDDLEBOX_NAMES)
def test_replicated_tables_converge(name):
    """After any stream, switch table copies equal the server's maps."""
    rng = random.Random(11)
    gallium = build_gallium(name)
    if name == "minilb":
        seed_minilb(gallium)
    for packet, ingress in random_stream(name, rng, 120):
        gallium.process_packet(packet, ingress)
    for state_name, placement in gallium.plan.placements.items():
        if placement.kind.value == "replicated_table":
            assert (
                gallium.switch.tables[state_name].snapshot()
                == gallium.state.maps[state_name]
            ), f"{name}: {state_name} diverged"
