"""Run-to-completion semantics tests (paper §3.1 / §4.3.3).

The correctness criteria: a causally dependent later packet observes *all*
state updates of its antecedent; any other packet observes all or none.
The mechanism under test is atomic update (write-back + visibility bit)
plus output commit (the update-triggering packet is held until the updates
are visible on the switch).
"""

import pytest

from repro.eval.profiles import build_gallium
from repro.net.addresses import ip
from repro.net.headers import TcpFlags
from repro.switchsim.control_plane import StateUpdate
from repro.switchsim.tables import ExactMatchTable
from repro.workloads.packets import make_tcp_packet


class TestOutputCommit:
    def test_update_triggering_packet_waits_for_visibility(self):
        """The SYN that installs NAT state is held for the sync latency."""
        middlebox = build_gallium("mazunat")
        syn = make_tcp_packet("192.168.1.1", "8.8.4.4", 1000, 80,
                              flags=TcpFlags.SYN)
        journey = middlebox.process_packet(syn, 1)
        assert journey.punted
        assert journey.sync_tables == 3  # nat_out, rev_addr, rev_port
        assert journey.sync_wait_us > 200  # multi-table batch

    def test_fast_path_packet_never_waits(self):
        middlebox = build_gallium("mazunat")
        syn = make_tcp_packet("192.168.1.1", "8.8.4.4", 1000, 80,
                              flags=TcpFlags.SYN)
        middlebox.process_packet(syn, 1)
        follow_up = make_tcp_packet("192.168.1.1", "8.8.4.4", 1000, 80)
        journey = middlebox.process_packet(follow_up, 1)
        assert journey.fast_path
        assert journey.sync_wait_us == 0

    def test_causally_dependent_packet_sees_state(self):
        """The reply to a NAT'd packet (causally after its release) hits the
        already-synchronized reverse mapping on the switch fast path."""
        middlebox = build_gallium("mazunat")
        outbound = make_tcp_packet("192.168.1.9", "8.8.4.4", 4000, 80,
                                   flags=TcpFlags.SYN)
        middlebox.process_packet(outbound, 1)
        reply = make_tcp_packet("8.8.4.4", "100.64.0.1", 80,
                                outbound.tcp.sport, ingress_port=2)
        journey = middlebox.process_packet(reply, 2)
        assert journey.fast_path  # state already on the switch
        assert str(reply.ip.daddr) == "192.168.1.9"

    def test_read_only_slow_path_does_not_sync(self):
        """Punted packets that mutate nothing pay no control-plane latency."""
        middlebox = build_gallium("trojan")
        # Establish an HTTP flow from a tracked host so data packets punt
        # for DPI but the DPI finds nothing to update.
        middlebox.process_packet(
            make_tcp_packet("192.168.1.1", "10.0.0.5", 900, 22,
                            flags=TcpFlags.SYN), 1,
        )
        middlebox.process_packet(
            make_tcp_packet("192.168.1.1", "10.0.0.5", 901, 80,
                            flags=TcpFlags.SYN), 1,
        )
        data = make_tcp_packet("192.168.1.1", "10.0.0.5", 901, 80,
                               payload=b"GET /nothing.txt")
        journey = middlebox.process_packet(data, 1)
        assert journey.punted
        assert journey.sync_tables == 0
        assert journey.sync_wait_us == 0


class TestAtomicVisibility:
    """All-or-nothing visibility of a multi-entry batch."""

    def test_batch_invisible_before_flip_visible_after(self):
        table_a = ExactMatchTable("a", [32], 32, 16)
        table_b = ExactMatchTable("b", [32], 32, 16)
        # Stage on both tables (step 1): nothing visible.
        table_a.stage((1,), 10)
        table_b.stage((1,), 20)
        assert table_a.lookup((1,)) == (False, 0)
        assert table_b.lookup((1,)) == (False, 0)
        # Flip (step 2): everything visible at once.
        table_a.set_visibility(True)
        table_b.set_visibility(True)
        assert table_a.lookup((1,)) == (True, 10)
        assert table_b.lookup((1,)) == (True, 20)

    def test_no_partial_state_during_fold(self):
        """Folding keeps entries visible throughout."""
        table = ExactMatchTable("t", [32], 32, 16)
        table.stage((1,), 5)
        table.set_visibility(True)
        assert table.lookup((1,)) == (True, 5)
        table.fold_writeback()
        # Entry now in main table; bit can clear with no visibility gap.
        table.set_visibility(False)
        assert table.lookup((1,)) == (True, 5)

    def test_later_packet_sees_all_nat_entries_or_none(self):
        """A reply arriving between a SYN's punt and its sync completion
        would see none of the three NAT entries; after the batch it sees
        all three.  Here we check the 'all' side end to end and the 'none'
        side at the table layer."""
        middlebox = build_gallium("mazunat")
        syn = make_tcp_packet("192.168.1.2", "8.8.4.4", 1000, 80,
                              flags=TcpFlags.SYN)
        middlebox.process_packet(syn, 1)
        for table_name in ("nat_out", "rev_addr", "rev_port"):
            assert middlebox.switch.tables[table_name].entry_count == 1
