"""Round-trip of symbolic counterexamples through the difftest corpus.

A translation-validation disproof is only worth keeping if the saved
reproducer is *exactly* the packet that diverged: these tests pin the
full loop — disproof → minimized corpus entry on disk → reload →
byte-identical packet reconstruction → replay through the corpus runner,
in both the interpreted and the ``--compiled`` deployment.
"""

import pytest

from repro.compiler import compile_source
from repro.difftest.corpus import load_corpus, replay_entry, save_entry
from repro.ir import instructions as irin
from repro.ir.values import const_int
from repro.verify.symbolic import (
    deserialize_prestate,
    packet_from_spec,
    serialize_prestate,
    verify_symbolic,
)


@pytest.fixture(scope="module")
def disproof(tmp_path_factory):
    """One real symbolic disproof, written to a scratch corpus dir."""
    corpus_dir = tmp_path_factory.mktemp("symcorpus")
    entries = {entry.name: entry for entry in load_corpus()}
    source = entries["remat_nonp4_into_post"].source
    result = compile_source(source, verify=False)
    pre = result.switch_program.pre
    pre.blocks[pre.entry].instructions.insert(
        0, irin.StorePacketField("ip", "ttl", const_int(13))
    )
    report = verify_symbolic(
        result.plan, result.switch_program,
        source=source, corpus_dir=corpus_dir,
    )
    assert report.counterexamples, "mutation must be disproved"
    return corpus_dir, report.counterexamples[0]


def test_saved_entry_round_trips_through_disk(disproof):
    corpus_dir, cx = disproof
    entries = load_corpus(corpus_dir)
    assert len(entries) == 1
    entry = entries[0]
    # The on-disk entry is the counterexample, loss-free: same packet
    # spec, same pre-state.
    assert entry.stream.packets == [cx.packet]
    assert deserialize_prestate(entry.prestate) == cx.prestate
    # And it survives a second save/load unchanged.
    again_dir = corpus_dir / "again"
    again_dir.mkdir()
    save_entry(entry, again_dir)
    assert load_corpus(again_dir)[0].to_dict() == entry.to_dict()


def test_packet_reconstruction_is_byte_identical(disproof):
    _, cx = disproof
    first, second = packet_from_spec(cx.packet), packet_from_spec(cx.packet)
    assert first.pack() == second.pack()
    assert first.ingress_port == second.ingress_port


def test_prestate_serialization_round_trips(disproof):
    _, cx = disproof
    assert deserialize_prestate(serialize_prestate(cx.prestate)) == cx.prestate


def test_disproof_replays_to_expectation_interpreted(disproof):
    corpus_dir, _ = disproof
    entry = load_corpus(corpus_dir)[0]
    result = replay_entry(entry)
    assert result.outcome.value == entry.expect, (
        f"outcome={result.outcome.value}"
        f" divergence={result.divergence} error={result.error}"
    )


def test_disproof_replays_to_expectation_compiled(disproof):
    """The same reproducer under ``difftest corpus --compiled``."""
    corpus_dir, _ = disproof
    entry = load_corpus(corpus_dir)[0]
    result = replay_entry(entry, fast_path=True)
    assert result.outcome.value == entry.expect, (
        f"outcome={result.outcome.value}"
        f" divergence={result.divergence} error={result.error}"
    )
