"""Tests for the table-cache extension (paper §7 future work)."""

import pytest

from repro.net.addresses import ip
from repro.runtime.cache import (
    CacheConfigurationError,
    CachedGalliumMiddlebox,
    build_cached,
)
from repro.eval.profiles import build_baseline
from repro.workloads.packets import make_tcp_packet


def seed_backends(middlebox):
    middlebox.state.vectors["backends"] = [
        int(ip("10.0.1.1")), int(ip("10.0.1.2")),
    ]
    middlebox.sync_all_state()


class TestCacheBasics:
    def test_hot_flow_hits_cache(self):
        middlebox = build_cached("minilb", cache_entries=8)
        seed_backends(middlebox)
        first = middlebox.process_packet(
            make_tcp_packet("1.1.1.1", "10.0.0.100", 5, 80), 1
        )
        assert not first.fast_path
        for _ in range(3):
            journey = middlebox.process_packet(
                make_tcp_packet("1.1.1.1", "10.0.0.100", 5, 80), 1
            )
            assert journey.fast_path
        assert middlebox.stats.hit_rate > 0.5

    def test_cache_bound_enforced(self):
        middlebox = build_cached("minilb", cache_entries=4)
        seed_backends(middlebox)
        for client in range(20):
            middlebox.process_packet(
                make_tcp_packet(f"10.9.0.{client + 1}", "10.0.0.100", 5, 80), 1
            )
        occupancy = middlebox.switch_cache_occupancy()["map"]
        assert occupancy <= 4
        assert middlebox.stats.evictions > 0
        # The authoritative server map still holds everything.
        assert len(middlebox.state.maps["map"]) > 4

    def test_evicted_flow_still_correct(self):
        """An evicted connection misses the cache but keeps its backend:
        the server's authoritative map wins."""
        middlebox = build_cached("minilb", cache_entries=2)
        seed_backends(middlebox)
        victim = make_tcp_packet("10.8.0.1", "10.0.0.100", 5, 80)
        middlebox.process_packet(victim, 1)
        original_backend = str(victim.ip.daddr)
        # Blow the cache with other flows.
        for client in range(10):
            middlebox.process_packet(
                make_tcp_packet(f"10.8.1.{client + 1}", "10.0.0.100", 5, 80), 1
            )
        replay = make_tcp_packet("10.8.0.1", "10.0.0.100", 5, 80)
        journey = middlebox.process_packet(replay, 1)
        assert str(replay.ip.daddr) == original_backend
        assert journey.punted  # cache miss, served by the full program

    def test_refill_after_miss(self):
        middlebox = build_cached("minilb", cache_entries=2)
        seed_backends(middlebox)
        middlebox.process_packet(
            make_tcp_packet("10.7.0.1", "10.0.0.100", 5, 80), 1
        )
        for client in range(5):
            middlebox.process_packet(
                make_tcp_packet(f"10.7.1.{client + 1}", "10.0.0.100", 5, 80), 1
            )
        # Miss refills the entry; the next packet hits again.
        middlebox.process_packet(
            make_tcp_packet("10.7.0.1", "10.0.0.100", 5, 80), 1
        )
        journey = middlebox.process_packet(
            make_tcp_packet("10.7.0.1", "10.0.0.100", 5, 80), 1
        )
        assert journey.fast_path
        assert middlebox.stats.refills > 0


class TestCacheEquivalence:
    @pytest.mark.parametrize("cache_entries", [1, 4, 64])
    def test_verdicts_match_baseline_any_cache_size(self, cache_entries):
        import random

        rng = random.Random(3)
        middlebox = build_cached("lb", cache_entries=cache_entries)
        baseline = build_baseline("lb")
        from repro.net.headers import TcpFlags

        for _ in range(120):
            flags = rng.choice(
                [TcpFlags.SYN, TcpFlags.ACK, TcpFlags.ACK,
                 TcpFlags.FIN | TcpFlags.ACK]
            )
            packet = make_tcp_packet(
                f"192.168.1.{rng.randint(1, 6)}", "10.0.0.100",
                rng.randint(5000, 5004), 80, flags=flags,
            )
            clone = packet.copy()
            base = baseline.process_packet(clone, 1)
            journey = middlebox.process_packet(packet, 1)
            assert base.verdict == journey.verdict
            if base.verdict == "send":
                assert str(clone.ip.daddr) == str(packet.ip.daddr)
        assert middlebox.state.maps["conn_map"] == baseline.state.maps["conn_map"]


class TestCacheRestrictions:
    def test_register_mutating_pre_rejected(self):
        """MazuNAT's pre pipeline bumps the port counter: cache mode's
        full-program rerun would double-increment, so it is rejected."""
        with pytest.raises(CacheConfigurationError):
            build_cached("mazunat", cache_entries=16)

    def test_no_replicated_tables_rejected(self):
        with pytest.raises(CacheConfigurationError):
            build_cached("firewall", cache_entries=16)

    def test_register_mutating_post_rejected(self):
        """A register RMW in *post* is just as fatal as one in pre: the
        punt path emits from the server and never traverses post, so the
        switch register would silently miss updates.

        Regression (difftest corpus ``cached_post_register_rmw``): a
        conditional ``ctr -= 1`` placed in post lost every decrement on
        the cached deployment.
        """
        from repro.ir import lower_program
        from repro.lang import parse_program
        from repro.partition.labels import Partition
        from repro.runtime.cache import CachedGalliumMiddlebox
        from repro.runtime.deployment import compile_middlebox

        source = """
        class T {
          // @gallium: max_entries=64
          HashMap<uint32_t, uint16_t> m0;
          uint32_t ctr0;
          void process(Packet *pkt) {
            iphdr *ip = pkt->network_header();
            tcphdr *tcp = pkt->tcp_header();
            udphdr *udp = pkt->udp_header();
            uint32_t k1 = 0;
            uint16_t v1 = 0;
            m0.insert(&k1, &v1);
            if ((udp->len * ip->protocol) == (tcp->urg_ptr + 0)) {
            } else {
              uint32_t k2 = 0;
              uint16_t *h2 = m0.find(&k2);
              if (h2 != NULL) {
              } else {
              }
              ctr0 -= 1;
            }
            pkt->drop();
          }
        };
        """
        plan, program = compile_middlebox(lower_program(parse_program(source)))
        rmw_partitions = {
            plan.assignment[i.id]
            for i in plan.middlebox.process.instructions()
            if type(i).__name__ == "RegisterRMW"
        }
        assert rmw_partitions == {Partition.POST}
        with pytest.raises(CacheConfigurationError):
            CachedGalliumMiddlebox(plan, program, cache_entries=2)
