"""Tests for the active-standby failover deployment.

Covers the standby's warm replication path, the per-packet register
checkpoint, promotion at the end of a crash window (packet-boundary and
mid-batch), stale-standby repair via the promotion resync, and the
failover-aware fault oracle end to end.
"""

import pytest

from repro.difftest.oracle import StreamSpec
from repro.faults.injector import FaultInjector
from repro.faults.oracle import FaultOutcome, run_fault_oracle
from repro.faults.plan import (
    CrashDuringBatch,
    FaultPlan,
    PrimarySwitchCrash,
    StandbyStaleReplay,
)
from repro.runtime.degradation import DegradationPolicy
from repro.runtime.deployment import compile_middlebox
from repro.runtime.failover import FailoverDeployment
from repro.workloads.packets import make_tcp_packet
from tests.conftest import get_bundle
from tests.faults.test_degradation import FAULTBOX


def build_failover(name="mazunat", plan=None, seed=0, injector_seed=0,
                   detection="phi"):
    bundle = get_bundle(name)
    partition_plan, program = compile_middlebox(bundle.lowered)
    policy = DegradationPolicy()
    injector = None
    if plan is not None:
        injector = FaultInjector(
            plan, seed=injector_seed,
            max_attempts=policy.retry.max_attempts,
        )
    box = FailoverDeployment(
        partition_plan, program, config=bundle.config, seed=seed,
        policy=policy, injector=injector, detection=detection,
    )
    box.install()
    return box


def outbound(index):
    """One distinct internal flow — every first packet punts (NAT miss)."""
    return make_tcp_packet(
        f"192.168.1.{(index % 250) + 1}", "8.8.4.4", 1000 + index, 80
    )


def drive(box, count, start=0):
    journeys = []
    for index in range(start, start + count):
        journeys.append(box.process_packet(outbound(index), 1))
        journeys.extend(box.drain_deferred())
    return journeys


def table_images(switch):
    return {name: t.snapshot() for name, t in switch.tables.items()}


class TestWarmStandby:
    def test_install_programs_both_switches(self):
        box = build_failover()
        assert table_images(box.standby) == table_images(box.switch)
        for name, reg in box.switch.registers.items():
            assert box.standby.registers[name].value == reg.value

    def test_committed_batches_replayed(self):
        box = build_failover()
        drive(box, 5)
        assert box.switch.tables["nat_out"].entry_count == 5
        assert table_images(box.standby) == table_images(box.switch)
        metrics = box.telemetry.metrics
        assert metrics.counter("failover.standby_batches_replayed").value > 0
        assert metrics.counter("failover.standby_replay_dropped").value == 0

    def test_register_checkpoint_tracks_every_packet(self):
        box = build_failover()
        drive(box, 3)
        # mazunat's port allocator is switch-authoritative; the checkpoint
        # must hold its value as of the last completed packet.
        assert (
            box._register_checkpoint["port_counter"]
            == box.switch.registers["port_counter"].value
        )


class TestPromotion:
    CRASH = FaultPlan((PrimarySwitchCrash(at_packet=3, promotion_window=2),))

    def test_window_runs_on_server_then_promotes(self):
        """Under φ detection the window opens at the crash packet but
        only closes once the detector declares the primary dead — the
        window is contiguous, at least as long as the injected outage,
        and its exact length is the *measured* detection latency."""
        box = build_failover(plan=self.CRASH)
        journeys = drive(box, 12)
        assert box.promoted
        assert box.standby is None
        assert box.failed_primary is not None
        assert box.failed_primary is not box.switch
        assert ("promote",) in box.fault_log
        window = [j.packet_index for j in journeys if j.fallback]
        assert window[0] == 3
        assert window == list(range(3, 3 + len(window)))
        assert len(window) >= 2  # nominal outage, extended by detection
        metrics = box.telemetry.metrics
        assert metrics.counter("failover.promotions").value == 1
        assert metrics.counter(
            "failover.promotion_window_packets"
        ).value == len(window)
        # Detection was measured, not forced or free.
        assert metrics.counter("health.detections").value == 1
        assert metrics.counter("health.forced_detections").value == 0
        from repro.telemetry.health import expected_detection_latency_us

        latency = box.health.detection_latency_us
        assert latency is not None
        assert 0.0 < latency <= expected_detection_latency_us(
            box.health.config
        )

    def test_exact_mode_keeps_free_boundary_detection(self):
        """``detection="exact"`` is the oracle reference: promotion at
        the fault window's packet boundary, byte-exact legacy pins."""
        box = build_failover(plan=self.CRASH, detection="exact")
        journeys = drive(box, 8)
        assert box.promoted
        assert box.health is None
        window = [j.packet_index for j in journeys if j.fallback]
        assert window == [3, 4]
        metrics = box.telemetry.metrics
        assert metrics.counter("failover.promotions").value == 1
        assert metrics.counter("failover.promotion_window_packets").value == 2
        assert metrics.counter("health.detections").value == 0

    def test_promoted_switch_resynced_from_server(self):
        box = build_failover(plan=self.CRASH)
        drive(box, 12)
        assert box.promoted
        assert (
            box.switch.tables["nat_out"].snapshot()
            == box.state.maps["nat_out"]
        )

    def test_traffic_flows_after_promotion(self):
        box = build_failover(plan=self.CRASH)
        drive(box, 8)
        repeat = box.process_packet(outbound(7), 1)
        assert repeat.fast_path  # flow 7's entry survived the failover
        assert repeat.verdict == "send"

    def test_port_allocations_survive_the_crash(self):
        """The register checkpoint carries the NAT port allocator across
        the crash: no external port is ever handed out twice, even for
        flows served inside the promotion window."""
        box = build_failover(plan=self.CRASH)
        ports = []
        for index in range(8):
            packet = outbound(index)
            box.process_packet(packet, 1)
            box.drain_deferred()
            ports.append(packet.tcp.sport)
        assert len(set(ports)) == len(ports)

    def test_promotion_is_idempotent(self):
        box = build_failover(plan=self.CRASH)
        drive(box, 8)
        box._promote()
        assert box.telemetry.metrics.counter("failover.promotions").value == 1


class TestStaleStandby:
    def test_dropped_replays_leave_standby_stale(self):
        plan = FaultPlan((StandbyStaleReplay(probability=1.0),))
        box = build_failover(plan=plan)
        drive(box, 4)
        assert box.switch.tables["nat_out"].entry_count == 4
        assert box.standby.tables["nat_out"].entry_count == 0
        metrics = box.telemetry.metrics
        assert metrics.counter("failover.standby_replay_dropped").value == 4
        assert metrics.counter("failover.standby_batches_replayed").value == 0

    def test_promotion_resync_repairs_staleness(self):
        plan = FaultPlan((
            StandbyStaleReplay(probability=1.0, stop=3),
            PrimarySwitchCrash(at_packet=3, promotion_window=2),
        ))
        box = build_failover(plan=plan)
        drive(box, 12)
        assert box.promoted
        # The promoted switch missed every pre-crash replay, yet the bulk
        # resync rebuilt it from the server's authoritative copy.
        assert (
            box.switch.tables["nat_out"].snapshot()
            == box.state.maps["nat_out"]
        )


class TestCrashDuringBatch:
    def test_mid_batch_crash_opens_window_next_packet(self):
        plan = FaultPlan((
            CrashDuringBatch(probability=1.0, promotion_window=2,
                             start=2, stop=3),
        ))
        box = build_failover(plan=plan)
        journeys = drive(box, 12)
        assert box.promoted
        assert box.injector.injected.get("crash_during_batch", 0) == 1
        # The crash resolves transactionally first (packet 2's batch either
        # commits via roll-forward or aborts); the promotion window then
        # covers the *next* packets, for as long as φ detection takes.
        window = [j.packet_index for j in journeys if j.fallback]
        assert window[0] == 3
        assert window == list(range(3, 3 + len(window)))
        assert len(window) >= 2

    def test_multi_table_batch_rolls_back_through_crash(self):
        """mazunat's first-punt batch touches both NAT tables plus the
        port register; the mid-batch crash durably lands only a strict
        prefix, so the undo log must roll the batch back byte-exactly,
        degrade the packet, and keep switch and server in lockstep."""
        plan = FaultPlan((
            CrashDuringBatch(probability=1.0, promotion_window=1,
                             start=0, stop=1),
        ))
        # Exact-boundary detection: the rollback mechanics (not the
        # detector) are under test, so keep the byte-exact legacy pins.
        box = build_failover(plan=plan, detection="exact")
        journeys = drive(box, 4)
        metrics = box.telemetry.metrics
        assert metrics.counter(
            "control_plane.batches_rolled_back"
        ).value == 1
        assert journeys[0].verdict == "drop"  # output commit held it back
        # The rolled-back flow never landed anywhere; later flows did, and
        # both sides agree exactly after the promotion resync.
        assert (
            box.switch.tables["nat_out"].snapshot()
            == box.state.maps["nat_out"]
        )
        assert len(box.state.maps["nat_out"]) == 3


class TestFailoverOracle:
    def test_switch_crash_degraded_ok(self):
        result = run_fault_oracle(
            FAULTBOX, StreamSpec(seed=1, count=20),
            FaultPlan((PrimarySwitchCrash(at_packet=4, promotion_window=3),)),
            policy=DegradationPolicy(),
            failover=True,
        )
        assert result.outcome is FaultOutcome.DEGRADED_OK, result.violation
        assert result.violation is None

    def test_stale_standby_then_crash_degraded_ok(self):
        result = run_fault_oracle(
            FAULTBOX, StreamSpec(seed=2, count=20),
            FaultPlan((
                StandbyStaleReplay(probability=1.0, stop=6),
                PrimarySwitchCrash(at_packet=6, promotion_window=3),
            )),
            policy=DegradationPolicy(),
            failover=True,
        )
        assert result.outcome is FaultOutcome.DEGRADED_OK, result.violation

    def test_crash_batch_degraded_ok(self):
        result = run_fault_oracle(
            FAULTBOX, StreamSpec(seed=3, count=20),
            FaultPlan((
                CrashDuringBatch(probability=0.6, promotion_window=3),
            )),
            policy=DegradationPolicy(),
            failover=True,
        )
        assert result.outcome in (
            FaultOutcome.DEGRADED_OK, FaultOutcome.CLEAN
        ), result.violation

    def test_cached_and_failover_compose(self):
        # Historically a ValueError; the CachedFailoverDeployment
        # composition now handles both flags end to end.
        result = run_fault_oracle(
            FAULTBOX, StreamSpec(seed=1, count=5), FaultPlan(),
            cached=True, failover=True,
        )
        assert result.outcome == FaultOutcome.CLEAN, (
            result.violation or result.error
        )
        assert result.cached_mode and result.failover_mode
