"""Tests for the deployed Gallium middlebox and the baseline runtime."""

import pytest

from repro.eval.profiles import build_baseline, build_gallium
from repro.net.addresses import ip
from repro.net.headers import TcpFlags
from repro.workloads.packets import make_tcp_packet
from tests.conftest import get_bundle


class TestInstall:
    def test_configure_populates_state(self):
        middlebox = build_gallium("firewall")
        assert len(middlebox.state.maps["wl_out"]) == 64
        assert middlebox.switch.tables["wl_out"].entry_count == 64

    def test_registers_pushed(self):
        middlebox = build_gallium("proxy")
        assert middlebox.switch.registers["proxy_addr"].read() == int(
            ip("10.0.2.10")
        )

    def test_nat_counter_starts_at_config(self):
        middlebox = build_gallium("mazunat")
        assert middlebox.switch.registers["port_counter"].value == 2048


class TestFastSlowPath:
    def test_minilb_first_packet_slow_then_fast(self):
        middlebox = build_gallium("minilb")
        middlebox.state.vectors["backends"] = [int(ip("10.0.1.1"))]
        middlebox.sync_all_state()
        first = middlebox.process_packet(
            make_tcp_packet("1.1.1.1", "10.0.0.100", 5, 80), 1
        )
        second = middlebox.process_packet(
            make_tcp_packet("1.1.1.1", "10.0.0.100", 5, 80), 1
        )
        assert not first.fast_path and first.punted
        assert second.fast_path

    def test_slow_path_pays_sync_wait(self):
        middlebox = build_gallium("minilb")
        middlebox.state.vectors["backends"] = [int(ip("10.0.1.1"))]
        middlebox.sync_all_state()
        journey = middlebox.process_packet(
            make_tcp_packet("1.1.1.1", "10.0.0.100", 5, 80), 1
        )
        assert journey.sync_tables == 1
        assert journey.sync_wait_us > 50

    def test_fast_path_fraction(self):
        middlebox = build_gallium("firewall")
        for index in range(10):
            host = (index % 250) + 1
            middlebox.process_packet(
                make_tcp_packet(
                    f"192.168.1.{host}", f"10.0.0.{host}", 1000 + index, 80
                ),
                1,
            )
        assert middlebox.fast_path_fraction() == 1.0

    def test_updates_replicated_to_switch_tables(self):
        middlebox = build_gallium("minilb")
        middlebox.state.vectors["backends"] = [int(ip("10.0.1.9"))]
        middlebox.sync_all_state()
        middlebox.process_packet(
            make_tcp_packet("4.4.4.4", "10.0.0.100", 9, 80), 1
        )
        # Server's authoritative map and the switch table agree.
        assert (
            middlebox.switch.tables["map"].snapshot()
            == middlebox.state.maps["map"]
        )

    def test_journey_reports_instructions(self):
        middlebox = build_gallium("mazunat")
        slow = middlebox.process_packet(
            make_tcp_packet("192.168.1.1", "8.8.4.4", 1000, 80), 1
        )
        assert slow.pre_instructions > 0
        assert slow.server_instructions > 0
        fast = middlebox.process_packet(
            make_tcp_packet("192.168.1.1", "8.8.4.4", 1000, 80), 1
        )
        assert fast.server_instructions == 0


class TestNatBehaviour:
    def test_bidirectional_translation(self):
        middlebox = build_gallium("mazunat")
        outbound = make_tcp_packet("192.168.1.5", "8.8.4.4", 3333, 80)
        middlebox.process_packet(outbound, 1)
        assert str(outbound.ip.saddr) == "100.64.0.1"
        external_port = outbound.tcp.sport
        reply = make_tcp_packet(
            "8.8.4.4", "100.64.0.1", 80, external_port, ingress_port=2
        )
        journey = middlebox.process_packet(reply, 2)
        assert journey.verdict == "send"
        assert str(reply.ip.daddr) == "192.168.1.5"
        assert reply.tcp.dport == 3333

    def test_unknown_external_dropped_on_fast_path(self):
        middlebox = build_gallium("mazunat")
        stray = make_tcp_packet(
            "8.8.4.4", "100.64.0.1", 80, 9999, ingress_port=2
        )
        journey = middlebox.process_packet(stray, 2)
        assert journey.verdict == "drop"
        assert journey.fast_path

    def test_port_allocation_monotonic(self):
        middlebox = build_gallium("mazunat")
        ports = []
        for index in range(3):
            packet = make_tcp_packet(
                f"192.168.1.{index + 1}", "8.8.4.4", 1000, 80
            )
            middlebox.process_packet(packet, 1)
            ports.append(packet.tcp.sport)
        assert ports == [2048, 2049, 2050]


class TestLoadBalancerBehaviour:
    def test_connection_affinity(self):
        middlebox = build_gallium("lb")
        first = make_tcp_packet("2.2.2.2", "10.0.0.100", 777, 80,
                                flags=TcpFlags.SYN)
        middlebox.process_packet(first, 1)
        backend = str(first.ip.daddr)
        for _ in range(3):
            packet = make_tcp_packet("2.2.2.2", "10.0.0.100", 777, 80)
            journey = middlebox.process_packet(packet, 1)
            assert journey.fast_path
            assert str(packet.ip.daddr) == backend

    def test_fin_tears_down_connection(self):
        middlebox = build_gallium("lb")
        syn = make_tcp_packet("2.2.2.2", "10.0.0.100", 778, 80,
                              flags=TcpFlags.SYN)
        middlebox.process_packet(syn, 1)
        assert len(middlebox.state.maps["conn_map"]) == 1
        fin = make_tcp_packet("2.2.2.2", "10.0.0.100", 778, 80,
                              flags=TcpFlags.FIN | TcpFlags.ACK)
        journey = middlebox.process_packet(fin, 1)
        assert journey.verdict == "send"
        assert len(middlebox.state.maps["conn_map"]) == 0
        # Switch copy emptied too.
        assert middlebox.switch.tables["conn_map"].snapshot() == {}


class TestTrojanBehaviour:
    def _syn(self, mb, dport):
        mb.process_packet(
            make_tcp_packet("192.168.1.1", "10.0.0.5", 1000 + dport, dport,
                            flags=TcpFlags.SYN),
            1,
        )

    def test_detection_sequence(self):
        middlebox = build_gallium("trojan")
        self._syn(middlebox, 22)    # SSH
        self._syn(middlebox, 80)    # web flow
        # HTTP download of a zip from the tracked host.
        data = make_tcp_packet(
            "192.168.1.1", "10.0.0.5", 1080, 80,
            payload=b"GET /payload.zip HTTP/1.1",
        )
        middlebox.process_packet(data, 1)
        self._syn(middlebox, 6667)  # IRC completes the pattern
        host = int(ip("192.168.1.1"))
        assert middlebox.state.maps["host_state"][(host,)] == 7
        assert host in middlebox.externs.log

    def test_unestablished_data_dropped_on_switch(self):
        middlebox = build_gallium("trojan")
        stray = make_tcp_packet("6.6.6.6", "10.0.0.5", 1, 80, payload=b"x")
        journey = middlebox.process_packet(stray, 1)
        assert journey.verdict == "drop"
        assert journey.fast_path

    def test_plain_data_fast_path(self):
        middlebox = build_gallium("trojan")
        self._syn(middlebox, 5001)
        data = make_tcp_packet("192.168.1.1", "10.0.0.5", 6001, 5001,
                               payload=b"bulk")
        journey = middlebox.process_packet(data, 1)
        assert journey.fast_path


class TestBaselineRuntime:
    def test_counts_instructions(self):
        baseline = build_baseline("firewall")
        result = baseline.process_packet(
            make_tcp_packet("192.168.1.1", "10.0.0.1", 1000, 80), 1
        )
        assert result.verdict == "send"
        assert result.instructions > 5
        assert baseline.instructions_total == result.instructions
