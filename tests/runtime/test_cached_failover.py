"""Tests for the cache + failover composition.

The composed deployment keeps bounded FIFO caches on *both* halves of an
active-standby pair.  The load-bearing claims pinned here:

* the per-packet register checkpoint still runs (the cached
  ``process_packet`` does not call ``super()``, so the composition must
  re-state it explicitly — a silent regression here loses
  switch-authoritative registers across a primary crash);
* promotion rebuilds the bounded cache view and the FIFO eviction order
  on the promoted switch from the server's authoritative copy, and
  eviction keeps working afterwards;
* the failover-aware fault oracle accepts ``cached + failover`` end to
  end, mirroring the promotion resync onto its cached reference.
"""

from repro.difftest.oracle import StreamSpec
from repro.faults.injector import FaultInjector
from repro.faults.oracle import run_fault_oracle
from repro.faults.plan import FaultPlan, PrimarySwitchCrash
from repro.net.addresses import ip
from repro.runtime.cached_failover import (
    CachedFailoverDeployment,
    build_cached_failover,
)
from repro.runtime.degradation import DegradationPolicy
from repro.runtime.deployment import compile_middlebox
from repro.workloads.packets import make_tcp_packet
from tests.conftest import get_bundle
from tests.faults.test_cached_faults import MAP_SOURCE


def build(cache_entries=2, plan=None, injector_seed=0, detection="phi"):
    bundle = get_bundle("minilb")
    partition_plan, program = compile_middlebox(bundle.lowered)
    policy = DegradationPolicy()
    injector = None
    if plan is not None:
        injector = FaultInjector(
            plan, seed=injector_seed,
            max_attempts=policy.retry.max_attempts,
        )
    box = CachedFailoverDeployment(
        partition_plan, program, cache_entries=cache_entries,
        config=bundle.config, policy=policy, injector=injector,
        detection=detection,
    )
    box.install()
    box.state.vectors["backends"] = [
        int(ip("10.0.1.1")), int(ip("10.0.1.2")),
    ]
    box.sync_all_state()
    return box


def drive(box, count, start=0):
    journeys = []
    for index in range(start, start + count):
        packet = make_tcp_packet(
            f"10.6.0.{index + 1}", "10.0.0.100", 1000 + index, 80
        )
        journeys.append(box.process_packet(packet, 1))
        journeys.extend(box.drain_deferred())
    return journeys


class TestComposition:
    def test_install_bounds_active_and_replicates_standby_in_full(self):
        box = build(cache_entries=2)
        drive(box, 10)
        assert box.switch_cache_occupancy()["map"] <= 2
        assert box.stats.evictions > 0
        # Evictions are switch-local maintenance: the standby keeps the
        # full replicated copy, ready to be bounded at promotion.
        authoritative = len(box.state.maps["map"])
        assert authoritative > 2
        assert box.standby.tables["map"].entry_count == authoritative

    def test_register_checkpoint_runs_per_packet(self, monkeypatch):
        box = build(cache_entries=4)
        calls = []
        monkeypatch.setattr(
            box, "_checkpoint_registers", lambda: calls.append(1)
        )
        drive(box, 3)
        assert len(calls) >= 3

    def test_promotion_rebuilds_bounded_cache_and_fifo(self):
        crash = FaultPlan((PrimarySwitchCrash(at_packet=4, promotion_window=2),))
        box = build(cache_entries=2, plan=crash)
        drive(box, 14)  # φ detection extends the window past the nominal 2
        assert box.promoted
        assert box.standby is None
        # The promoted switch carries a well-formed bounded cache: within
        # bound, FIFO tracking exactly the installed entries, every entry
        # backed by the authoritative map.
        occupancy = box.switch_cache_occupancy()["map"]
        assert occupancy <= 2
        installed = box.switch.tables["map"].snapshot()
        assert set(box._fifo["map"]) == set(installed)
        for keys, value in installed.items():
            assert box.state.maps["map"][keys] == value

    def test_eviction_keeps_working_after_promotion(self):
        crash = FaultPlan((PrimarySwitchCrash(at_packet=3, promotion_window=1),))
        box = build(cache_entries=2, plan=crash)
        drive(box, 12)  # φ detection extends the window past the nominal 1
        assert box.promoted
        evictions_at_promotion = box.stats.evictions
        drive(box, 8, start=12)
        assert box.switch_cache_occupancy()["map"] <= 2
        assert box.stats.evictions > evictions_at_promotion

    def test_hot_flow_hits_cache_after_promotion(self):
        crash = FaultPlan((PrimarySwitchCrash(at_packet=3, promotion_window=1),))
        box = build(cache_entries=4, plan=crash)
        drive(box, 12)  # φ detection extends the window past the nominal 1
        assert box.promoted
        flow = lambda: make_tcp_packet("10.6.9.1", "10.0.0.100", 9000, 80)
        first = box.process_packet(flow(), 1)
        assert first.punted  # miss refills the promoted switch's cache
        box.drain_deferred()
        second = box.process_packet(flow(), 1)
        assert second.fast_path
        assert second.verdict == "send"

    def test_builder_helper(self):
        box = build_cached_failover("minilb", cache_entries=3)
        assert isinstance(box, CachedFailoverDeployment)
        assert box.standby is not None


class TestComposedOracle:
    STREAM = StreamSpec(seed=7, count=30)

    def test_oracle_accepts_cached_failover(self):
        result = run_fault_oracle(
            MAP_SOURCE, self.STREAM, FaultPlan(),
            cached=True, failover=True, cache_entries=2,
        )
        assert result.outcome.value == "clean", (
            result.violation or result.error
        )
        assert result.cached_mode and result.failover_mode

    def test_oracle_converges_through_promotion(self):
        plan = FaultPlan(faults=(
            PrimarySwitchCrash(at_packet=8, promotion_window=3),
        ))
        result = run_fault_oracle(
            MAP_SOURCE, self.STREAM, plan,
            cached=True, failover=True, cache_entries=2,
        )
        assert result.outcome.value in ("clean", "degraded_ok"), (
            result.violation or result.error
        )
        assert result.promoted
