"""The punt-path server pool: validation, equivalence, blast radius.

Three layers of guarantees:

* construction fails loudly on a bad pool shape (``--servers N`` with
  ``N < 1``, duplicate member names) — before any deployment machinery
  spins up;
* with no faults, a pooled deployment is byte-identical to the
  single-server one (the pool only spreads punts, it never changes
  semantics);
* a member crash stalls exactly the flows that member owns, live
  migration re-homes them, and full fallback never engages while a
  member survives.
"""

import pytest

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, PoolMemberCrash, PoolMemberDrain
from repro.runtime.degradation import DegradationPolicy
from repro.runtime.deployment import GalliumMiddlebox, compile_middlebox
from repro.runtime.pool import (
    PooledDeployment,
    default_member_names,
    validate_member_names,
)
from tests.faults.test_degradation import FAULTBOX
from repro.workloads.packets import make_tcp_packet

COMPILED = compile_middlebox(FAULTBOX)


def deploy_pool(servers=3, plan=None, policy=None, seed=0, **kwargs):
    partition, program = COMPILED
    policy = policy or DegradationPolicy()
    injector = None
    if plan is not None:
        injector = FaultInjector(
            plan, seed=0, max_attempts=policy.retry.max_attempts
        )
    middlebox = PooledDeployment(
        partition, program, servers=servers, port_pairs={1: 2, 2: 1},
        seed=seed, policy=policy, injector=injector, **kwargs,
    )
    middlebox.install()
    return middlebox


def deploy_single(seed=0):
    partition, program = COMPILED
    middlebox = GalliumMiddlebox(
        partition, program, port_pairs={1: 2, 2: 1}, seed=seed,
        policy=DegradationPolicy(),
    )
    middlebox.install()
    return middlebox


def packet(host: int, port: int = 10):
    return make_tcp_packet(f"10.1.0.{host}", "9.9.9.9", port, 80)


class TestValidation:
    def test_zero_servers_rejected(self):
        with pytest.raises(ValueError, match="at least one member"):
            default_member_names(0)

    def test_negative_servers_rejected(self):
        with pytest.raises(ValueError, match="servers=-2"):
            default_member_names(-2)

    def test_non_integer_servers_rejected(self):
        with pytest.raises(ValueError):
            default_member_names(True)

    def test_duplicate_member_names_rejected(self):
        with pytest.raises(ValueError, match="srv1"):
            validate_member_names(["srv0", "srv1", "srv1"])

    def test_empty_member_name_rejected(self):
        with pytest.raises(ValueError):
            validate_member_names(["srv0", ""])

    def test_deployment_rejects_bad_pool_before_install(self):
        partition, program = COMPILED
        with pytest.raises(ValueError):
            PooledDeployment(partition, program, servers=0,
                             port_pairs={1: 2, 2: 1})
        with pytest.raises(ValueError):
            PooledDeployment(partition, program,
                             member_names=["a", "a"],
                             port_pairs={1: 2, 2: 1})


class TestFaultFreeEquivalence:
    def test_pooled_matches_single_server_byte_exactly(self):
        pooled = deploy_pool(servers=3)
        single = deploy_single()
        for index in range(40):
            pkt = packet(index % 13 + 1, port=10 + index % 5)
            a = pooled.process_packet(pkt.copy(), 1)
            b = single.process_packet(pkt.copy(), 1)
            assert a.verdict == b.verdict, f"packet {index}"
            assert (
                [(p, f.pack()) for p, f in a.emitted]
                == [(p, f.pack()) for p, f in b.emitted]
            ), f"packet {index}"
        assert pooled.state.maps == single.state.maps
        assert pooled.state.scalars == single.state.scalars
        assert (
            pooled.switch.tables["conn"].snapshot()
            == single.switch.tables["conn"].snapshot()
        )

    def test_punts_spread_across_members(self):
        pooled = deploy_pool(servers=3)
        for host in range(1, 40):
            pooled.process_packet(packet(host), 1)
        stats = pooled.pool_stats()
        served = [m["punts_served"] for m in stats["members"].values()]
        assert sum(served) == 39
        assert sum(1 for count in served if count > 0) >= 2


class TestMembershipChanges:
    def test_drain_unknown_member_rejected(self):
        pooled = deploy_pool(servers=2)
        with pytest.raises(ValueError, match="unknown member"):
            pooled.drain_member("ghost")

    def test_drain_last_member_rejected(self):
        pooled = deploy_pool(servers=2)
        pooled.drain_member("srv0")
        with pytest.raises(ValueError, match="last pool member"):
            pooled.drain_member("srv1")

    def test_join_duplicate_rejected(self):
        pooled = deploy_pool(servers=2)
        with pytest.raises(ValueError, match="already registered"):
            pooled.join_member("srv1")
        pooled.drain_member("srv0")
        with pytest.raises(ValueError, match="already registered"):
            pooled.join_member("srv0")

    def test_drain_migrates_and_serving_continues(self):
        pooled = deploy_pool(servers=3)
        for host in range(1, 30):
            pooled.process_packet(packet(host), 1)
        drained = pooled.drain_member("srv1")
        assert drained >= 0
        stats = pooled.pool_stats()
        assert stats["retired"] == ["srv1"]
        assert stats["migrations"] == 1
        # Repeat packets for every flow fast-path; new flows still punt.
        for host in range(1, 35):
            journey = pooled.process_packet(packet(host), 1)
            assert not journey.degraded
        metrics = pooled.telemetry.metrics
        assert metrics.counter_value("pool.member_drains") == 1

    def test_join_prices_migration_and_rebalances(self):
        pooled = deploy_pool(servers=2)
        for host in range(1, 20):
            pooled.process_packet(packet(host), 1)
        before_us = pooled.telemetry.clock.now_us
        pooled.join_member("srv9")
        assert pooled.telemetry.clock.now_us > before_us
        stats = pooled.pool_stats()
        assert "srv9" in stats["members"]
        assert stats["members"]["srv9"]["slots"] > 0
        assert (
            pooled.telemetry.metrics.counter_value("pool.member_joins") == 1
        )
        # Semantics survive the rebalance: repeats stay consistent.
        for host in range(1, 25):
            journey = pooled.process_packet(packet(host), 1)
            assert not journey.degraded


class TestCrashBlastRadius:
    def find_flows(self, pooled, member_name, want_owned=8, want_other=8):
        """Hosts whose flows the selector pins to (and away from)
        ``member_name``, via the deployment's own routing."""
        owned, other = [], []
        table = pooled.pool.selector.member_table()
        for host in range(1, 200):
            pkt = packet(host)
            slot = pooled.pool.selector.slot_for_packet(pkt)
            (owned if table[slot] == member_name else other).append(host)
            if len(owned) >= want_owned and len(other) >= want_other:
                break
        return owned[:want_owned], other[:want_other]

    def test_crash_stalls_only_owned_flows(self):
        plan = FaultPlan((
            PoolMemberCrash(member="srv0", at_packet=0,
                            migration_window=100),
        ))
        pooled = deploy_pool(
            servers=3, plan=plan,
            policy=DegradationPolicy(punt_queue_depth=64),
        )
        owned, other = self.find_flows(pooled, "srv0")
        assert owned and other
        index = 0
        for host in owned:
            journey = pooled.process_packet(packet(host), 1)
            assert journey.queued, f"owned flow {host} was not stalled"
            index += 1
        for host in other:
            journey = pooled.process_packet(packet(host), 1)
            assert not journey.degraded and not journey.queued, (
                f"unowned flow {host} was affected by the crash"
            )
            index += 1
        assert pooled.accounting.fallback_packets == 0

    def test_migration_recovers_and_degrades_nothing_else(self):
        plan = FaultPlan((
            PoolMemberCrash(member="srv0", at_packet=10,
                            migration_window=5),
        ))
        pooled = deploy_pool(
            servers=3, plan=plan,
            policy=DegradationPolicy(punt_queue_depth=64),
        )
        hosts = [index % 17 + 1 for index in range(40)]
        for host in hosts:
            pooled.process_packet(packet(host), 1)
        pooled.recover()
        assert pooled.pool_stats()["retired"] == ["srv0"]
        assert (
            pooled.telemetry.metrics.counter_value("pool.migrations") == 1
        )
        # Every flow installed exactly once (queued punts drained after
        # the migration, so serve *order* may differ from arrival order
        # — the byte-exact replay check lives in the fault oracle), the
        # counter handed out each value once, and the switch's
        # replicated copy agrees with the server's byte-exactly.
        unique = set(hosts)
        assert len(pooled.state.maps["conn"]) == len(unique)
        assert sorted(pooled.state.maps["conn"].values()) == list(
            range(1, len(unique) + 1)
        )
        assert (
            pooled.switch.tables["conn"].snapshot()
            == pooled.state.maps["conn"]
        )
        # Every flow's state survived the migration: all now fast-path.
        for host in sorted(unique):
            journey = pooled.process_packet(packet(host), 1)
            assert journey.fast_path and not journey.degraded
        assert pooled.accounting.fallback_packets == 0

    def test_queue_overflow_degrades_with_pool_reason(self):
        plan = FaultPlan((
            PoolMemberCrash(member="srv0", at_packet=0,
                            migration_window=500),
        ))
        pooled = deploy_pool(
            servers=2, plan=plan,
            policy=DegradationPolicy(punt_queue_depth=1),
        )
        owned, _other = self.find_flows(pooled, "srv0", want_owned=4,
                                        want_other=0)
        degraded = []
        for host in owned:
            journey = pooled.process_packet(packet(host), 1)
            if journey.degraded:
                degraded.append(journey.degraded_reason)
        assert degraded and set(degraded) == {"pool_member_down"}
        assert pooled.accounting.by_reason["pool_member_down"] == len(
            degraded
        )
