"""Tests for the Click substrate: Packet, HashMap, Vector, Element."""

import pytest
from hypothesis import given, strategies as st

from repro.click import Element, HashMap, Packet, PacketAction, Vector
from repro.click.annotations import annotation_for
from repro.net.addresses import ip
from repro.net.headers import EthernetHeader, Ipv4Header, TcpHeader
from repro.net.packet import RawPacket


def make_packet():
    raw = RawPacket.make_tcp(
        EthernetHeader(),
        Ipv4Header(saddr=ip("1.1.1.1"), daddr=ip("2.2.2.2")),
        TcpHeader(sport=5, dport=6),
        b"pp",
    )
    return Packet(raw)


class TestPacket:
    def test_header_accessors(self):
        packet = make_packet()
        assert packet.network_header().saddr == ip("1.1.1.1")
        assert packet.transport_header().sport == 5
        assert packet.tcp_header().dport == 6
        assert packet.udp_header() is None
        assert packet.payload() == b"pp"
        assert packet.length() == 14 + 20 + 20 + 2

    def test_send_sets_action(self):
        packet = make_packet()
        packet.send()
        assert packet.action is PacketAction.SEND

    def test_send_to_records_port(self):
        packet = make_packet()
        packet.send_to(4)
        assert packet.egress_port == 4

    def test_drop_sets_action(self):
        packet = make_packet()
        packet.drop()
        assert packet.action is PacketAction.DROP

    def test_double_verdict_rejected(self):
        packet = make_packet()
        packet.send()
        with pytest.raises(RuntimeError):
            packet.drop()


class TestHashMap:
    def test_find_missing_returns_none(self):
        assert HashMap().find("k") is None

    def test_insert_find(self):
        table = HashMap()
        table.insert(("a", 1), 42)
        assert table.find(("a", 1)) == 42

    def test_insert_overwrites(self):
        table = HashMap()
        table.insert("k", 1)
        table.insert("k", 2)
        assert table.find("k") == 2
        assert table.size() == 1

    def test_erase(self):
        table = HashMap()
        table.insert("k", 1)
        assert table.erase("k")
        assert not table.erase("k")
        assert table.find("k") is None

    def test_capacity_enforced(self):
        table = HashMap(max_entries=2)
        table.insert("a", 1)
        table.insert("b", 2)
        with pytest.raises(OverflowError):
            table.insert("c", 3)
        # Overwriting existing keys is always allowed.
        table.insert("a", 9)
        assert table.find("a") == 9

    def test_contains_and_len(self):
        table = HashMap()
        table.insert("x", 0)
        assert "x" in table
        assert table.contains("x")
        assert len(table) == 1

    @given(st.dictionaries(st.integers(), st.integers(), max_size=50))
    def test_behaves_like_dict(self, model):
        """Property: HashMap is observationally a bounded dict."""
        table = HashMap()
        for key, value in model.items():
            table.insert(key, value)
        assert table.snapshot() == model
        for key, value in model.items():
            assert table.find(key) == value


class TestVector:
    def test_push_and_index(self):
        vector = Vector([1, 2])
        vector.push_back(3)
        assert vector[2] == 3
        assert vector.size() == 3

    def test_bounds_checked(self):
        vector = Vector([1])
        with pytest.raises(IndexError):
            vector.at(1)
        with pytest.raises(IndexError):
            vector.at(-1)

    def test_set(self):
        vector = Vector([1, 2])
        vector[1] = 9
        assert vector.snapshot() == [1, 9]

    def test_pop_back(self):
        vector = Vector([1, 2])
        assert vector.pop_back() == 2
        with pytest.raises(IndexError):
            Vector().pop_back()

    def test_empty_and_clear(self):
        vector = Vector([1])
        assert not vector.empty()
        vector.clear()
        assert vector.empty()


class _CountingElement(Element):
    def process(self, packet):
        if packet.network_header().daddr == ip("2.2.2.2"):
            packet.send()
        else:
            packet.drop()


class TestElement:
    def test_push_counts(self):
        element = _CountingElement()
        element.push(make_packet())
        assert (element.packets_seen, element.packets_sent) == (1, 1)

    def test_missing_verdict_raises(self):
        class Lazy(Element):
            def process(self, packet):
                pass

        with pytest.raises(RuntimeError):
            Lazy().push(make_packet())

    def test_reset_counters(self):
        element = _CountingElement()
        element.push(make_packet())
        element.reset_counters()
        assert element.packets_seen == 0


class TestAnnotations:
    def test_find_is_table_lookup(self):
        ann = annotation_for("HashMap::find")
        assert ann.p4_impl == "table_lookup"
        assert not ann.mutates_global

    def test_insert_is_server_side(self):
        ann = annotation_for("HashMap::insert")
        assert ann.p4_impl is None
        assert ann.mutates_global
        assert "self" in ann.effect.writes

    def test_header_accessor_returns_pointer(self):
        ann = annotation_for("Packet::network_header")
        assert ann.effect.returns_pointer_to == "packet.ip"

    def test_payload_not_offloadable(self):
        assert annotation_for("Packet::payload").p4_impl is None

    def test_unknown_api_is_none(self):
        assert annotation_for("Packet::frobnicate") is None
