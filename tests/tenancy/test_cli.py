"""Tests for ``python -m repro tenancy``."""

import json

import pytest

from repro.cli import main


class TestTenancyCommand:
    def test_default_trio_passes(self, capsys):
        assert main(["tenancy", "--packets", "25"]) == 0
        out = capsys.readouterr().out
        assert "isolation: PASS" in out
        assert "shared channel:" in out
        for name in ("minilb", "mazunat", "lb"):
            assert name in out

    def test_admit_only_skips_the_workload(self, capsys):
        assert main(["tenancy", "--admit-only"]) == 0
        out = capsys.readouterr().out
        assert "isolation" not in out
        assert "admit minilb" in out

    def test_json_payload_validates_against_schema(self, capsys):
        assert main(["tenancy", "--packets", "10", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        from repro.telemetry.schema import check

        check(payload, "tenancy", what="tenancy report")  # must not raise
        assert payload["isolation"]["ok"] is True
        assert payload["packets_per_tenant"] == 10
        # Per-tenant windowed series ride along in the JSON report.
        assert set(payload["series"]) == {"minilb", "mazunat", "lb"}
        for name, hub in payload["series"].items():
            assert hub["tenant"] == name
            assert "control_plane.rpc_queue_wait_us" in hub["series"]

    def test_series_window_zero_disables_windowing(self, capsys):
        assert main([
            "tenancy", "--packets", "10", "--json", "--series-window", "0",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["series"] == {}

    def test_over_budget_set_fails_with_diagnostic(self, capsys):
        code = main([
            "tenancy", "minilb", "mazunat", "lb", "firewall", "proxy",
            "--admit-only",
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "proxy" in out
        assert "table_slots" in out
        assert "TEN001" in out

    def test_budget_overrides_apply(self, capsys):
        code = main([
            "tenancy", "minilb", "--admit-only",
            "--budget-memory", "1024",
        ])
        assert code == 1
        out = capsys.readouterr().out
        assert "memory_bytes" in out

    def test_unknown_tenant_rejected(self):
        with pytest.raises(SystemExit, match="not a bundled"):
            main(["tenancy", "nope"])
