"""Tests for the shared-switch resource allocator."""

import dataclasses
from itertools import permutations

import pytest

from repro.tenancy import (
    SharedSwitchBudget,
    SwitchResourceAllocator,
    build_tenant_specs,
)

#: The calibrated co-residency set: fits the default budget together.
TRIO = ["minilb", "mazunat", "lb"]
ALL_SIX = ["minilb", "mazunat", "lb", "firewall", "proxy", "trojan"]


def admit(names, budget=None):
    allocator = SwitchResourceAllocator(budget or SharedSwitchBudget())
    return allocator.admit(build_tenant_specs(names))


class TestAdmission:
    def test_trio_admitted_under_default_budget(self):
        report = admit(TRIO)
        assert report.ok
        assert [p.name for p in report.admitted] == sorted(TRIO)
        assert report.rejected == []

    def test_placements_carve_disjoint_memory(self):
        report = admit(TRIO)
        spans = sorted(
            (p.memory_offset, p.memory_offset + p.memory_bytes)
            for p in report.admitted
        )
        for (_, prev_end), (start, _) in zip(spans, spans[1:]):
            assert start >= prev_end
        budget = report.budget
        assert spans[-1][1] <= budget.memory_bytes

    def test_placements_respect_pipeline_depth(self):
        report = admit(TRIO)
        for placement in report.admitted:
            assert placement.stage_first >= 1 + report.budget.dispatch_stages
            assert placement.stage_last <= report.budget.pipeline_depth

    def test_vlans_and_port_blocks_are_per_tenant(self):
        report = admit(TRIO)
        vlans = [p.vlan for p in report.admitted]
        bases = [p.port_base for p in report.admitted]
        assert len(set(vlans)) == len(vlans)
        assert len(set(bases)) == len(bases)

    def test_over_budget_rejection_names_resource_and_tenant(self):
        report = admit(ALL_SIX)
        assert not report.ok
        rejected = {r.name: r for r in report.rejected}
        assert "proxy" in rejected and "trojan" in rejected
        for rejection in rejected.values():
            assert rejection.name in rejection.message
            assert rejection.resource in rejection.message
            assert "remain" in rejection.message

    def test_rejection_does_not_block_later_tenants(self):
        # Admission is by sorted name; rejecting one tenant must not
        # poison tenants after it in the canonical order.
        report = admit(ALL_SIX)
        admitted = {p.name for p in report.admitted}
        assert "trojan" not in admitted  # sorts last, rejected on PHV
        assert admitted == {"firewall", "lb", "mazunat", "minilb"}

    def test_duplicate_tenant_names_refused(self):
        specs = build_tenant_specs(["minilb"])
        with pytest.raises(ValueError, match="duplicate"):
            SwitchResourceAllocator(SharedSwitchBudget()).admit(
                specs + specs
            )

    def test_tiny_budget_rejects_on_memory(self):
        report = admit(TRIO, budget=SharedSwitchBudget.tiny())
        assert not report.ok
        assert any(
            r.resource == "memory_bytes" for r in report.rejected
        )


class TestOrderIndependence:
    """Admission is a function of the tenant *set*, not the order the
    specs arrive in: the allocator canonicalizes internally, so no
    tenant can game admission by submitting first."""

    def test_verdict_set_invariant_under_input_order(self):
        specs = build_tenant_specs(["minilb", "mazunat", "lb", "proxy"])
        allocator = SwitchResourceAllocator(SharedSwitchBudget())
        baseline = allocator.admit(list(specs))
        base_admitted = {p.name for p in baseline.admitted}
        base_rejected = {
            (r.name, r.resource) for r in baseline.rejected
        }
        for order in permutations(specs):
            report = allocator.admit(list(order))
            assert {p.name for p in report.admitted} == base_admitted
            assert {
                (r.name, r.resource) for r in report.rejected
            } == base_rejected
            # Placements are identical too — same offsets, same VLANs.
            assert report.to_dict() == baseline.to_dict()

    def test_totals_match_placements(self):
        report = admit(TRIO)
        totals = report.totals()
        assert totals["memory_bytes"] == sum(
            p.memory_bytes for p in report.admitted
        )
        assert totals["phv_bytes"] >= max(
            p.phv_bytes for p in report.admitted
        )


class TestBudget:
    def test_defaults_are_tofino_like(self):
        budget = SharedSwitchBudget()
        assert budget.memory_bytes == 16 * 1024 * 1024
        assert budget.pipeline_depth == 20
        assert budget == SharedSwitchBudget.tofino_like()

    def test_to_dict_round_trip(self):
        budget = SharedSwitchBudget.tiny()
        assert SharedSwitchBudget(**budget.to_dict()) == budget

    def test_single_tenant_equals_solo_constraints(self):
        """One tenant on the shared switch sees (at least) the solo
        partitioner's resource envelope: the trio members all admit
        individually."""
        for name in TRIO:
            report = admit([name])
            assert report.ok, report.format()
