"""Tenant-scoped fault injection: plan scoping, per-tenant injector
seeds, the fault-isolation oracle, and the tenancy fault campaign.

The property under test is the multi-tenant switch's blast-radius
promise: a punt-link fault carved to one tenant degrades that tenant
*exactly* as its solo deployment would degrade under the identical
scoped plan and seed, and leaves every co-resident byte-exact against
its clean solo run.
"""

import pytest

from repro.faults.plan import (
    FaultPlan,
    LinkFault,
    TENANCY_FAULT_KINDS,
    TenantLinkFault,
)
from repro.tenancy.deployment import MultiTenantDeployment
from repro.tenancy.faults import (
    generate_tenant_plan,
    run_fault_isolation_oracle,
    run_tenancy_fault_campaign,
    scoped_plan,
    tenant_injector_seed,
)
from repro.tenancy.oracle import build_tenant_specs

NAMES = ["minilb", "mazunat", "lb"]


def tenant_plan(tenant="mazunat", probability=0.5, start=0, stop=None):
    return FaultPlan((TenantLinkFault(
        tenant=tenant, direction="to_server", mode="loss",
        probability=probability, start=start, stop=stop,
    ),))


class TestPlanScoping:
    def test_tenant_link_fault_round_trips(self):
        plan = tenant_plan(stop=9)
        restored = FaultPlan.from_dict(plan.to_dict())
        assert restored == plan
        assert restored.faults[0].tenant == "mazunat"
        assert "tenant_link" in TENANCY_FAULT_KINDS
        assert "mazunat" in plan.describe()

    def test_scoped_plan_projects_one_tenant(self):
        plan = FaultPlan((
            TenantLinkFault(tenant="mazunat", probability=0.5),
            TenantLinkFault(tenant="lb", mode="corrupt", probability=0.2),
        ))
        projected = scoped_plan(plan, "mazunat")
        (fault,) = projected.faults
        assert isinstance(fault, LinkFault)
        assert fault.probability == 0.5
        assert scoped_plan(plan, "minilb").faults == ()

    def test_unscoped_kinds_rejected(self):
        plan = FaultPlan((LinkFault(),))
        with pytest.raises(ValueError, match="tenant-scoped"):
            scoped_plan(plan, "mazunat")

    def test_as_link_fault_preserves_schedule(self):
        fault = TenantLinkFault(tenant="lb", direction="to_switch",
                                mode="corrupt", probability=0.3,
                                start=4, stop=11)
        link = fault.as_link_fault()
        assert (link.direction, link.mode, link.probability) == (
            "to_switch", "corrupt", 0.3
        )
        assert (link.start, link.stop) == (4, 11)

    def test_injector_seeds_are_per_tenant(self):
        seeds = {tenant_injector_seed(7, name) for name in NAMES}
        assert len(seeds) == len(NAMES)
        assert tenant_injector_seed(7, "lb") == tenant_injector_seed(7, "lb")


class TestDeploymentWiring:
    def test_only_the_faulted_tenant_gets_an_injector(self):
        specs = build_tenant_specs(NAMES)
        shared = MultiTenantDeployment(
            specs, fault_plan=tenant_plan("mazunat"), injector_seed=3,
        )
        injectors = {
            t.name: t.middlebox.injector for t in shared.tenants
        }
        assert injectors["mazunat"] is not None
        assert injectors["minilb"] is None
        assert injectors["lb"] is None

    def test_no_plan_means_no_injectors(self):
        shared = MultiTenantDeployment(build_tenant_specs(NAMES))
        assert all(t.middlebox.injector is None for t in shared.tenants)


class TestIsolationOracle:
    def test_faulted_tenant_isolated_byte_exactly(self):
        result = run_fault_isolation_oracle(
            NAMES, tenant_plan("mazunat", probability=0.6),
            packets_per_tenant=40, injector_seed=1,
        )
        assert result.ok, [
            (v.name, v.mismatches) for v in result.verdicts
        ]
        # The plan must actually bite, or the test proves nothing.
        assert sum(result.injected.values()) > 0

    def test_clean_plan_still_isolates(self):
        result = run_fault_isolation_oracle(
            NAMES, FaultPlan(), packets_per_tenant=30,
        )
        assert result.ok
        assert result.injected == {}


class TestCampaign:
    def test_generated_plans_target_one_tenant(self):
        import random

        rng = random.Random(5)
        for _ in range(10):
            plan = generate_tenant_plan(rng, NAMES, 40)
            targets = {f.tenant for f in plan.faults}
            assert len(targets) == 1
            assert targets <= set(NAMES)
            assert all(f.kind == "tenant_link" for f in plan.faults)

    def test_campaign_scenarios_all_isolate(self):
        scenarios = run_tenancy_fault_campaign(
            NAMES, scenarios=4, packets_per_tenant=40, seed=0,
        )
        assert len(scenarios) == 4
        assert all(s.ok for s in scenarios), [
            (s.index, s.mismatches) for s in scenarios
        ]
        # Across the sweep the injectors must have fired somewhere.
        assert any(sum(s.injected.values()) > 0 for s in scenarios)

    def test_campaign_is_deterministic(self):
        def run():
            return [
                s.to_dict() for s in run_tenancy_fault_campaign(
                    NAMES, scenarios=2, packets_per_tenant=30, seed=9,
                )
            ]

        assert run() == run()
