"""Tests for the multi-tenant switch model and deployment."""

import pytest

from repro.tenancy import SharedSwitchBudget, build_tenant_specs
from repro.tenancy.deployment import (
    VLAN_KEY,
    MultiTenantDeployment,
    TenantDispatchError,
)
from repro.workloads.iperf import IperfWorkload, middlebox_stream

TRIO = ["minilb", "mazunat", "lb"]


def build(names=TRIO, **kwargs):
    deployment = MultiTenantDeployment(build_tenant_specs(names), **kwargs)
    deployment.install()
    return deployment


def streams(deployment):
    return {
        t.name: middlebox_stream(t.name, IperfWorkload())
        for t in deployment.tenants
    }


class TestDispatch:
    def test_port_blocks_route_to_owning_tenant(self):
        deployment = build()
        stream_packets = {
            t.name: next(middlebox_stream(t.name, IperfWorkload()))
            for t in deployment.tenants
        }
        for index, tenant in enumerate(deployment.tenants):
            packet, local = stream_packets[tenant.name]
            owner, resolved = deployment.switch.dispatch(
                packet, tenant.placement.port_base + local
            )
            assert owner.name == tenant.name
            assert resolved == local

    def test_vlan_tag_wins_over_port(self):
        deployment = build()
        last = deployment.tenants[-1]
        packet, _ = next(middlebox_stream(last.name, IperfWorkload()))
        packet.metadata[VLAN_KEY] = last.placement.vlan
        # Port 1 belongs to tenant 0; the VLAN tag overrides it.
        owner, local = deployment.switch.dispatch(packet, 1)
        assert owner.name == last.name
        assert local == 1

    def test_unowned_port_and_vlan_raise(self):
        deployment = build()
        packet, _ = next(middlebox_stream("minilb", IperfWorkload()))
        with pytest.raises(TenantDispatchError, match="outside every"):
            deployment.switch.dispatch(packet, 999)
        packet.metadata[VLAN_KEY] = 9999
        with pytest.raises(TenantDispatchError, match="no tenant owns"):
            deployment.switch.dispatch(packet, 1)

    def test_egress_ports_translated_to_global(self):
        deployment = build()
        for tenant in deployment.tenants:
            base = tenant.placement.port_base
            stream = middlebox_stream(tenant.name, IperfWorkload())
            packet, local = next(stream)
            name, journey = deployment.process_packet(packet, base + local)
            assert name == tenant.name
            for port, _frame in journey.emitted:
                assert base < port <= base + 4


class TestNamespaces:
    def test_tables_and_registers_are_tenant_prefixed(self):
        deployment = build()
        for key in deployment.switch.tables:
            tenant_name, _, table_name = key.partition(".")
            assert tenant_name in {t.name for t in deployment.tenants}
            assert table_name
        # Each tenant's objects are distinct instances — no aliasing.
        tables = list(deployment.switch.tables.values())
        assert len(tables) == len({id(t) for t in tables})

    def test_counters_tagged_by_tenant(self):
        deployment = build()
        deployment.run_workload(streams(deployment), 5)
        counters = deployment.switch.counters()
        assert set(counters) == {t.name for t in deployment.tenants}


class TestSharedChannel:
    def test_concurrent_tenants_see_positive_queue_wait(self):
        """The satellite regression: round-robin interleaving across
        tenants puts every submitter behind the others' in-flight RPCs —
        strictly positive queue wait for all of them."""
        deployment = build()
        deployment.run_workload(streams(deployment), 60)
        stats = deployment.channel_stats()
        assert set(stats) == {t.name for t in deployment.tenants}
        for tenant, entry in stats.items():
            assert entry["rpc_count"] > 0, tenant
            assert entry["queue_wait_total_us"] > 0.0, tenant

    def test_serial_solo_tenant_never_queues(self):
        """A single tenant on the shared switch is a serial submitter:
        its clock always outruns its own RPCs, so the wait stays zero
        (queueing is purely a co-residency phenomenon)."""
        deployment = build(["minilb"])
        deployment.run_workload(streams(deployment), 30)
        (entry,) = deployment.channel_stats().values()
        assert entry["rpc_count"] > 0
        assert entry["queue_wait_total_us"] == 0.0


class TestWorkload:
    def test_round_robin_bounds_each_tenant(self):
        deployment = build()
        journeys = deployment.run_workload(streams(deployment), 7)
        assert set(journeys) == {t.name for t in deployment.tenants}
        for name, tenant_journeys in journeys.items():
            assert len(tenant_journeys) == 7, name

    def test_rejected_tenant_not_deployed(self):
        deployment = MultiTenantDeployment(
            build_tenant_specs(TRIO + ["firewall", "proxy"])
        )
        names = {t.name for t in deployment.tenants}
        assert "proxy" not in names
        assert names == {"firewall", "lb", "mazunat", "minilb"}
        assert not deployment.admission.ok
