"""Tests for the tenant-isolation oracle and the combined-artifact lint."""

import dataclasses

from repro.tenancy import SharedSwitchBudget, build_tenant_specs
from repro.tenancy.allocator import SwitchResourceAllocator
from repro.tenancy.lint import verify_combined
from repro.tenancy.oracle import run_isolation_oracle

TRIO = ["minilb", "mazunat", "lb"]


class TestIsolationOracle:
    def test_trio_is_isolated_byte_exactly(self):
        result = run_isolation_oracle(TRIO, packets_per_tenant=60)
        assert result.ok, result.format()
        assert {v.name for v in result.verdicts} == set(TRIO)
        for verdict in result.verdicts:
            assert verdict.packets == 60
            assert verdict.mismatches == []

    def test_queue_wait_is_the_only_sanctioned_difference(self):
        result = run_isolation_oracle(TRIO, packets_per_tenant=60)
        # Co-residency costs every tenant real output-commit latency...
        assert all(
            v.extra_sync_wait_us > 0.0 for v in result.verdicts
        ), result.format()
        # ...and nothing else (verdicts, egress bytes, final state equal).
        assert result.ok

    def test_result_dict_shape(self):
        result = run_isolation_oracle(TRIO, packets_per_tenant=10)
        data = result.to_dict()
        assert data["ok"] is True
        assert {t["name"] for t in data["tenants"]} == set(TRIO)
        assert set(result.channel) == set(TRIO)
        assert set(result.counters) == set(TRIO)
        assert result.series == {}  # windowing off by default

    def test_series_window_yields_per_tenant_hubs(self):
        result = run_isolation_oracle(
            TRIO, packets_per_tenant=40, series_window_us=100.0
        )
        assert result.ok
        assert set(result.series) == set(TRIO)
        for name, hub in result.series.items():
            assert hub["tenant"] == name
            assert hub["window_us"] == 100.0
            # Shared-channel pressure is windowed for every tenant: the
            # punt path commits batches, so the RPC queue-wait series
            # has at least one active window.
            rpc = hub["series"]["control_plane.rpc_queue_wait_us"]
            assert rpc["kind"] == "histogram"
            assert rpc["windows"], hub


class TestCombinedLint:
    def test_trio_combined_artifact_is_clean(self):
        report = verify_combined(
            build_tenant_specs(TRIO), SharedSwitchBudget()
        )
        assert report.ok, report.format()
        assert "tenancy[" in report.program

    def test_rejected_tenant_surfaces_as_ten001(self):
        report = verify_combined(
            build_tenant_specs(TRIO + ["firewall", "proxy"]),
            SharedSwitchBudget(),
        )
        assert not report.ok
        codes = [d.code for d in report.diagnostics]
        assert "TEN001" in codes
        rejection = next(
            d for d in report.diagnostics if d.code == "TEN001"
        )
        assert "proxy" in rejection.message
        assert "table_slots" in rejection.message

    def test_duplicate_tenants_surface_as_ten004(self):
        specs = build_tenant_specs(["minilb"])
        report = verify_combined(specs + specs, SharedSwitchBudget())
        assert not report.ok
        assert any(d.code == "TEN004" for d in report.diagnostics)

    def test_combined_depth_overrun_surfaces_as_ten002(self):
        """The dispatch stage is free at admission time but not in the
        re-proof of the combined totals: a budget one stage short of the
        trio's dispatch-inclusive depth passes admission (no TEN001) yet
        fails the combined check."""
        specs = build_tenant_specs(TRIO)
        baseline = SwitchResourceAllocator(SharedSwitchBudget()).admit(specs)
        squeezed = dataclasses.replace(
            SharedSwitchBudget(),
            pipeline_depth=baseline.totals()["stages"] - 1,
        )
        report = verify_combined(specs, squeezed)
        assert not report.ok
        codes = [d.code for d in report.diagnostics]
        assert "TEN001" not in codes
        diag = next(d for d in report.diagnostics if d.code == "TEN002")
        assert "pipeline depth" in diag.message

    def test_broken_tenant_artifact_surfaces_as_ten003(self):
        """A tenant whose artifact fails the solo resource lint is
        rejected from the combined report with the solo code named."""
        specs = build_tenant_specs(TRIO)
        program = specs[0].program
        program.limits = dataclasses.replace(program.limits, metadata_bytes=0)
        report = verify_combined(specs, SharedSwitchBudget())
        assert not report.ok
        diag = next(d for d in report.diagnostics if d.code == "TEN003")
        assert specs[0].name in diag.message
        assert "P4L007" in diag.message
