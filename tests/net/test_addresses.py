"""Tests for MAC and IPv4 address types."""

import pytest
from hypothesis import given, strategies as st

from repro.net.addresses import Ipv4Address, MacAddress, ip, mac


class TestIpv4Address:
    def test_from_string_round_trip(self):
        addr = Ipv4Address.from_string("192.168.1.42")
        assert str(addr) == "192.168.1.42"

    def test_int_round_trip(self):
        addr = ip("10.0.0.1")
        assert ip(int(addr)) == addr

    def test_bytes_round_trip(self):
        addr = ip("172.16.254.3")
        assert Ipv4Address.from_bytes(addr.to_bytes()) == addr

    def test_value_is_big_endian(self):
        assert int(ip("1.2.3.4")) == 0x01020304

    def test_rejects_out_of_range_octet(self):
        with pytest.raises(ValueError):
            ip("1.2.3.256")

    def test_rejects_malformed(self):
        for bad in ("1.2.3", "a.b.c.d", "1.2.3.4.5", ""):
            with pytest.raises(ValueError):
                Ipv4Address.from_string(bad)

    def test_rejects_out_of_range_value(self):
        with pytest.raises(ValueError):
            Ipv4Address(1 << 32)
        with pytest.raises(ValueError):
            Ipv4Address(-1)

    def test_ordering_and_hash(self):
        a = ip("10.0.0.1")
        b = ip("10.0.0.2")
        assert a < b
        assert len({a, b, ip("10.0.0.1")}) == 2

    def test_in_subnet(self):
        addr = ip("192.168.1.77")
        assert addr.in_subnet(ip("192.168.1.0"), 24)
        assert not addr.in_subnet(ip("192.168.2.0"), 24)
        assert addr.in_subnet(ip("0.0.0.0"), 0)
        assert addr.in_subnet(addr, 32)

    def test_in_subnet_rejects_bad_prefix(self):
        with pytest.raises(ValueError):
            ip("1.1.1.1").in_subnet(ip("1.1.1.0"), 33)

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_string_round_trip_property(self, value):
        addr = Ipv4Address(value)
        assert Ipv4Address.from_string(str(addr)) == addr


class TestMacAddress:
    def test_from_string_round_trip(self):
        addr = MacAddress.from_string("02:aa:bb:cc:dd:ee")
        assert str(addr) == "02:aa:bb:cc:dd:ee"

    def test_accepts_dashes(self):
        assert mac("02-aa-bb-cc-dd-ee") == mac("02:aa:bb:cc:dd:ee")

    def test_broadcast(self):
        assert MacAddress.broadcast().is_broadcast
        assert str(MacAddress.broadcast()) == "ff:ff:ff:ff:ff:ff"

    def test_multicast_bit(self):
        assert mac("01:00:5e:00:00:01").is_multicast
        assert not mac("02:00:00:00:00:01").is_multicast

    def test_rejects_malformed(self):
        for bad in ("02:aa:bb:cc:dd", "02:aa:bb:cc:dd:ee:ff", "zz:aa:bb:cc:dd:ee"):
            with pytest.raises(ValueError):
                MacAddress.from_string(bad)

    def test_bytes_round_trip(self):
        addr = mac("02:01:02:03:04:05")
        assert MacAddress.from_bytes(addr.to_bytes()) == addr

    @given(st.integers(min_value=0, max_value=(1 << 48) - 1))
    def test_bytes_round_trip_property(self, value):
        addr = MacAddress(value)
        assert MacAddress.from_bytes(addr.to_bytes()) == addr

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            MacAddress(1 << 48)


class TestConvenienceConstructors:
    def test_ip_passthrough(self):
        addr = ip("1.1.1.1")
        assert ip(addr) is addr

    def test_mac_passthrough(self):
        addr = mac(42)
        assert mac(addr) is addr
