"""Tests for RawPacket construction, parsing, and views."""

import pytest

from repro.net.addresses import ip, mac
from repro.net.headers import (
    EthernetHeader,
    IPPROTO_TCP,
    IPPROTO_UDP,
    Ipv4Header,
    TcpHeader,
    UdpHeader,
)
from repro.net.packet import RawPacket


def make_tcp(payload=b"hello"):
    return RawPacket.make_tcp(
        EthernetHeader(mac("02:00:00:00:00:02"), mac("02:00:00:00:00:01")),
        Ipv4Header(saddr=ip("10.0.0.1"), daddr=ip("10.0.0.2")),
        TcpHeader(sport=1111, dport=80),
        payload,
    )


class TestRawPacketConstruction:
    def test_tcp_lengths(self):
        packet = make_tcp(b"abcde")
        assert packet.ip.total_length == 20 + 20 + 5
        assert packet.wire_length() == 14 + 20 + 20 + 5

    def test_udp_lengths(self):
        packet = RawPacket.make_udp(
            EthernetHeader(), Ipv4Header(), UdpHeader(sport=1, dport=2), b"xyz"
        )
        assert packet.udp.length == 8 + 3
        assert packet.ip.total_length == 20 + 8 + 3
        assert packet.ip.protocol == IPPROTO_UDP

    def test_five_tuple(self):
        packet = make_tcp()
        assert packet.five_tuple() == (
            int(ip("10.0.0.1")), int(ip("10.0.0.2")), 1111, 80, IPPROTO_TCP,
        )

    def test_payload_setter_updates_lengths(self):
        packet = make_tcp(b"1234")
        packet.payload = b"123456789"
        assert packet.ip.total_length == 49

    def test_copy_is_deep_for_headers(self):
        packet = make_tcp()
        clone = packet.copy()
        clone.ip.daddr = ip("99.99.99.99")
        clone.tcp.dport = 8080
        assert packet.ip.daddr == ip("10.0.0.2")
        assert packet.tcp.dport == 80

    def test_copy_preserves_metadata(self):
        packet = make_tcp()
        packet.metadata["k"] = 1
        assert packet.copy().metadata == {"k": 1}


class TestRawPacketWireFormat:
    def test_pack_parse_round_trip_tcp(self):
        packet = make_tcp(b"data!")
        parsed = RawPacket.parse(packet.pack())
        assert parsed.five_tuple() == packet.five_tuple()
        assert parsed.payload == b"data!"
        assert parsed.eth.src == packet.eth.src

    def test_pack_parse_round_trip_udp(self):
        packet = RawPacket.make_udp(
            EthernetHeader(),
            Ipv4Header(saddr=ip("1.1.1.1"), daddr=ip("2.2.2.2")),
            UdpHeader(sport=5000, dport=53),
            b"q",
        )
        parsed = RawPacket.parse(packet.pack())
        assert parsed.udp is not None
        assert parsed.udp.dport == 53
        assert parsed.payload == b"q"

    def test_parse_non_ip(self):
        eth = EthernetHeader(ethertype=0x0806)
        raw = eth.pack() + b"arp-body"
        parsed = RawPacket.parse(raw)
        assert parsed.ip is None
        assert parsed.payload == b"arp-body"

    def test_tcp_property_none_for_udp(self):
        packet = RawPacket.make_udp(
            EthernetHeader(), Ipv4Header(), UdpHeader(), b""
        )
        assert packet.tcp is None
        assert packet.udp is not None
