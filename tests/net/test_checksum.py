"""Tests for the Internet checksum."""

from hypothesis import given, strategies as st

from repro.net.checksum import internet_checksum, verify_checksum


class TestInternetChecksum:
    def test_known_vector(self):
        # RFC 1071 example data.
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        assert internet_checksum(data) == 0x220D

    def test_zero_data(self):
        assert internet_checksum(b"\x00" * 20) == 0xFFFF

    def test_odd_length(self):
        assert internet_checksum(b"\x01") == (~0x0100) & 0xFFFF

    def test_empty(self):
        assert internet_checksum(b"") == 0xFFFF

    @given(st.binary(min_size=0, max_size=256).filter(lambda d: len(d) % 2 == 0))
    def test_verify_after_insert(self, data):
        """Appending the computed checksum (word-aligned, as real protocol
        headers place it) makes the data verify."""
        csum = internet_checksum(data)
        patched = data + csum.to_bytes(2, "big")
        assert verify_checksum(patched)

    @given(st.binary(min_size=2, max_size=128))
    def test_checksum_in_range(self, data):
        assert 0 <= internet_checksum(data) <= 0xFFFF

    def test_initial_chaining(self):
        whole = internet_checksum(b"\x12\x34\x56\x78")
        assert 0 <= whole <= 0xFFFF


class TestVerifyChecksum:
    def test_all_zero_data_does_not_verify(self):
        """All-zero bytes sum to 0, not 0xFFFF — invalid, not vacuously OK."""
        assert not verify_checksum(b"\x00" * 20)
        assert not verify_checksum(b"")

    def test_odd_length_verifies(self):
        """Odd tails pad with a zero low byte, same as when computing."""
        data = b"\x12\x34\x56"
        csum = internet_checksum(data + b"\x00\x00")
        # Place the checksum word-aligned after the odd byte + pad position:
        # verifying data||csum must treat the odd byte identically.
        patched = data + b"\x00" + csum.to_bytes(2, "big")
        assert verify_checksum(patched)
        assert not verify_checksum(data)

    def test_matches_definition(self):
        """verify == (computed checksum over the whole buffer is zero)."""
        for data in (b"\x01\x02\x03\x04", b"\xff" * 7, b"\xab\xcd"):
            csum = internet_checksum(data)
            patched = data + csum.to_bytes(2, "big")
            assert verify_checksum(patched) == (
                internet_checksum(patched) == 0
            )
