"""Tests for protocol header codecs."""

import pytest
from hypothesis import given, strategies as st

from repro.net.addresses import ip, mac
from repro.net.checksum import verify_checksum
from repro.net.headers import (
    ETHERTYPE_IPV4,
    EthernetHeader,
    Ipv4Header,
    TcpFlags,
    TcpHeader,
    UdpHeader,
)


class TestEthernetHeader:
    def test_pack_unpack_round_trip(self):
        header = EthernetHeader(
            mac("02:00:00:00:00:01"), mac("02:00:00:00:00:02"), 0x0800
        )
        assert EthernetHeader.unpack(header.pack()) == header

    def test_size(self):
        assert len(EthernetHeader().pack()) == EthernetHeader.SIZE == 14

    def test_short_buffer_rejected(self):
        with pytest.raises(ValueError):
            EthernetHeader.unpack(b"\x00" * 13)


class TestIpv4Header:
    def test_pack_unpack_round_trip(self):
        header = Ipv4Header(
            tos=0x10, total_length=1500, identification=7, ttl=63,
            protocol=6, saddr=ip("1.2.3.4"), daddr=ip("5.6.7.8"),
        )
        unpacked = Ipv4Header.unpack(header.pack())
        assert unpacked.saddr == header.saddr
        assert unpacked.daddr == header.daddr
        assert unpacked.total_length == 1500
        assert unpacked.ttl == 63

    def test_checksum_filled_and_valid(self):
        packed = Ipv4Header(saddr=ip("9.9.9.9"), daddr=ip("8.8.8.8")).pack()
        assert verify_checksum(packed)

    def test_checksum_changes_with_rewrite(self):
        header = Ipv4Header(saddr=ip("1.1.1.1"), daddr=ip("2.2.2.2"))
        before = Ipv4Header.unpack(header.pack()).checksum
        header.daddr = ip("3.3.3.3")
        after = Ipv4Header.unpack(header.pack()).checksum
        assert before != after

    def test_copy_is_independent(self):
        header = Ipv4Header(saddr=ip("1.1.1.1"))
        clone = header.copy()
        clone.saddr = ip("2.2.2.2")
        assert header.saddr == ip("1.1.1.1")

    @given(
        st.integers(0, (1 << 32) - 1),
        st.integers(0, (1 << 32) - 1),
        st.integers(0, 255),
        st.integers(0, 255),
    )
    def test_round_trip_property(self, saddr, daddr, ttl, proto):
        header = Ipv4Header(
            saddr=ip(saddr), daddr=ip(daddr), ttl=ttl, protocol=proto
        )
        unpacked = Ipv4Header.unpack(header.pack())
        assert (int(unpacked.saddr), int(unpacked.daddr)) == (saddr, daddr)
        assert (unpacked.ttl, unpacked.protocol) == (ttl, proto)


class TestTcpHeader:
    def test_round_trip(self):
        header = TcpHeader(
            sport=1234, dport=80, seq=99, ack=100,
            flags=TcpFlags.SYN | TcpFlags.ACK, window=2048,
        )
        unpacked = TcpHeader.unpack(header.pack())
        assert unpacked == header

    def test_flag_predicates(self):
        assert TcpHeader(flags=TcpFlags.SYN).is_syn
        assert not TcpHeader(flags=TcpFlags.SYN | TcpFlags.ACK).is_syn
        assert TcpHeader(flags=TcpFlags.SYN | TcpFlags.ACK).is_synack
        assert TcpHeader(flags=TcpFlags.FIN).is_fin
        assert TcpHeader(flags=TcpFlags.RST).is_rst

    def test_describe_flags(self):
        assert TcpFlags.describe(TcpFlags.SYN | TcpFlags.ACK) == "SYN|ACK"
        assert TcpFlags.describe(0) == "none"

    @given(st.integers(0, 65535), st.integers(0, 65535), st.integers(0, 0xFF))
    def test_round_trip_property(self, sport, dport, flags):
        header = TcpHeader(sport=sport, dport=dport, flags=flags)
        unpacked = TcpHeader.unpack(header.pack())
        assert (unpacked.sport, unpacked.dport, unpacked.flags) == (
            sport, dport, flags,
        )


class TestUdpHeader:
    def test_round_trip(self):
        header = UdpHeader(sport=53, dport=5353, length=100)
        assert UdpHeader.unpack(header.pack()) == header

    def test_short_buffer_rejected(self):
        with pytest.raises(ValueError):
            UdpHeader.unpack(b"\x00" * 7)
