"""Tests for the IR validator."""

import pytest

from repro.ir import instructions as irin
from repro.ir.builder import FunctionBuilder
from repro.ir.function import Function
from repro.ir.validate import (
    IRValidationError,
    unsatisfied_uses,
    validate_function,
)
from repro.ir.values import Const, Reg
from repro.lang.types import BOOL, UINT32


def test_valid_function_passes():
    builder = FunctionBuilder("ok")
    temp = builder.fresh_temp(UINT32)
    builder.emit(irin.Assign(temp, Const(1, UINT32)))
    builder.emit(irin.Return())
    validate_function(builder.function)


def test_missing_entry_rejected():
    function = Function("broken", entry="nope")
    with pytest.raises(IRValidationError, match="entry"):
        validate_function(function)


def test_empty_block_rejected():
    function = Function("broken")
    function.add_block("entry")
    with pytest.raises(IRValidationError, match="empty"):
        validate_function(function)


def test_missing_terminator_rejected():
    function = Function("broken")
    block = function.add_block("entry")
    block.instructions.append(irin.Assign(Reg("t0", UINT32), Const(1, UINT32)))
    with pytest.raises(IRValidationError, match="terminator"):
        validate_function(function)


def test_terminator_in_body_rejected():
    function = Function("broken")
    block = function.add_block("entry")
    block.instructions.append(irin.Return())
    block.instructions.append(irin.Return())
    with pytest.raises(IRValidationError, match="terminator in block body"):
        validate_function(function)


def test_unknown_branch_target_rejected():
    builder = FunctionBuilder("broken")
    builder.emit(irin.Jump("ghost"))
    with pytest.raises(IRValidationError, match="unknown block"):
        validate_function(builder.function)


def test_double_temp_assignment_rejected():
    builder = FunctionBuilder("broken")
    temp = builder.fresh_temp(UINT32)
    builder.emit(irin.Assign(temp, Const(1, UINT32)))
    builder.emit(irin.Assign(temp, Const(2, UINT32)))
    builder.emit(irin.Return())
    with pytest.raises(IRValidationError, match="assigned 2 times"):
        validate_function(builder.function)


def test_named_locals_may_be_reassigned():
    builder = FunctionBuilder("ok")
    local = Reg("x", UINT32, is_temp=False)
    builder.emit(irin.Assign(local, Const(1, UINT32)))
    builder.emit(irin.Assign(local, Const(2, UINT32)))
    builder.emit(irin.Return())
    validate_function(builder.function)


def test_use_before_def_rejected():
    builder = FunctionBuilder("broken")
    ghost = Reg("ghost", UINT32)
    dst = builder.fresh_temp(UINT32)
    builder.emit(irin.Assign(dst, ghost))
    builder.emit(irin.Return())
    with pytest.raises(IRValidationError, match="used before"):
        validate_function(builder.function)


def test_one_armed_definition_rejected():
    """A value defined on only one branch arm may be unset at the join."""
    builder = FunctionBuilder("broken")
    cond = builder.fresh_bool()
    builder.emit(irin.Assign(cond, Const(1, BOOL)))
    then_block = builder.fresh_block("then")
    join_block = builder.fresh_block("join")
    builder.emit(irin.Branch(cond, then_block.name, join_block.name))
    builder.enter_block(then_block)
    maybe = Reg("maybe", UINT32, is_temp=False)
    builder.emit(irin.Assign(maybe, Const(5, UINT32)))
    builder.emit(irin.Jump(join_block.name))
    builder.enter_block(join_block)
    use = builder.fresh_temp(UINT32)
    builder.emit(irin.Assign(use, maybe))
    builder.emit(irin.Return())
    with pytest.raises(IRValidationError, match="used before"):
        validate_function(builder.function)
    # ...and unsatisfied_uses reports it instead of raising.
    assert "maybe" in unsatisfied_uses(builder.function)


def test_check_defs_can_be_skipped():
    builder = FunctionBuilder("partial")
    ghost = Reg("seeded_from_shim", UINT32)
    dst = builder.fresh_temp(UINT32)
    builder.emit(irin.Assign(dst, ghost))
    builder.emit(irin.Return())
    validate_function(builder.function, check_defs=False)


def test_unsatisfied_uses_empty_for_complete_function():
    builder = FunctionBuilder("ok")
    temp = builder.fresh_temp(UINT32)
    builder.emit(irin.Assign(temp, Const(1, UINT32)))
    other = builder.fresh_temp(UINT32)
    builder.emit(irin.Assign(other, temp))
    builder.emit(irin.Return())
    assert unsatisfied_uses(builder.function) == {}
