"""Tests for the IR interpreter."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ir import lower_program
from repro.ir.interp import (
    Interpreter,
    InterpreterError,
    PacketView,
    StateStore,
    _apply_binop,
)
from repro.ir.instructions import BinOpKind
from repro.ir.externs import ExternHost
from repro.lang import parse_program
from repro.net.addresses import ip
from repro.net.headers import EthernetHeader, Ipv4Header, TcpHeader, UdpHeader
from repro.net.packet import RawPacket


def lower(statements: str, members: str = "", extra_methods: str = ""):
    source = (
        f"class T {{ {members} {extra_methods}"
        f" void process(Packet *pkt) {{ {statements} }} }};"
    )
    return lower_program(parse_program(source))


def run(statements: str, members: str = "", packet=None, state=None,
        externs=None):
    lowered = lower(statements, members)
    state = state or StateStore(lowered.state)
    packet = packet or RawPacket.make_tcp(
        EthernetHeader(),
        Ipv4Header(saddr=ip("10.0.0.1"), daddr=ip("10.0.0.2")),
        TcpHeader(sport=1000, dport=80),
        b"payload",
    )
    view = PacketView(packet)
    result = Interpreter(lowered.process, state, externs).run(view)
    return result, packet, state


class TestArithmetic:
    def test_wrapping_at_width(self):
        result, packet, _ = run(
            "iphdr *ip = pkt->network_header();"
            " ip->ttl = ip->ttl + 255 + 2; pkt->send();"
        )
        assert packet.ip.ttl == (64 + 255 + 2) & 0xFF

    def test_division_by_zero_yields_zero(self):
        result, packet, _ = run(
            "uint32_t z = 0; uint32_t x = 7 / z;"
            " iphdr *ip = pkt->network_header(); ip->ttl = (uint8_t)x;"
            " pkt->send();"
        )
        assert packet.ip.ttl == 0

    @given(
        st.integers(0, 0xFFFFFFFF),
        st.integers(0, 0xFFFFFFFF),
        st.sampled_from(
            [BinOpKind.ADD, BinOpKind.SUB, BinOpKind.AND, BinOpKind.OR,
             BinOpKind.XOR]
        ),
    )
    def test_apply_binop_matches_python(self, a, b, op):
        expected = {
            BinOpKind.ADD: a + b,
            BinOpKind.SUB: a - b,
            BinOpKind.AND: a & b,
            BinOpKind.OR: a | b,
            BinOpKind.XOR: a ^ b,
        }[op]
        assert _apply_binop(op, a, b) == expected

    def test_comparisons_produce_01(self):
        assert _apply_binop(BinOpKind.LT, 1, 2) == 1
        assert _apply_binop(BinOpKind.GE, 1, 2) == 0


class TestPacketAccess:
    def test_udp_port_aliasing_through_tcp_region(self):
        """Click's transport_header() reads ports of UDP packets too."""
        packet = RawPacket.make_udp(
            EthernetHeader(),
            Ipv4Header(saddr=ip("1.1.1.1"), daddr=ip("2.2.2.2")),
            UdpHeader(sport=7777, dport=53),
        )
        result, packet, _ = run(
            "tcphdr *t = pkt->transport_header();"
            " iphdr *ip = pkt->network_header();"
            " if (t->dport == 53) { pkt->drop(); } else { pkt->send(); }",
            packet=packet,
        )
        assert result.verdict == "drop"

    def test_absent_header_reads_zero(self):
        packet = RawPacket.make_udp(
            EthernetHeader(), Ipv4Header(), UdpHeader()
        )
        result, _, _ = run(
            "tcphdr *t = pkt->transport_header();"
            " if (t->seq == 0) { pkt->drop(); } else { pkt->send(); }",
            packet=packet,
        )
        assert result.verdict == "drop"

    def test_daddr_rewrite_visible_on_packet(self):
        result, packet, _ = run(
            "iphdr *ip = pkt->network_header();"
            " ip->daddr = 167837697; pkt->send();"  # 10.1.0.1
        )
        assert str(packet.ip.daddr) == "10.1.0.1"

    def test_ingress_port(self):
        packet = RawPacket.make_tcp(
            EthernetHeader(), Ipv4Header(), TcpHeader()
        )
        packet.ingress_port = 2
        result, _, _ = run(
            "if (pkt->ingress_port() == 2) { pkt->drop(); }"
            " else { pkt->send(); }",
            packet=packet,
        )
        assert result.verdict == "drop"


class TestStateOps:
    def test_map_insert_then_find(self):
        result, _, state = run(
            "uint16_t k = 5; uint32_t v = 99; t.insert(&k, &v);"
            " uint32_t *got = t.find(&k);"
            " iphdr *ip = pkt->network_header();"
            " if (got != NULL) { ip->daddr = *got; } pkt->send();",
            members="HashMap<uint16_t, uint32_t> t;",
        )
        assert state.maps["t"] == {(5,): 99}

    def test_journal_records_mutations(self):
        _, _, state = run(
            "uint16_t k = 1; uint32_t v = 2; t.insert(&k, &v);"
            " t.erase(&k); pkt->send();",
            members="HashMap<uint16_t, uint32_t> t;",
        )
        journal = state.drain_journal()
        assert [entry[0] for entry in journal] == ["insert", "erase"]

    def test_map_capacity_drop_recorded(self):
        lowered = lower(
            "uint16_t k = 9; uint32_t v = 1; t.insert(&k, &v); pkt->send();",
            members="// @gallium: max_entries=1\nHashMap<uint16_t, uint32_t> t;",
        )
        state = StateStore(lowered.state)
        state.maps["t"][(1,)] = 1
        packet = RawPacket.make_tcp(EthernetHeader(), Ipv4Header(), TcpHeader())
        Interpreter(lowered.process, state).run(PacketView(packet))
        assert (9,) not in state.maps["t"]
        assert any(e[0] == "insert_failed" for e in state.drain_journal())

    def test_vector_out_of_range_reads_zero(self):
        result, packet, _ = run(
            "uint32_t x = v[7]; iphdr *ip = pkt->network_header();"
            " ip->ttl = (uint8_t)(x & 0xFF); pkt->send();",
            members="Vector<uint32_t> v;",
        )
        assert packet.ip.ttl == 0


class TestControlFlow:
    def test_loop_execution(self):
        result, packet, _ = run(
            "uint32_t acc = 0;"
            " for (uint32_t i = 0; i < 5; i += 1) { acc += i; }"
            " iphdr *ip = pkt->network_header(); ip->ttl = (uint8_t)acc;"
            " pkt->send();"
        )
        assert packet.ip.ttl == 10

    def test_break_exits_loop(self):
        result, packet, _ = run(
            "uint32_t i = 0;"
            " while (1) { i += 1; if (i == 3) { break; } }"
            " iphdr *ip = pkt->network_header(); ip->ttl = (uint8_t)i;"
            " pkt->send();"
        )
        assert packet.ip.ttl == 3

    def test_step_limit_catches_runaway(self):
        lowered = lower("while (1) { } pkt->send();")
        state = StateStore(lowered.state)
        packet = RawPacket.make_tcp(EthernetHeader(), Ipv4Header(), TcpHeader())
        with pytest.raises(InterpreterError):
            Interpreter(lowered.process, state).run(PacketView(packet))

    def test_undefined_register_read_raises(self):
        from repro.ir.builder import FunctionBuilder
        from repro.ir import instructions as irin
        from repro.ir.values import Reg
        from repro.lang.types import UINT32
        from repro.ir.lowering import StateMember

        builder = FunctionBuilder("broken")
        ghost = Reg("ghost", UINT32)
        dst = builder.fresh_temp(UINT32)
        builder.emit(irin.Assign(dst, ghost))
        builder.emit(irin.Return())
        interp = Interpreter(builder.function, StateStore({}))
        with pytest.raises(InterpreterError):
            interp.run()


class TestExterns:
    def test_payload_functions(self):
        packet = RawPacket.make_tcp(
            EthernetHeader(), Ipv4Header(), TcpHeader(), b"ABC"
        )
        result, packet, _ = run(
            "uint32_t n = payload_len(pkt); uint8_t b = payload_byte(pkt, 0);"
            " iphdr *ip = pkt->network_header();"
            " ip->ttl = (uint8_t)(n + b); pkt->send();",
            packet=packet,
        )
        assert packet.ip.ttl == (3 + ord("A")) & 0xFF

    def test_config_reads(self):
        externs = ExternHost(config={2: [7, 8, 9]})
        result, packet, _ = run(
            "uint32_t n = config_len(2); uint32_t v = config_u32(2, 1);"
            " iphdr *ip = pkt->network_header();"
            " ip->ttl = (uint8_t)(n * 10 + v); pkt->send();",
            externs=externs,
        )
        assert packet.ip.ttl == 38

    def test_clock(self):
        externs = ExternHost(clock=lambda: 1234)
        result, packet, _ = run(
            "uint32_t t = now_sec(); iphdr *ip = pkt->network_header();"
            " ip->id = (uint16_t)(t & 0xFFFF); pkt->send();",
            externs=externs,
        )
        assert packet.ip.identification == 1234

    def test_log_event(self):
        externs = ExternHost()
        run("log_event(42); pkt->send();", externs=externs)
        assert externs.log == [42]

    def test_unknown_extern_raises(self):
        with pytest.raises(KeyError):
            ExternHost().call("mystery", [])
