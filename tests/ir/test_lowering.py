"""Tests for AST → IR lowering, pointer analysis, and inlining."""

import pytest

from repro.ir import instructions as irin
from repro.ir import lower_program
from repro.ir.lowering import LoweringError
from repro.ir.validate import validate_function
from repro.lang import parse_program


def lower(statements: str, members: str = ""):
    source = (
        f"class T {{ {members} void process(Packet *pkt)"
        f" {{ {statements} }} }};"
    )
    return lower_program(parse_program(source))


def instructions_of(lowered):
    return list(lowered.process.instructions())


class TestBasicLowering:
    def test_header_load_store(self):
        lowered = lower(
            "iphdr *ip = pkt->network_header();"
            " ip->ttl = ip->ttl - 1; pkt->send();"
        )
        insts = instructions_of(lowered)
        assert any(
            isinstance(i, irin.LoadPacketField) and i.field == "ttl"
            for i in insts
        )
        assert any(
            isinstance(i, irin.StorePacketField) and i.field == "ttl"
            for i in insts
        )

    def test_pointer_analysis_resolves_transport(self):
        lowered = lower(
            "tcphdr *tcp = pkt->transport_header();"
            " uint16_t p = tcp->dport; pkt->drop();"
        )
        load = next(
            i for i in instructions_of(lowered)
            if isinstance(i, irin.LoadPacketField) and i.field == "dport"
        )
        assert load.region == "tcp"

    def test_map_find_produces_found_and_value(self):
        lowered = lower(
            "uint16_t k = 1; uint32_t *v = table.find(&k);"
            " if (v != NULL) { pkt->send(); } else { pkt->drop(); }",
            members="HashMap<uint16_t, uint32_t> table;",
        )
        finds = [
            i for i in instructions_of(lowered) if isinstance(i, irin.MapFind)
        ]
        assert len(finds) == 1
        assert finds[0].value is not None

    def test_contains_lowered_without_value(self):
        lowered = lower(
            "uint16_t k = 1; if (table.contains(&k)) { pkt->send(); }"
            " else { pkt->drop(); }",
            members="HashMap<uint16_t, uint32_t> table;",
        )
        find = next(
            i for i in instructions_of(lowered) if isinstance(i, irin.MapFind)
        )
        assert find.value is None

    def test_multi_key_find_arity(self):
        lowered = lower(
            "uint32_t a = 1; uint16_t b = 2;"
            " uint32_t *v = table.find(&a, &b);"
            " if (v == NULL) { pkt->drop(); } else { pkt->send(); }",
            members="HashMap<Tuple<uint32_t, uint16_t>, uint32_t> table;",
        )
        find = next(
            i for i in instructions_of(lowered) if isinstance(i, irin.MapFind)
        )
        assert len(find.keys) == 2

    def test_wrong_key_arity_rejected(self):
        with pytest.raises(LoweringError):
            lower(
                "uint32_t a = 1; uint32_t *v = table.find(&a); pkt->drop();",
                members="HashMap<Tuple<uint32_t, uint16_t>, uint32_t> table;",
            )

    def test_vector_ops(self):
        lowered = lower(
            "uint32_t n = v.size(); uint32_t x = v[0]; pkt->send();",
            members="Vector<uint32_t> v;",
        )
        insts = instructions_of(lowered)
        assert any(isinstance(i, irin.VectorLen) for i in insts)
        assert any(isinstance(i, irin.VectorGet) for i in insts)

    def test_scalar_member_load(self):
        lowered = lower(
            "uint32_t x = counter; pkt->send();",
            members="uint32_t counter;",
        )
        assert any(
            isinstance(i, irin.LoadState) and i.state == "counter"
            for i in instructions_of(lowered)
        )

    def test_ingress_port_is_meta_load(self):
        lowered = lower("uint8_t d = pkt->ingress_port(); pkt->send();")
        load = next(
            i for i in instructions_of(lowered)
            if isinstance(i, irin.LoadPacketField)
        )
        assert (load.region, load.field) == ("meta", "ingress_port")
        assert load.p4_supported()

    def test_null_comparison_uses_found_flag(self):
        lowered = lower(
            "uint16_t k = 1; uint32_t *v = t.find(&k);"
            " if (v == NULL) { pkt->drop(); } else { pkt->send(); }",
            members="HashMap<uint16_t, uint32_t> t;",
        )
        # No pointer materialization: the branch condition is the negated
        # found flag.
        assert any(
            isinstance(i, irin.UnOp) and i.op is irin.UnOpKind.LNOT
            for i in instructions_of(lowered)
        )

    def test_all_functions_validate(self, middlebox_name, bundle):
        validate_function(bundle.lowered.process)
        if bundle.lowered.configure is not None:
            validate_function(bundle.lowered.configure)


class TestControlFlowLowering:
    def test_if_creates_branch(self):
        lowered = lower("if (1) { pkt->send(); } else { pkt->drop(); }")
        assert any(
            isinstance(i, irin.Branch) for i in instructions_of(lowered)
        )

    def test_loops_create_cycles(self):
        lowered = lower(
            "uint32_t i = 0; while (i < 3) { i += 1; } pkt->send();"
        )
        from repro.analysis.reachability import compute_reachability

        info = compute_reachability(lowered.process)
        assert info.cyclic_blocks

    def test_unreachable_statement_rejected(self):
        with pytest.raises(LoweringError):
            lower("pkt->send(); uint32_t x = 1;")

    def test_fallthrough_without_verdict_rejected(self):
        with pytest.raises(LoweringError):
            lower("uint32_t x = 1;")

    def test_return_in_process_rejected(self):
        with pytest.raises(LoweringError):
            lower("return;")

    def test_both_arms_terminate(self):
        lowered = lower("if (1) { pkt->send(); } else { pkt->drop(); }")
        validate_function(lowered.process)


class TestInlining:
    def test_helper_inlined(self):
        source = """
        class T {
          uint32_t twice(uint32_t x) {
            uint32_t y = x + x;
            return y;
          }
          void process(Packet *pkt) {
            iphdr *ip = pkt->network_header();
            uint32_t v = twice(ip->ttl);
            ip->ttl = v;
            pkt->send();
          }
        };
        """
        lowered = lower_program(parse_program(source))
        # No call instruction survives; the add is inline.
        assert not any(
            isinstance(i, irin.ExternCall)
            for i in lowered.process.instructions()
        )

    def test_helper_with_packet_pointer(self):
        source = """
        class T {
          void bump(iphdr *ip) { ip->ttl = ip->ttl + 1; }
          void process(Packet *pkt) {
            iphdr *ip = pkt->network_header();
            bump(ip);
            pkt->send();
          }
        };
        """
        lowered = lower_program(parse_program(source))
        assert any(
            isinstance(i, irin.StorePacketField) and i.field == "ttl"
            for i in lowered.process.instructions()
        )

    def test_recursion_rejected(self):
        source = """
        class T {
          uint32_t loop(uint32_t x) {
            uint32_t r = loop(x);
            return r;
          }
          void process(Packet *pkt) {
            uint32_t v = loop(1);
            pkt->send();
          }
        };
        """
        with pytest.raises(LoweringError):
            lower_program(parse_program(source))

    def test_early_return_in_helper_rejected(self):
        source = """
        class T {
          uint32_t f(uint32_t x) {
            if (x) { return 1; }
            return 2;
          }
          void process(Packet *pkt) {
            uint32_t v = f(1);
            pkt->send();
          }
        };
        """
        with pytest.raises(LoweringError):
            lower_program(parse_program(source))


class TestRegisterPeephole:
    def test_compound_assign_becomes_rmw(self):
        lowered = lower(
            "counter += 1; pkt->send();", members="uint32_t counter;"
        )
        assert any(
            isinstance(i, irin.RegisterRMW)
            for i in instructions_of(lowered)
        )

    def test_load_then_compound_merges(self):
        lowered = lower(
            "uint32_t t = counter; counter += 1;"
            " iphdr *ip = pkt->network_header();"
            " ip->ttl = (uint8_t)(t & 0xFF); pkt->send();",
            members="uint32_t counter;",
        )
        insts = instructions_of(lowered)
        rmws = [i for i in insts if isinstance(i, irin.RegisterRMW)]
        loads = [i for i in insts if isinstance(i, irin.LoadState)]
        assert len(rmws) == 1
        assert not loads  # the bare load folded into the RMW

    def test_load_binop_store_merges(self):
        lowered = lower(
            "uint32_t t = counter; counter = t + 1;"
            " pkt->send();",
            members="uint32_t counter;",
        )
        insts = instructions_of(lowered)
        # Either merged into one RMW or left as load+store; the merged form
        # is required for the NAT counter to be offloadable.
        rmws = [i for i in insts if isinstance(i, irin.RegisterRMW)]
        stores = [i for i in insts if isinstance(i, irin.StoreState)]
        assert len(rmws) == 1 and not stores

    def test_rmw_returns_old_value(self):
        from repro.ir.interp import Interpreter, PacketView, StateStore
        from repro.net.headers import EthernetHeader, Ipv4Header, TcpHeader
        from repro.net.packet import RawPacket

        lowered = lower(
            "uint32_t t = counter; counter += 1;"
            " iphdr *ip = pkt->network_header(); ip->ttl = (uint8_t)(t & 0xFF);"
            " pkt->send();",
            members="uint32_t counter;",
        )
        state = StateStore(lowered.state)
        state.scalars["counter"] = 7
        packet = RawPacket.make_tcp(EthernetHeader(), Ipv4Header(), TcpHeader())
        Interpreter(lowered.process, state).run(PacketView(packet))
        assert packet.ip.ttl == 7
        assert state.scalars["counter"] == 8


class TestLoweringErrors:
    def test_unknown_name(self):
        with pytest.raises(LoweringError):
            lower("uint32_t x = nothing; pkt->send();")

    def test_unknown_method(self):
        with pytest.raises(LoweringError):
            lower("pkt->fly(); pkt->send();")

    def test_call_inside_logical_operator_rejected(self):
        with pytest.raises(LoweringError):
            lower(
                "uint16_t k = 1;"
                " if (t.contains(&k) && 1) { pkt->send(); } else { pkt->drop(); }",
                members="HashMap<uint16_t, uint32_t> t;",
            )

    def test_uninitialized_pointer_rejected(self):
        with pytest.raises(LoweringError):
            lower("iphdr *ip; pkt->send();")
