"""Packet-region aliasing in dependency locations.

Click's ``transport_header()`` exposes one L4 view: TCP and UDP port
fields share byte offsets, and the interpreter honours the aliasing.
Dependency analysis must therefore treat ``tcp`` and ``udp`` as the same
location, or the partitioner can reorder a load of one protocol's view
past a store to the other's (difftest corpus ``l4_alias_hoist``).
"""

from repro.ir.values import (
    HEADER_REGIONS,
    LocKind,
    Location,
    aliased_packet_region,
)


def test_tcp_udp_collapse_to_l4():
    assert aliased_packet_region("tcp") == "l4"
    assert aliased_packet_region("udp") == "l4"
    assert Location.packet("tcp") == Location.packet("udp")


def test_other_regions_unchanged():
    for region in ("eth", "ip", "payload", "meta"):
        assert aliased_packet_region(region) == region
        assert Location.packet(region).name == region


def test_location_kind_preserved():
    loc = Location.packet("tcp")
    assert loc.kind is LocKind.PACKET
    assert loc.is_packet and not loc.is_global


def test_header_regions_still_name_both_protocols():
    """The raw region list is unchanged — only dependency locations fold."""
    assert "tcp" in HEADER_REGIONS and "udp" in HEADER_REGIONS
