"""The compiled fast-path engine vs. the IR interpreter (the oracle).

``repro.ir.compile`` specializes each lowered function into per-block
Python closures; these tests pin its contract: byte-identical results —
verdict, egress, step counts, executed instruction ids, final register
environment, packet bytes, and state journal — on every program, plus
the edge semantics (undefined registers, step limits, deep-trace
fallback) that are easy to lose in specialization.
"""

import pytest

from repro.ir import instructions as irin
from repro.ir.builder import FunctionBuilder
from repro.ir.compile import CompiledFunction, compile_function
from repro.ir.externs import ExternHost
from repro.ir.interp import (
    Interpreter,
    InterpreterError,
    PacketView,
    StateStore,
)
from repro.ir.values import Const, Reg
from repro.lang.types import UINT32
from repro.workloads import IperfWorkload, middlebox_stream
from tests.conftest import get_bundle
from tests.ir.test_interp import lower


def both_ways(lowered, packets, collect_ids=True):
    """Run ``lowered.process`` through interpreter and compiled engine on
    the same stream with independent state; return the paired results."""
    states = [StateStore(lowered.state), StateStore(lowered.state)]
    for state in states:
        if lowered.configure is not None:
            Interpreter(lowered.configure, state, ExternHost()).run()
        state.drain_journal()
    compiled = compile_function(lowered.process)
    pairs = []
    for packet, port in packets:
        left, right = packet.copy(), packet.copy()
        left.ingress_port = right.ingress_port = port
        a = Interpreter(lowered.process, states[0], ExternHost()).run(
            PacketView(left), collect_ids=collect_ids
        )
        b = compiled.run(
            states[1], ExternHost(), packet=PacketView(right),
            collect_ids=collect_ids,
        )
        pairs.append((a, b, left, right))
    return pairs, states


class TestBundledMiddleboxEquivalence:
    def test_byte_identical_on_stream(self, middlebox_name):
        lowered = get_bundle(middlebox_name).lowered
        from itertools import islice

        stream = list(
            islice(middlebox_stream(middlebox_name, IperfWorkload()), 60)
        )
        pairs, states = both_ways(lowered, stream)
        for a, b, left, right in pairs:
            assert a.verdict == b.verdict
            assert a.egress_port == b.egress_port
            assert a.instructions_executed == b.instructions_executed
            assert a.executed_ids == b.executed_ids
            assert a.env == b.env
            assert left.pack() == right.pack()
        assert states[0].drain_journal() == states[1].drain_journal()
        assert states[0].snapshot() == states[1].snapshot()


class TestCompiledEdgeSemantics:
    def test_undefined_register_message_matches(self):
        builder = FunctionBuilder("broken")
        dst = builder.fresh_temp(UINT32)
        builder.emit(irin.Assign(dst, Reg("ghost", UINT32)))
        builder.emit(irin.Return())
        with pytest.raises(InterpreterError) as interp_err:
            Interpreter(builder.function, StateStore({})).run()
        with pytest.raises(InterpreterError) as compiled_err:
            compile_function(builder.function).run(StateStore({}))
        assert str(interp_err.value) == str(compiled_err.value)

    def test_step_limit_message_matches(self):
        lowered = lower("while (1) { } pkt->send();")
        state = StateStore(lowered.state)
        with pytest.raises(InterpreterError) as interp_err:
            Interpreter(lowered.process, state).run()
        with pytest.raises(InterpreterError) as compiled_err:
            compile_function(lowered.process).run(StateStore(lowered.state))
        assert "step limit" in str(compiled_err.value)
        assert str(interp_err.value) == str(compiled_err.value)

    def test_packet_access_without_packet_raises(self):
        lowered = lower(
            "iphdr *ip = pkt->network_header(); ip->ttl = 1; pkt->send();"
        )
        with pytest.raises(InterpreterError, match="without a packet"):
            compile_function(lowered.process).run(StateStore(lowered.state))

    def test_compile_cache_reuses_object(self):
        lowered = lower("pkt->send();")
        assert compile_function(lowered.process) is compile_function(
            lowered.process
        )
        assert isinstance(compile_function(lowered.process), CompiledFunction)

    def test_fused_jump_chain_keeps_step_accounting(self):
        # if/else reconverges through jumps: superblock fusion must not
        # change the executed-id sequence or the step count.
        lowered = lower(
            "iphdr *ip = pkt->network_header();"
            " if (ip->ttl > 3) { ip->ttl = ip->ttl - 1; }"
            " else { ip->tos = 7; }"
            " ip->id = 99; pkt->send();"
        )
        from repro.net.addresses import ip as ip_addr
        from repro.net.headers import EthernetHeader, Ipv4Header, TcpHeader
        from repro.net.packet import RawPacket

        packet = RawPacket.make_tcp(
            EthernetHeader(),
            Ipv4Header(saddr=ip_addr("10.0.0.1"), daddr=ip_addr("10.0.0.2")),
            TcpHeader(sport=1, dport=2),
            b"x",
        )
        pairs, _ = both_ways(lowered, [(packet, 1)])
        a, b, _, _ = pairs[0]
        assert a.executed_ids == b.executed_ids
        assert a.instructions_executed == b.instructions_executed

    def test_deep_tracer_falls_back_to_interpreter(self):
        from repro.telemetry import Telemetry

        lowered = lower("pkt->drop();")
        telemetry = Telemetry(tracing=True, deep=True)
        state = StateStore(lowered.state)
        state.tracer = telemetry.tracer
        telemetry.tracer.begin_packet(0)
        result = compile_function(lowered.process).run(state)
        assert result.verdict == "drop"
        # Deep tracing demands one event per executed instruction — only
        # the interpreter emits those, so the fallback must have run.
        assert any(
            event.kind == "exec" for event in telemetry.tracer.events
        )


class TestGeneratedProgramEquivalence:
    def test_compiled_gauntlet_slice_is_clean(self):
        from repro.difftest import run_compiled_gauntlet

        stats, failures = run_compiled_gauntlet(runs=12, seed=101, packets=15)
        assert failures == []
        assert stats.diverge == 0
        assert stats.crash == 0
        assert stats.agree == 12
