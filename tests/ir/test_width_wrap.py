"""Width-wrap semantics across the three scalar-state implementations.

``StateStore`` (server), ``Register`` (switch), and ``SwitchStateAdapter``
(data-plane facade) must mask scalar writes to the declared member width
identically — a store of a near-2**width value that wraps on the switch
but not on the server silently diverges the replicated state.  These
tests pin the uniform behaviour: every write path masks, and width
handling is explicit (missing or mismatched widths are hard errors, not
a 32-bit fallback).
"""

import pytest

from repro.ir.instructions import BinOpKind
from repro.ir.interp import InterpreterError, StateStore
from repro.switchsim.pipeline import DataPlaneViolation, SwitchStateAdapter
from repro.switchsim.registers import Register
from repro.switchsim.tables import ExactMatchTable
from tests.ir.test_interp import lower, run

WIDTHS = [8, 16, 32]


def make_state(width: int) -> StateStore:
    lowered = lower("pkt->send();", members=f"uint{width}_t ctr;")
    return StateStore(lowered.state)


class TestStoreScalarMasksToMemberWidth:
    @pytest.mark.parametrize("width", WIDTHS)
    def test_near_boundary_store_wraps(self, width):
        state = make_state(width)
        state.store_scalar("ctr", (1 << width) + 5)
        assert state.scalars["ctr"] == 5
        # The journal carries the masked value: it is what replication
        # writes to the switch register, so it must already be wrapped.
        assert state.journal[-1] == ("store", "ctr", (), 5)

    @pytest.mark.parametrize("width", WIDTHS)
    def test_max_value_kept_and_wrap_to_zero(self, width):
        state = make_state(width)
        state.store_scalar("ctr", (1 << width) - 1)
        assert state.scalars["ctr"] == (1 << width) - 1
        state.store_scalar("ctr", 1 << width)
        assert state.scalars["ctr"] == 0

    def test_lowered_narrow_counter_wraps(self):
        _, _, state = run(
            "ctr = ctr + 255 + 2; pkt->send();", members="uint8_t ctr;"
        )
        assert state.scalars["ctr"] == 1

    def test_missing_width_is_a_hard_error(self):
        state = StateStore({})
        with pytest.raises(InterpreterError, match="no resolvable width"):
            state.store_scalar("ghost", 1)


class TestRmwScalarWidths:
    def test_rmw_wraps_at_member_width(self):
        state = make_state(8)
        state.store_scalar("ctr", 250)
        old = state.rmw_scalar("ctr", BinOpKind.ADD, 10, 8)
        assert old == 250
        assert state.scalars["ctr"] == 4

    def test_rmw_width_mismatch_raises(self):
        state = make_state(16)
        with pytest.raises(InterpreterError, match="does not match"):
            state.rmw_scalar("ctr", BinOpKind.ADD, 1, 32)

    def test_rmw_missing_width_member_is_a_hard_error(self):
        state = StateStore({})
        with pytest.raises(InterpreterError, match="no resolvable width"):
            state.rmw_scalar("ghost", BinOpKind.ADD, 1, 32)

    def test_adapter_rmw_width_mismatch_raises(self):
        adapter = SwitchStateAdapter({}, {"r": Register("r", 16)})
        adapter.begin_traversal()
        with pytest.raises(DataPlaneViolation, match="width"):
            adapter.rmw_scalar("r", BinOpKind.ADD, 1, 32)


class TestUniformityAcrossImplementations:
    @pytest.mark.parametrize("width", WIDTHS)
    @pytest.mark.parametrize(
        "value", [0, 5, (1 << 8) + 3, (1 << 16) + 3, (1 << 32) + 3]
    )
    def test_store_matches_register_control_write(self, width, value):
        state = make_state(width)
        state.store_scalar("ctr", value)
        register = Register("r", width)
        register.control_write(value)
        assert state.scalars["ctr"] == register.value

    @pytest.mark.parametrize("width", WIDTHS)
    def test_rmw_matches_switch_register_rmw(self, width):
        start, operand = (1 << width) - 3, 10
        state = make_state(width)
        state.store_scalar("ctr", start)
        state.rmw_scalar("ctr", BinOpKind.ADD, operand, width)

        register = Register("r", width)
        register.control_write(start)
        adapter = SwitchStateAdapter({}, {"r": register})
        adapter.begin_traversal()
        adapter.rmw_scalar("r", BinOpKind.ADD, operand, width)

        assert state.scalars["ctr"] == register.value


# -- miss / out-of-range semantics, server vs. switch ------------------------


def _server_state():
    lowered = lower(
        "pkt->send();",
        members="HashMap<uint32_t, uint32_t> m; Vector<uint32_t> v;",
    )
    state = StateStore(lowered.state)
    state.map_insert("m", (3,), 33)
    state.vector_push("v", 7)
    return state


def _switch_state():
    table = ExactMatchTable("m", [32], 32, 16)
    table.stage((3,), 33)
    table.set_visibility(True)
    table.fold_writeback()
    table.set_visibility(False)
    vector = ExactMatchTable("v", [32], 32, 16)
    vector.stage((0,), 7)
    vector.set_visibility(True)
    vector.fold_writeback()
    vector.set_visibility(False)
    adapter = SwitchStateAdapter({"m": table, "v": vector}, {})
    adapter.begin_traversal()
    return adapter


@pytest.fixture(params=["server", "switch"])
def state_impl(request):
    return _server_state() if request.param == "server" else _switch_state()


class TestMissSemanticsPinnedAcrossImplementations:
    """Misses and out-of-range reads return 0 on *both* sides — the
    compiled switch pipeline relies on tables defaulting to 0, so the
    server interpreter must do the same or punted packets diverge."""

    def test_map_hit(self, state_impl):
        assert state_impl.map_find("m", (3,)) == (True, 33)

    def test_map_miss_returns_false_zero(self, state_impl):
        assert state_impl.map_find("m", (4,)) == (False, 0)

    def test_vector_get_in_range(self, state_impl):
        assert state_impl.vector_get("v", 0) == 7

    @pytest.mark.parametrize("index", [1, 100])
    def test_vector_get_out_of_range_returns_zero(self, state_impl, index):
        assert state_impl.vector_get("v", index) == 0
