"""Tests for traffic generation: packets, iperf streams, CONGA sampling."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.headers import IPPROTO_TCP, IPPROTO_UDP, TcpFlags
from repro.workloads.conga import (
    DATA_MINING,
    DISTRIBUTIONS,
    ENTERPRISE,
    packets_in_flow,
    sample_flow_sizes,
)
from repro.workloads.iperf import IperfWorkload, middlebox_stream
from repro.workloads.packets import FlowSpec, flow_packets, make_tcp_packet


class TestFlowPackets:
    def test_tcp_flow_structure(self):
        spec = FlowSpec("1.1.1.1", "2.2.2.2", 10, 20, data_packets=3)
        packets = list(flow_packets(spec))
        assert len(packets) == 5
        assert packets[0].tcp.flags & TcpFlags.SYN
        assert packets[-1].tcp.flags & TcpFlags.FIN
        assert all(p.tcp.sport == 10 for p in packets)

    def test_udp_flow_has_no_control_packets(self):
        spec = FlowSpec("1.1.1.1", "2.2.2.2", 10, 20, data_packets=3,
                        protocol=IPPROTO_UDP)
        packets = list(flow_packets(spec))
        assert len(packets) == 3
        assert all(p.udp is not None for p in packets)

    def test_packet_count_helper(self):
        assert FlowSpec("a", "b", 1, 2, data_packets=5).packet_count() == 7

    def test_payload_size(self):
        spec = FlowSpec("1.1.1.1", "2.2.2.2", 10, 20, data_packets=1,
                        payload_size=100)
        data = list(flow_packets(spec))[1]
        assert len(data.payload) == 100


class TestIperfWorkload:
    def test_payload_from_packet_size(self):
        assert IperfWorkload(packet_size=1500).payload_size == 1446
        assert IperfWorkload(packet_size=54).payload_size == 0

    def test_flows_distinct_sources(self):
        flows = IperfWorkload(connections=10).flows()
        assert len({f.saddr for f in flows}) == 10

    @pytest.mark.parametrize(
        "name", ["minilb", "mazunat", "lb", "firewall", "proxy", "trojan"]
    )
    def test_stream_packets_have_ingress(self, name):
        workload = IperfWorkload(connections=2, packets_per_connection=3)
        stream = list(middlebox_stream(name, workload))
        assert stream
        assert all(ingress in (1, 2) for _, ingress in stream)

    def test_unknown_middlebox_rejected(self):
        with pytest.raises(KeyError):
            list(middlebox_stream("nope", IperfWorkload()))


class TestCongaDistributions:
    def test_ninety_percent_small(self):
        """Paper: 90% of flows in both workloads are < 10 packets."""
        for distribution in (ENTERPRISE, DATA_MINING):
            sizes = sample_flow_sizes(distribution, 5000, seed=1)
            small = sum(1 for s in sizes if packets_in_flow(s) <= 10)
            assert small / len(sizes) >= 0.85, distribution.name

    def test_datamining_tail_heavier(self):
        """Paper §6.3: the data-mining workload's long flows are longer."""
        enterprise = sample_flow_sizes(ENTERPRISE, 20000, seed=2)
        datamining = sample_flow_sizes(DATA_MINING, 20000, seed=2)
        assert max(datamining) > max(enterprise)
        top_e = sorted(enterprise)[-100:]
        top_d = sorted(datamining)[-100:]
        assert sum(top_d) > sum(top_e)

    def test_sampling_deterministic_by_seed(self):
        a = sample_flow_sizes(ENTERPRISE, 100, seed=5)
        b = sample_flow_sizes(ENTERPRISE, 100, seed=5)
        assert a == b

    def test_sample_within_knot_bounds(self):
        rng = random.Random(0)
        for _ in range(1000):
            size = ENTERPRISE.sample(rng)
            assert 100 <= size <= 100_000_000

    @given(st.integers(0, 10**9))
    @settings(max_examples=50)
    def test_packets_in_flow_positive(self, size):
        assert packets_in_flow(size) >= 1

    def test_mean_estimate_sane(self):
        assert DATA_MINING.mean_estimate(2000) > ENTERPRISE.mean_estimate(2000)

    def test_distribution_registry(self):
        assert set(DISTRIBUTIONS) == {"enterprise", "datamining"}
