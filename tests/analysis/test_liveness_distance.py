"""Tests for liveness, transfer sets, and dependency distances."""

from repro.analysis.depgraph import build_dependency_graph
from repro.analysis.distance import dependency_distances
from repro.analysis.liveness import (
    compute_liveness,
    live_ranges,
    peak_live_bytes,
    transfer_variables,
)
from repro.ir import lower_program
from repro.ir import instructions as irin
from repro.lang import parse_program


def lower(statements: str, members: str = ""):
    source = (
        f"class T {{ {members} void process(Packet *pkt) {{ {statements} }} }};"
    )
    return lower_program(parse_program(source))


class TestLiveness:
    def test_straight_line_live_in_empty_at_entry(self):
        lowered = lower("uint32_t a = 1; uint32_t b = a; pkt->send();")
        info = compute_liveness(lowered.process)
        assert info.live_at_entry(lowered.process.entry) == set()

    def test_branch_condition_live_into_blocks(self):
        lowered = lower(
            "uint32_t a = 1;"
            " if (a) { uint32_t b = a + 1; pkt->send(); } else { pkt->drop(); }"
        )
        info = compute_liveness(lowered.process)
        function = lowered.process
        then_blocks = [
            name for name in function.blocks if name.startswith("then")
        ]
        # `a` is used inside the then block, so it is live into it.
        assert any(
            any(n.startswith("a.") for n in info.live_in[name])
            for name in then_blocks
        )

    def test_live_ranges_cover_first_to_last_use(self):
        lowered = lower(
            "uint32_t a = 1; uint32_t b = 2; uint32_t c = a + b; pkt->send();"
        )
        ranges = live_ranges(lowered.process)
        a_name = next(n for n in ranges if n.startswith("a."))
        first, last = ranges[a_name]
        assert first < last

    def test_peak_live_bytes_positive(self):
        lowered = lower("uint32_t a = 1; uint32_t b = a; pkt->send();")
        assert peak_live_bytes(lowered.process) >= 4


class TestTransferVariables:
    def test_defs_intersect_uses(self):
        lowered = lower(
            "uint32_t a = 1; uint32_t b = a + 2; uint32_t c = b + 3;"
            " pkt->send();"
        )
        insts = list(lowered.process.instructions())
        first_half = insts[: len(insts) // 2]
        second_half = insts[len(insts) // 2 :]
        regs = transfer_variables(first_half, second_half)
        produced = set()
        for inst in first_half:
            if inst.result() is not None:
                produced.add(inst.result().name)
        assert all(reg.name in produced for reg in regs)

    def test_empty_when_no_overlap(self):
        lowered = lower("uint32_t a = 1; pkt->send();")
        insts = list(lowered.process.instructions())
        assert transfer_variables(insts, []) == []


class TestDependencyDistance:
    def test_chain_lengths_monotone(self):
        lowered = lower(
            "uint32_t a = 1; uint32_t b = a + 1; uint32_t c = b + 1;"
            " pkt->send();"
        )
        graph = build_dependency_graph(lowered.process)
        from_entry, to_exit = dependency_distances(graph)
        binops = [
            i for i in graph.instructions
            if isinstance(i, irin.BinOp)
        ]
        assert from_entry[binops[0].id] < from_entry[binops[1].id]
        assert to_exit[binops[0].id] > to_exit[binops[1].id]

    def test_copies_are_free(self):
        """Assign/Cast cost no pipeline stage."""
        lowered = lower(
            "uint32_t a = 1; uint32_t b = a; uint32_t c = b; pkt->send();"
        )
        graph = build_dependency_graph(lowered.process)
        from_entry, _ = dependency_distances(graph)
        assigns = [
            i for i in graph.instructions if isinstance(i, irin.Assign)
        ]
        # Pure copy chains do not grow the stage count.
        assert max(from_entry[a.id] for a in assigns) <= 1

    def test_loop_instructions_get_sentinel(self):
        lowered = lower(
            "uint32_t i = 0; while (i < 2) { i += 1; } pkt->send();"
        )
        graph = build_dependency_graph(lowered.process)
        from_entry, _ = dependency_distances(graph)
        cyclic = [
            i for i in graph.instructions if graph.self_dependent(i)
        ]
        assert cyclic
        assert all(from_entry[i.id] >= 10**9 for i in cyclic)

    def test_table_lookup_costs_a_stage(self):
        lowered = lower(
            "uint16_t k = 1; uint32_t *v = t.find(&k);"
            " if (v != NULL) { pkt->send(); } else { pkt->drop(); }",
            members="HashMap<uint16_t, uint32_t> t;",
        )
        graph = build_dependency_graph(lowered.process)
        from_entry, _ = dependency_distances(graph)
        find = next(
            i for i in graph.instructions if isinstance(i, irin.MapFind)
        )
        assert from_entry[find.id] >= 1
