"""Tests for dependency extraction (paper §4.1, Figure 3)."""

import pytest

from repro.analysis.depgraph import DependencyKind, build_dependency_graph
from repro.analysis.reachability import compute_reachability
from repro.ir import instructions as irin
from repro.ir import lower_program
from repro.lang import parse_program
from tests.conftest import MINILB_SOURCE, get_bundle


def lower(statements: str, members: str = ""):
    source = (
        f"class T {{ {members} void process(Packet *pkt) {{ {statements} }} }};"
    )
    return lower_program(parse_program(source))


def find_inst(graph, predicate):
    return next(i for i in graph.instructions if predicate(i))


class TestCanHappenAfter:
    def test_straight_line_order(self):
        lowered = lower(
            "uint32_t a = 1; uint32_t b = a + 1; pkt->send();"
        )
        info = compute_reachability(lowered.process)
        insts = list(lowered.process.instructions())
        assert info.can_happen_after(insts[0], insts[1])
        assert not info.can_happen_after(insts[1], insts[0])

    def test_exclusive_branches_unordered(self):
        lowered = lower(
            "uint32_t a = 1;"
            " if (a) { pkt->send(); } else { pkt->drop(); }"
        )
        info = compute_reachability(lowered.process)
        send = find_inst(
            build_dependency_graph(lowered.process),
            lambda i: isinstance(i, irin.Send),
        )
        drop = find_inst(
            build_dependency_graph(lowered.process),
            lambda i: isinstance(i, irin.Drop),
        )
        assert not info.can_happen_after(send, drop)
        assert not info.can_happen_after(drop, send)

    def test_loop_instruction_after_itself(self):
        lowered = lower(
            "uint32_t i = 0; while (i < 3) { i += 1; } pkt->send();"
        )
        info = compute_reachability(lowered.process)
        graph = build_dependency_graph(lowered.process)
        increment = find_inst(
            graph,
            lambda i: isinstance(i, irin.BinOp)
            and i.op is irin.BinOpKind.ADD,
        )
        assert info.can_happen_after(increment, increment)
        assert graph.self_dependent(increment)


class TestDependencyKinds:
    def test_data_dependency_raw(self):
        lowered = lower("uint32_t a = 1; uint32_t b = a + 1; pkt->send();")
        graph = build_dependency_graph(lowered.process)
        assign_a = find_inst(
            graph,
            lambda i: isinstance(i, irin.Assign)
            and i.dst.name.startswith("a."),
        )
        add = find_inst(
            graph,
            lambda i: isinstance(i, irin.BinOp) and i.op is irin.BinOpKind.ADD,
        )
        assert DependencyKind.DATA in graph.edge_kinds(assign_a, add)

    def test_anti_dependency_war(self):
        """find reads the map, insert writes it: insert depends on find."""
        lowered = lower(
            "uint16_t k = 1; uint32_t *v = t.find(&k);"
            " uint32_t nv = 5; t.insert(&k, &nv);"
            " pkt->send();",
            members="HashMap<uint16_t, uint32_t> t;",
        )
        graph = build_dependency_graph(lowered.process)
        find = find_inst(graph, lambda i: isinstance(i, irin.MapFind))
        insert = find_inst(graph, lambda i: isinstance(i, irin.MapInsert))
        assert DependencyKind.ANTI in graph.edge_kinds(find, insert)

    def test_control_dependency(self):
        lowered = lower(
            "uint32_t a = 1;"
            " if (a) { uint32_t b = 2; pkt->send(); } else { pkt->drop(); }"
        )
        graph = build_dependency_graph(lowered.process)
        branch = find_inst(graph, lambda i: isinstance(i, irin.Branch))
        guarded = find_inst(
            graph,
            lambda i: isinstance(i, irin.Assign)
            and i.dst.name.startswith("b."),
        )
        assert DependencyKind.CONTROL in graph.edge_kinds(branch, guarded)

    def test_output_commit_edge(self):
        """A global-state mutation orders before every reachable verdict."""
        lowered = lower(
            "uint16_t k = 1; uint32_t v = 2; t.insert(&k, &v); pkt->send();",
            members="HashMap<uint16_t, uint32_t> t;",
        )
        graph = build_dependency_graph(lowered.process)
        insert = find_inst(graph, lambda i: isinstance(i, irin.MapInsert))
        send = find_inst(graph, lambda i: isinstance(i, irin.Send))
        assert DependencyKind.OUTPUT_COMMIT in graph.edge_kinds(insert, send)

    def test_no_output_commit_to_unreachable_verdict(self):
        lowered = lower(
            "uint32_t a = 1;"
            " if (a) { pkt->send(); }"
            " else { uint16_t k = 1; uint32_t v = 2; t.insert(&k, &v);"
            " pkt->send(); }",
            members="HashMap<uint16_t, uint32_t> t;",
        )
        graph = build_dependency_graph(lowered.process)
        insert = find_inst(graph, lambda i: isinstance(i, irin.MapInsert))
        sends = [i for i in graph.instructions if isinstance(i, irin.Send)]
        reachable_edges = [
            graph.edge_kinds(insert, send) for send in sends
        ]
        with_edge = [
            kinds for kinds in reachable_edges
            if DependencyKind.OUTPUT_COMMIT in kinds
        ]
        assert len(with_edge) == 1  # only the same-branch send

    def test_header_write_before_send_is_data_dep(self):
        lowered = lower(
            "iphdr *ip = pkt->network_header(); ip->ttl = 9; pkt->send();"
        )
        graph = build_dependency_graph(lowered.process)
        store = find_inst(graph, lambda i: isinstance(i, irin.StorePacketField))
        send = find_inst(graph, lambda i: isinstance(i, irin.Send))
        assert DependencyKind.DATA in graph.edge_kinds(store, send)


class TestMiniLBFigure3:
    """The MiniLB dependency graph must reproduce the paper's Figure 3."""

    @pytest.fixture(scope="class")
    def graph(self):
        return build_dependency_graph(get_bundle("minilb").lowered.process)

    def test_statement_edges_exist(self, graph):
        """Key statement-level edges from Figure 3.

        Statement ids are assigned when a statement finishes parsing, so
        compound statements get ids after their children: 0 decl ip_hdr
        (folded into pointer analysis), 1 hash32, 2 key, 3 find,
        4 daddr=*bk, 5 send(hit), 6 idx, 7 bk2, 8 daddr=bk2, 9 insert,
        10 send(miss), 11 the if itself.
        """
        edges = graph.statement_edges()
        assert (1, 2) in edges  # hash32 -> key
        assert (2, 3) in edges  # key -> find
        assert (1, 6) in edges  # hash32 -> idx (miss path)
        assert (3, 11) in edges  # find -> branch condition
        assert (7, 8) in edges  # backends[idx] -> daddr rewrite
        assert (2, 9) in edges  # key -> insert
        assert (9, 10) in edges  # insert -> send (output commit)
        assert (11, 4) in edges  # branch -> hit-path rewrite (control)

    def test_insert_orders_before_miss_send(self, graph):
        insert = find_inst(graph, lambda i: isinstance(i, irin.MapInsert))
        sends = [i for i in graph.instructions if isinstance(i, irin.Send)]
        assert any(
            DependencyKind.OUTPUT_COMMIT in graph.edge_kinds(insert, send)
            for send in sends
        )

    def test_find_transitively_reaches_both_sends(self, graph):
        find = find_inst(graph, lambda i: isinstance(i, irin.MapFind))
        sends = [i for i in graph.instructions if isinstance(i, irin.Send)]
        assert all(graph.depends_transitively(send, find) for send in sends)

    def test_no_self_dependencies_in_minilb(self, graph):
        assert not any(graph.self_dependent(i) for i in graph.instructions)
