"""Per-middlebox offload results must match the paper's §6.2 narrative."""

import pytest

from repro.ir import instructions as irin
from repro.partition.labels import Partition
from repro.partition.plan import PlacementKind
from tests.conftest import get_bundle, get_compiled


class TestMazuNAT:
    """§6.2: 'MazuNAT's address translation tables ... are offloaded to the
    programmable switch. Besides that, the counter used for port allocation
    is also offloaded to the switch as a P4 register.'"""

    @pytest.fixture(scope="class")
    def plan(self):
        return get_compiled("mazunat").plan

    def test_translation_tables_on_switch(self, plan):
        for table in ("nat_out", "rev_addr", "rev_port"):
            assert plan.placements[table].kind is PlacementKind.REPLICATED_TABLE

    def test_counter_is_register(self, plan):
        assert (
            plan.placements["port_counter"].kind
            is PlacementKind.SWITCH_REGISTER
        )

    def test_counter_value_travels_in_shim(self, plan):
        """'the pre-processing code will pack the current counter value into
        the packet header and send it to the middlebox server'."""
        names = plan.to_server.names()
        assert any(
            name.startswith(("new_port", "ticket", "t"))
            for name in names
        )
        # The RMW runs on the switch...
        rmw = next(
            i for i in plan.middlebox.process.instructions()
            if isinstance(i, irin.RegisterRMW)
        )
        assert plan.assignment[rmw.id] is Partition.PRE
        # ...and the inserts on the server.
        for insert in plan.middlebox.process.instructions():
            if isinstance(insert, irin.MapInsert):
                assert plan.assignment[insert.id] is Partition.NON_OFF

    def test_annotation_bounds_table(self, plan):
        assert plan.placements["nat_out"].entries == 65536


class TestLoadBalancer:
    """§6.2: 'the connection consistency map is stored in the switch. New
    incoming connections and packets with TCP control flags (RST and FIN)
    will be forwarded to the middlebox server.'"""

    @pytest.fixture(scope="class")
    def plan(self):
        return get_compiled("lb").plan

    def test_conn_map_on_switch(self, plan):
        assert plan.placements["conn_map"].kind is PlacementKind.REPLICATED_TABLE

    def test_timestamps_stay_on_server(self, plan):
        assert plan.placements["conn_ts"].kind is PlacementKind.SERVER_ONLY

    def test_backend_list_on_server(self, plan):
        # backends.size() has no switch implementation, and new-connection
        # assignment runs on the server anyway.
        assert plan.placements["backends"].kind is PlacementKind.SERVER_ONLY

    def test_exactly_one_offloaded_conn_map_lookup(self, plan):
        finds = [
            i for i in plan.middlebox.process.instructions()
            if isinstance(i, irin.MapFind) and i.state == "conn_map"
        ]
        offloaded = [
            f for f in finds if plan.assignment[f.id] is not Partition.NON_OFF
        ]
        assert len(finds) == 2  # data path + teardown path
        assert len(offloaded) == 1


class TestFirewall:
    """§6.2: two match-action tables filter both directions; the
    non-offloaded code is only rule construction."""

    def test_both_whitelists_plain_switch_tables(self):
        plan = get_compiled("firewall").plan
        assert plan.placements["wl_out"].kind is PlacementKind.SWITCH_TABLE
        assert plan.placements["wl_in"].kind is PlacementKind.SWITCH_TABLE

    def test_packet_path_fully_offloaded(self):
        plan = get_compiled("firewall").plan
        assert plan.counts()["non_off"] == 0

    def test_rule_construction_in_configure(self):
        bundle = get_bundle("firewall")
        assert bundle.lowered.configure is not None
        inserts = [
            i for i in bundle.lowered.configure.instructions()
            if isinstance(i, irin.MapInsert)
        ]
        assert len(inserts) == 2  # one per direction table


class TestProxy:
    """§6.2: one match-action table checks the TCP destination port and a
    rewrite action redirects to the web proxy."""

    def test_port_table_and_registers(self):
        plan = get_compiled("proxy").plan
        assert plan.placements["proxy_ports"].kind is PlacementKind.SWITCH_TABLE
        assert (
            plan.placements["proxy_addr"].kind is PlacementKind.SWITCH_REGISTER
        )

    def test_fully_offloaded(self):
        plan = get_compiled("proxy").plan
        assert plan.counts()["non_off"] == 0
        assert plan.offloaded_fraction() == 1.0


class TestTrojanDetector:
    """§6.2: the TCP flow state table lives on the switch; control packets
    and DPI-requiring requests go to the server."""

    @pytest.fixture(scope="class")
    def plan(self):
        return get_compiled("trojan").plan

    def test_flow_table_on_switch(self, plan):
        assert plan.placements["flows"].kind is PlacementKind.REPLICATED_TABLE

    def test_host_state_readable_on_switch(self, plan):
        assert plan.placements["host_state"].on_switch

    def test_dpi_loop_on_server(self, plan):
        """The byte-scanning loop has no P4 counterpart (rule 5)."""
        extern_calls = [
            i for i in plan.middlebox.process.instructions()
            if isinstance(i, irin.ExternCall)
            and i.name in ("payload_len", "payload_byte")
        ]
        assert extern_calls
        assert all(
            plan.assignment[c.id] is Partition.NON_OFF for c in extern_calls
        )

    def test_flow_inserts_on_server(self, plan):
        for inst in plan.middlebox.process.instructions():
            if isinstance(inst, (irin.MapInsert, irin.MapErase)):
                assert plan.assignment[inst.id] is Partition.NON_OFF


class TestCompilationStability:
    def test_deterministic_partitioning(self, middlebox_name):
        """Compiling twice yields identical partition counts and shims."""
        from repro.compiler import compile_lowered
        from repro.middleboxes import load

        first = compile_lowered(load(middlebox_name).lowered)
        second = compile_lowered(load(middlebox_name).lowered)
        assert first.plan.counts() == second.plan.counts()
        assert first.plan.to_server.names() == second.plan.to_server.names()
        assert (
            first.shim_to_server.field_names()
            == second.shim_to_server.field_names()
        )
