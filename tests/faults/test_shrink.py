"""Unit tests for the fault-plan delta-debugger (``faults --shrink``)."""

import pytest

from repro.difftest.generator import generate_program
from repro.difftest.oracle import StreamSpec
from repro.faults import (
    BatchFault,
    FaultPlan,
    LinkFault,
    ServerCrash,
    shrink_fault_case,
    shrink_plan,
)
from repro.faults.shrink import _spec_variants

PROGRAM = generate_program(1)
STREAM = StreamSpec(seed=1, count=20)


def test_spec_variants_are_strictly_smaller():
    spec = LinkFault(probability=0.4, start=2, stop=18)
    variants = _spec_variants(spec, STREAM.count)
    assert variants
    assert spec not in variants
    assert any(v.probability == 0.2 for v in variants)
    assert any(v.stop - v.start < 16 for v in variants)


def test_spec_variants_respect_probability_floor():
    spec = LinkFault(probability=0.015)
    assert all(
        v.probability >= 0.01 or v.probability == spec.probability
        for v in _spec_variants(spec, STREAM.count)
    )


def test_spec_variants_bound_open_windows():
    spec = BatchFault(probability=0.5, start=0, stop=None)
    variants = _spec_variants(spec, STREAM.count)
    assert any(v.stop == STREAM.count for v in variants)


def test_spec_variants_halve_outage():
    spec = ServerCrash(at_packet=4, outage=8)
    variants = _spec_variants(spec, STREAM.count)
    assert any(v.outage == 4 for v in variants)


def test_hint_variants_snap_window_to_divergent_packet():
    from repro.difftest.shrink import ShrinkHints
    from repro.faults.shrink import _hint_variants

    spec = LinkFault(probability=0.4, start=2, stop=18)
    variants = _hint_variants(spec, ShrinkHints(packet=5), STREAM.count)
    # Most aggressive candidate first: the one-packet window.
    assert variants[0].start == 5 and variants[0].stop == 6
    assert any(v.start == 2 and v.stop == 6 for v in variants)
    assert any(v.start == 5 and v.stop == 18 for v in variants)
    # A spec inactive at the divergent packet gets no snap candidates
    # (the snapped window could not reproduce the failure), and empty
    # hints degrade to blind behaviour.
    assert _hint_variants(spec, ShrinkHints(packet=1), STREAM.count) == []
    assert _hint_variants(spec, ShrinkHints(), STREAM.count) == []


def test_hint_variants_shorten_one_shot_effects():
    from repro.difftest.shrink import ShrinkHints
    from repro.faults.shrink import _hint_variants

    spec = ServerCrash(at_packet=2, outage=8)
    variants = _hint_variants(spec, ShrinkHints(packet=3), STREAM.count)
    # Just long enough for the outage to still cover the divergence.
    assert any(v.outage == 2 for v in variants)
    # A divergence index outside the stream is a stale hint: ignore it.
    assert _hint_variants(spec, ShrinkHints(packet=25), STREAM.count) == []


def test_shrink_plan_drops_irrelevant_specs():
    plan = FaultPlan(faults=(
        LinkFault(probability=0.3),
        ServerCrash(at_packet=5, outage=6),
        BatchFault(probability=0.4),
    ))

    def crash_matters(program, stream, candidate):
        return any(spec.kind == "crash" for spec in candidate.faults)

    shrunk = shrink_plan(PROGRAM, STREAM, plan, crash_matters)
    assert [spec.kind for spec in shrunk.faults] == ["crash"]
    # and the surviving spec was narrowed as far as the predicate allows
    assert shrunk.by_kind("crash")[0].outage == 1


def test_shrink_fault_case_requires_failing_start():
    def never(program, stream, plan):
        return False

    with pytest.raises(ValueError):
        shrink_fault_case(PROGRAM, STREAM, FaultPlan(), never)


def test_shrink_fault_case_minimizes_all_three_axes():
    plan = FaultPlan(faults=(
        LinkFault(probability=0.4),
        BatchFault(probability=0.4),
    ))

    def link_survives(program, stream, candidate):
        return any(spec.kind == "link" for spec in candidate.faults)

    program, stream, shrunk = shrink_fault_case(
        PROGRAM, STREAM, plan, link_survives
    )
    assert [spec.kind for spec in shrunk.faults] == ["link"]
    # the difftest shrinker ran too: the program/stream only got smaller
    assert stream.count <= STREAM.count
    assert len(program.source()) <= len(PROGRAM.source())
    assert link_survives(program, stream, shrunk)


class TestTraceGuidedShrinking:
    """The first-divergent-event stream orders shrink candidates."""

    @staticmethod
    def _historical_entry():
        from repro.faults.corpus import load_corpus

        entries = {e.name: e for e in load_corpus()}
        return entries["timeout_then_fail_exhaustion"]

    @staticmethod
    def _historical_trace_diff():
        """The entry's provenance: the divergence was packet 0's update
        batch (see its description) — the minimal diff dict the campaign
        would have attached."""
        return {
            "divergent": True,
            "stream": "state member 'nat_out'",
            "rhs_event": {
                "seq": 4, "time_us": 1.0, "component": "control_plane",
                "kind": "map_insert", "packet": 0,
                "detail": {"name": "nat_out"},
            },
        }

    def test_guided_converges_in_fewer_oracle_calls(self):
        """Replaying the historical corpus scenario (plus the kind of
        late-window bystander spec the campaign generator attaches),
        the guided plan shrink reaches the same minimum with strictly
        fewer oracle invocations than blind ddmin order."""
        from repro.faults.oracle import FaultOutcome, run_fault_oracle

        entry = self._historical_entry()
        # The un-minimized shape: the two culprit batch specs plus an
        # irrelevant fault active long after the packet-0 divergence.
        plan = FaultPlan(faults=entry.fault_plan.faults + (
            LinkFault(direction="to_server", mode="loss",
                      probability=0.3, start=10, stop=14),
        ))

        class _Source:
            @staticmethod
            def source():
                return entry.source

        def count_calls(counter):
            def predicate(program, stream, candidate):
                counter.append(1)
                replay = run_fault_oracle(
                    entry.source, stream, candidate,
                    policy=entry.policy,
                    injector_seed=entry.injector_seed,
                    deployment_seed=entry.deployment_seed,
                    provenance=False,
                )
                if replay.outcome is not FaultOutcome.DEGRADED_OK:
                    return False
                # Both batch faults must still be firing.
                return (replay.injected.get("batch_timeout", 0) > 0
                        and replay.injected.get("batch_fail", 0) > 0)
            return predicate

        blind_calls, guided_calls = [], []
        blind = shrink_plan(
            _Source, entry.stream, plan, count_calls(blind_calls)
        )
        guided = shrink_plan(
            _Source, entry.stream, plan, count_calls(guided_calls),
            trace_diff=self._historical_trace_diff(),
        )
        assert blind == guided  # same minimum either way
        assert all(spec.kind == "batch" for spec in guided.faults)
        assert len(guided_calls) < len(blind_calls)

    def test_guided_narrowing_snaps_windows_in_fewer_oracle_calls(self):
        """Widen the historical culprit windows to the full stream; the
        guided shrink snaps each straight back onto the packet-0
        divergence while blind binary narrowing pays O(log window)
        predicate calls per window end."""
        import dataclasses

        from repro.faults.oracle import FaultOutcome, run_fault_oracle

        entry = self._historical_entry()
        plan = FaultPlan(faults=tuple(
            dataclasses.replace(spec, start=0, stop=None)
            for spec in entry.fault_plan.faults
        ))

        def count_calls(counter):
            def predicate(program, stream, candidate):
                counter.append(1)
                replay = run_fault_oracle(
                    entry.source, stream, candidate,
                    policy=entry.policy,
                    injector_seed=entry.injector_seed,
                    deployment_seed=entry.deployment_seed,
                    provenance=False,
                )
                if replay.outcome is not FaultOutcome.DEGRADED_OK:
                    return False
                return (replay.injected.get("batch_timeout", 0) > 0
                        and replay.injected.get("batch_fail", 0) > 0)
            return predicate

        blind_calls, guided_calls = [], []
        blind = shrink_plan(
            entry.source, entry.stream, plan, count_calls(blind_calls)
        )
        guided = shrink_plan(
            entry.source, entry.stream, plan, count_calls(guided_calls),
            trace_diff=self._historical_trace_diff(),
        )
        # Delta debugging only promises *a* local minimum: blind halving
        # wanders (its seeded faults can keep firing in some off-center
        # window at a tiny probability), while the snap recovers exactly
        # the corpus entry's one-packet windows at the divergence...
        assert [(s.start, s.stop) for s in guided.faults] == [
            (s.start, s.stop) for s in entry.fault_plan.faults
        ]
        assert all(len(b.faults) == 2 for b in (blind, guided))
        # ...with strictly fewer oracle invocations.
        assert len(guided_calls) < len(blind_calls)

    def test_specs_not_covering_divergent_packet_dropped_first(self):
        plan = FaultPlan(faults=(
            BatchFault(probability=1.0, start=0, stop=1),
            LinkFault(probability=0.5, start=10, stop=15),
        ))
        tried = []

        def record_first_candidate(program, stream, candidate):
            tried.append(tuple(spec.kind for spec in candidate.faults))
            return False  # nothing droppable; we only observe the order

        from repro.faults.shrink import _drop_one_spec
        from repro.difftest.shrink import ShrinkHints

        _drop_one_spec(PROGRAM, STREAM, plan, record_first_candidate,
                       ShrinkHints(packet=0))
        # First candidate drops the link spec (inactive at packet 0).
        assert tried[0] == ("batch",)


def test_shrink_predicate_turning_flaky_raises_value_error():
    """A predicate that stops reproducing mid-shrink surfaces as the same
    ValueError as a non-reproducing initial case; the campaign catches it
    and keeps the original reproducer rather than losing the report."""
    plan = FaultPlan(faults=(LinkFault(probability=0.4),))
    calls = []

    def explosive(program, stream, candidate):
        calls.append(candidate)
        if len(calls) == 1:
            return True  # initial case holds
        raise RuntimeError("oracle blew up")

    with pytest.raises(ValueError):
        shrink_fault_case(PROGRAM, STREAM, plan, explosive)
