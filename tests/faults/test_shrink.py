"""Unit tests for the fault-plan delta-debugger (``faults --shrink``)."""

import pytest

from repro.difftest.generator import generate_program
from repro.difftest.oracle import StreamSpec
from repro.faults import (
    BatchFault,
    FaultPlan,
    LinkFault,
    ServerCrash,
    shrink_fault_case,
    shrink_plan,
)
from repro.faults.shrink import _spec_variants

PROGRAM = generate_program(1)
STREAM = StreamSpec(seed=1, count=20)


def test_spec_variants_are_strictly_smaller():
    spec = LinkFault(probability=0.4, start=2, stop=18)
    variants = _spec_variants(spec, STREAM.count)
    assert variants
    assert spec not in variants
    assert any(v.probability == 0.2 for v in variants)
    assert any(v.stop - v.start < 16 for v in variants)


def test_spec_variants_respect_probability_floor():
    spec = LinkFault(probability=0.015)
    assert all(
        v.probability >= 0.01 or v.probability == spec.probability
        for v in _spec_variants(spec, STREAM.count)
    )


def test_spec_variants_bound_open_windows():
    spec = BatchFault(probability=0.5, start=0, stop=None)
    variants = _spec_variants(spec, STREAM.count)
    assert any(v.stop == STREAM.count for v in variants)


def test_spec_variants_halve_outage():
    spec = ServerCrash(at_packet=4, outage=8)
    variants = _spec_variants(spec, STREAM.count)
    assert any(v.outage == 4 for v in variants)


def test_shrink_plan_drops_irrelevant_specs():
    plan = FaultPlan(faults=(
        LinkFault(probability=0.3),
        ServerCrash(at_packet=5, outage=6),
        BatchFault(probability=0.4),
    ))

    def crash_matters(program, stream, candidate):
        return any(spec.kind == "crash" for spec in candidate.faults)

    shrunk = shrink_plan(PROGRAM, STREAM, plan, crash_matters)
    assert [spec.kind for spec in shrunk.faults] == ["crash"]
    # and the surviving spec was narrowed as far as the predicate allows
    assert shrunk.by_kind("crash")[0].outage == 1


def test_shrink_fault_case_requires_failing_start():
    def never(program, stream, plan):
        return False

    with pytest.raises(ValueError):
        shrink_fault_case(PROGRAM, STREAM, FaultPlan(), never)


def test_shrink_fault_case_minimizes_all_three_axes():
    plan = FaultPlan(faults=(
        LinkFault(probability=0.4),
        BatchFault(probability=0.4),
    ))

    def link_survives(program, stream, candidate):
        return any(spec.kind == "link" for spec in candidate.faults)

    program, stream, shrunk = shrink_fault_case(
        PROGRAM, STREAM, plan, link_survives
    )
    assert [spec.kind for spec in shrunk.faults] == ["link"]
    # the difftest shrinker ran too: the program/stream only got smaller
    assert stream.count <= STREAM.count
    assert len(program.source()) <= len(PROGRAM.source())
    assert link_survives(program, stream, shrunk)


def test_shrink_predicate_turning_flaky_raises_value_error():
    """A predicate that stops reproducing mid-shrink surfaces as the same
    ValueError as a non-reproducing initial case; the campaign catches it
    and keeps the original reproducer rather than losing the report."""
    plan = FaultPlan(faults=(LinkFault(probability=0.4),))
    calls = []

    def explosive(program, stream, candidate):
        calls.append(candidate)
        if len(calls) == 1:
            return True  # initial case holds
        raise RuntimeError("oracle blew up")

    with pytest.raises(ValueError):
        shrink_fault_case(PROGRAM, STREAM, plan, explosive)
