"""Deployment-level graceful degradation under injected faults.

Uses a small connection-tracking middlebox (first packet of a source
address punts and inserts into a replicated table; repeats fast-path) so
every fault interacts with real switch/server state.
"""

import pytest

from repro.difftest.oracle import _observe_fields
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    BatchFault,
    FaultPlan,
    LinkFault,
    PuntReorder,
    ServerCrash,
    StaleReplication,
    SwitchReprogram,
    WritebackOverflow,
)
from repro.runtime.degradation import DegradationPolicy, DropAccounting
from repro.runtime.deployment import GalliumMiddlebox, compile_middlebox
from repro.switchsim.control_plane import RetryPolicy
from repro.workloads.packets import make_tcp_packet

FAULTBOX = """
class FaultBox {
  // @gallium: max_entries=65536
  HashMap<uint32_t, uint32_t> conn;
  uint32_t ctr;

  void process(Packet *pkt) {
    iphdr *ip = pkt->network_header();
    uint32_t key = ip->saddr;
    uint32_t *hit = conn.find(&key);
    if (hit != NULL) {
      ip->tos = 1;
      pkt->send();
    } else {
      ctr += 1;
      uint32_t val = ctr;
      conn.insert(&key, &val);
      ip->tos = 2;
      pkt->send();
    }
  }
};
"""

COMPILED = compile_middlebox(FAULTBOX)


def deploy(plan=FaultPlan(), policy=None, injector_seed=0, seed=0):
    partition, program = COMPILED
    policy = policy or DegradationPolicy()
    middlebox = GalliumMiddlebox(
        partition, program, port_pairs={1: 2, 2: 1}, seed=seed,
        policy=policy,
        injector=FaultInjector(
            plan, seed=injector_seed,
            max_attempts=policy.retry.max_attempts,
        ),
    )
    middlebox.install()
    return middlebox


def packet(host: int):
    return make_tcp_packet(f"10.1.0.{host}", "9.9.9.9", 10, 80)


class TestPuntLoss:
    def test_fail_closed_drops_and_accounts(self):
        middlebox = deploy(FaultPlan((LinkFault(probability=1.0),)))
        journey = middlebox.process_packet(packet(1), 1)
        assert journey.verdict == "drop"
        assert journey.degraded and journey.degraded_reason == "punt_lost"
        assert middlebox.accounting.by_reason == {"punt_lost": 1}
        assert middlebox.accounting.failed_closed == 1

    def test_loss_is_unsalvageable_even_fail_open(self):
        # A lost frame cannot be forwarded by policy: it is gone.
        middlebox = deploy(
            FaultPlan((LinkFault(probability=1.0),)),
            policy=DegradationPolicy(fail_open=True),
        )
        journey = middlebox.process_packet(packet(1), 1)
        assert journey.verdict == "drop"

    def test_fast_path_unaffected(self):
        plan = FaultPlan((LinkFault(probability=1.0, start=1),))
        middlebox = deploy(plan)
        first = middlebox.process_packet(packet(1), 1)
        second = middlebox.process_packet(packet(1), 1)
        assert first.punted and not first.degraded
        assert second.fast_path and not second.degraded

    def test_return_loss_keeps_state_consistent(self):
        middlebox = deploy(
            FaultPlan((LinkFault(direction="to_switch", probability=1.0),))
        )
        journey = middlebox.process_packet(packet(1), 1)
        assert journey.verdict == "drop"
        assert journey.degraded_reason == "return_lost"
        # The state batch committed before the return frame vanished.
        assert middlebox.state.maps["conn"]
        assert (
            middlebox.switch.tables["conn"].snapshot()
            == middlebox.state.maps["conn"]
        )


class TestBatchFailure:
    def doomed(self, fail_open):
        return deploy(
            FaultPlan((BatchFault(probability=0.0, doom_probability=1.0),)),
            policy=DegradationPolicy(fail_open=fail_open),
        )

    def test_fail_closed_rolls_back_and_drops(self):
        middlebox = self.doomed(fail_open=False)
        journey = middlebox.process_packet(packet(1), 1)
        assert journey.verdict == "drop"
        assert journey.degraded_reason == "writeback_failed"
        assert journey.retries == middlebox.policy.retry.max_attempts - 1
        assert journey.retry_wait_us > 0
        # Server rolled back, switch never changed: still in lockstep.
        assert middlebox.state.maps["conn"] == {}
        assert middlebox.switch.tables["conn"].snapshot() == {}
        assert middlebox.state.scalars["ctr"] == 0

    def test_fail_open_forwards_pristine(self):
        middlebox = self.doomed(fail_open=True)
        original = packet(1)
        want_fields = _observe_fields(original.copy())
        journey = middlebox.process_packet(original, 1)
        assert journey.verdict == "send"
        assert journey.degraded_reason == "writeback_failed"
        [(port, emitted)] = journey.emitted
        assert port == 2  # the 1<->2 bypass pair
        # The middlebox's rewrite (tos=2) must NOT appear: fail-open
        # forwards the packet as received.
        assert _observe_fields(emitted) == want_fields

    def test_injected_overflow_reason(self):
        middlebox = deploy(FaultPlan((WritebackOverflow(probability=1.0),)))
        journey = middlebox.process_packet(packet(1), 1)
        assert journey.degraded_reason == "writeback_overflow"
        assert middlebox.state.maps["conn"] == {}

    def test_transient_failure_retries_and_recovers(self):
        plan = FaultPlan((BatchFault(mode="fail", probability=0.5),))
        middlebox = deploy(plan, injector_seed=4)
        retried = 0
        for host in range(1, 12):
            journey = middlebox.process_packet(packet(host), 1)
            retried += journey.retries
            if journey.retries and not journey.degraded:
                assert journey.retry_wait_us > 0
                assert journey.sync_wait_us >= journey.retry_wait_us
        assert retried > 0
        assert middlebox.switch.control_plane.batches_retried > 0


class TestServerCrash:
    def test_queue_then_drain(self):
        plan = FaultPlan((ServerCrash(at_packet=1, outage=2, lose_state=False),))
        middlebox = deploy(plan, policy=DegradationPolicy(punt_queue_depth=4))
        middlebox.process_packet(packet(1), 1)
        queued1 = middlebox.process_packet(packet(2), 1)
        queued2 = middlebox.process_packet(packet(3), 1)
        assert queued1.verdict == "queued" and queued2.verdict == "queued"
        assert middlebox.drain_deferred() == []
        after = middlebox.process_packet(packet(4), 1)  # window over
        assert not after.degraded
        deferred = middlebox.drain_deferred()
        assert sorted(j.packet_index for j in deferred) == [1, 2]
        assert all(j.verdict == "send" and j.queued for j in deferred)
        assert middlebox.accounting.queued == 2

    def test_queue_overflow_degrades(self):
        plan = FaultPlan((ServerCrash(at_packet=0, outage=50, lose_state=False),))
        middlebox = deploy(plan, policy=DegradationPolicy(punt_queue_depth=2))
        journeys = [middlebox.process_packet(packet(h), 1) for h in range(1, 6)]
        assert [j.verdict for j in journeys[:2]] == ["queued", "queued"]
        assert all(j.degraded_reason == "queue_overflow" for j in journeys[2:])
        assert middlebox.accounting.by_reason["queue_overflow"] == 3

    def test_lose_state_resync_from_switch(self):
        plan = FaultPlan((ServerCrash(at_packet=2, outage=2, lose_state=True),))
        middlebox = deploy(plan, policy=DegradationPolicy(punt_queue_depth=8))
        middlebox.process_packet(packet(1), 1)
        middlebox.process_packet(packet(2), 1)
        before = dict(middlebox.state.maps["conn"])
        assert len(before) == 2
        middlebox.process_packet(packet(3), 1)  # queued during outage
        middlebox.process_packet(packet(4), 1)  # queued during outage
        middlebox.process_packet(packet(5), 1)  # restart fires here
        middlebox.drain_deferred()
        assert middlebox.accounting.server_restarts == 1
        # Replicated table recovered from the authoritative switch copy…
        for key, value in before.items():
            assert middlebox.state.maps["conn"][key] == value
        # …while the server-only counter was declared lost and reset,
        # then advanced by the punts served after the restart.
        assert middlebox.state.scalars["ctr"] == 3  # packets 3, 4, 5

    def test_recover_drains_pending_queue(self):
        plan = FaultPlan((ServerCrash(at_packet=0, outage=100, lose_state=False),))
        middlebox = deploy(plan, policy=DegradationPolicy(punt_queue_depth=8))
        middlebox.process_packet(packet(1), 1)
        middlebox.process_packet(packet(2), 1)
        middlebox.recover()
        deferred = middlebox.drain_deferred()
        assert sorted(j.packet_index for j in deferred) == [0, 1]
        assert all(j.verdict == "send" for j in deferred)

    def test_reorder_shuffles_drain(self):
        plan = FaultPlan((
            ServerCrash(at_packet=0, outage=100, lose_state=False),
            PuntReorder(),
        ))
        middlebox = deploy(
            plan, policy=DegradationPolicy(punt_queue_depth=16),
            injector_seed=1,
        )
        for host in range(1, 9):
            middlebox.process_packet(packet(host), 1)
        middlebox.recover()
        deferred = middlebox.drain_deferred()
        served_order = [j.packet_index for j in deferred]
        assert sorted(served_order) == list(range(8))
        assert served_order != list(range(8))
        assert middlebox.accounting.reordered == 8


class TestFallback:
    def test_server_only_window_then_resync(self):
        plan = FaultPlan((SwitchReprogram(at_packet=1, duration=2),))
        middlebox = deploy(plan)
        first = middlebox.process_packet(packet(1), 1)
        during1 = middlebox.process_packet(packet(2), 1)
        during2 = middlebox.process_packet(packet(1), 1)  # repeat, full pgm
        after = middlebox.process_packet(packet(3), 1)
        assert first.punted and not first.fallback
        assert during1.fallback and during2.fallback
        assert during1.verdict == "send" and during2.verdict == "send"
        assert not after.fallback
        assert middlebox.accounting.fallback_packets == 2
        assert middlebox.accounting.switch_resyncs == 1
        # The bulk resync rebuilt the switch copy of everything the
        # fallback window inserted.
        assert (
            middlebox.switch.tables["conn"].snapshot()
            == middlebox.state.maps["conn"]
        )
        assert len(middlebox.state.maps["conn"]) == 3

    def test_total_outage_policy(self):
        plan = FaultPlan((
            SwitchReprogram(at_packet=0, duration=5),
            ServerCrash(at_packet=0, outage=5, lose_state=False),
        ))
        closed = deploy(plan)
        journey = closed.process_packet(packet(1), 1)
        assert journey.verdict == "drop"
        assert journey.degraded_reason == "total_outage"
        opened = deploy(plan, policy=DegradationPolicy(fail_open=True))
        journey = opened.process_packet(packet(1), 1)
        assert journey.verdict == "send"
        assert journey.emitted[0][0] == 2


class TestStaleReplication:
    def test_inflates_output_commit_wait_only(self):
        healthy = deploy()
        stale = deploy(
            FaultPlan((StaleReplication(extra_us=5000.0, probability=1.0),))
        )
        healthy_journey = healthy.process_packet(packet(1), 1)
        stale_journey = stale.process_packet(packet(1), 1)
        assert stale_journey.stale_wait_us == 5000.0
        assert stale_journey.sync_wait_us > healthy_journey.sync_wait_us
        assert stale_journey.verdict == healthy_journey.verdict
        assert not stale_journey.degraded


class TestAccountingInvariant:
    def test_every_packet_delivered_or_accounted(self):
        plan = FaultPlan((
            LinkFault(probability=0.4),
            ServerCrash(at_packet=5, outage=4, lose_state=True),
            BatchFault(probability=0.3, doom_probability=0.2),
        ))
        middlebox = deploy(
            plan, policy=DegradationPolicy(punt_queue_depth=2),
            injector_seed=7,
        )
        journeys = []
        for host in range(30):
            journeys.append(middlebox.process_packet(packet(host % 9), 1))
            journeys.extend(middlebox.drain_deferred())
        middlebox.recover()
        journeys.extend(middlebox.drain_deferred())
        final = {}
        for journey in journeys:
            if journey.verdict != "queued":
                final[journey.packet_index] = journey
        assert sorted(final) == list(range(30))
        degraded = sum(1 for j in final.values() if j.degraded)
        assert degraded == middlebox.accounting.degraded_total
        assert degraded > 0  # the plan actually bit


class TestSeedThreading:
    def test_same_seed_reproduces_jitter(self):
        waits = []
        for _ in range(2):
            middlebox = deploy(seed=42)
            journey = middlebox.process_packet(packet(1), 1)
            waits.append(journey.sync_wait_us)
        assert waits[0] == waits[1]

    def test_different_seed_differs(self):
        waits = set()
        for seed in range(6):
            middlebox = deploy(seed=seed)
            waits.add(middlebox.process_packet(packet(1), 1).sync_wait_us)
        assert len(waits) > 1

    def test_reseed_is_public_and_sufficient(self):
        # Reproducibility without touching private fields: reseeding the
        # control plane replays the same jitter sequence.
        middlebox = deploy(seed=7)
        first = middlebox.process_packet(packet(1), 1).sync_wait_us
        middlebox.switch.control_plane.reseed(7)
        second = middlebox.process_packet(packet(2), 1).sync_wait_us
        assert first == second
