"""Tests for the fault-aware oracle: clean runs, declared degradation,
and — via deliberately broken deployments — violation detection."""

import pytest

from repro.difftest.oracle import StreamSpec
from repro.faults.oracle import (
    FaultOutcome,
    VERIFY_SALT,
    run_fault_oracle,
)
from repro.faults.plan import (
    BatchFault,
    FaultPlan,
    LinkFault,
    PuntReorder,
    ServerCrash,
    StaleReplication,
    SwitchReprogram,
    WritebackOverflow,
)
from repro.partition.constraints import SwitchResources
from repro.runtime.degradation import DegradationPolicy, DropAccounting
from repro.runtime.deployment import GalliumMiddlebox
from repro.switchsim.control_plane import RetryPolicy

from tests.faults.test_degradation import FAULTBOX


def run(plan=FaultPlan(), fail_open=False, **kwargs):
    kwargs.setdefault("policy", DegradationPolicy(fail_open=fail_open))
    kwargs.setdefault("stream", StreamSpec(seed=1, count=20))
    stream = kwargs.pop("stream")
    return run_fault_oracle(FAULTBOX, stream, plan, **kwargs)


class TestCleanRun:
    def test_no_faults_is_clean(self):
        result = run()
        assert result.outcome is FaultOutcome.CLEAN
        assert result.violation is None
        assert result.degraded == 0
        assert result.delivered == result.packets_run == 20

    def test_missed_windows_are_clean(self):
        # Faults parked far beyond the stream never fire.
        plan = FaultPlan((
            ServerCrash(at_packet=500, outage=3),
            LinkFault(probability=1.0, start=500),
        ))
        result = run(plan)
        assert result.outcome is FaultOutcome.CLEAN
        assert result.injected == {}


FAULT_CASES = [
    ("link_loss", FaultPlan((LinkFault(probability=0.6),))),
    ("link_corrupt", FaultPlan((LinkFault(mode="corrupt", probability=0.6),))),
    ("return_loss", FaultPlan((
        LinkFault(direction="to_switch", probability=0.6),
    ))),
    ("batch_doomed", FaultPlan((
        BatchFault(probability=0.3, doom_probability=0.5),
    ))),
    ("batch_timeout", FaultPlan((BatchFault(mode="timeout", probability=0.7),))),
    ("overflow", FaultPlan((WritebackOverflow(probability=0.5),))),
    ("crash_keep", FaultPlan((ServerCrash(at_packet=4, outage=4,
                                          lose_state=False),))),
    ("crash_lose", FaultPlan((ServerCrash(at_packet=4, outage=4,
                                          lose_state=True),))),
    ("reprogram", FaultPlan((SwitchReprogram(at_packet=6, duration=5),))),
    ("stale", FaultPlan((StaleReplication(extra_us=2000.0, probability=1.0),))),
    ("reorder", FaultPlan((
        ServerCrash(at_packet=2, outage=6, lose_state=False),
        PuntReorder(),
    ))),
    ("total_outage", FaultPlan((
        ServerCrash(at_packet=3, outage=4, lose_state=False),
        SwitchReprogram(at_packet=8, duration=3),
    ))),
]


class TestDegradedOk:
    @pytest.mark.parametrize(
        "name,plan", FAULT_CASES, ids=[name for name, _ in FAULT_CASES]
    )
    @pytest.mark.parametrize("fail_open", [False, True],
                             ids=["closed", "open"])
    def test_no_violation_under_faults(self, name, plan, fail_open):
        result = run(plan, fail_open=fail_open, injector_seed=3)
        assert result.outcome in (
            FaultOutcome.DEGRADED_OK, FaultOutcome.CLEAN
        ), result.violation or result.error
        assert result.violation is None

    def test_faults_actually_fire(self):
        # At least the deterministic-window cases must not be CLEAN,
        # otherwise the parametrized test proves nothing.
        for name, plan in FAULT_CASES:
            if name in ("crash_keep", "reprogram", "stale"):
                result = run(plan, injector_seed=3)
                assert result.outcome is FaultOutcome.DEGRADED_OK, name

    def test_deterministic(self):
        plan = FAULT_CASES[3][1]
        first = run(plan, injector_seed=7)
        second = run(plan, injector_seed=7)
        assert first.outcome == second.outcome
        assert first.injected == second.injected
        assert first.accounting == second.accounting


class TestRejected:
    def test_partition_error_is_rejected(self):
        result = run(limits=SwitchResources(metadata_bytes=0))
        assert result.outcome is FaultOutcome.REJECTED
        assert "budget" in result.error


class TestViolationDetection:
    """Break the deployment on purpose; the oracle must notice."""

    def test_unaccounted_drop_is_caught(self, monkeypatch):
        # A deployment that degrades packets without updating the ledger
        # is losing traffic silently.
        monkeypatch.setattr(
            DropAccounting, "count", lambda self, reason: None
        )
        result = run(FaultPlan((LinkFault(probability=1.0),)))
        assert result.outcome is FaultOutcome.VIOLATION
        assert result.violation.kind == "accounting"

    def test_fail_open_tampering_is_caught(self, monkeypatch):
        # Fail-open must forward the packet *as received*; a deployment
        # that lets the half-applied rewrite leak violates policy.
        original = GalliumMiddlebox._degrade

        def leaky(self, pristine, *args, **kwargs):
            journey = original(self, pristine, *args, **kwargs)
            if journey.verdict == "send" and journey.emitted:
                port, packet = journey.emitted[0]
                journey.emitted[0] = (port + 7, packet)
            return journey

        monkeypatch.setattr(GalliumMiddlebox, "_degrade", leaky)
        result = run(
            FaultPlan((BatchFault(probability=0.0, doom_probability=1.0),)),
            fail_open=True,
        )
        assert result.outcome is FaultOutcome.VIOLATION
        assert result.violation.kind == "policy"

    def test_observable_divergence_is_caught(self, monkeypatch):
        # Perturb only the reference (injector is None there): a delivered
        # punt now disagrees between deployment and reference.
        original = GalliumMiddlebox.complete_punt

        def skewed(self, punted):
            completion = original(self, punted)
            if self.injector is None and completion.emitted:
                port, packet = completion.emitted[0]
                completion.emitted[0] = (port + 7, packet)
            return completion

        monkeypatch.setattr(GalliumMiddlebox, "complete_punt", skewed)
        result = run(verify_packets=0)
        assert result.outcome is FaultOutcome.VIOLATION
        assert result.violation.kind == "observable"

    def test_crash_in_pipeline_is_reported(self, monkeypatch):
        def boom(self, punted):
            raise RuntimeError("punt path exploded")

        monkeypatch.setattr(GalliumMiddlebox, "complete_punt", boom)
        result = run()
        assert result.outcome is FaultOutcome.CRASH
        assert "punt path exploded" in result.error


class TestPostRecoveryVerification:
    def test_verification_stream_is_distinct(self):
        stream = StreamSpec(seed=5, count=10)
        verify = StreamSpec(seed=5 ^ VERIFY_SALT, count=10)
        from repro.difftest.oracle import _observe_fields

        first = [_observe_fields(p) for p, _ in stream.build()]
        second = [_observe_fields(p) for p, _ in verify.build()]
        assert first != second

    def test_lingering_degradation_is_caught(self, monkeypatch):
        # A deployment whose injector never clears keeps degrading after
        # recovery; the post-recovery check must flag it.
        from repro.faults.injector import FaultInjector

        monkeypatch.setattr(FaultInjector, "clear", lambda self: None)
        plan = FaultPlan((LinkFault(probability=1.0),))
        result = run(plan)
        assert result.outcome is FaultOutcome.VIOLATION
        assert result.violation.kind == "post_recovery"

    def test_retry_policy_threads_into_injector(self):
        # max_attempts=2 means a doomed batch burns exactly one retry.
        policy = DegradationPolicy(retry=RetryPolicy(max_attempts=2))
        plan = FaultPlan((BatchFault(probability=0.0, doom_probability=1.0),))
        result = run(plan, policy=policy)
        assert result.outcome is FaultOutcome.DEGRADED_OK
        assert result.accounting["by_reason"]["writeback_failed"] > 0


class TestShimBudgetRefusal:
    def test_switch_program_error_is_rejected_not_crash(self):
        """Campaign-found harness bug (500-run campaign, run #471): a
        generated program whose shim exceeded the Constraint-5 transfer
        budget raised SwitchProgramError, which the oracle misfiled as a
        CRASH instead of a legitimate refusal."""
        result = run(limits=SwitchResources(transfer_bytes=0))
        assert result.outcome is FaultOutcome.REJECTED
        assert "shim" in result.error
