"""Tests for deterministic fault-plan execution."""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    BatchFault,
    FaultPlan,
    LinkFault,
    PuntReorder,
    ServerCrash,
    StaleReplication,
    SwitchReprogram,
)


def lossy_plan(p=0.5):
    return FaultPlan((
        LinkFault(direction="to_server", mode="loss", probability=p),
        LinkFault(direction="to_switch", mode="corrupt", probability=p),
    ))


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        plan = lossy_plan()
        runs = []
        for _ in range(2):
            injector = FaultInjector(plan, seed=9)
            fates = []
            for index in range(50):
                injector.begin_packet(index)
                fates.append(
                    (injector.punt_frame_fate(), injector.return_frame_fate())
                )
            runs.append(fates)
        assert runs[0] == runs[1]

    def test_different_seed_different_decisions(self):
        plan = lossy_plan()
        fates = []
        for seed in (1, 2):
            injector = FaultInjector(plan, seed=seed)
            run = []
            for index in range(50):
                injector.begin_packet(index)
                run.append(injector.punt_frame_fate())
            fates.append(run)
        assert fates[0] != fates[1]


class TestClear:
    def test_clear_silences_everything(self):
        plan = FaultPlan((
            LinkFault(probability=1.0),
            BatchFault(probability=1.0),
            ServerCrash(at_packet=0, outage=1000),
            SwitchReprogram(at_packet=0, duration=1000),
            StaleReplication(probability=1.0),
        ))
        injector = FaultInjector(plan, seed=0)
        injector.begin_packet(5)
        injector.clear()
        assert injector.punt_frame_fate() is None
        assert injector.return_frame_fate() is None
        assert injector.batch_fault(1) is None
        assert not injector.server_down(5)
        assert not injector.switch_down(5)
        assert injector.stale_extra_us() == 0.0


class TestBatchFaults:
    def test_doomed_batch_fails_every_attempt(self):
        plan = FaultPlan((BatchFault(probability=0.0, doom_probability=1.0),))
        injector = FaultInjector(plan, seed=0, max_attempts=4)
        injector.begin_packet(0)
        assert [injector.batch_fault(a) for a in (1, 2, 3, 4)] == ["fail"] * 4

    def test_timeout_can_fire_on_final_attempt(self):
        """The undo log made exhausted timeouts safe (the control plane
        rolls forward from the high-water mark), so the injector no
        longer spares a batch's final permitted attempt."""
        plan = FaultPlan((BatchFault(mode="timeout", probability=1.0),))
        injector = FaultInjector(plan, seed=0, max_attempts=3)
        injector.begin_packet(0)
        assert injector.batch_fault(1) == "timeout"
        assert injector.batch_fault(2) == "timeout"
        assert injector.batch_fault(3) == "timeout"

    def test_doom_resets_per_packet(self):
        plan = FaultPlan((BatchFault(probability=0.0, doom_probability=1.0),))
        injector = FaultInjector(plan, seed=0)
        injector.begin_packet(0)
        assert injector.batch_fault(1) == "fail"
        injector.begin_packet(1)
        # Doom re-rolls (probability 1.0 here, so still doomed) but the
        # flag itself must be re-derived, not inherited.
        assert injector._batch_doomed is False or injector.batch_fault(1)

    def test_injected_counters(self):
        plan = FaultPlan((LinkFault(probability=1.0, mode="loss"),))
        injector = FaultInjector(plan, seed=0)
        for index in range(5):
            injector.begin_packet(index)
            injector.punt_frame_fate()
        assert injector.injected == {"punt_lost": 5}


class TestWindows:
    def test_crash_window_arms_state_loss(self):
        plan = FaultPlan((ServerCrash(at_packet=2, outage=3, lose_state=True),))
        injector = FaultInjector(plan, seed=0)
        assert not injector.server_down(1)
        assert injector.server_down(2)
        assert injector.take_restart_state_loss()
        assert not injector.take_restart_state_loss()  # consume-once

    def test_keep_state_crash(self):
        plan = FaultPlan((ServerCrash(at_packet=0, outage=2, lose_state=False),))
        injector = FaultInjector(plan, seed=0)
        assert injector.server_down(0)
        assert not injector.take_restart_state_loss()


class TestDrainOrder:
    def test_permutation_validity(self):
        plan = FaultPlan((PuntReorder(),))
        injector = FaultInjector(plan, seed=3)
        order = injector.drain_order(8)
        assert sorted(order) == list(range(8))

    def test_no_reorder_without_spec(self):
        injector = FaultInjector(FaultPlan(), seed=3)
        assert injector.drain_order(8) == list(range(8))

    def test_reorder_survives_clear(self):
        # Reordering applies to frames already queued when recovery
        # starts, so clear() must not disable it.
        plan = FaultPlan((PuntReorder(),))
        injector = FaultInjector(plan, seed=5)
        injector.clear()
        orders = {tuple(injector.drain_order(6)) for _ in range(10)}
        assert any(order != tuple(range(6)) for order in orders)
