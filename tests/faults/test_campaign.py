"""Tests for the fault-campaign runner: determinism, seed derivation,
and a zero-failure smoke slice."""

from repro.difftest.runner import _STREAM_SALT, derive_seeds
from repro.faults.campaign import (
    _DEPLOY_SALT,
    _INJECT_SALT,
    _PLAN_SALT,
    derive_fault_seeds,
    run_campaign,
    seeds_for_program,
)


class TestSeedDerivation:
    def test_pure_function_of_program_seed(self):
        program_seed = derive_seeds(0, 17)[0]
        direct = seeds_for_program(program_seed)
        via_index = derive_fault_seeds(0, 17)
        assert direct == via_index

    def test_salts_are_distinct(self):
        seeds = seeds_for_program(12345)
        assert seeds[0] == 12345
        assert len(set(seeds)) == len(seeds)
        assert seeds[1] == 12345 ^ _STREAM_SALT
        assert seeds[2] == 12345 ^ _PLAN_SALT
        assert seeds[3] == 12345 ^ _INJECT_SALT
        assert seeds[4] == 12345 ^ _DEPLOY_SALT

    def test_reproduction_needs_only_the_program_seed(self):
        # The failure report tells users to rerun with --seed-override
        # <program_seed>; that must regenerate the identical scenario.
        for index in (0, 3, 9):
            program_seed = derive_fault_seeds(0, index)[0]
            assert seeds_for_program(program_seed) == derive_fault_seeds(
                0, index
            )


class TestCampaign:
    def test_small_run_is_failure_free(self):
        stats, failures = run_campaign(runs=8, seed=0, packets=15)
        assert failures == []
        assert stats.runs == 8
        assert stats.violations == 0 and stats.crashes == 0
        assert stats.clean + stats.degraded_ok + stats.rejected == 8
        assert stats.delivered_packets > 0

    def test_deterministic(self):
        results = [
            run_campaign(runs=6, seed=3, packets=15) for _ in range(2)
        ]
        first, second = (stats for stats, _ in results)
        assert first.clean == second.clean
        assert first.degraded_ok == second.degraded_ok
        assert first.coverage == second.coverage
        assert first.injected == second.injected
        assert first.degraded_packets == second.degraded_packets

    def test_seed_override_pins_run_zero(self):
        program_seed = derive_fault_seeds(0, 5)[0]
        stats, failures = run_campaign(
            runs=1, seed=0, packets=15, seed_override=program_seed
        )
        assert stats.runs == 1
        assert failures == []

    def test_summary_mentions_coverage(self):
        stats, _ = run_campaign(runs=6, seed=0, packets=15)
        text = stats.summary()
        assert "scenarios" in text
        assert "coverage" in text

    def test_time_budget_stops_early(self):
        stats, _ = run_campaign(runs=10_000, seed=0, packets=10,
                                time_budget_s=2.0)
        assert stats.runs < 10_000
        assert stats.runs > 0
