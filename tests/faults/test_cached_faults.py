"""Fault campaign on the bounded-cache deployment (``faults --cached``).

The cached deployment (paper §7, "Reducing memory usage") adds three
behaviours the full-replication deployment never shows — misses punt to
the server, FIFO eviction keeps tables bounded, and crash recovery
rebuilds only the cache subset — so the fault oracle must hold it to
*coherence* (cache ⊆ authoritative state, within bound) rather than
strict table equality.  These tests pin the cached oracle's outcome
classes and the eviction/rollback corner cases.
"""

from repro.difftest.oracle import StreamSpec
from repro.faults import (
    BatchFault,
    FaultPlan,
    LinkFault,
    ServerCrash,
    run_campaign,
    run_fault_oracle,
)
from repro.faults.corpus import FaultCorpusEntry
from repro.runtime.degradation import DegradationPolicy

#: Offloads a map find (replicated table + cache) with the insert on the
#: server — the §7 cached-deployment shape.
MAP_SOURCE = """class Box {
  // @gallium: max_entries=64
  HashMap<uint32_t, uint16_t> m0;

  void process(Packet *pkt) {
    iphdr *ip = pkt->network_header();
    tcphdr *tcp = pkt->tcp_header();
    uint32_t k1 = (uint32_t)(tcp->sport);
    uint16_t *h1 = m0.find(&k1);
    if (h1 != NULL) {
      ip->ttl = 7;
    } else {
      uint16_t v1 = (uint16_t)(ip->ttl);
      m0.insert(&k1, &v1);
    }
    pkt->send();
  }
};
"""

#: No offloadable map table: the cached deployment must refuse it.
REGISTER_SOURCE = """class Box {
  uint32_t ctr0;

  void process(Packet *pkt) {
    ctr0 += 1;
    pkt->send();
  }
};
"""

STREAM = StreamSpec(seed=7, count=30)


def _run(source, plan, **kwargs):
    kwargs.setdefault("cached", True)
    kwargs.setdefault("cache_entries", 2)
    return run_fault_oracle(source, STREAM, plan, **kwargs)


def test_cached_rejects_program_without_map_tables():
    result = _run(REGISTER_SOURCE, FaultPlan())
    assert result.outcome.value == "rejected"
    assert result.cached_mode
    assert result.error


def test_cached_clean_without_faults():
    result = _run(MAP_SOURCE, FaultPlan())
    assert result.outcome.value == "clean", result.violation or result.error
    assert result.cached_mode
    assert result.degraded == 0


def test_cached_converges_through_server_crash():
    plan = FaultPlan(faults=(
        ServerCrash(at_packet=8, outage=5, lose_state=True),
    ))
    result = _run(MAP_SOURCE, plan)
    assert result.outcome.value in ("clean", "degraded_ok"), (
        result.violation or result.error
    )
    assert result.cached_mode


def test_cached_survives_link_loss_and_batch_failures():
    plan = FaultPlan(faults=(
        LinkFault(direction="to_server", mode="loss", probability=0.5),
        BatchFault(mode="fail", probability=0.5, doom_probability=0.3),
    ))
    result = _run(
        MAP_SOURCE, plan,
        policy=DegradationPolicy(fail_open=True),
        injector_seed=11,
    )
    assert result.outcome.value in ("clean", "degraded_ok"), (
        result.violation or result.error
    )


def test_cached_eviction_bound_respected_under_faults():
    """With cache_entries=1 every second flow evicts; the oracle's
    coherence check (cache subset + bound) must still pass."""
    plan = FaultPlan(faults=(
        BatchFault(mode="timeout", probability=0.4),
    ))
    result = _run(MAP_SOURCE, plan, cache_entries=1, injector_seed=3)
    assert result.outcome.value in ("clean", "degraded_ok"), (
        result.violation or result.error
    )


def test_cached_campaign_accepts_map_program():
    # program seed 3000011 offloads a map table and survives its fault
    # schedule on the cache deployment (found by the cached sweep)
    stats, failures = run_campaign(
        runs=1, seed=0, packets=10, seed_override=3000011, cached=True,
    )
    assert failures == []
    assert stats.clean + stats.degraded_ok == 1


def test_cached_campaign_counts_rejections():
    # program seed 3000009 has no replicated map table: cache mode refuses
    stats, failures = run_campaign(
        runs=1, seed=0, packets=10, seed_override=3000009, cached=True,
    )
    assert failures == []
    assert stats.rejected == 1


def test_cached_corpus_entry_round_trips():
    entry = FaultCorpusEntry(
        name="t",
        source=MAP_SOURCE,
        stream=STREAM,
        fault_plan=FaultPlan(),
        policy=DegradationPolicy(),
        cached=True,
    )
    data = entry.to_dict()
    assert data["cached"] is True
    assert FaultCorpusEntry.from_dict(data).cached is True


def test_campaign_failure_corpus_entry_preserves_cached():
    from repro.difftest.generator import generate_program
    from repro.faults.campaign import FaultFailure
    from repro.faults.oracle import FaultOracleResult, FaultOutcome

    failure = FaultFailure(
        index=0,
        program_seed=1,
        stream=STREAM,
        program=generate_program(1),
        fault_plan=FaultPlan(),
        policy=DegradationPolicy(),
        injector_seed=0,
        deployment_seed=0,
        result=FaultOracleResult(FaultOutcome.VIOLATION, cached_mode=True),
        cached=True,
    )
    assert failure.corpus_entry("t").cached is True
    assert "--cached" in failure.report()
