"""Tests for the outage/recovery discrete-event timeline."""

import pytest

from repro.faults.timeline import (
    OutageScenario,
    RecoveryTimeline,
    retry_latency_us,
    simulate_outage,
)
from repro.switchsim.control_plane import (
    RetryPolicy,
    expected_batch_latency_us,
)


class TestSimulateOutage:
    def test_no_outage_no_drops(self):
        scenario = OutageScenario(
            arrival_interval_us=500.0, outage_us=0.0, punts=100
        )
        timeline = simulate_outage(scenario)
        assert timeline.served == 100
        assert timeline.dropped == 0
        # An unloaded, fault-free punt costs exactly one service slot —
        # the histogram percentile clamps to the observed maximum, so a
        # constant population reports its true value.
        assert timeline.latency.percentile(0.99) == pytest.approx(
            scenario.service_us
        )
        assert timeline.added_p99_us() == pytest.approx(0.0)

    def test_conservation(self):
        timeline = simulate_outage(OutageScenario(punts=500))
        assert timeline.served + timeline.dropped == 500

    def test_queue_bounded_by_policy(self):
        timeline = simulate_outage(OutageScenario(queue_depth=16))
        assert timeline.max_queue <= 16

    def test_long_outage_overflows_small_queue(self):
        timeline = simulate_outage(OutageScenario(
            arrival_interval_us=50.0, outage_us=20_000.0, queue_depth=4,
        ))
        assert timeline.dropped > 0
        assert timeline.max_queue == 4

    def test_deeper_queue_trades_drops_for_latency(self):
        shallow = simulate_outage(OutageScenario(queue_depth=4))
        deep = simulate_outage(OutageScenario(queue_depth=128))
        assert deep.dropped < shallow.dropped
        assert deep.added_p99_us() > shallow.added_p99_us()

    def test_recovery_time_grows_with_outage(self):
        # Arrivals slower than service, so the backlog is purely the
        # outage's doing and drains after it ends.
        short = simulate_outage(OutageScenario(
            arrival_interval_us=200.0, outage_us=2_000.0, queue_depth=1_000,
        ))
        long = simulate_outage(OutageScenario(
            arrival_interval_us=200.0, outage_us=20_000.0, queue_depth=1_000,
        ))
        assert long.recovery_us > short.recovery_us

    def test_deterministic(self):
        runs = [simulate_outage(OutageScenario()) for _ in range(2)]
        assert runs[0].served == runs[1].served
        assert runs[0].latency.to_dict() == runs[1].latency.to_dict()
        assert runs[0].recovery_us == runs[1].recovery_us


class TestRetryLatency:
    def test_zero_failures_free(self):
        assert retry_latency_us(0) == 0.0

    def test_each_failure_adds_rpc_plus_backoff(self):
        policy = RetryPolicy(base_backoff_us=100.0, backoff_multiplier=2.0,
                             max_backoff_us=10_000.0)
        base = expected_batch_latency_us(1, "modify")
        assert retry_latency_us(1, policy) == pytest.approx(base + 100.0)
        assert retry_latency_us(2, policy) == pytest.approx(
            2 * base + 100.0 + 200.0
        )

    def test_backoff_caps(self):
        policy = RetryPolicy(base_backoff_us=100.0, backoff_multiplier=10.0,
                             max_backoff_us=150.0)
        base = expected_batch_latency_us(1, "modify")
        assert retry_latency_us(3, policy) == pytest.approx(
            3 * base + 100.0 + 150.0 + 150.0
        )


class TestPercentiles:
    def test_empty_timeline(self):
        timeline = RecoveryTimeline(OutageScenario())
        assert timeline.latency.percentile(0.99) == 0.0

    def test_percentile_ordering(self):
        timeline = RecoveryTimeline(OutageScenario())
        for value in range(100):
            timeline.latency.observe(float(value))
        assert timeline.latency.percentile(0.5) <= timeline.latency.percentile(
            0.99
        )
