"""The ``faults --summary-json`` rollup: window distributions, rollback
rates, and the oracle-to-stats wiring of the rollback counter."""

import json

from repro.difftest.oracle import StreamSpec
from repro.faults.campaign import CampaignStats
from repro.faults.oracle import (
    FaultOracleResult,
    FaultOutcome,
    run_fault_oracle,
)
from repro.faults.plan import (
    BatchFault,
    FaultPlan,
    PrimarySwitchCrash,
    ServerCrash,
)
from repro.middleboxes import load_source
from repro.runtime.degradation import DegradationPolicy
from repro.switchsim.control_plane import RetryPolicy


def _result(outcome=FaultOutcome.DEGRADED_OK, rollbacks=0):
    return FaultOracleResult(outcome=outcome, rollbacks=rollbacks)


class TestCampaignRollup:
    def test_window_length_distribution(self):
        stats = CampaignStats()
        stats.record(
            FaultPlan(faults=(ServerCrash(at_packet=2, outage=4),)),
            _result(),
        )
        stats.record(
            FaultPlan(faults=(
                ServerCrash(at_packet=1, outage=8),
                PrimarySwitchCrash(at_packet=5, promotion_window=3),
            )),
            _result(),
        )
        summary = stats.summary_dict()
        assert summary["promotion_windows"]["crash"] == {
            "count": 2, "min": 4, "max": 8, "mean": 6.0,
            "total_packets": 12,
        }
        assert summary["promotion_windows"]["switch_crash"]["count"] == 1
        assert summary["promotion_windows"]["switch_crash"]["mean"] == 3.0

    def test_rollback_rates_by_kind(self):
        stats = CampaignStats()
        batch_plan = FaultPlan(faults=(BatchFault(probability=0.5),))
        stats.record(batch_plan, _result(rollbacks=3))
        stats.record(batch_plan, _result(rollbacks=0))
        stats.record(
            FaultPlan(faults=(ServerCrash(),)), _result(rollbacks=0)
        )
        summary = stats.summary_dict()
        assert summary["rollbacks"]["total"] == 3
        assert summary["rollbacks"]["by_kind"]["batch"] == {
            "scenarios": 2, "with_rollbacks": 1, "rate": 0.5,
        }
        assert summary["rollbacks"]["by_kind"]["crash"]["rate"] == 0.0

    def test_probabilistic_kinds_have_no_window_entry(self):
        stats = CampaignStats()
        stats.record(FaultPlan(faults=(BatchFault(),)), _result())
        assert stats.summary_dict()["promotion_windows"] == {}

    def test_summary_dict_is_json_deterministic(self):
        stats = CampaignStats()
        stats.record(
            FaultPlan(faults=(ServerCrash(),)), _result(rollbacks=1)
        )
        first = json.dumps(stats.summary_dict(), sort_keys=True)
        second = json.dumps(stats.summary_dict(), sort_keys=True)
        assert first == second

    def test_outcome_counts_present(self):
        stats = CampaignStats()
        stats.record(FaultPlan(), _result(outcome=FaultOutcome.CLEAN))
        summary = stats.summary_dict()
        assert summary["runs"] == 1
        assert summary["outcomes"]["clean"] == 1


class TestRollbackWiring:
    def test_doomed_batches_surface_as_rollbacks(self):
        # Every batch attempt fails and the undo log cannot roll forward,
        # so each stateful punt rolls back — the oracle must surface the
        # control-plane counter on its result.
        plan = FaultPlan(faults=(
            BatchFault(mode="fail", probability=1.0, doom_probability=1.0),
        ))
        policy = DegradationPolicy(
            fail_open=True, punt_queue_depth=4,
            retry=RetryPolicy(max_attempts=3),
        )
        result = run_fault_oracle(
            load_source("mazunat"), StreamSpec(seed=1, count=15), plan,
            policy=policy, injector_seed=7, deployment_seed=0,
        )
        assert result.outcome is FaultOutcome.DEGRADED_OK
        assert result.rollbacks > 0

    def test_clean_run_reports_zero_rollbacks(self):
        result = run_fault_oracle(
            load_source("minilb"), StreamSpec(seed=2, count=8),
            FaultPlan(), policy=DegradationPolicy(),
            injector_seed=0, deployment_seed=0,
        )
        assert result.rollbacks == 0
