"""Property: an aborted update batch rolls the switch back byte-exactly.

For every fault plan in the committed reproducer corpus (and a forced
always-abort plan over the same programs, so the rollback path is
exercised non-vacuously — the historical entries happen to roll
*forward*), the switch state observed immediately after an
``UpdateBatchError`` must be byte-identical to the pre-batch image:
committed table entries, staged write-back contents, visibility bits,
and register values.  Checked on both the plain and the bounded-cache
deployment.
"""

import pytest

from repro.difftest.oracle import DEFAULT_PORT_PAIRS
from repro.faults.corpus import load_corpus
from repro.faults.injector import FaultInjector
from repro.faults.plan import BatchFault, FaultPlan
from repro.runtime.cache import CacheConfigurationError, CachedGalliumMiddlebox
from repro.runtime.deployment import GalliumMiddlebox, compile_middlebox
from repro.switchsim.control_plane import UpdateBatchError

#: Every attempt of every batch fails: retry exhaustion forces the abort
#: + rollback path on each punt that carries state updates.
ABORT_PLAN = FaultPlan(faults=(BatchFault(mode="fail", probability=1.0),))

CORPUS = load_corpus()


def _switch_image(switch):
    """Byte-exact switch state: committed entries, staged write-back,
    visibility bits, and register values.

    Deliberately reaches past ``snapshot()`` into the raw table
    internals: a rollback that left residue in the (invisible) staging
    area would poison the *next* batch's fold, and the effective view
    alone cannot see it.
    """
    tables = {
        name: (
            dict(table._main),
            dict(table._writeback),
            table._writeback_visible,
        )
        for name, table in switch.tables.items()
    }
    registers = {name: reg.value for name, reg in switch.registers.items()}
    return tables, registers


class _RollbackAudit:
    """Mixin: image the switch around every batch; on abort, demand
    byte-identity with the pre-batch image before re-raising."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.rollbacks_verified = 0
        self.commits_seen = 0

    def _apply_update_batch(self, updates):
        pre = _switch_image(self.switch)
        try:
            result = super()._apply_update_batch(updates)
        except UpdateBatchError:
            post = _switch_image(self.switch)
            assert post == pre, (
                "aborted batch left residue on the switch:\n"
                f"  pre : {pre}\n  post: {post}"
            )
            self.rollbacks_verified += 1
            raise
        self.commits_seen += 1
        return result


class _AuditedPlain(_RollbackAudit, GalliumMiddlebox):
    pass


class _AuditedCached(_RollbackAudit, CachedGalliumMiddlebox):
    pass


def _run(entry, fault_plan, cached):
    plan, program = compile_middlebox(entry.source)
    injector = FaultInjector(
        fault_plan,
        seed=entry.injector_seed,
        max_attempts=entry.policy.retry.max_attempts,
    )
    cls = _AuditedCached if cached else _AuditedPlain
    try:
        box = cls(
            plan, program, port_pairs=dict(DEFAULT_PORT_PAIRS),
            seed=entry.deployment_seed, policy=entry.policy,
            injector=injector,
        )
    except CacheConfigurationError as exc:
        pytest.skip(f"{entry.name}: not cacheable ({exc})")
    box.install()
    for packet, ingress in entry.stream.build():
        box.process_packet(packet.copy(), ingress)
        box.drain_deferred()
    box.recover()
    box.drain_deferred()
    return box


@pytest.mark.parametrize("cached", [False, True], ids=["plain", "cached"])
@pytest.mark.parametrize("entry", CORPUS, ids=lambda e: e.name)
class TestRollbackByteIdentity:
    def test_corpus_plan(self, entry, cached):
        """Replay the entry's own fault plan; the audit mixin asserts
        byte-identity on every abort it encounters (historical entries
        may roll forward instead — that path commits, no assertion)."""
        box = _run(entry, entry.fault_plan, cached)
        assert box.commits_seen + box.rollbacks_verified > 0, (
            "scenario never reached the control plane — vacuous replay"
        )

    def test_forced_abort_plan(self, entry, cached):
        """Same program and stream under the always-abort plan: every
        update batch must abort, and every abort must roll back
        byte-exactly."""
        box = _run(entry, ABORT_PLAN, cached)
        assert box.rollbacks_verified > 0, (
            "always-abort plan produced no rollbacks — property untested"
        )
        assert box.commits_seen == 0, (
            "a batch committed despite every attempt being doomed"
        )


def test_corpus_is_not_empty():
    """The property above quantifies over the corpus; guard the corpus
    existing so a checkout problem cannot silently vacuate it."""
    assert CORPUS, "tests/faults_corpus/ is empty"
