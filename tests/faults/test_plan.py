"""Tests for the fault-plan DSL: windows, serialization, generation."""

import random

from repro.faults.plan import (
    ALL_FAULT_KINDS,
    BatchFault,
    FAULT_KINDS,
    FaultPlan,
    LinkFault,
    PuntReorder,
    ServerCrash,
    StaleReplication,
    SwitchReprogram,
    WritebackOverflow,
    generate_plan,
)


def full_plan() -> FaultPlan:
    return FaultPlan((
        LinkFault(direction="to_server", mode="loss", probability=0.2,
                  start=3, stop=9),
        LinkFault(direction="to_switch", mode="corrupt", probability=0.1),
        BatchFault(mode="timeout", probability=0.5, doom_probability=0.05),
        WritebackOverflow(probability=0.3, start=1),
        ServerCrash(at_packet=4, outage=3, lose_state=True),
        SwitchReprogram(at_packet=10, duration=4),
        StaleReplication(extra_us=1234.5, probability=0.9),
        PuntReorder(),
    ))


class TestWindows:
    def test_link_window(self):
        fault = LinkFault(start=3, stop=9)
        assert not fault.active(2)
        assert fault.active(3)
        assert fault.active(8)
        assert not fault.active(9)

    def test_open_ended_window(self):
        fault = BatchFault(start=5, stop=None)
        assert not fault.active(4)
        assert fault.active(5)
        assert fault.active(10_000)

    def test_crash_window(self):
        crash = ServerCrash(at_packet=4, outage=3)
        assert not crash.active(3)
        assert crash.active(4)
        assert crash.active(6)
        assert not crash.active(7)

    def test_reorder_always_active(self):
        assert PuntReorder().active(0)
        assert PuntReorder().active(999)


class TestSerialization:
    def test_roundtrip_every_kind(self):
        plan = full_plan()
        restored = FaultPlan.from_dict(plan.to_dict())
        assert restored == plan

    def test_roundtrip_is_json_compatible(self):
        import json

        plan = full_plan()
        restored = FaultPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert restored == plan

    def test_unknown_kind_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            FaultPlan.from_dict({"faults": [{"kind": "gamma_ray"}]})

    def test_registry_covers_all_kinds(self):
        assert set(ALL_FAULT_KINDS) == set(FAULT_KINDS)
        assert set(ALL_FAULT_KINDS) == {
            "link", "batch", "overflow", "crash", "reprogram", "stale",
            "reorder", "switch_crash", "crash_batch", "standby_stale",
            "tenant_link", "pool_member_crash", "pool_member_drain",
        }


class TestDescribe:
    def test_mentions_every_fault(self):
        text = full_plan().describe()
        for token in ("link", "batch", "overflow", "crash", "reprogram",
                      "stale", "reorder"):
            assert token in text

    def test_empty_plan(self):
        assert FaultPlan().describe() == "no faults"


class TestGeneratePlan:
    def test_deterministic(self):
        plans = [generate_plan(random.Random(11), 25) for _ in range(2)]
        assert plans[0] == plans[1]

    def test_draws_one_to_three_kinds(self):
        for seed in range(40):
            plan = generate_plan(random.Random(seed), 25)
            assert 1 <= len(plan.kinds()) <= 4  # reorder may add a crash

    def test_outage_windows_never_overlap(self):
        for seed in range(200):
            plan = generate_plan(random.Random(seed), 25)
            windows = []
            for spec in plan.faults:
                if isinstance(spec, ServerCrash):
                    windows.append((spec.at_packet, spec.at_packet + spec.outage))
                elif isinstance(spec, SwitchReprogram):
                    windows.append((spec.at_packet, spec.at_packet + spec.duration))
            for i, (lo_a, hi_a) in enumerate(windows):
                for lo_b, hi_b in windows[i + 1:]:
                    assert hi_a <= lo_b or hi_b <= lo_a, (seed, windows)

    def test_reorder_always_paired_with_queueing_fault(self):
        for seed in range(200):
            plan = generate_plan(random.Random(seed), 25)
            if plan.by_kind("reorder") and not plan.by_kind("crash"):
                # The pairing can only fail when window placement failed
                # 8 times in a row, which a 25-packet stream never does.
                raise AssertionError(f"unpaired reorder at seed {seed}")

    def test_windows_inside_stream(self):
        for seed in range(100):
            plan = generate_plan(random.Random(seed), 25)
            for spec in plan.faults:
                if isinstance(spec, (ServerCrash, SwitchReprogram)):
                    assert 0 <= spec.at_packet < 25
