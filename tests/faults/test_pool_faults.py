"""Pool fault plans, the pool-aware oracle, and the pooled campaign.

The headline guarantee: a member crash degrades only the flows the
member owned and live migration recovers them byte-exactly — proven by
the oracle's reference replay plus its independent reconstruction of
the member table — and generated pool plans always leave a survivor so
full fallback never has an excuse to engage.
"""

import random

import pytest

from repro.difftest.oracle import StreamSpec
from repro.faults.campaign import run_campaign
from repro.faults.oracle import FaultOutcome, run_fault_oracle
from repro.faults.plan import (
    FaultPlan,
    POOL_EXTRA_KINDS,
    POOL_FAULT_KINDS,
    PoolMemberCrash,
    PoolMemberDrain,
    generate_plan,
)
from repro.runtime.pool import default_member_names
from repro.telemetry.schema import validate_named

from tests.faults.test_degradation import FAULTBOX

MEMBERS = default_member_names(3)


class TestPlanGeneration:
    def test_always_leaves_a_survivor(self):
        for seed in range(200):
            plan = generate_plan(
                random.Random(seed), 25, pool_members=MEMBERS
            )
            removed = {
                spec.member
                for spec in plan.faults
                if spec.kind in POOL_FAULT_KINDS
            }
            assert len(removed) < len(MEMBERS)
            assert len(removed) == sum(
                1 for spec in plan.faults if spec.kind in POOL_FAULT_KINDS
            ), "pool kinds must target distinct members"

    def test_single_member_pool_gets_no_membership_changes(self):
        for seed in range(50):
            plan = generate_plan(
                random.Random(seed), 25, pool_members=["solo"]
            )
            assert not any(
                spec.kind in POOL_FAULT_KINDS for span in [plan]
                for spec in span.faults
            )

    def test_only_pool_and_benign_extras(self):
        allowed = set(POOL_FAULT_KINDS) | set(POOL_EXTRA_KINDS)
        for seed in range(100):
            plan = generate_plan(
                random.Random(seed), 25, pool_members=MEMBERS
            )
            assert set(plan.kinds()) <= allowed

    def test_round_trips_through_dict(self):
        plan = FaultPlan((
            PoolMemberCrash(member="srv1", at_packet=4, migration_window=3),
            PoolMemberDrain(member="srv2", at_packet=12, drain_window=5),
        ))
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone == plan
        assert "pool member 'srv1' crash" in plan.describe()

    def test_windows_are_inclusive_exclusive(self):
        spec = PoolMemberCrash(member="a", at_packet=5, migration_window=3)
        assert not spec.active(4)
        assert spec.active(5) and spec.active(7)
        assert not spec.active(8)
        assert spec.window_length == 3


class TestPoolOracle:
    def run(self, plan, pool=3, count=25, **kwargs):
        return run_fault_oracle(
            FAULTBOX, StreamSpec(seed=1, count=count), plan,
            pool=pool, **kwargs,
        )

    def test_member_crash_is_degraded_ok(self):
        result = self.run(FaultPlan((
            PoolMemberCrash(member="srv1", at_packet=4,
                            migration_window=4),
        )))
        assert result.outcome is FaultOutcome.DEGRADED_OK
        assert result.violation is None
        assert result.pool_mode and result.pool_servers == 3
        assert result.migrations == 1
        assert result.injected == {"pool_member_crash[srv1]": 1}

    def test_crash_and_drain_both_migrate(self):
        result = self.run(FaultPlan((
            PoolMemberCrash(member="srv0", at_packet=3,
                            migration_window=3),
            PoolMemberDrain(member="srv2", at_packet=12, drain_window=4),
        )), count=30)
        assert result.outcome is FaultOutcome.DEGRADED_OK
        assert result.violation is None
        assert result.migrations == 2

    def test_no_faults_is_clean(self):
        result = self.run(FaultPlan())
        assert result.outcome is FaultOutcome.CLEAN
        assert result.migrations == 0

    def test_unknown_member_is_a_crash_not_a_silent_skip(self):
        result = self.run(FaultPlan((
            PoolMemberCrash(member="ghost", at_packet=2,
                            migration_window=3),
        )))
        assert result.outcome is FaultOutcome.CRASH
        assert "unknown" in result.error

    def test_pool_does_not_compose_with_cached_or_failover(self):
        with pytest.raises(ValueError, match="does not compose"):
            self.run(FaultPlan(), cached=True)
        with pytest.raises(ValueError, match="does not compose"):
            self.run(FaultPlan(), failover=True)


class TestPooledCampaign:
    def test_seeded_campaign_has_zero_violations(self):
        stats, failures = run_campaign(25, seed=3, pool_servers=3)
        assert failures == []
        assert stats.violations == 0 and stats.crashes == 0
        assert stats.runs == 25
        assert stats.pool_migrations > 0
        covered = (
            stats.coverage["pool_member_crash"]
            + stats.coverage["pool_member_drain"]
        )
        assert covered > 0

    def test_summary_has_pool_rollup_and_passes_schema(self):
        stats, _failures = run_campaign(10, seed=5, pool_servers=3)
        summary = stats.summary_dict()
        assert validate_named(summary, "faults_summary") == []
        pool = summary["pool"]
        assert pool["migrations"] == stats.pool_migrations
        assert set(pool["member_crashes"]) <= set(MEMBERS)
        assert set(pool["member_drains"]) <= set(MEMBERS)
        # Migration windows appear in the per-kind window distribution.
        windows = summary["promotion_windows"]
        assert any(
            kind in windows for kind in POOL_FAULT_KINDS
        ), windows

    def test_failure_reports_carry_the_servers_flag(self):
        from repro.difftest.generator import generate_program
        from repro.faults.campaign import FaultFailure
        from repro.faults.oracle import FaultOracleResult
        from repro.runtime.degradation import DegradationPolicy

        failure = FaultFailure(
            0, 42, StreamSpec(seed=1, count=5), generate_program(42),
            FaultPlan(), DegradationPolicy(), 0, 0,
            FaultOracleResult(FaultOutcome.VIOLATION), pool_servers=3,
        )
        assert "--servers 3" in failure.report()

    def test_base_campaign_summary_still_passes_schema(self):
        stats, _failures = run_campaign(5, seed=1)
        summary = stats.summary_dict()
        assert validate_named(summary, "faults_summary") == []
        assert summary["pool"]["migrations"] == 0
