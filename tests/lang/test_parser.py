"""Tests for the C++-subset parser."""

import pytest

from repro.lang import ast, parse_program
from repro.lang.diagnostics import ParseError
from repro.lang.types import (
    BOOL,
    HashMapType,
    PointerType,
    TupleType,
    UINT16,
    UINT32,
    VectorType,
)


def parse_body(statements: str):
    """Parse statements inside a minimal middlebox and return the body."""
    source = f"class T {{ void process(Packet *pkt) {{ {statements} }} }};"
    return parse_program(source).middlebox.methods[0].body


class TestClassStructure:
    def test_members_and_methods(self):
        program = parse_program(
            """
            class Box {
              HashMap<uint16_t, uint32_t> table;
              Vector<uint32_t> list;
              uint32_t counter;
              void process(Packet *pkt) { pkt->send(); }
              uint32_t helper(uint32_t x) { return x; }
            };
            """
        )
        cls = program.middlebox
        assert cls.name == "Box"
        assert [m.name for m in cls.members] == ["table", "list", "counter"]
        assert isinstance(cls.member("table").member_type, HashMapType)
        assert isinstance(cls.member("list").member_type, VectorType)
        assert cls.method("helper") is not None
        assert cls.method("nope") is None

    def test_annotations_attach_to_member(self):
        program = parse_program(
            """
            class Box {
              // @gallium: max_entries=128
              HashMap<uint16_t, uint32_t> table;
              void process(Packet *pkt) { pkt->drop(); }
            };
            """
        )
        assert program.middlebox.member("table").annotations == {
            "max_entries": 128
        }

    def test_tuple_key_type(self):
        program = parse_program(
            """
            class Box {
              HashMap<Tuple<uint32_t, uint16_t>, uint32_t> table;
              void process(Packet *pkt) { pkt->drop(); }
            };
            """
        )
        key = program.middlebox.member("table").member_type.key
        assert isinstance(key, TupleType)
        assert key.elements == (UINT32, UINT16)

    def test_nested_template_close(self):
        # "HashMap<uint16_t, Vector<uint32_t>>" has the >> collision.
        source = """
        class Box {
          HashMap<uint16_t, Vector<uint32_t>> weird;
          void process(Packet *pkt) { pkt->drop(); }
        };
        """
        program = parse_program(source)
        assert isinstance(
            program.middlebox.member("weird").member_type.value, VectorType
        )

    def test_trailing_tokens_rejected(self):
        with pytest.raises(ParseError):
            parse_program("class A { void process(Packet *p) { p->drop(); } }; junk")

    def test_missing_class_rejected(self):
        with pytest.raises(ParseError):
            parse_program("void f() {}")


class TestStatements:
    def test_declaration_with_init(self):
        body = parse_body("uint32_t x = 1 + 2;")
        assert isinstance(body[0], ast.DeclStmt)
        assert body[0].name == "x"

    def test_pointer_declaration(self):
        body = parse_body("iphdr *ip = pkt->network_header(); pkt->drop();")
        assert isinstance(body[0].decl_type, PointerType)

    def test_if_else(self):
        body = parse_body("if (1) { pkt->send(); } else { pkt->drop(); }")
        stmt = body[0]
        assert isinstance(stmt, ast.IfStmt)
        assert len(stmt.then_body) == 1
        assert len(stmt.else_body) == 1

    def test_else_if_chain(self):
        body = parse_body(
            "if (1) { pkt->send(); } else if (2) { pkt->drop(); }"
            " else { pkt->drop(); }"
        )
        stmt = body[0]
        inner = stmt.else_body[0]
        assert isinstance(inner, ast.IfStmt)
        assert inner.else_body

    def test_while_loop(self):
        body = parse_body("uint32_t i = 0; while (i < 3) { i += 1; } pkt->drop();")
        assert isinstance(body[1], ast.WhileStmt)

    def test_for_loop(self):
        body = parse_body(
            "for (uint32_t i = 0; i < 4; i += 1) { } pkt->drop();"
        )
        loop = body[0]
        assert isinstance(loop, ast.ForStmt)
        assert isinstance(loop.init, ast.DeclStmt)
        assert loop.cond is not None
        assert loop.step is not None

    def test_increment_statement(self):
        body = parse_body("uint32_t i = 0; i++; pkt->drop();")
        assert isinstance(body[1], ast.AssignStmt)
        assert body[1].op == "+="

    def test_compound_assignment(self):
        body = parse_body("uint32_t i = 0; i <<= 2; pkt->drop();")
        assert body[1].op == "<<="

    def test_break_continue(self):
        body = parse_body(
            "while (1) { if (2) { break; } continue; } pkt->drop();"
        )
        loop = body[0]
        assert isinstance(loop.body[0].then_body[0], ast.BreakStmt)
        assert isinstance(loop.body[1], ast.ContinueStmt)

    def test_statement_ids_unique(self):
        program = parse_program(
            """
            class Box {
              void process(Packet *pkt) {
                uint32_t a = 1;
                uint32_t b = 2;
                if (a < b) { pkt->send(); } else { pkt->drop(); }
              }
            };
            """
        )
        ids = [
            s.stmt_id
            for s in ast.walk_statements(program.middlebox.methods[0].body)
        ]
        assert len(ids) == len(set(ids))


class TestExpressions:
    def test_precedence(self):
        body = parse_body("uint32_t x = 1 + 2 * 3; pkt->drop();")
        init = body[0].init
        assert isinstance(init, ast.BinaryOp) and init.op == "+"
        assert isinstance(init.rhs, ast.BinaryOp) and init.rhs.op == "*"

    def test_cast_expression(self):
        body = parse_body("uint16_t x = (uint16_t)(1 & 0xFFFF); pkt->drop();")
        assert isinstance(body[0].init, ast.CastExpr)

    def test_parenthesized_not_cast(self):
        body = parse_body("uint32_t y = 1; uint32_t x = (y) + 2; pkt->drop();")
        assert isinstance(body[1].init, ast.BinaryOp)

    def test_null_comparison(self):
        body = parse_body(
            "uint32_t z = 0; if (pkt != NULL) { pkt->drop(); } else { pkt->drop(); }"
        )
        cond = body[1].cond
        assert isinstance(cond, ast.BinaryOp)
        assert isinstance(cond.rhs, ast.NullLiteral)

    def test_method_call_with_address_of(self):
        body = parse_body("uint16_t k = 1; pkt->send();")
        # call args parsing exercised via full middlebox sources elsewhere
        assert isinstance(body[0], ast.DeclStmt)

    def test_ternary(self):
        body = parse_body("uint32_t a = 1; uint32_t x = a ? 2 : 3; pkt->drop();")
        assert isinstance(body[1].init, ast.ConditionalExpr)

    def test_unary_operators(self):
        body = parse_body("uint32_t a = 1; uint32_t x = ~a; uint32_t y = -a; pkt->drop();")
        assert isinstance(body[1].init, ast.UnaryOp)
        assert body[1].init.op == "~"

    def test_index_expression(self):
        source = """
        class Box {
          Vector<uint32_t> v;
          void process(Packet *pkt) {
            uint32_t x = v[0];
            pkt->drop();
          }
        };
        """
        body = parse_program(source).middlebox.methods[0].body
        assert isinstance(body[0].init, ast.IndexExpr)

    def test_logical_operators(self):
        body = parse_body("uint32_t a = 1; if (a && (a || 0)) { pkt->send(); } else { pkt->drop(); }")
        assert isinstance(body[1].cond, ast.BinaryOp)
        assert body[1].cond.op == "&&"


class TestSourceLineCount:
    def test_counts_nonblank_noncomment(self, middlebox_name, bundle):
        count = bundle.lowered.program.source_line_count()
        assert count > 10

    def test_minilb_loc(self):
        from tests.conftest import MINILB_SOURCE

        program = parse_program(MINILB_SOURCE)
        assert program.source_line_count() == 20
