"""Tests for the tokenizer."""

import pytest

from repro.lang.diagnostics import LexError
from repro.lang.lexer import TokenKind, tokenize


class TestBasicTokens:
    def test_identifiers_and_keywords(self):
        tokens = tokenize("class Foo if while uint32_t")
        kinds = [(t.kind, t.text) for t in tokens[:-1]]
        assert kinds == [
            (TokenKind.KEYWORD, "class"),
            (TokenKind.IDENT, "Foo"),
            (TokenKind.KEYWORD, "if"),
            (TokenKind.KEYWORD, "while"),
            (TokenKind.IDENT, "uint32_t"),
        ]

    def test_ends_with_eof(self):
        assert tokenize("x")[-1].kind is TokenKind.EOF
        assert tokenize("")[-1].kind is TokenKind.EOF

    def test_decimal_numbers(self):
        token = tokenize("12345")[0]
        assert token.kind is TokenKind.NUMBER
        assert token.value == 12345

    def test_hex_numbers(self):
        assert tokenize("0xFFFF")[0].value == 0xFFFF
        assert tokenize("0X10")[0].value == 16

    def test_integer_suffixes_swallowed(self):
        tokens = tokenize("10U 10UL 7u")
        assert [t.value for t in tokens[:-1]] == [10, 10, 7]

    def test_multichar_punctuators_maximal_munch(self):
        texts = [t.text for t in tokenize("a->b << >> <= == != && || +=")[:-1]]
        assert texts == ["a", "->", "b", "<<", ">>", "<=", "==", "!=", "&&", "||", "+="]

    def test_string_literal(self):
        token = tokenize('"hello world"')[0]
        assert token.kind is TokenKind.STRING
        assert token.text == "hello world"

    def test_locations_tracked(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].location.line == 1
        assert tokens[1].location.line == 2
        assert tokens[1].location.column == 3


class TestComments:
    def test_line_comments_skipped(self):
        tokens = tokenize("a // comment here\nb")
        assert [t.text for t in tokens[:-1]] == ["a", "b"]

    def test_block_comments_skipped(self):
        tokens = tokenize("a /* multi\nline */ b")
        assert [t.text for t in tokens[:-1]] == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("/* never ends")

    def test_annotation_comment_attaches_to_next_token(self):
        tokens = tokenize("// @gallium: max_entries=4096\nHashMap")
        assert tokens[0].annotations == {"max_entries": 4096}

    def test_annotation_multiple_keys(self):
        tokens = tokenize("// @gallium: max_entries=16, replicate=true\nx")
        assert tokens[0].annotations["max_entries"] == 16
        assert tokens[0].annotations["replicate"] == "true"

    def test_plain_comment_no_annotation(self):
        tokens = tokenize("// just words\nx")
        assert tokens[0].annotations == {}


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a $ b")

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"open')
