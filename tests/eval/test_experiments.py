"""Tests for the evaluation harness: every paper table/figure regenerates
with the right shape."""

import pytest

from repro.eval.experiments import (
    EVAL_MIDDLEBOXES,
    cpu_savings,
    figure7_throughput,
    figure8_workloads,
    figure9_fct,
    table1_loc,
    table2_latency,
    table3_state_sync,
)
from repro.eval.profiles import profile_middlebox
from repro.eval.reporting import render_table
from repro.workloads.iperf import IperfWorkload, middlebox_stream


class TestTable1:
    def test_rows_for_all_middleboxes(self):
        header, rows = table1_loc()
        assert len(rows) == 5
        assert header[0] == "Middlebox"
        for row in rows:
            name, input_loc, p4_loc, cpp_loc = row
            assert input_loc > 0 and p4_loc > 0 and cpp_loc > 0

    def test_render(self):
        text = render_table(*table1_loc())
        assert "MazuNAT" in text and "Trojan Detector" in text


class TestTable2:
    @pytest.fixture(scope="class")
    def rows(self):
        return table2_latency(samples=40)[1]

    def test_latency_bands(self, rows):
        """Paper: FastClick ≈ 22-23 µs, Gallium ≈ 15-16 µs, ~31% less."""
        for row in rows:
            fastclick = float(row[1].split(" ")[0])
            gallium = float(row[2].split(" ")[0])
            assert 21.0 <= fastclick <= 24.0, row
            assert 14.5 <= gallium <= 17.0, row
            assert gallium < fastclick

    def test_reduction_about_30_percent(self, rows):
        reductions = [int(row[3].rstrip("%")) for row in rows]
        assert all(24 <= r <= 35 for r in reductions)


class TestTable3:
    @pytest.fixture(scope="class")
    def rows(self):
        return table3_state_sync(trials=40)[1]

    def test_scaling_shape(self, rows):
        """1 table ≈ 135 µs, 2 ≈ 270 µs, 4 ≈ 371 µs (sub-linear)."""
        by_count = {row[0]: float(row[1].split(" ")[0]) for row in rows}
        assert 115 <= by_count[1] <= 155
        assert 230 <= by_count[2] <= 310
        assert 330 <= by_count[4] <= 420
        assert by_count[4] < 2 * by_count[2]

    def test_ops_similar_cost(self, rows):
        for row in rows:
            insert = float(row[1].split(" ")[0])
            modify = float(row[2].split(" ")[0])
            delete = float(row[3].split(" ")[0])
            spread = max(insert, modify, delete) / min(insert, modify, delete)
            assert spread < 1.3


class TestFigure7:
    @pytest.mark.parametrize("name", EVAL_MIDDLEBOXES)
    def test_offloaded_beats_click4c_at_1500(self, name):
        """Paper: Gallium on one core outperforms 4-core FastClick."""
        header, rows = figure7_throughput(
            name, packets_per_connection=60, connections=10
        )
        row_1500 = next(r for r in rows if r[0] == "1500B")
        offloaded, click4c = row_1500[1], row_1500[4]
        assert offloaded > click4c, f"{name}: {row_1500}"

    def test_click_scales_with_cores(self):
        header, rows = figure7_throughput("firewall", packets_per_connection=30)
        for row in rows:
            click1, click2, click4 = row[2], row[3], row[4]
            assert click1 <= click2 <= click4

    def test_throughput_grows_with_packet_size(self):
        header, rows = figure7_throughput("proxy", packets_per_connection=30)
        offloaded = [row[1] for row in rows]
        assert offloaded[0] <= offloaded[1] <= offloaded[2]


class TestCpuSavings:
    def test_savings_band(self):
        """Paper §6.3: 21-79% on the microbenchmark; our fast-path
        fractions are higher (shorter runs), so the band extends upward."""
        for name in EVAL_MIDDLEBOXES:
            saved = cpu_savings(name)
            assert 0.2 <= saved <= 1.0, f"{name}: {saved:.2f}"

    def test_fully_offloaded_saves_everything(self):
        assert cpu_savings("firewall") == pytest.approx(1.0)
        assert cpu_savings("proxy") == pytest.approx(1.0)


class TestFigures8And9:
    @pytest.fixture(scope="class")
    def fig8(self):
        return figure8_workloads("mazunat", flows=400)[1]

    def test_offloaded_wins_both_workloads(self, fig8):
        for row in fig8:
            workload, offloaded, click1, click2, click4 = row
            assert offloaded >= click4

    def test_fig9_long_flows_gain_most(self):
        """Paper: 'the reduction in flow completion time is concentrated on
        the long flows'."""
        header, rows = figure9_fct("mazunat", flows=400)
        by_bin = {row[0]: row for row in rows}
        long_row = by_bin[">10M"]
        click_e, offloaded_e = long_row[1], long_row[2]
        assert offloaded_e < click_e
        click_d, offloaded_d = long_row[3], long_row[4]
        assert offloaded_d < click_d

    def test_fig9_has_three_bins(self):
        header, rows = figure9_fct("lb", flows=200)
        assert [row[0] for row in rows] == ["0-100K", "100K-10M", ">10M"]


class TestProfiles:
    def test_profile_measures_fast_fraction(self):
        workload = IperfWorkload(connections=4, packets_per_connection=20)
        profile = profile_middlebox(
            "mazunat", middlebox_stream("mazunat", workload)
        )
        assert profile.packets == 4 * 22
        assert profile.verdict_mismatches == 0
        assert 0 < profile.slow_fraction < 0.2
        assert profile.baseline_instructions_per_packet > 5

    def test_fully_offloaded_profile(self):
        workload = IperfWorkload(connections=2, packets_per_connection=10)
        profile = profile_middlebox(
            "firewall", middlebox_stream("firewall", workload)
        )
        assert profile.slow_fraction == 0.0
        assert profile.sync_events == 0


class TestTenancySweep:
    def test_queue_share_zero_solo_then_grows(self):
        from repro.eval.experiments import tenancy_sweep

        header, rows = tenancy_sweep(packets_per_tenant=40)
        assert header[-1] == "Queue share"
        shares = [row[-1] for row in rows]
        assert shares[0] == 0.0  # a serial submitter never queues
        assert shares[1] > 0.0  # co-residency queues immediately
        assert shares[2] >= shares[1]
        # firewall is fully offloaded (slow_fraction == 0): a pure
        # fast-path tenant adds zero shared-channel pressure.
        assert rows[3][2] == rows[2][2]

    def test_metrics_published(self):
        from repro.eval.experiments import tenancy_sweep
        from repro.telemetry.metrics import MetricsRegistry

        registry = MetricsRegistry()
        tenancy_sweep(
            names=("minilb", "mazunat"), packets_per_tenant=20,
            metrics=registry,
        )
        snapshot = registry.to_dict()
        assert "tenancy.n_1.queue_share" in snapshot["gauges"]
        assert "tenancy.n_2.queue_share" in snapshot["gauges"]
