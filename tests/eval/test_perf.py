"""The ``make perf`` harness: payload shape, schema, and sanity."""

import json

import pytest

from repro.eval.perf import (
    MIN_SPEEDUP,
    run_perf,
    validate_payload,
    write_payload,
)


@pytest.fixture(scope="module")
def payload():
    # Small fixed-seed slice: enough packets that the compiled engine's
    # one-time compile cost amortizes, cheap enough for every CI run.
    return run_perf(middlebox="minilb", packets=600, seed=0)


class TestPerfPayload:
    def test_schema_validates(self, payload):
        assert validate_payload(payload) == []

    def test_all_six_cells_present(self, payload):
        cells = {(row["runtime"], row["engine"]) for row in payload["rows"]}
        assert cells == {
            (runtime, engine)
            for runtime in ("engine", "baseline", "gallium")
            for engine in ("interpreter", "compiled")
        }

    def test_speedups_cover_every_runtime(self, payload):
        assert set(payload["speedups"]) == {"engine", "baseline", "gallium"}
        # Not the full >=3x gate (too noisy at this packet count for CI),
        # but the compiled engine must never be slower than the
        # interpreter it specializes.
        assert payload["speedups"]["engine"] > 1.0

    def test_threshold_recorded(self, payload):
        assert payload["thresholds"]["min_speedup"] == MIN_SPEEDUP

    def test_write_payload_round_trips(self, payload, tmp_path):
        out = tmp_path / "BENCH_test.json"
        write_payload(payload, out)
        assert json.loads(out.read_text()) == payload
        assert out.read_text().endswith("\n")

    def test_schema_rejects_missing_keys(self, payload):
        broken = dict(payload)
        del broken["speedups"]
        assert validate_payload(broken) != []

    def test_schema_rejects_bad_enum(self, payload):
        broken = json.loads(json.dumps(payload))
        broken["rows"][0]["engine"] = "jit"
        assert validate_payload(broken) != []


class TestCheckedInBench:
    def test_repo_bench_file_validates(self):
        from pathlib import Path

        bench = Path(__file__).resolve().parents[2] / "BENCH_6.json"
        assert bench.exists(), "BENCH_6.json missing at the repo root"
        payload = json.loads(bench.read_text())
        assert validate_payload(payload) == []
        assert payload["pass"] is True
        assert payload["speedups"]["engine"] >= MIN_SPEEDUP
