"""Tests for table rendering."""

from repro.eval.reporting import render_table


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["A", "Long header"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert lines[0].startswith("A ")
        assert set(lines[1]) <= {"-", " "}
        # Every row has the header's column offsets.
        assert lines[2].index("2") == lines[0].index("Long header")

    def test_handles_wide_cells(self):
        text = render_table(["X"], [["wider-than-header"]])
        lines = text.splitlines()
        assert len(lines[1]) >= len("wider-than-header")

    def test_empty_rows(self):
        text = render_table(["A", "B"], [])
        assert text.splitlines()[0] == "A  B"

    def test_mixed_types_stringified(self):
        text = render_table(["n", "f"], [[1, 2.5], ["x", None]])
        assert "2.5" in text and "None" in text
