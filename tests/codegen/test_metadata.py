"""Tests for the scratchpad metadata allocator (§4.3.1)."""

from hypothesis import given, strategies as st

from repro.analysis.liveness import live_ranges
from repro.codegen.metadata import allocate_metadata
from repro.ir import lower_program
from repro.lang import parse_program
from tests.conftest import get_compiled


def lower(statements: str, members: str = ""):
    source = (
        f"class T {{ {members} void process(Packet *pkt) {{ {statements} }} }};"
    )
    return lower_program(parse_program(source))


class TestAllocator:
    def test_no_overlap_for_concurrently_live(self, middlebox_name, compiled):
        """Registers with overlapping live ranges get disjoint bytes."""
        function = compiled.plan.pre
        allocation = allocate_metadata(function)
        ranges = live_ranges(function)
        names = list(allocation.offsets)
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                ra, rb = ranges[a], ranges[b]
                overlap_live = not (ra[1] < rb[0] or rb[1] < ra[0])
                if overlap_live:
                    oa, sa = allocation.offsets[a]
                    ob, sb = allocation.offsets[b]
                    assert oa + sa <= ob or ob + sb <= oa, (
                        f"{a} and {b} overlap in scratchpad"
                    )

    def test_reuse_never_worse_than_naive(self, middlebox_name, compiled):
        function = compiled.plan.pre
        with_reuse = allocate_metadata(function, reuse=True)
        without = allocate_metadata(function, reuse=False)
        assert with_reuse.total_bytes <= without.total_bytes
        assert with_reuse.naive_bytes == without.total_bytes

    def test_reuse_actually_saves_on_sequential_temps(self):
        lowered = lower(
            "uint32_t a = 1; uint32_t b = a + 1;"
            " uint32_t c = b + 1; uint32_t d = c + 1;"
            " iphdr *ip = pkt->network_header(); ip->ttl = (uint8_t)d;"
            " pkt->send();"
        )
        allocation = allocate_metadata(lowered.process)
        assert allocation.savings > 0

    def test_offsets_cover_all_registers(self, middlebox_name, compiled):
        function = compiled.plan.pre
        allocation = allocate_metadata(function)
        for inst in function.instructions():
            result = inst.result()
            if result is not None:
                assert allocation.offset_of(result.name) is not None

    def test_total_bytes_is_peak(self):
        lowered = lower("uint32_t a = 1; pkt->send();")
        allocation = allocate_metadata(lowered.process)
        highest = max(
            offset + size for offset, size in allocation.offsets.values()
        )
        assert allocation.total_bytes == highest
