"""Tests for shim header synthesis and encode/decode (Figure 5)."""

from hypothesis import given, strategies as st

from repro.codegen.headers import (
    ShimField,
    ShimLayout,
    synthesize_shim_layouts,
)
from repro.lang.types import BOOL, UINT16, UINT32
from repro.ir.values import Reg
from repro.partition.plan import TransferSpec
from tests.conftest import get_compiled


class TestShimLayout:
    def test_byte_size_rounds_up(self):
        layout = ShimLayout("to_server", [ShimField("a", 1), ShimField("b", 16)])
        assert layout.total_bits == 17
        assert layout.byte_size == 3

    def test_encode_decode_round_trip(self):
        layout = ShimLayout(
            "to_server",
            [ShimField("flag", 1), ShimField("x", 16), ShimField("y", 32)],
        )
        values = {"flag": 1, "x": 0xABCD, "y": 0xDEADBEEF}
        assert layout.decode(layout.encode(values)) == values

    def test_missing_fields_encode_zero(self):
        layout = ShimLayout("to_server", [ShimField("x", 8)])
        assert layout.decode(layout.encode({})) == {"x": 0}

    def test_values_masked_to_width(self):
        layout = ShimLayout("to_server", [ShimField("x", 4)])
        assert layout.decode(layout.encode({"x": 0xFF}))["x"] == 0xF

    def test_empty_layout(self):
        layout = ShimLayout("to_server", [])
        assert layout.byte_size == 0
        assert layout.encode({}) == b""

    def test_short_buffer_rejected(self):
        layout = ShimLayout("to_server", [ShimField("x", 32)])
        try:
            layout.decode(b"\x00")
            assert False, "expected ValueError"
        except ValueError:
            pass

    @given(
        st.lists(
            st.tuples(
                st.integers(1, 48),
                st.integers(0, 2**48 - 1),
            ),
            min_size=1,
            max_size=10,
        )
    )
    def test_round_trip_property(self, spec):
        fields = [ShimField(f"f{i}", width) for i, (width, _) in enumerate(spec)]
        layout = ShimLayout("to_server", fields)
        values = {
            f"f{i}": value & ((1 << width) - 1)
            for i, (width, value) in enumerate(spec)
        }
        assert layout.decode(layout.encode(values)) == values


class TestSynthesis:
    def test_control_fields_present(self):
        to_server, to_switch = synthesize_shim_layouts(
            TransferSpec([]), TransferSpec([])
        )
        assert "__ingress_port" in to_server.field_names()
        assert "__verdict" in to_switch.field_names()
        assert "__egress_port" in to_switch.field_names()

    def test_flags_packed_before_wide_fields(self):
        to_server, _ = synthesize_shim_layouts(
            TransferSpec([Reg("wide", UINT32), Reg("bit", BOOL)]),
            TransferSpec([]),
        )
        names = to_server.field_names()
        assert names.index("bit") < names.index("wide")

    def test_deterministic_order(self):
        spec = TransferSpec([Reg("b", UINT16), Reg("a", UINT16)])
        first, _ = synthesize_shim_layouts(spec, TransferSpec([]))
        second, _ = synthesize_shim_layouts(spec, TransferSpec([]))
        assert first.field_names() == second.field_names()

    def test_middlebox_shims_within_budget(self, middlebox_name, compiled):
        # 20 bytes of payload plus the fixed control fields.
        assert compiled.shim_to_server.byte_size <= 22
        assert compiled.shim_to_switch.byte_size <= 23
