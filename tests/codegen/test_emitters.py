"""Tests for the P4-16 and C++ emitters."""

import re

import pytest

from tests.conftest import get_compiled


def balanced_braces(text: str) -> bool:
    depth = 0
    for char in text:
        if char == "{":
            depth += 1
        elif char == "}":
            depth -= 1
            if depth < 0:
                return False
    return depth == 0


class TestP4Emission:
    def test_braces_balanced(self, middlebox_name, compiled):
        assert balanced_braces(compiled.p4_source)

    def test_has_v1model_skeleton(self, middlebox_name, compiled):
        source = compiled.p4_source
        for expected in (
            "#include <v1model.p4>",
            "parser GalliumParser",
            "control GalliumIngress",
            "control GalliumDeparser",
            "V1Switch(",
        ):
            assert expected in source

    def test_every_table_declared_and_applied(self, middlebox_name, compiled):
        source = compiled.p4_source
        for table_name in compiled.switch_program.tables:
            assert f"table tbl_{table_name}" in source
            assert f"tbl_{table_name}.apply()" in source

    def test_registers_declared(self, middlebox_name, compiled):
        for register in compiled.switch_program.registers:
            assert f"reg_{register}" in compiled.p4_source

    def test_ingress_dispatch_on_port(self, middlebox_name, compiled):
        assert (
            "if (standard_metadata.ingress_port == 3)" in compiled.p4_source
        )

    def test_shim_headers_declared(self, middlebox_name, compiled):
        assert "header gallium_to_server_t" in compiled.p4_source
        assert "header gallium_to_switch_t" in compiled.p4_source

    def test_replicated_tables_get_writeback(self):
        compiled = get_compiled("minilb")
        source = compiled.p4_source
        assert "tbl_wb_map" in source
        assert "wb_bit_map" in source

    def test_non_replicated_tables_no_writeback(self):
        compiled = get_compiled("firewall")
        assert "tbl_wb_" not in compiled.p4_source

    def test_punt_path_emitted_for_slow_path_middleboxes(self):
        compiled = get_compiled("minilb")
        assert "punt to the middlebox server" in compiled.p4_source
        assert "standard_metadata.egress_spec = 3" in compiled.p4_source

    def test_checksum_recomputed(self, middlebox_name, compiled):
        assert "update_checksum" in compiled.p4_source

    def test_no_loops_in_p4(self, middlebox_name, compiled):
        assert "while" not in compiled.p4_source
        assert not re.search(r"\bfor\s*\(", compiled.p4_source)


class TestCppEmission:
    def test_braces_balanced(self, middlebox_name, compiled):
        assert balanced_braces(compiled.cpp_source)

    def test_dpdk_skeleton(self, middlebox_name, compiled):
        source = compiled.cpp_source
        assert "#include <rte_eal.h>" in source
        assert "rte_eth_rx_burst" in source
        assert "int main(" in source

    def test_state_declared_with_placement_notes(self, middlebox_name, compiled):
        source = compiled.cpp_source
        for state_name in compiled.plan.middlebox.state:
            assert f"st_{state_name}" in source

    def test_shim_structs_emitted(self, middlebox_name, compiled):
        assert "struct __attribute__((packed)) ShimToServer" in compiled.cpp_source
        assert "struct __attribute__((packed)) ShimToSwitch" in compiled.cpp_source

    def test_replication_three_step_protocol(self):
        source = get_compiled("minilb").cpp_source
        assert "control_plane.stage" in source
        assert "flip_visibility" in source
        assert "fold_writeback" in source

    def test_output_commit_comment(self, middlebox_name, compiled):
        assert "output commit" in compiled.cpp_source

    def test_fully_offloaded_has_trivial_handler(self):
        source = get_compiled("firewall").cpp_source
        assert "no replicated state" in source


class TestTable1Metrics:
    def test_loc_positive(self, middlebox_name, compiled):
        assert compiled.input_loc() > 0
        assert compiled.p4_loc() > 0
        assert compiled.cpp_loc() > 0

    def test_loc_shape_matches_paper(self):
        """Paper Table 1 shape: the trojan detector has the largest server
         partition and the proxy the smallest P4 program."""
        p4 = {}
        cpp = {}
        for name in ("mazunat", "lb", "firewall", "proxy", "trojan"):
            compiled = get_compiled(name)
            p4[name] = compiled.p4_loc()
            cpp[name] = compiled.cpp_loc()
        # Proxy is the smallest switch program (paper: 292 vs 500+).
        assert p4["proxy"] == min(p4.values())
        # The trojan detector keeps the most code on the server (DPI loop).
        assert cpp["trojan"] == max(cpp.values())
        # Fully offloaded middleboxes have smaller server programs than the
        # stateful ones.
        assert cpp["firewall"] < cpp["trojan"]
