"""Shared fixtures: cached middlebox bundles and compilation results."""

from __future__ import annotations

import pytest

from repro.compiler import CompilationResult, compile_lowered
from repro.middleboxes import MIDDLEBOX_NAMES, MiddleboxBundle, load

_BUNDLES: dict = {}
_COMPILED: dict = {}


def get_bundle(name: str) -> MiddleboxBundle:
    if name not in _BUNDLES:
        _BUNDLES[name] = load(name)
    return _BUNDLES[name]


def get_compiled(name: str) -> CompilationResult:
    if name not in _COMPILED:
        _COMPILED[name] = compile_lowered(get_bundle(name).lowered)
    return _COMPILED[name]


@pytest.fixture(params=MIDDLEBOX_NAMES)
def middlebox_name(request):
    return request.param


@pytest.fixture
def bundle(middlebox_name):
    return get_bundle(middlebox_name)


@pytest.fixture
def compiled(middlebox_name):
    return get_compiled(middlebox_name)


MINILB_SOURCE = get_bundle("minilb").source
