"""Stage 2 unit tests: partition-invariant codes (PART001-PART006).

Each test compiles a small program (verification off), applies one
targeted mutation to the partition plan or shim layout, and asserts
exactly the expected invariant fires.  The paper properties re-proved
here: one-directional state replication (§4.3.3), run-to-completion
phase order (§4.2.1), and boundary liveness within the constraint-5
transfer budget (§4.3.2).
"""

import dataclasses

import pytest

from repro.compiler import compile_source
from repro.ir import instructions as irin
from repro.partition.labels import Partition
from repro.verify import verify_compilation, verify_partition

COUNTER_SOURCE = """class Box {
  uint32_t ctr0;

  void process(Packet *pkt) {
    iphdr *ip = pkt->network_header();
    if (ctr0 == 0) {
      ip->ttl = 1;
    }
    ctr0 += 1;
    pkt->send();
  }
};
"""

STRANDED_SOURCE = """class Box {
  uint32_t ctr0;

  void process(Packet *pkt) {
    ctr0 += 1;
    ctr0 -= 0;
    pkt->send();
  }
};
"""

def _flow_source():
    """A program with a value crossing the pre->server boundary and
    server-side dependency edges (the l4_alias_hoist reproducer)."""
    from repro.difftest.corpus import load_corpus

    entries = {entry.name: entry for entry in load_corpus()}
    return entries["l4_alias_hoist"].source


def _compile(source):
    result = compile_source(source, verify=False)
    assert verify_compilation(result).ok
    return result


def _codes(result, cache_mode=False):
    return verify_compilation(result, cache_mode=cache_mode).codes()


def _rmws(plan, partition=None):
    return [
        inst
        for inst in plan.middlebox.process.instructions()
        if isinstance(inst, irin.RegisterRMW)
        and (partition is None or plan.assignment.get(inst.id) is partition)
    ]


def test_part001_offloaded_write_with_server_write():
    result = _compile(STRANDED_SOURCE)
    rmws = _rmws(result.plan, Partition.NON_OFF)
    assert len(rmws) >= 2
    result.plan.assignment[rmws[0].id] = Partition.PRE
    codes = _codes(result)
    assert "PART001" in codes
    assert "PART002" not in codes


def test_part002_offloaded_write_with_server_read():
    result = _compile(COUNTER_SOURCE)
    plan = result.plan
    instructions = list(plan.middlebox.process.instructions())
    # Move the whole read side onto the server and the single RMW onto
    # the switch: ctr0 is now written offloaded and read on the server,
    # but never written on the server (PART002, not PART001).
    for inst in instructions:
        plan.assignment[inst.id] = Partition.NON_OFF
    (rmw,) = _rmws(plan)
    plan.assignment[rmw.id] = Partition.POST
    verdicts = [i for i in instructions if i.is_verdict]
    for verdict in verdicts:
        plan.assignment[verdict.id] = Partition.POST
    codes = _codes(result)
    assert "PART002" in codes
    assert "PART001" not in codes


def test_part003_backward_dependency_edge():
    result = _compile(_flow_source())
    plan = result.plan
    from repro.analysis.depgraph import build_dependency_graph

    graph = build_dependency_graph(plan.middlebox.process)
    victim = None
    for (src_id, dst_id), _kinds in sorted(graph.edges.items()):
        src, dst = graph.by_id(src_id), graph.by_id(dst_id)
        if (
            plan.assignment.get(src.id) is Partition.NON_OFF
            and plan.assignment.get(dst.id) is Partition.NON_OFF
            and not any(loc.is_global for loc in dst.writes())
        ):
            victim = dst
            break
    if victim is None:
        pytest.skip("no invertible server-side dependency edge")
    plan.assignment[victim.id] = Partition.PRE
    assert "PART003" in _codes(result)


def test_part004_shim_field_dropped():
    result = _compile(_flow_source())
    crossing = [
        f for f in result.shim_to_server.fields
        if not f.name.startswith("__")
    ]
    assert crossing, "expected a value crossing the pre->server boundary"
    result.shim_to_server.fields.remove(crossing[0])
    assert "PART004" in _codes(result)


def test_part005_shim_over_budget():
    result = _compile(_flow_source())
    plan = result.plan
    plan.limits = dataclasses.replace(plan.limits, transfer_bytes=0)
    assert "PART005" in _codes(result)


def test_part006_only_in_cache_mode():
    result = _compile(COUNTER_SOURCE)
    assert _rmws(result.plan, Partition.NON_OFF), "RMW stays server-side"
    # Clean in both modes: the RMW is not offloaded.
    assert "PART006" not in _codes(result, cache_mode=True)
    # Force the RMW into the post pipeline: legal for the full deployment
    # but a lost update under the cache, so only cache_mode objects.
    plan = result.plan
    (rmw,) = _rmws(plan)
    plan.post.blocks[plan.post.entry].instructions.insert(0, rmw)
    diagnostics = verify_partition(
        plan, result.shim_to_server, result.shim_to_switch, cache_mode=True
    )
    assert "PART006" in [d.code for d in diagnostics]
    diagnostics = verify_partition(
        plan, result.shim_to_server, result.shim_to_switch, cache_mode=False
    )
    assert "PART006" not in [d.code for d in diagnostics]
