"""Stage 1 unit tests: each IR well-formedness code fires on a minimal
hand-built function and stays silent on a clean one."""

from repro.ir import instructions as irin
from repro.ir.function import BasicBlock, Function
from repro.ir.values import const_int, Reg
from repro.lang.types import BOOL, IntType
from repro.verify import verify_ir

U32 = IntType(32)


def _reg(name, type_=U32):
    return Reg(name, type_)


def _function(*blocks):
    function = Function("f")
    for block in blocks:
        function.blocks[block.name] = block
    return function


def _block(name, *instructions):
    block = BasicBlock(name)
    block.instructions.extend(instructions)
    return block


def _codes(diagnostics):
    return {d.code for d in diagnostics}


def test_clean_function_has_no_diagnostics():
    function = _function(
        _block(
            "entry",
            irin.Assign(_reg("x"), const_int(1)),
            irin.BinOp(_reg("y"), irin.BinOpKind.ADD, _reg("x"), const_int(2)),
            irin.Return(),
        )
    )
    assert verify_ir(function) == []


def test_ir001_missing_entry():
    function = Function("f", entry="nope")
    assert _codes(verify_ir(function)) == {"IR001"}


def test_ir002_empty_block():
    function = _function(
        _block("entry", irin.Jump("other")), _block("other")
    )
    assert "IR002" in _codes(verify_ir(function))


def test_ir003_missing_terminator():
    function = _function(_block("entry", irin.Assign(_reg("x"), const_int(0))))
    assert "IR003" in _codes(verify_ir(function))


def test_ir004_terminator_mid_block():
    function = _function(
        _block("entry", irin.Return(), irin.Return())
    )
    assert "IR004" in _codes(verify_ir(function))


def test_ir005_jump_to_unknown_block():
    function = _function(_block("entry", irin.Jump("missing")))
    assert "IR005" in _codes(verify_ir(function))


def test_ir006_double_assigned_temp():
    function = _function(
        _block(
            "entry",
            irin.Assign(_reg("t"), const_int(1)),
            irin.Assign(_reg("t"), const_int(2)),
            irin.Return(),
        )
    )
    assert "IR006" in _codes(verify_ir(function))


def test_ir007_use_before_definition():
    function = _function(
        _block(
            "entry",
            irin.BinOp(
                _reg("y"), irin.BinOpKind.ADD, _reg("ghost"), const_int(1)
            ),
            irin.Return(),
        )
    )
    assert "IR007" in _codes(verify_ir(function))


def test_boundary_inputs_suppress_ir007():
    """Projection functions read shim fields without defining them."""
    function = _function(
        _block(
            "entry",
            irin.BinOp(
                _reg("y"), irin.BinOpKind.ADD, _reg("shim_in"), const_int(1)
            ),
            irin.Return(),
        )
    )
    assert "IR007" in _codes(verify_ir(function))
    assert verify_ir(function, boundary_inputs=frozenset({"shim_in"})) == []


def test_ir007_join_requires_definition_on_all_paths():
    cond = _reg("c", BOOL)
    function = _function(
        _block(
            "entry",
            irin.Assign(cond, const_int(1)),
            irin.Branch(cond, "a", "b"),
        ),
        _block("a", irin.Assign(_reg("v"), const_int(1)), irin.Jump("join")),
        _block("b", irin.Jump("join")),
        _block(
            "join",
            irin.BinOp(_reg("w"), irin.BinOpKind.ADD, _reg("v"), const_int(1)),
            irin.Return(),
        ),
    )
    assert "IR007" in _codes(verify_ir(function))


def test_ir008_unreachable_block_is_warning_only():
    function = _function(
        _block("entry", irin.Return()),
        _block("island", irin.Return()),
    )
    diagnostics = verify_ir(function)
    assert _codes(diagnostics) == {"IR008"}
    assert all(d.severity == "warning" for d in diagnostics)


def test_ir009_wide_branch_condition():
    wide = _reg("cond32", U32)
    function = _function(
        _block(
            "entry",
            irin.Assign(wide, const_int(1)),
            irin.Branch(wide, "t", "f"),
        ),
        _block("t", irin.Return()),
        _block("f", irin.Return()),
    )
    assert "IR009" in _codes(verify_ir(function))


def test_ir010_undeclared_extern():
    function = _function(
        _block(
            "entry",
            irin.ExternCall(_reg("x"), "no_such_extern", []),
            irin.Return(),
        )
    )
    assert "IR010" in _codes(verify_ir(function))


def test_ir010_extern_arity_mismatch():
    function = _function(
        _block(
            "entry",
            irin.ExternCall(_reg("n"), "payload_len", [const_int(1)]),
            irin.Return(),
        )
    )
    assert "IR010" in _codes(verify_ir(function))
