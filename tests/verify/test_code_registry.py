"""Registry lint: the diagnostic-code universe stays closed and covered.

Three invariants over every code any stage can emit (IR / PART / P4L /
TEN / SYM):

1. every code that appears in ``src/repro`` is declared in
   :data:`repro.verify.diagnostics.DIAGNOSTIC_CODES` (and vice versa —
   no dead declarations),
2. every declared code is documented in DESIGN.md's code table,
3. every declared code is exercised by at least one test.

The walk is textual on purpose: it catches a new ``error("XYZ123", ...)``
call site the moment it is written, before the stage it belongs to even
runs.
"""

import re
from pathlib import Path

from repro.verify.diagnostics import DIAGNOSTIC_CODES

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src" / "repro"
TESTS = REPO / "tests"
DESIGN = REPO / "DESIGN.md"

#: One prefix per verifier stage; a new stage must extend this (and the
#: DESIGN.md table) to come under the lint.
CODE_RE = re.compile(r"\b(?:IR|PART|P4L|TEN|SYM)\d{3}\b")


def _codes_in(paths):
    found = set()
    for path in paths:
        found.update(CODE_RE.findall(path.read_text(encoding="utf-8")))
    return found


def test_every_code_in_source_is_declared():
    in_source = _codes_in(SRC.rglob("*.py"))
    undeclared = in_source - set(DIAGNOSTIC_CODES)
    assert not undeclared, f"codes used but not declared: {sorted(undeclared)}"


def test_every_declared_code_is_emittable():
    """No dead declarations: each code appears somewhere in src/ outside
    the registry module itself."""
    emit_sites = _codes_in(
        p for p in SRC.rglob("*.py") if p.name != "diagnostics.py"
    )
    dead = set(DIAGNOSTIC_CODES) - emit_sites
    assert not dead, f"codes declared but never referenced: {sorted(dead)}"


def test_every_declared_code_is_documented_in_design():
    table_rows = {
        match.group(1)
        for match in re.finditer(r"^\| `((?:IR|PART|P4L|TEN|SYM)\d{3})` \|",
                                 DESIGN.read_text(encoding="utf-8"),
                                 re.MULTILINE)
    }
    missing = set(DIAGNOSTIC_CODES) - table_rows
    assert not missing, f"codes missing from DESIGN.md table: {sorted(missing)}"
    stale = table_rows - set(DIAGNOSTIC_CODES)
    assert not stale, f"DESIGN.md documents unknown codes: {sorted(stale)}"


def test_every_declared_code_is_exercised_by_a_test():
    in_tests = _codes_in(TESTS.rglob("*.py"))
    untested = set(DIAGNOSTIC_CODES) - in_tests
    assert not untested, f"codes never exercised: {sorted(untested)}"
