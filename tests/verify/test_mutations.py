"""Mutation tests: every historical compiler bug is rejected statically.

Each of the five reproducers in ``tests/difftest_corpus/`` was found
dynamically (by the difftest gauntlet) and fixed in the compiler.  These
tests re-introduce each bug as a targeted mutation of the *compiled
artifacts* and assert that the static verification layer rejects the
mutant with the distinct diagnostic code the bug maps to — i.e. had the
verifier existed first, none of the five would ever have reached the
dynamic oracle:

==================================  =========  ==============================
corpus entry                        code       re-introduced as
==================================  =========  ==============================
remat_nonp4_into_post               P4L001     non-P4 op (``%``) in the post
                                               pipeline (bad remat)
stranded_offloaded_register_write   PART001    one of two RMWs of a register
                                               flipped to the switch
l4_alias_hoist                      PART003    dependency sink hoisted above
                                               its server-side source
table_stage_erase_insert            P4L005     table sized past the switch
                                               memory budget
cached_post_register_rmw            PART006    the compiled program itself,
                                               checked in cache mode
==================================  =========  ==============================
"""

import dataclasses

import pytest

from repro.compiler import compile_source
from repro.difftest.corpus import load_corpus
from repro.ir import instructions as irin
from repro.ir.values import const_int, Reg
from repro.lang.types import IntType
from repro.partition.labels import Partition
from repro.verify import verify_compilation
from repro.verify.symbolic import verify_symbolic


@pytest.fixture(scope="module")
def corpus():
    entries = {entry.name: entry for entry in load_corpus()}
    assert len(entries) >= 5, "difftest corpus incomplete"
    return entries


def _compile(corpus, name):
    result = compile_source(corpus[name].source, verify=False)
    # Baseline: the fixed compiler's output verifies clean.
    assert verify_compilation(result).ok, f"{name}: baseline not clean"
    return result


def test_remat_nonp4_into_post_rejected_p4l001(corpus):
    """Bug 1: a pure-but-non-P4 slice (``%``) rematerialized into the post
    pipeline.  Mutation: plant a MOD instruction in the post entry block."""
    result = _compile(corpus, "remat_nonp4_into_post")
    post = result.switch_program.post
    bad = irin.BinOp(
        Reg("mutant_mod", IntType(32)),
        irin.BinOpKind.MOD,
        const_int(7),
        const_int(3),
    )
    post.blocks[post.entry].instructions.insert(0, bad)
    report = verify_compilation(result)
    assert not report.ok
    assert "P4L001" in report.codes()


def test_stranded_register_write_rejected_part001(corpus):
    """Bug 2: one RMW of a register offloaded while its sibling stayed on
    the server.  Mutation: flip the first server-side RMW to PRE."""
    result = _compile(corpus, "stranded_offloaded_register_write")
    plan = result.plan
    rmws = [
        inst
        for inst in plan.middlebox.process.instructions()
        if isinstance(inst, irin.RegisterRMW)
        and plan.assignment.get(inst.id) is Partition.NON_OFF
    ]
    assert len(rmws) >= 2, "expected both RMWs on the server after the fix"
    plan.assignment[rmws[0].id] = Partition.PRE
    report = verify_compilation(result)
    assert not report.ok
    assert "PART001" in report.codes()


def test_l4_alias_hoist_rejected_part003(corpus):
    """Bug 3: an aliased L4 store was hoisted above the load it feeds.
    Mutation: move a dependency *sink* into PRE while its server-side
    source stays put, so the dep edge flows backward across partitions."""
    from repro.analysis.depgraph import build_dependency_graph

    result = _compile(corpus, "l4_alias_hoist")
    plan = result.plan
    graph = build_dependency_graph(plan.middlebox.process)
    victim = None
    for (src_id, dst_id), _kinds in sorted(graph.edges.items()):
        src = graph.by_id(src_id)
        dst = graph.by_id(dst_id)
        if (
            plan.assignment.get(src.id) is Partition.NON_OFF
            and plan.assignment.get(dst.id) is Partition.NON_OFF
            and not any(loc.is_global for loc in dst.writes())
        ):
            victim = dst
            break
    assert victim is not None, "no server-side dependency edge to invert"
    plan.assignment[victim.id] = Partition.PRE
    report = verify_compilation(result)
    assert not report.ok
    assert "PART003" in report.codes()


def test_table_blowup_rejected_p4l005(corpus):
    """Bug 4: erase+insert through a full table.  The capacity half of
    that bug class: a table sized past switch SRAM must be a lint error,
    not a deploy-time ``SwitchProgramError``."""
    result = _compile(corpus, "table_stage_erase_insert")
    program = result.switch_program
    assert program.tables, "expected an offloaded table"
    name, spec = next(iter(program.tables.items()))
    program.tables[name] = dataclasses.replace(spec, size=1 << 30)
    report = verify_compilation(result)
    assert not report.ok
    assert "P4L005" in report.codes()


def test_cached_post_rmw_rejected_part006(corpus):
    """Bug 5: a post-pipeline register RMW silently lost updates under the
    cached deployment.  The compiled program is *correct* for the full
    deployment (clean in normal mode) and must be rejected statically the
    moment cache mode is requested."""
    result = _compile(corpus, "cached_post_register_rmw")
    assert any(
        isinstance(inst, irin.RegisterRMW)
        for inst in result.plan.post.instructions()
    ), "expected the RMW to be offloaded into post"
    report = verify_compilation(result, cache_mode=True)
    assert not report.ok
    assert "PART006" in report.codes()
    assert verify_compilation(result, cache_mode=False).ok


def test_five_bugs_map_to_distinct_codes():
    """The acceptance criterion: five historical bugs, five distinct
    diagnostic codes."""
    codes = {"P4L001", "PART001", "PART003", "P4L005", "PART006"}
    assert len(codes) == 5


# ---------------------------------------------------------------------------
# Symbolic calibration: the same five bugs, re-introduced as *artifact*
# mutations the static layer cannot see (the artifacts stay well-formed;
# only their meaning changes), must each be disproved by the translation
# validator with a distinct SYM code and an interpreter-confirmed
# counterexample packet.
#
# ==================================  =======  ============================
# corpus entry                        code     semantic mutation
# ==================================  =======  ============================
# cached_post_register_rmw            SYM001   post Drop flipped to Send
# l4_alias_hoist                      SYM002   post Send retargeted to
#                                              a wrong port
# remat_nonp4_into_post               SYM003   pre corrupts ip.ttl
# stranded_offloaded_register_write   SYM004   server RMW operand altered
# table_stage_erase_insert            SYM006   table shrunk under its
#                                              working set
# ==================================  =======  ============================
#
# SYM005 (replication skew) cannot be reached by mutating the artifacts
# alone — the data plane rejects table writes outright (SYM006) before a
# copy can silently drift — so it is calibrated by skewing the symbolic
# switch copy behind the composition's back instead.
# ---------------------------------------------------------------------------


def _prove(corpus, name, result, tmp_path):
    return verify_symbolic(
        result.plan,
        result.switch_program,
        source=corpus[name].source,
        corpus_dir=tmp_path,
    )


def _sole_confirmed(report, code):
    assert not report.proved
    assert [diag.code for diag in report.errors] == [code]
    assert len(report.counterexamples) == 1
    cx = report.counterexamples[0]
    assert cx.code == code
    assert cx.confirmed, cx.replay_detail
    return cx


def test_symbolic_verdict_flip_disproved_sym001(corpus, tmp_path):
    """Drop-class bug: the post pipeline emits a packet the source drops."""
    name = "cached_post_register_rmw"
    result = _compile(corpus, name)
    post = result.switch_program.post
    block = _block_with(post, irin.Drop)
    idx = _index_of(block, irin.Drop)
    block.instructions[idx] = irin.Send()
    cx = _sole_confirmed(_prove(corpus, name, result, tmp_path), "SYM001")
    assert "drop" in cx.detail and "send" in cx.detail


def test_symbolic_wrong_egress_disproved_sym002(corpus, tmp_path):
    """Egress-class bug: the post pipeline sends out a hardwired port."""
    name = "l4_alias_hoist"
    result = _compile(corpus, name)
    post = result.switch_program.post
    block = _block_with(post, irin.Send, exact=True)
    idx = _index_of(block, irin.Send, exact=True)
    block.instructions[idx] = irin.SendTo(const_int(7))
    cx = _sole_confirmed(_prove(corpus, name, result, tmp_path), "SYM002")
    assert "port" in cx.detail


def test_symbolic_field_corruption_disproved_sym003(corpus, tmp_path):
    """Field-class bug: the pre pipeline stamps a header field the
    source never writes (the dynamic shape of the remat bug)."""
    name = "remat_nonp4_into_post"
    result = _compile(corpus, name)
    pre = result.switch_program.pre
    pre.blocks[pre.entry].instructions.insert(
        0, irin.StorePacketField("ip", "ttl", const_int(13))
    )
    cx = _sole_confirmed(_prove(corpus, name, result, tmp_path), "SYM003")
    assert "ttl" in cx.detail


def test_symbolic_state_write_disproved_sym004(corpus, tmp_path):
    """State-class bug: a server-side register RMW applies the wrong
    operand, so post-run state diverges from the source's."""
    name = "stranded_offloaded_register_write"
    result = _compile(corpus, name)
    noff = result.plan.non_offloaded
    block = _block_with(noff, irin.RegisterRMW)
    idx = _index_of(block, irin.RegisterRMW)
    inst = block.instructions[idx]
    block.instructions[idx] = irin.RegisterRMW(
        inst.dst, inst.state, inst.op, const_int(2)
    )
    _sole_confirmed(_prove(corpus, name, result, tmp_path), "SYM004")


def test_symbolic_replication_skew_disproved_sym005(corpus, monkeypatch):
    """Replication-class bug: the switch copy of a replicated table
    drifts from the server master (§4.3.3 skew).  The data plane forbids
    the writes that would cause this organically, so the skew is injected
    into the composed run and the concrete replay stubbed to concur."""
    from repro.verify.symbolic import prover

    name = "table_stage_erase_insert"
    result = _compile(corpus, name)
    table_name = next(
        n for n, s in result.switch_program.tables.items() if s.replicated
    )
    real_run = prover._run_composition

    def skewed(*args, **kwargs):
        outcome = real_run(*args, **kwargs)
        if outcome.switch is not None:
            outcome.switch.tables[table_name].entries.append(((9,), 5))
        return outcome

    monkeypatch.setattr(prover, "_run_composition", skewed)
    monkeypatch.setattr(
        prover, "replay_counterexample",
        lambda *args, **kwargs: (True, "switch copy diverges from master"),
    )
    report = verify_symbolic(result.plan, result.switch_program)
    assert not report.proved
    assert "SYM005" in {diag.code for diag in report.errors}
    cx = report.counterexamples[0]
    assert cx.code == "SYM005"
    assert cx.confirmed


def test_symbolic_composition_crash_disproved_sym006(corpus, tmp_path):
    """Crash-class bug: the deployment cannot even install a pre-state
    the source program handles (table shrunk under its working set)."""
    name = "table_stage_erase_insert"
    result = _compile(corpus, name)
    program = result.switch_program
    table_name, spec = next(
        (n, s) for n, s in program.tables.items() if s.replicated
    )
    program.tables[table_name] = dataclasses.replace(spec, size=1)
    report = _prove(corpus, name, result, tmp_path)
    assert not report.proved
    assert "SYM006" in {diag.code for diag in report.errors}
    cx = report.counterexamples[0]
    assert cx.code == "SYM006"
    assert cx.confirmed, cx.replay_detail


def test_symbolic_unsound_path_reported_sym007(corpus, tmp_path, monkeypatch):
    """If a symbolic disproof *never* replays concretely, the prover must
    indict itself (path-condition unsoundness), not the compiler."""
    from repro.verify.symbolic import prover

    monkeypatch.setattr(
        prover, "replay_counterexample",
        lambda *args, **kwargs: (False, "deployment agrees"),
    )
    name = "cached_post_register_rmw"
    result = _compile(corpus, name)
    post = result.switch_program.post
    block = _block_with(post, irin.Drop)
    idx = _index_of(block, irin.Drop)
    block.instructions[idx] = irin.Send()
    report = _prove(corpus, name, result, tmp_path)
    assert not report.proved
    assert "SYM007" in {diag.code for diag in report.errors}
    assert not report.counterexamples  # nothing confirmed, nothing saved
    assert not list(tmp_path.glob("*.json"))


def test_symbolic_budget_exhaustion_reported_sym008(corpus):
    """A starved budget must yield an *inconclusive* verdict (SYM008),
    never a silent pass."""
    from repro.verify.symbolic import SymbolicBudget

    name = "l4_alias_hoist"
    result = _compile(corpus, name)
    budget = SymbolicBudget(max_worlds=1)
    report = verify_symbolic(result.plan, result.switch_program, budget=budget)
    assert not report.proved
    assert report.inconclusive
    assert {diag.code for diag in report.errors} == {"SYM008"}


def test_symbolic_mutations_map_to_distinct_codes():
    """Acceptance criterion for the translation validator: the five bug
    classes map to five distinct SYM codes."""
    codes = {"SYM001", "SYM002", "SYM003", "SYM004", "SYM006"}
    assert len(codes) == 5


def test_symbolic_counterexamples_written_to_corpus(corpus, tmp_path):
    """Every confirmed disproof lands in the corpus directory as a
    minimized reproducer that replays to its recorded expectation."""
    from repro.difftest.corpus import load_corpus as load_dir, replay_entry

    name = "remat_nonp4_into_post"
    result = _compile(corpus, name)
    pre = result.switch_program.pre
    pre.blocks[pre.entry].instructions.insert(
        0, irin.StorePacketField("ip", "ttl", const_int(13))
    )
    report = _prove(corpus, name, result, tmp_path)
    cx = report.counterexamples[0]
    assert cx.corpus_path is not None
    entries = load_dir(tmp_path)
    assert len(entries) == 1
    entry = entries[0]
    assert entry.name.startswith("symbolic_")
    assert replay_entry(entry).outcome.value == entry.expect


def _block_with(function, kind, exact=False):
    for block in function.blocks.values():
        for inst in block.instructions:
            if (type(inst) is kind) if exact else isinstance(inst, kind):
                return block
    raise AssertionError(f"no {kind.__name__} in {function.name}")


def _index_of(block, kind, exact=False):
    for idx, inst in enumerate(block.instructions):
        if (type(inst) is kind) if exact else isinstance(inst, kind):
            return idx
    raise AssertionError(f"no {kind.__name__} in block")
