"""Mutation tests: every historical compiler bug is rejected statically.

Each of the five reproducers in ``tests/difftest_corpus/`` was found
dynamically (by the difftest gauntlet) and fixed in the compiler.  These
tests re-introduce each bug as a targeted mutation of the *compiled
artifacts* and assert that the static verification layer rejects the
mutant with the distinct diagnostic code the bug maps to — i.e. had the
verifier existed first, none of the five would ever have reached the
dynamic oracle:

==================================  =========  ==============================
corpus entry                        code       re-introduced as
==================================  =========  ==============================
remat_nonp4_into_post               P4L001     non-P4 op (``%``) in the post
                                               pipeline (bad remat)
stranded_offloaded_register_write   PART001    one of two RMWs of a register
                                               flipped to the switch
l4_alias_hoist                      PART003    dependency sink hoisted above
                                               its server-side source
table_stage_erase_insert            P4L005     table sized past the switch
                                               memory budget
cached_post_register_rmw            PART006    the compiled program itself,
                                               checked in cache mode
==================================  =========  ==============================
"""

import dataclasses

import pytest

from repro.compiler import compile_source
from repro.difftest.corpus import load_corpus
from repro.ir import instructions as irin
from repro.ir.values import const_int, Reg
from repro.lang.types import IntType
from repro.partition.labels import Partition
from repro.verify import verify_compilation


@pytest.fixture(scope="module")
def corpus():
    entries = {entry.name: entry for entry in load_corpus()}
    assert len(entries) >= 5, "difftest corpus incomplete"
    return entries


def _compile(corpus, name):
    result = compile_source(corpus[name].source, verify=False)
    # Baseline: the fixed compiler's output verifies clean.
    assert verify_compilation(result).ok, f"{name}: baseline not clean"
    return result


def test_remat_nonp4_into_post_rejected_p4l001(corpus):
    """Bug 1: a pure-but-non-P4 slice (``%``) rematerialized into the post
    pipeline.  Mutation: plant a MOD instruction in the post entry block."""
    result = _compile(corpus, "remat_nonp4_into_post")
    post = result.switch_program.post
    bad = irin.BinOp(
        Reg("mutant_mod", IntType(32)),
        irin.BinOpKind.MOD,
        const_int(7),
        const_int(3),
    )
    post.blocks[post.entry].instructions.insert(0, bad)
    report = verify_compilation(result)
    assert not report.ok
    assert "P4L001" in report.codes()


def test_stranded_register_write_rejected_part001(corpus):
    """Bug 2: one RMW of a register offloaded while its sibling stayed on
    the server.  Mutation: flip the first server-side RMW to PRE."""
    result = _compile(corpus, "stranded_offloaded_register_write")
    plan = result.plan
    rmws = [
        inst
        for inst in plan.middlebox.process.instructions()
        if isinstance(inst, irin.RegisterRMW)
        and plan.assignment.get(inst.id) is Partition.NON_OFF
    ]
    assert len(rmws) >= 2, "expected both RMWs on the server after the fix"
    plan.assignment[rmws[0].id] = Partition.PRE
    report = verify_compilation(result)
    assert not report.ok
    assert "PART001" in report.codes()


def test_l4_alias_hoist_rejected_part003(corpus):
    """Bug 3: an aliased L4 store was hoisted above the load it feeds.
    Mutation: move a dependency *sink* into PRE while its server-side
    source stays put, so the dep edge flows backward across partitions."""
    from repro.analysis.depgraph import build_dependency_graph

    result = _compile(corpus, "l4_alias_hoist")
    plan = result.plan
    graph = build_dependency_graph(plan.middlebox.process)
    victim = None
    for (src_id, dst_id), _kinds in sorted(graph.edges.items()):
        src = graph.by_id(src_id)
        dst = graph.by_id(dst_id)
        if (
            plan.assignment.get(src.id) is Partition.NON_OFF
            and plan.assignment.get(dst.id) is Partition.NON_OFF
            and not any(loc.is_global for loc in dst.writes())
        ):
            victim = dst
            break
    assert victim is not None, "no server-side dependency edge to invert"
    plan.assignment[victim.id] = Partition.PRE
    report = verify_compilation(result)
    assert not report.ok
    assert "PART003" in report.codes()


def test_table_blowup_rejected_p4l005(corpus):
    """Bug 4: erase+insert through a full table.  The capacity half of
    that bug class: a table sized past switch SRAM must be a lint error,
    not a deploy-time ``SwitchProgramError``."""
    result = _compile(corpus, "table_stage_erase_insert")
    program = result.switch_program
    assert program.tables, "expected an offloaded table"
    name, spec = next(iter(program.tables.items()))
    program.tables[name] = dataclasses.replace(spec, size=1 << 30)
    report = verify_compilation(result)
    assert not report.ok
    assert "P4L005" in report.codes()


def test_cached_post_rmw_rejected_part006(corpus):
    """Bug 5: a post-pipeline register RMW silently lost updates under the
    cached deployment.  The compiled program is *correct* for the full
    deployment (clean in normal mode) and must be rejected statically the
    moment cache mode is requested."""
    result = _compile(corpus, "cached_post_register_rmw")
    assert any(
        isinstance(inst, irin.RegisterRMW)
        for inst in result.plan.post.instructions()
    ), "expected the RMW to be offloaded into post"
    report = verify_compilation(result, cache_mode=True)
    assert not report.ok
    assert "PART006" in report.codes()
    assert verify_compilation(result, cache_mode=False).ok


def test_five_bugs_map_to_distinct_codes():
    """The acceptance criterion: five historical bugs, five distinct
    diagnostic codes."""
    codes = {"P4L001", "PART001", "PART003", "P4L005", "PART006"}
    assert len(codes) == 5
