"""End-to-end tests for ``python -m repro verify`` and the compile gate.

The acceptance criterion: every bundled paper middlebox verifies clean,
the JSON output matches the documented schema, and a compilation whose
artifacts fail verification aborts with :class:`VerificationError`
unless ``verify=False`` opts out.
"""

import json

import pytest

from repro.cli import main
from repro.compiler import compile_source
from repro.middleboxes import MIDDLEBOX_NAMES
from repro.verify import (
    DIAGNOSTIC_CODES,
    VerificationError,
    verify_compilation,
)

BAD_SOURCE = """class Box {
  void process(Packet *pkt) {
    pkt->send();
  }
};
"""


def test_all_bundled_middleboxes_verify_clean():
    assert main(["verify", "all"]) == 0


def test_verify_json_schema(capsys):
    assert main(["verify", MIDDLEBOX_NAMES[0], "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["program"]
    assert payload["ok"] is True
    assert isinstance(payload["diagnostics"], list)


def test_verify_json_diagnostic_fields():
    result = compile_source(BAD_SOURCE, verify=False)
    # Plant an unbacked state access so at least one diagnostic exists.
    from repro.ir import instructions as irin
    from repro.ir.values import Reg
    from repro.lang.types import IntType

    post = result.switch_program.post
    post.blocks[post.entry].instructions.insert(
        0, irin.LoadState(Reg("x", IntType(32)), "ghost")
    )
    report = verify_compilation(result)
    assert not report.ok
    payload = report.to_dict()
    assert payload["ok"] is False
    diagnostic = payload["diagnostics"][0]
    for key in ("code", "severity", "stage", "message"):
        assert key in diagnostic
    assert diagnostic["code"] in DIAGNOSTIC_CODES


def test_compile_gate_raises_verification_error():
    source = BAD_SOURCE
    result = compile_source(source, verify=False)  # opt-out path works
    assert result.p4_source
    # The gate re-runs the pipeline and trips on a planted bad artifact:
    # simulate by verifying mutated artifacts directly.
    from repro.ir import instructions as irin
    from repro.ir.values import const_int, Reg
    from repro.lang.types import IntType

    post = result.switch_program.post
    post.blocks[post.entry].instructions.insert(
        0,
        irin.BinOp(
            Reg("bad", IntType(32)), irin.BinOpKind.MOD,
            const_int(1), const_int(1),
        ),
    )
    report = verify_compilation(result)
    assert not report.ok
    with pytest.raises(VerificationError) as excinfo:
        raise VerificationError(report)
    assert "P4L001" in str(excinfo.value)


def test_every_emitted_code_is_registered():
    """Codes used by the verifier stages and the tenancy lint must all
    be in the registry."""
    import re
    from pathlib import Path

    src = Path(__file__).resolve().parents[2] / "src/repro"
    used = set()
    for subdir in ("verify", "tenancy"):
        for path in (src / subdir).rglob("*.py"):
            used.update(
                re.findall(
                    r"\"((?:IR|PART|P4L|TEN|SYM)\d{3})\"", path.read_text()
                )
            )
    assert used <= set(DIAGNOSTIC_CODES)
    # and the registry has no dead codes either
    assert set(DIAGNOSTIC_CODES) <= used
