"""Stage 3 unit tests: P4 resource-lint codes (P4L001-P4L010).

Each test compiles the cached_post_register_rmw reproducer (it offloads
both a table and a register, so every lint has something to bite on),
mutates the emitted :class:`SwitchProgram`, and asserts the expected
constraint-1..5 code fires.
"""

import dataclasses

import pytest

from repro.compiler import compile_source
from repro.difftest.corpus import load_corpus
from repro.ir import instructions as irin
from repro.ir.values import const_int, Reg
from repro.lang.types import IntType
from repro.verify import lint_switch_program

U32 = IntType(32)


@pytest.fixture()
def program():
    entries = {entry.name: entry for entry in load_corpus()}
    result = compile_source(
        entries["cached_post_register_rmw"].source, verify=False
    )
    switch_program = result.switch_program
    assert switch_program.tables and switch_program.registers
    assert lint_switch_program(switch_program) == []
    return switch_program


def _codes(program):
    return {d.code for d in lint_switch_program(program)}


def _entry_block(function):
    return function.blocks[function.entry]


def test_p4l001_non_p4_instruction(program):
    _entry_block(program.pre).instructions.insert(
        0,
        irin.BinOp(
            Reg("bad_mod", U32), irin.BinOpKind.MOD,
            const_int(5), const_int(3),
        ),
    )
    assert "P4L001" in _codes(program)


def test_p4l002_unbacked_state_access(program):
    _entry_block(program.pre).instructions.insert(
        0, irin.LoadState(Reg("orphan", U32), "no_such_state")
    )
    assert "P4L002" in _codes(program)


def test_p4l003_table_applied_twice(program):
    block = _entry_block(program.pre)
    extra = [
        irin.LoadState(Reg("dup0", U32), "m0"),
        irin.LoadState(Reg("dup1", U32), "m0"),
    ]
    block.instructions[0:0] = extra
    assert "P4L003" in _codes(program)


def test_p4l004_pipeline_loop(program):
    block = _entry_block(program.post)
    block.instructions[-1] = irin.Jump(program.post.entry)
    assert "P4L004" in _codes(program)


def test_p4l005_table_memory_blowup(program):
    name, spec = next(iter(program.tables.items()))
    program.tables[name] = dataclasses.replace(spec, size=1 << 30)
    assert "P4L005" in _codes(program)


def test_p4l006_dependency_chain_too_deep(program):
    block = _entry_block(program.pre)
    prev = const_int(1)
    chain = []
    for i in range(program.limits.pipeline_depth + 2):
        reg = Reg(f"chain{i}", U32)
        chain.append(irin.BinOp(reg, irin.BinOpKind.ADD, prev, const_int(1)))
        prev = reg
    block.instructions[0:0] = chain
    assert "P4L006" in _codes(program)


def test_p4l007_metadata_over_scratchpad(program):
    program.limits = dataclasses.replace(program.limits, metadata_bytes=0)
    assert "P4L007" in _codes(program)


def test_p4l008_register_too_wide(program):
    name, spec = next(iter(program.registers.items()))
    program.registers[name] = dataclasses.replace(spec, width_bits=128)
    assert "P4L008" in _codes(program)


def test_p4l009_too_many_tables(program):
    program.limits = dataclasses.replace(program.limits, pipeline_depth=0)
    assert "P4L009" in _codes(program)


def test_p4l010_oversized_block_is_warning(program):
    block = _entry_block(program.pre)
    filler = [
        irin.BinOp(
            Reg(f"fill{i}", U32), irin.BinOpKind.ADD,
            const_int(i), const_int(1),
        )
        for i in range(33)
    ]
    block.instructions[0:0] = filler
    diagnostics = lint_switch_program(program)
    assert "P4L010" in {d.code for d in diagnostics}
    assert all(
        d.severity == "warning"
        for d in diagnostics
        if d.code == "P4L010"
    )
