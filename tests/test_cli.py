"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "mazunat" in out and "MazuNAT" in out

    def test_compile_bundled(self, tmp_path, capsys):
        assert main(["compile", "minilb", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "pre=" in out
        assert (tmp_path / "minilb.p4").exists()
        assert (tmp_path / "minilb_server.cc").exists()

    def test_compile_file(self, tmp_path, capsys):
        source_path = tmp_path / "custom.cc"
        source_path.write_text(
            "class Custom { void process(Packet *pkt) {"
            " iphdr *ip = pkt->network_header();"
            " ip->ttl = ip->ttl - 1; pkt->send(); } };"
        )
        assert main(["compile", str(source_path), "--out", str(tmp_path)]) == 0
        assert (tmp_path / "custom.p4").exists()

    def test_compile_unknown_target(self):
        with pytest.raises(SystemExit):
            main(["compile", "does-not-exist"])

    def test_partition_output(self, capsys):
        assert main(["partition", "minilb"]) == 0
        out = capsys.readouterr().out
        assert "pre-processing (switch)" in out
        assert "map_find state.map" in out
        assert "shim to server" in out

    def test_experiments_table1(self, capsys):
        assert main(["experiments", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "MazuNAT" in out

    def test_experiments_table3(self, capsys):
        assert main(["experiments", "table3"]) == 0
        out = capsys.readouterr().out
        assert "Insert" in out
