"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "mazunat" in out and "MazuNAT" in out

    def test_compile_bundled(self, tmp_path, capsys):
        assert main(["compile", "minilb", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "pre=" in out
        assert (tmp_path / "minilb.p4").exists()
        assert (tmp_path / "minilb_server.cc").exists()

    def test_compile_file(self, tmp_path, capsys):
        source_path = tmp_path / "custom.cc"
        source_path.write_text(
            "class Custom { void process(Packet *pkt) {"
            " iphdr *ip = pkt->network_header();"
            " ip->ttl = ip->ttl - 1; pkt->send(); } };"
        )
        assert main(["compile", str(source_path), "--out", str(tmp_path)]) == 0
        assert (tmp_path / "custom.p4").exists()

    def test_compile_unknown_target(self):
        with pytest.raises(SystemExit):
            main(["compile", "does-not-exist"])

    def test_partition_output(self, capsys):
        assert main(["partition", "minilb"]) == 0
        out = capsys.readouterr().out
        assert "pre-processing (switch)" in out
        assert "map_find state.map" in out
        assert "shim to server" in out

    def test_experiments_table1(self, capsys):
        assert main(["experiments", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "MazuNAT" in out

    def test_experiments_table3(self, capsys):
        assert main(["experiments", "table3"]) == 0
        out = capsys.readouterr().out
        assert "Insert" in out

    def test_difftest_compiled(self, capsys):
        assert main(["difftest", "--compiled", "--runs", "3",
                     "--seed", "21"]) == 0
        out = capsys.readouterr().out
        assert "both ways" in out
        assert "0 diverge" in out

    def test_faults_summary_json(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "summary.json"
        assert main(["faults", "--runs", "2", "--seed", "13",
                     "--summary-json", str(out_path)]) == 0
        summary = json.loads(out_path.read_text())
        assert summary["runs"] == 2
        assert "promotion_windows" in summary
        assert "rollbacks" in summary

    def test_perf_writes_valid_bench(self, tmp_path, capsys):
        import json

        from repro.eval.perf import validate_payload

        out_path = tmp_path / "BENCH_test.json"
        main(["perf", "--middlebox", "minilb", "--packets", "300",
              "--out", str(out_path)])
        payload = json.loads(out_path.read_text())
        assert validate_payload(payload) == []
        assert capsys.readouterr().out.count("pps") == 6
