"""Tests for the simulation substrate: events, costs, latency, capacity,
fluid flows."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.capacity import CapacityModel
from repro.sim.costs import CostModel
from repro.sim.events import EventQueue, Simulator
from repro.sim.fluid import FluidFlowSimulator
from repro.sim.latency import LatencyModel


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        order = []
        queue.push(2.0, lambda: order.append("b"))
        queue.push(1.0, lambda: order.append("a"))
        queue.push(3.0, lambda: order.append("c"))
        while queue:
            _, callback = queue.pop()
            callback()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion(self):
        queue = EventQueue()
        order = []
        queue.push(1.0, lambda: order.append(1))
        queue.push(1.0, lambda: order.append(2))
        queue.pop()[1]()
        queue.pop()[1]()
        assert order == [1, 2]

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, lambda: None)


class TestSimulator:
    def test_clock_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(5.0, lambda: times.append(sim.now))
        sim.schedule(1.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [1.0, 5.0]

    def test_nested_scheduling(self):
        sim = Simulator()
        hits = []

        def first():
            hits.append(sim.now)
            sim.schedule(2.0, lambda: hits.append(sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert hits == [1.0, 3.0]

    def test_run_until(self):
        sim = Simulator()
        hits = []
        sim.schedule(1.0, lambda: hits.append(1))
        sim.schedule(10.0, lambda: hits.append(2))
        sim.run(until=5.0)
        assert hits == [1] and sim.now == 5.0

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5, lambda: None)


class TestCostModel:
    def test_server_packet_us_monotone_in_instructions(self):
        costs = CostModel()
        assert costs.server_packet_us(100) < costs.server_packet_us(1000)

    def test_serialization_scales_with_bytes(self):
        costs = CostModel()
        assert costs.serialization_us(1500) == pytest.approx(
            1500 * 8 / 100e3
        )

    def test_pps_inverse_of_cycles(self):
        costs = CostModel()
        pps = costs.packets_per_second_per_core(0, 0)
        assert pps == pytest.approx(costs.server_hz / costs.server_overhead_cycles)


class TestLatencyModel:
    def test_fast_path_beats_baseline(self):
        model = LatencyModel()
        assert model.fast_path_us(100) < model.baseline_us(50, 100)

    def test_baseline_calibrated_to_paper(self):
        """FastClick one-way latency lands near Table 2's 22-23 µs."""
        model = LatencyModel()
        baseline = model.baseline_us(160, 100)
        assert 21.0 <= baseline <= 24.0

    def test_fast_path_calibrated_to_paper(self):
        model = LatencyModel()
        fast = model.fast_path_us(100)
        assert 15.0 <= fast <= 17.0
        # ~31% reduction (paper)
        reduction = 1 - fast / model.baseline_us(160, 100)
        assert 0.25 <= reduction <= 0.35

    def test_slow_path_slower_than_baseline_with_sync(self):
        model = LatencyModel()
        slow = model.slow_path_us(60, 100, sync_wait_us=135.0)
        assert slow > model.baseline_us(60, 100)

    def test_population_statistics(self):
        model = LatencyModel(seed=3)
        sample = model.population([20.0] * 500, jitter_fraction=0.05)
        assert 19.0 <= sample.mean_us <= 21.0
        assert sample.std_us > 0


class TestCapacityModel:
    def test_baseline_scales_with_cores(self):
        model = CapacityModel()
        one = model.baseline_throughput(200, 1500, 1)
        four = model.baseline_throughput(200, 1500, 4)
        assert four.gbps == pytest.approx(min(one.gbps * 4, 98.7), rel=0.05)

    def test_gallium_line_rate_when_fully_offloaded(self):
        model = CapacityModel()
        estimate = model.gallium_throughput(0.0, 0, 1500)
        assert estimate.bottleneck == "line_rate"
        assert estimate.gbps > 90

    def test_gallium_degrades_with_slow_fraction(self):
        model = CapacityModel()
        low = model.gallium_throughput(0.01, 200, 1500)
        high = model.gallium_throughput(0.5, 200, 1500)
        assert high.gbps < low.gbps

    def test_cycles_saved_bounds(self):
        model = CapacityModel()
        assert model.cycles_saved_fraction(200, 0.0, 0, 1500) == 1.0
        saved = model.cycles_saved_fraction(200, 1.0, 200, 1500)
        assert saved == pytest.approx(0.0)

    @given(st.floats(0.0, 1.0), st.integers(0, 500))
    @settings(max_examples=30)
    def test_throughput_never_exceeds_line_rate(self, fraction, instructions):
        model = CapacityModel()
        estimate = model.gallium_throughput(fraction, instructions, 1500)
        assert estimate.gbps <= 100.0


class TestFluidFlowSimulator:
    def test_single_flow_wire_limited(self):
        sim = FluidFlowSimulator([100_000_000], workers=1,
                                 per_packet_latency_us=0)
        records = sim.run()
        # 100 MB over 100 Gbps = 8000 µs.
        assert records[0].fct_us == pytest.approx(8000, rel=0.05)

    def test_server_budget_limits_rate(self):
        # Server sustains 1 Mpps of 1500B packets = 12 Gbps.
        fast = FluidFlowSimulator([10_000_000], workers=1,
                                  per_packet_latency_us=0)
        slow = FluidFlowSimulator(
            [10_000_000], workers=1, per_packet_latency_us=0,
            server_pps_budget=1e6, server_packet_fraction=1.0,
        )
        assert slow.run()[0].fct_us > fast.run()[0].fct_us

    def test_fair_sharing_slows_concurrent_flows(self):
        solo = FluidFlowSimulator([50_000_000], workers=1,
                                  per_packet_latency_us=0)
        shared = FluidFlowSimulator([50_000_000] * 4, workers=4,
                                    per_packet_latency_us=0)
        assert shared.run()[0].fct_us > solo.run()[0].fct_us

    def test_setup_latency_added(self):
        with_setup = FluidFlowSimulator([1000], workers=1,
                                        setup_latency_us=500,
                                        per_packet_latency_us=0)
        assert with_setup.run()[0].fct_us >= 500

    def test_all_flows_complete(self):
        sizes = [1000] * 250
        sim = FluidFlowSimulator(sizes, workers=10)
        records = sim.run()
        assert len(records) == 250
        assert sim.total_bytes() == 250_000

    def test_fct_bins(self):
        sim = FluidFlowSimulator([50_000, 5_000_000, 50_000_000], workers=3)
        sim.run()
        bins = sim.fct_by_bins([100_000, 10_000_000])
        assert set(bins) == {"0-100K", "100K-10M", ">10M"}

    def test_worker_limit_respected(self):
        """With 1 worker, flows run strictly sequentially."""
        sim = FluidFlowSimulator([1_000_000, 1_000_000], workers=1,
                                 per_packet_latency_us=0)
        records = sim.run()
        assert records[1].finish_us >= records[0].finish_us


class TestEmptyQueueErrors:
    def test_pop_empty_raises_simulation_error(self):
        from repro.sim.events import SimulationError

        with pytest.raises(SimulationError, match="empty"):
            EventQueue().pop()

    def test_peek_time_empty_raises_simulation_error(self):
        from repro.sim.events import SimulationError

        with pytest.raises(SimulationError, match="empty"):
            EventQueue().peek_time()

    def test_simulation_error_is_runtime_error(self):
        from repro.sim.events import SimulationError

        # Callers that guarded with ``except RuntimeError`` keep working.
        assert issubclass(SimulationError, RuntimeError)
        with pytest.raises(RuntimeError):
            EventQueue().pop()

    def test_drained_queue_raises_too(self):
        from repro.sim.events import SimulationError

        queue = EventQueue()
        queue.push(1.0, lambda: None)
        queue.pop()
        with pytest.raises(SimulationError):
            queue.pop()
