"""Tests for pipeline execution, data-plane restrictions, and the switch."""

import pytest

from repro.ir.instructions import BinOpKind
from repro.ir.interp import PacketView
from repro.net.addresses import ip
from repro.net.headers import EthernetHeader, Ipv4Header, TcpHeader
from repro.net.packet import RawPacket
from repro.partition.constraints import SwitchResources
from repro.runtime.deployment import compile_middlebox
from repro.switchsim.pipeline import DataPlaneViolation, SwitchStateAdapter
from repro.switchsim.program import SwitchProgram, SwitchProgramError
from repro.switchsim.registers import Register
from repro.switchsim.switch_model import SHIM_KEY, SwitchModel
from repro.switchsim.tables import ExactMatchTable
from tests.conftest import get_bundle, get_compiled


def make_adapter():
    tables = {"t": ExactMatchTable("t", [32], 32, 16)}
    registers = {"r": Register("r", 32, initial=5)}
    return SwitchStateAdapter(tables, registers), tables, registers


class TestSwitchStateAdapter:
    def test_lookup_through_table(self):
        adapter, tables, _ = make_adapter()
        tables["t"].stage((3,), 33)
        tables["t"].set_visibility(True)
        tables["t"].fold_writeback()
        tables["t"].set_visibility(False)
        adapter.begin_traversal()
        assert adapter.map_find("t", (3,)) == (True, 33)

    def test_register_read_and_rmw(self):
        adapter, _, registers = make_adapter()
        adapter.begin_traversal()
        assert adapter.load_scalar("r") == 5
        adapter.begin_traversal()
        assert adapter.rmw_scalar("r", BinOpKind.ADD, 2, 32) == 5
        assert registers["r"].value == 7

    def test_double_access_rejected(self):
        adapter, _, _ = make_adapter()
        adapter.begin_traversal()
        adapter.map_find("t", (1,))
        with pytest.raises(DataPlaneViolation):
            adapter.map_find("t", (2,))

    def test_traversal_resets_counts(self):
        adapter, _, _ = make_adapter()
        adapter.begin_traversal()
        adapter.map_find("t", (1,))
        adapter.begin_traversal()
        adapter.map_find("t", (1,))  # fine after reset

    def test_mutations_rejected(self):
        adapter, _, _ = make_adapter()
        adapter.begin_traversal()
        with pytest.raises(DataPlaneViolation):
            adapter.map_insert("t", (1,), 2)
        with pytest.raises(DataPlaneViolation):
            adapter.map_erase("t", (1,))
        with pytest.raises(DataPlaneViolation):
            adapter.store_scalar("r", 1)
        with pytest.raises(DataPlaneViolation):
            adapter.vector_push("t", 1)
        with pytest.raises(DataPlaneViolation):
            adapter.vector_len("t")

    def test_unknown_table_rejected(self):
        adapter, _, _ = make_adapter()
        adapter.begin_traversal()
        with pytest.raises(DataPlaneViolation):
            adapter.map_find("ghost", (1,))


class TestSwitchProgramValidation:
    def test_all_middlebox_programs_validate(self, middlebox_name, compiled):
        compiled.switch_program.validate()

    def test_memory_accounting(self, middlebox_name, compiled):
        assert (
            compiled.switch_program.memory_bytes()
            <= compiled.plan.limits.memory_bytes
        )

    def test_rejects_looping_pipeline(self):
        from repro.ir.builder import FunctionBuilder
        from repro.ir import instructions as irin

        compiled = get_compiled("minilb")
        builder = FunctionBuilder("loopy")
        builder.emit(irin.Jump("entry"))
        program = SwitchProgram(
            name="bad",
            pre=builder.function,
            post=compiled.plan.post,
            tables={},
            registers={},
            shim_to_server=compiled.shim_to_server,
            shim_to_switch=compiled.shim_to_switch,
            needs_server_reg="__needs_server",
        )
        with pytest.raises(SwitchProgramError):
            program.validate()


class TestSwitchModel:
    @pytest.fixture
    def switch(self):
        bundle = get_bundle("firewall")
        plan, program = compile_middlebox(bundle.lowered)
        model = SwitchModel(program)
        # Install one allow rule.
        rule = (int(ip("192.168.1.1")), int(ip("10.0.0.1")), 1000, 80, 6)
        model.control_plane.install_entries("wl_out", {rule: 1})
        return model

    def _packet(self, sport=1000):
        return RawPacket.make_tcp(
            EthernetHeader(),
            Ipv4Header(saddr=ip("192.168.1.1"), daddr=ip("10.0.0.1")),
            TcpHeader(sport=sport, dport=80),
        )

    def test_allowed_packet_forwarded(self, switch):
        output = switch.receive(self._packet(), 1)
        assert output.fast_path
        assert output.emitted and output.emitted[0][0] == 2

    def test_port_pair_resolution(self, switch):
        packet = self._packet()
        # From port 2 the whitelist is wl_in which is empty -> drop.
        output = switch.receive(packet, 2)
        assert output.dropped

    def test_denied_packet_dropped(self, switch):
        output = switch.receive(self._packet(sport=9999), 1)
        assert output.dropped
        assert switch.counters()["dropped"] == 1

    def test_counters_track_fast_path(self, switch):
        switch.receive(self._packet(), 1)
        switch.receive(self._packet(sport=2), 1)
        assert switch.counters()["fast_path"] == 2

    def test_punt_carries_shim(self):
        bundle = get_bundle("minilb")
        plan, program = compile_middlebox(bundle.lowered)
        switch = SwitchModel(program)
        packet = RawPacket.make_tcp(
            EthernetHeader(),
            Ipv4Header(saddr=ip("1.2.3.4"), daddr=ip("10.0.0.100")),
            TcpHeader(sport=7, dport=80),
        )
        output = switch.receive(packet, 1)
        assert output.punted
        port, punted = output.emitted[0]
        assert port == switch.server_port
        assert SHIM_KEY in punted.metadata
        decoded = program.shim_to_server.decode(punted.metadata[SHIM_KEY])
        assert decoded["__ingress_port"] == 1
        assert decoded["found5"] == 0

    def test_shim_wire_bytes_round_trip(self):
        bundle = get_bundle("minilb")
        plan, program = compile_middlebox(bundle.lowered)
        switch = SwitchModel(program)
        packet = RawPacket.make_tcp(
            EthernetHeader(),
            Ipv4Header(saddr=ip("1.2.3.4"), daddr=ip("10.0.0.100")),
            TcpHeader(sport=7, dport=80),
        )
        output = switch.receive(packet, 1)
        punted = output.emitted[0][1]
        wire = switch.shim_wire_bytes(punted)
        # Ethernet (14) + shim + inner ethertype (2) + ip...
        from repro.net.headers import ETHERTYPE_GALLIUM

        assert int.from_bytes(wire[12:14], "big") == ETHERTYPE_GALLIUM
        shim_len = program.shim_to_server.byte_size
        inner_ethertype = int.from_bytes(
            wire[14 + shim_len : 16 + shim_len], "big"
        )
        assert inner_ethertype == 0x0800
