"""Tests for switch tables, write-back atomic updates, and registers."""

import pytest
from hypothesis import given, strategies as st

from repro.ir.instructions import BinOpKind
from repro.switchsim.registers import Register
from repro.switchsim.tables import ExactMatchTable, TableEntryLimit


class TestExactMatchTable:
    def test_miss_returns_false(self):
        table = ExactMatchTable("t", [32], 32, 10)
        assert table.lookup((1,)) == (False, 0)

    def test_staged_entry_invisible_until_bit(self):
        table = ExactMatchTable("t", [32], 32, 10)
        table.stage((1,), 42)
        assert table.lookup((1,)) == (False, 0)
        table.set_visibility(True)
        assert table.lookup((1,)) == (True, 42)

    def test_three_step_protocol(self):
        """Stage → flip → fold leaves entries in the main table."""
        table = ExactMatchTable("t", [32], 32, 10)
        table.stage((1,), 7)
        table.set_visibility(True)
        table.fold_writeback()
        table.set_visibility(False)
        assert table.lookup((1,)) == (True, 7)
        assert table.entry_count == 1

    def test_tombstone_deletes(self):
        table = ExactMatchTable("t", [32], 32, 10)
        table.stage((1,), 7)
        table.set_visibility(True)
        table.fold_writeback()
        table.set_visibility(False)
        # Stage a deletion: visible as a miss once the bit flips.
        table.stage((1,), None)
        table.set_visibility(True)
        assert table.lookup((1,)) == (False, 0)
        table.fold_writeback()
        table.set_visibility(False)
        assert table.lookup((1,)) == (False, 0)
        assert table.entry_count == 0

    def test_capacity_enforced_across_stage(self):
        table = ExactMatchTable("t", [32], 32, 1)
        table.stage((1,), 1)
        with pytest.raises(TableEntryLimit):
            table.stage((2,), 2)

    def test_overwrite_existing_never_rejected(self):
        table = ExactMatchTable("t", [32], 32, 1)
        table.stage((1,), 1)
        table.set_visibility(True)
        table.fold_writeback()
        table.set_visibility(False)
        table.stage((1,), 2)  # same key: fine at capacity

    def test_atomic_erase_insert_through_full_table(self):
        """A staged delete frees its slot within the same batch.

        Regression (difftest corpus ``table_stage_erase_insert``): the
        capacity check counted only staged inserts, so an erase+insert
        journal batch through a full table spuriously raised while the
        authoritative StateStore accepted the same sequence.
        """
        table = ExactMatchTable("t", [32], 32, 2)
        for key in (1, 2):
            table.stage((key,), key)
        table.set_visibility(True)
        table.fold_writeback()
        table.set_visibility(False)
        # Full: erase one key, insert a different one — same batch.
        table.stage((1,), None)
        table.stage((3,), 30)
        table.set_visibility(True)
        table.fold_writeback()
        table.set_visibility(False)
        assert table.snapshot() == {(2,): 2, (3,): 30}
        # But a plain second insert past capacity still raises.
        with pytest.raises(TableEntryLimit):
            table.stage((4,), 40)

    def test_insert_over_staged_tombstone_of_same_key(self):
        """delete+reinsert of one key through a full table is a no-op net."""
        table = ExactMatchTable("t", [32], 32, 1)
        table.stage((1,), 1)
        table.set_visibility(True)
        table.fold_writeback()
        table.set_visibility(False)
        table.stage((1,), None)
        table.stage((1,), 5)  # net occupancy unchanged
        table.fold_writeback()
        assert table.snapshot() == {(1,): 5}

    def test_counters(self):
        table = ExactMatchTable("t", [32], 32, 4)
        table.stage((1,), 1)
        table.set_visibility(True)
        table.fold_writeback()
        table.set_visibility(False)
        table.lookup((1,))
        table.lookup((2,))
        assert table.lookup_count == 2
        assert table.hit_count == 1

    def test_snapshot_respects_visibility(self):
        table = ExactMatchTable("t", [32], 32, 4)
        table.stage((1,), 5)
        assert table.snapshot() == {}
        table.set_visibility(True)
        assert table.snapshot() == {(1,): 5}

    @given(st.dictionaries(st.integers(0, 1000), st.integers(0, 2**32 - 1),
                           max_size=30))
    def test_install_matches_model(self, entries):
        """After a full stage/flip/fold cycle, the table equals the dict."""
        table = ExactMatchTable("t", [32], 32, 64)
        for key, value in entries.items():
            table.stage((key,), value)
        table.set_visibility(True)
        table.fold_writeback()
        table.set_visibility(False)
        for key, value in entries.items():
            assert table.lookup((key,)) == (True, value)


class TestRegister:
    def test_read_initial(self):
        assert Register("r").read() == 0

    def test_rmw_returns_old_value(self):
        register = Register("r", 32, initial=10)
        assert register.rmw(BinOpKind.ADD, 5) == 10
        assert register.read() == 15

    def test_width_wraps(self):
        register = Register("r", 16, initial=0xFFFF)
        register.rmw(BinOpKind.ADD, 1)
        assert register.value == 0

    def test_control_write(self):
        register = Register("r", 8)
        register.control_write(0x1FF)
        assert register.value == 0xFF

    def test_counters(self):
        register = Register("r")
        register.read()
        register.rmw(BinOpKind.ADD, 1)
        register.control_write(0)
        assert register.read_count == 2
        assert register.write_count == 2
