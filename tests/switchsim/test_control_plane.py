"""Tests for control-plane updates and the Table 3 latency model."""

import statistics

import pytest

from repro.switchsim.control_plane import (
    BASE_PER_TABLE_US,
    ControlPlane,
    StateUpdate,
    _batch_latency_us,
)
from repro.switchsim.registers import Register
from repro.switchsim.tables import ExactMatchTable


def make_control(tables=2):
    table_map = {
        f"t{i}": ExactMatchTable(f"t{i}", [32], 32, 128) for i in range(tables)
    }
    registers = {"r": Register("r")}
    return ControlPlane(table_map, registers, seed=1), table_map, registers


class TestApplyBatch:
    def test_insert_visible_after_batch(self):
        control, tables, _ = make_control()
        result = control.apply_batch(
            [StateUpdate("insert", "t0", (5,), 99)]
        )
        assert tables["t0"].lookup((5,)) == (True, 99)
        assert result.tables_touched == 1
        assert result.visibility_latency_us > 0

    def test_delete(self):
        control, tables, _ = make_control()
        control.apply_batch([StateUpdate("insert", "t0", (5,), 99)])
        control.apply_batch([StateUpdate("delete", "t0", (5,), None)])
        assert tables["t0"].lookup((5,)) == (False, 0)

    def test_register_update(self):
        control, _, registers = make_control()
        control.apply_batch([StateUpdate("register", "r", (), 77)])
        assert registers["r"].read() == 77

    def test_multi_table_batch_atomic(self):
        control, tables, _ = make_control()
        control.apply_batch(
            [
                StateUpdate("insert", "t0", (1,), 10),
                StateUpdate("insert", "t1", (1,), 11),
            ]
        )
        assert tables["t0"].lookup((1,)) == (True, 10)
        assert tables["t1"].lookup((1,)) == (True, 11)

    def test_visibility_bit_cleared_after_batch(self):
        control, tables, _ = make_control()
        control.apply_batch([StateUpdate("insert", "t0", (1,), 1)])
        assert not tables["t0"]._writeback_visible
        assert not tables["t0"]._writeback

    def test_counters(self):
        control, _, _ = make_control()
        control.apply_batch([StateUpdate("insert", "t0", (1,), 1)])
        control.apply_batch([StateUpdate("insert", "t0", (2,), 2)])
        assert control.batches_applied == 2
        assert control.updates_applied == 2

    def test_install_entries_bulk(self):
        control, tables, _ = make_control()
        control.install_entries("t0", {(i,): i * 2 for i in range(10)})
        assert tables["t0"].entry_count == 10


class TestLatencyModel:
    """The latency model must land near the paper's Table 3."""

    def _mean(self, n_tables, op, trials=300):
        import random

        rng = random.Random(0)
        return statistics.mean(
            _batch_latency_us(n_tables, op, rng) for _ in range(trials)
        )

    def test_one_table_insert_near_135us(self):
        assert 120 <= self._mean(1, "insert") <= 150

    def test_two_tables_doubles(self):
        assert 245 <= self._mean(2, "insert") <= 295

    def test_four_tables_sublinear(self):
        """Paper: 4 tables costs ~371 µs, not 540 (RPC pipelining)."""
        four = self._mean(4, "insert")
        assert 340 <= four <= 405
        assert four < 2 * self._mean(2, "insert")

    def test_modify_cheaper_than_insert(self):
        assert BASE_PER_TABLE_US["modify"] < BASE_PER_TABLE_US["insert"]

    def test_zero_tables_free(self):
        import random

        assert _batch_latency_us(0, "insert", random.Random(0)) == 0.0

    def test_update_is_5x_packet_latency(self):
        """Paper: 'A single table update is about 5x the end-to-end latency
        of a packet sent through a software middlebox' (~22.5 µs)."""
        ratio = self._mean(1, "insert") / 22.5
        assert 4.5 <= ratio <= 7.5


class TestLatencyCalibration:
    """Every sample stays inside the declared jitter band, and the
    jitter-free model reproduces Table 3 exactly."""

    def test_jitter_within_15_percent_every_sample(self):
        import random

        from repro.switchsim.control_plane import expected_batch_latency_us

        rng = random.Random(0)
        for op in ("insert", "modify", "delete"):
            for n_tables in (1, 2, 4):
                mean = expected_batch_latency_us(n_tables, op)
                for _ in range(500):
                    sample = _batch_latency_us(n_tables, op, rng)
                    assert 0.85 * mean <= sample <= 1.15 * mean, (op, n_tables)

    def test_matches_table3_matrix(self):
        from repro.switchsim.control_plane import expected_batch_latency_us

        # Paper Table 3, µs.  The two-segment linear model reproduces the
        # measured matrix to within ±1.5 µs.
        table3 = {
            ("insert", 1): 135.2, ("modify", 1): 128.6, ("delete", 1): 131.3,
            ("insert", 2): 270.1, ("modify", 2): 258.3, ("delete", 2): 262.7,
            ("insert", 4): 371.0, ("modify", 4): 363.0, ("delete", 4): 366.1,
        }
        for (op, n_tables), want in table3.items():
            got = expected_batch_latency_us(n_tables, op)
            assert abs(got - want) <= 1.5, (op, n_tables, got, want)

    def test_sublinear_beyond_two_tables(self):
        from repro.switchsim.control_plane import expected_batch_latency_us

        for op in ("insert", "modify", "delete"):
            one = expected_batch_latency_us(1, op)
            two = expected_batch_latency_us(2, op)
            four = expected_batch_latency_us(4, op)
            assert two == pytest.approx(2 * one)
            assert four < 2 * two  # incremental tables cost less

    def test_reseed_reproduces_jitter(self):
        control, _, _ = make_control()
        control.reseed(42)
        first = control.apply_batch(
            [StateUpdate("insert", "t0", (1,), 1)]
        ).visibility_latency_us
        control.reseed(42)
        second = control.apply_batch(
            [StateUpdate("insert", "t0", (2,), 2)]
        ).visibility_latency_us
        assert first == second


class TestRetryMachinery:
    def make_retrying(self, fates, max_attempts=4):
        from repro.switchsim.control_plane import RetryPolicy

        control, tables, registers = make_control()
        control.retry = RetryPolicy(max_attempts=max_attempts)
        schedule = iter(fates)
        control.fault_hook = lambda attempt: next(schedule, None)
        return control, tables

    def test_fail_then_succeed(self):
        control, tables = self.make_retrying(["fail", "fail", None])
        result = control.apply_batch([StateUpdate("insert", "t0", (1,), 5)])
        assert result.attempts == 3
        assert result.retry_wait_us > 0
        assert tables["t0"].lookup((1,)) == (True, 5)
        assert control.batches_retried == 2
        assert control.batches_applied == 1

    def test_all_fail_exhaustion_not_applied(self):
        from repro.switchsim.control_plane import UpdateBatchError

        control, tables = self.make_retrying(["fail"] * 4)
        with pytest.raises(UpdateBatchError) as excinfo:
            control.apply_batch([StateUpdate("insert", "t0", (1,), 5)])
        assert excinfo.value.applied is False
        assert excinfo.value.attempts == 4
        assert tables["t0"].lookup((1,)) == (False, 0)
        assert control.batches_failed == 1

    def test_timeout_then_fail_exhaustion_rolls_forward(self):
        """An early timed-out attempt lands the batch on the switch; if
        every later attempt is vetoed, exhaustion rolls *forward* from
        the undo log's high-water mark: the batch commits, the caller
        never sees an error, and the server keeps its updates too."""
        control, tables = self.make_retrying(["timeout", "fail", "fail", "fail"])
        result = control.apply_batch([StateUpdate("insert", "t0", (1,), 5)])
        assert result.decision == "rolled_forward"
        assert result.attempts == 4
        assert result.updates_applied == 1
        # The switch indeed kept the batch from the timed-out attempt.
        assert tables["t0"].lookup((1,)) == (True, 5)
        assert control.batches_applied == 1
        assert control.batches_failed == 0

    def test_timeout_retry_is_idempotent(self):
        control, tables = self.make_retrying(["timeout", None])
        result = control.apply_batch([StateUpdate("insert", "t0", (1,), 5)])
        assert result.attempts == 2
        assert tables["t0"].lookup((1,)) == (True, 5)
        assert tables["t0"].entry_count == 1  # re-applied, not duplicated

    def test_timeout_costs_more_than_fail(self):
        fail_control, _ = self.make_retrying(["fail", None])
        timeout_control, _ = self.make_retrying(["timeout", None])
        fail_control.reseed(0)
        timeout_control.reseed(0)
        update = [StateUpdate("insert", "t0", (1,), 5)]
        fail_wait = fail_control.apply_batch(update).retry_wait_us
        timeout_wait = timeout_control.apply_batch(update).retry_wait_us
        assert timeout_wait > fail_wait

    def test_overflow_aborts_with_no_staged_residue(self):
        from repro.switchsim.control_plane import UpdateBatchError

        control, tables = self.make_retrying(["overflow"])
        with pytest.raises(UpdateBatchError) as excinfo:
            control.apply_batch([StateUpdate("insert", "t0", (1,), 5)])
        assert excinfo.value.kind == "overflow"
        assert not tables["t0"]._writeback
        assert tables["t0"].lookup((1,)) == (False, 0)

    def test_real_capacity_overflow_discards_residue(self):
        from repro.switchsim.control_plane import UpdateBatchError
        from repro.switchsim.tables import ExactMatchTable

        control = ControlPlane(
            {"tiny": ExactMatchTable("tiny", [32], 32, 2)},
            {},
            seed=0,
        )
        control.apply_batch([StateUpdate("insert", "tiny", (1,), 1)])
        control.apply_batch([StateUpdate("insert", "tiny", (2,), 2)])
        with pytest.raises(UpdateBatchError) as excinfo:
            control.apply_batch([StateUpdate("insert", "tiny", (3,), 3)])
        assert excinfo.value.kind == "overflow"
        assert not control.tables["tiny"]._writeback
        assert control.tables["tiny"].entry_count == 2


class TestUndoLog:
    """The switch-side undo log: byte-exact rollback, durable roll-forward."""

    def make_crashing(self, fates, max_attempts=4):
        from repro.switchsim.control_plane import RetryPolicy

        control, tables, registers = make_control()
        control.retry = RetryPolicy(max_attempts=max_attempts)
        schedule = iter(fates)
        control.fault_hook = lambda attempt: next(schedule, None)
        return control, tables, registers

    def test_undo_log_captures_preimages(self):
        control, _, _ = self.make_crashing([None])
        control.install_entries("t0", {(1,): 10})
        result = control.apply_batch([
            StateUpdate("modify", "t0", (1,), 99),
            StateUpdate("insert", "t1", (2,), 22),
            StateUpdate("register", "r", (), 7),
        ])
        undo = result.undo
        assert undo is not None
        assert undo.high_water == 3  # the whole batch landed
        by_target = {(rec.kind, rec.target, rec.key): rec
                     for rec in undo.records}
        assert by_target[("table", "t0", (1,))].existed is True
        assert by_target[("table", "t0", (1,))].value == 10
        assert by_target[("table", "t1", (2,))].existed is False
        assert by_target[("register", "r", None)].value == 0

    def test_mid_batch_crash_exhaustion_rolls_back_byte_exactly(self):
        """Every attempt's connection dies after the first table folded:
        a durable strict prefix.  Exhaustion must restore both tables
        (and the register) to their exact pre-batch images."""
        from repro.switchsim.control_plane import UpdateBatchError

        control, tables, registers = self.make_crashing(["crash"] * 4)
        control.install_entries("t0", {(1,): 10})
        registers["r"].control_write(7)
        with pytest.raises(UpdateBatchError) as excinfo:
            control.apply_batch([
                StateUpdate("modify", "t0", (1,), 99),
                StateUpdate("insert", "t1", (2,), 22),
                StateUpdate("register", "r", (), 55),
            ])
        assert excinfo.value.decision == "rolled_back"
        assert excinfo.value.undo.high_water == 1  # the strict prefix
        assert tables["t0"].lookup((1,)) == (True, 10)
        assert tables["t1"].lookup((2,)) == (False, 0)
        assert registers["r"].read() == 7
        assert not tables["t0"]._writeback
        assert not tables["t1"]._writeback

    def test_single_table_crash_rolls_forward(self):
        """When the crash lands the *whole* batch (single touched table)
        before the connection dies, the high-water mark covers it and
        exhaustion commits from the log instead of raising."""
        control, tables, _ = self.make_crashing(["crash"] * 4)
        result = control.apply_batch([
            StateUpdate("insert", "t0", (1,), 5),
            StateUpdate("insert", "t0", (2,), 6),
        ])
        assert result.decision == "rolled_forward"
        assert result.attempts == 4
        assert tables["t0"].lookup((1,)) == (True, 5)
        assert tables["t0"].lookup((2,)) == (True, 6)

    def test_rollback_restores_register_only_batch(self):
        from repro.switchsim.control_plane import UpdateBatchError

        control, _, registers = self.make_crashing(["fail"] * 4)
        registers["r"].control_write(7)
        with pytest.raises(UpdateBatchError):
            control.apply_batch([StateUpdate("register", "r", (), 99)])
        assert registers["r"].read() == 7

    def test_rollback_counters(self):
        from repro.switchsim.control_plane import UpdateBatchError

        control, _, _ = self.make_crashing(["crash"] * 4)
        with pytest.raises(UpdateBatchError):
            control.apply_batch([
                StateUpdate("insert", "t0", (1,), 1),
                StateUpdate("insert", "t1", (2,), 2),
            ])
        metrics = control.telemetry.metrics
        assert metrics.counter(
            "control_plane.batches_rolled_back"
        ).value == 1
        assert metrics.counter("control_plane.batches_applied").value == 0


class TestRpcQueueing:
    """The control channel is a FIFO RPC pipe: attempts queue behind
    outstanding batches (the load-dependent latency term)."""

    def make_queued(self, fates, max_attempts=4):
        from repro.switchsim.control_plane import RetryPolicy

        control, tables, _ = make_control()
        control.retry = RetryPolicy(
            max_attempts=max_attempts, jitter_fraction=0.0
        )
        schedule = iter(fates)
        control.fault_hook = lambda attempt: next(schedule, None)
        return control

    def test_idle_channel_has_no_queue_wait(self):
        control, _, _ = make_control()
        result = control.apply_batch([StateUpdate("insert", "t0", (1,), 1)])
        assert result.queue_wait_us == 0.0

    def test_channel_drains_between_committed_batches(self):
        """The simulated clock advances past a batch's visibility at
        commit, so a healthy (no-retry) workload never queues."""
        control, _, _ = make_control()
        for key in range(5):
            result = control.apply_batch(
                [StateUpdate("insert", "t0", (key,), key)]
            )
            assert result.queue_wait_us == 0.0

    def test_storm_queues_behind_outstanding_rpc(self):
        """A batch submitted while an earlier RPC is still on the channel
        (a batch storm: the serial caller's clock has not reached its
        completion) waits exactly the residual service time — the
        deterministic M/M/1 FIFO term."""
        control, _, _ = make_control()
        now = control.telemetry.clock.now_us
        control._rpc_inflight = [now + 500.0]
        result = control.apply_batch([StateUpdate("insert", "t0", (1,), 1)])
        assert result.queue_wait_us == pytest.approx(500.0)
        # The wall-clock result prices the queueing in.
        assert result.visibility_latency_us > 500.0
        assert result.retry_wait_us == 0.0  # queueing is not a retry

    def test_queue_wait_grows_with_load(self):
        """Deeper channel backlog -> longer wait (load dependence): the
        attempt starts when the *last* outstanding RPC drains."""
        waits = []
        for backlog in ([], [200.0], [200.0, 900.0], [200.0, 900.0, 2_500.0]):
            control, _, _ = make_control()
            now = control.telemetry.clock.now_us
            control._rpc_inflight = [now + t for t in backlog]
            result = control.apply_batch(
                [StateUpdate("insert", "t0", (1,), 1)]
            )
            waits.append(result.queue_wait_us)
        assert waits == [0.0, 200.0, 900.0, 2_500.0]

    def test_drained_rpcs_do_not_delay(self):
        """Completions at or before the current clock are dropped from
        the channel: only genuinely outstanding RPCs delay an attempt."""
        control, _, _ = make_control()
        control.telemetry.clock.advance(1_000.0)
        now = control.telemetry.clock.now_us
        control._rpc_inflight = [now - 400.0, now]  # both already done
        result = control.apply_batch([StateUpdate("insert", "t0", (1,), 1)])
        assert result.queue_wait_us == 0.0

    def test_serial_exhaustion_drains_exactly(self):
        """The retry loop's own wall clock (attempt costs + backoff) always
        covers its failed attempts' service times, so a *serial* caller
        never queues behind itself — queueing is strictly a concurrency
        (storm) phenomenon."""
        control = self.make_queued(["timeout", "fail", None])
        result = control.apply_batch([StateUpdate("insert", "t0", (1,), 1)])
        assert result.attempts == 3
        assert result.queue_wait_us == 0.0
        assert result.retry_wait_us > 0.0

    def test_shared_channel_concurrent_submitters_queue(self):
        """Two control planes sharing one channel (two tenants on one
        switch) queue behind each other: each keeps its own clock, so a
        submission lands while the other tenant's RPC is still on the
        wire.  The same per-submitter workload on a private channel
        never waits (test_channel_drains_between_committed_batches) —
        queueing here is purely a co-residency effect."""
        from repro.switchsim.control_plane import RpcChannel

        channel = RpcChannel()
        first, _, _ = make_control()
        second, _, _ = make_control()
        first.attach_channel(channel)
        second.attach_channel(channel)
        waits = []
        for key in range(4):
            for control in (first, second):
                result = control.apply_batch(
                    [StateUpdate("insert", "t0", (key,), key)]
                )
                waits.append(result.queue_wait_us)
        assert waits[0] == 0.0  # nothing on the channel yet
        assert all(wait > 0.0 for wait in waits[1:])
        for control in (first, second):
            metrics = control.telemetry.metrics.to_dict()
            hist = metrics["histograms"]["control_plane.rpc_queue_wait_us"]
            assert hist["sum"] > 0.0

    def test_queue_metrics_emitted(self):
        control = self.make_queued(["timeout", None])
        control.apply_batch([StateUpdate("insert", "t0", (1,), 1)])
        metrics = control.telemetry.metrics.to_dict()
        histogram = metrics["histograms"]["control_plane.rpc_queue_wait_us"]
        assert histogram["count"] == 2  # one observation per attempt
        assert "control_plane.rpc_outstanding" in metrics["gauges"]

    def test_pinned_channel_and_retry_defaults(self):
        """Regression-pin the documented defaults: the fault corpus and
        the Table-3 calibration both assume these exact values."""
        from repro.switchsim.control_plane import (
            JITTER_FRACTION,
            OVERLAP_PER_TABLE_US,
            RetryPolicy,
            TIMEOUT_MULTIPLE,
        )

        policy = RetryPolicy()
        assert policy.max_attempts == 4
        assert policy.base_backoff_us == 200.0
        assert policy.backoff_multiplier == 2.0
        assert policy.max_backoff_us == 5_000.0
        assert policy.jitter_fraction == 0.1
        assert policy.timeout_multiple == TIMEOUT_MULTIPLE == 3.0
        assert JITTER_FRACTION == 0.15
        assert BASE_PER_TABLE_US == {
            "insert": 135.2, "modify": 128.6, "delete": 131.3,
        }
        assert OVERLAP_PER_TABLE_US == {
            "insert": 50.5, "modify": 52.4, "delete": 51.7,
        }


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        import random

        from repro.switchsim.control_plane import RetryPolicy

        policy = RetryPolicy(base_backoff_us=100.0, backoff_multiplier=2.0,
                             max_backoff_us=500.0, jitter_fraction=0.0)
        rng = random.Random(0)
        waits = [policy.backoff_us(attempt, rng) for attempt in (1, 2, 3, 4, 5)]
        assert waits == [100.0, 200.0, 400.0, 500.0, 500.0]

    def test_jitter_bounds(self):
        import random

        from repro.switchsim.control_plane import RetryPolicy

        policy = RetryPolicy(base_backoff_us=100.0, jitter_fraction=0.1)
        rng = random.Random(0)
        for _ in range(200):
            assert 90.0 <= policy.backoff_us(1, rng) <= 110.0

    def test_dict_roundtrip(self):
        from repro.switchsim.control_plane import RetryPolicy

        policy = RetryPolicy(max_attempts=7, base_backoff_us=50.0,
                             backoff_multiplier=3.0, max_backoff_us=900.0,
                             jitter_fraction=0.25)
        assert RetryPolicy.from_dict(policy.to_dict()) == policy
