"""Tests for control-plane updates and the Table 3 latency model."""

import statistics

import pytest

from repro.switchsim.control_plane import (
    BASE_PER_TABLE_US,
    ControlPlane,
    StateUpdate,
    _batch_latency_us,
)
from repro.switchsim.registers import Register
from repro.switchsim.tables import ExactMatchTable


def make_control(tables=2):
    table_map = {
        f"t{i}": ExactMatchTable(f"t{i}", [32], 32, 128) for i in range(tables)
    }
    registers = {"r": Register("r")}
    return ControlPlane(table_map, registers, seed=1), table_map, registers


class TestApplyBatch:
    def test_insert_visible_after_batch(self):
        control, tables, _ = make_control()
        result = control.apply_batch(
            [StateUpdate("insert", "t0", (5,), 99)]
        )
        assert tables["t0"].lookup((5,)) == (True, 99)
        assert result.tables_touched == 1
        assert result.visibility_latency_us > 0

    def test_delete(self):
        control, tables, _ = make_control()
        control.apply_batch([StateUpdate("insert", "t0", (5,), 99)])
        control.apply_batch([StateUpdate("delete", "t0", (5,), None)])
        assert tables["t0"].lookup((5,)) == (False, 0)

    def test_register_update(self):
        control, _, registers = make_control()
        control.apply_batch([StateUpdate("register", "r", (), 77)])
        assert registers["r"].read() == 77

    def test_multi_table_batch_atomic(self):
        control, tables, _ = make_control()
        control.apply_batch(
            [
                StateUpdate("insert", "t0", (1,), 10),
                StateUpdate("insert", "t1", (1,), 11),
            ]
        )
        assert tables["t0"].lookup((1,)) == (True, 10)
        assert tables["t1"].lookup((1,)) == (True, 11)

    def test_visibility_bit_cleared_after_batch(self):
        control, tables, _ = make_control()
        control.apply_batch([StateUpdate("insert", "t0", (1,), 1)])
        assert not tables["t0"]._writeback_visible
        assert not tables["t0"]._writeback

    def test_counters(self):
        control, _, _ = make_control()
        control.apply_batch([StateUpdate("insert", "t0", (1,), 1)])
        control.apply_batch([StateUpdate("insert", "t0", (2,), 2)])
        assert control.batches_applied == 2
        assert control.updates_applied == 2

    def test_install_entries_bulk(self):
        control, tables, _ = make_control()
        control.install_entries("t0", {(i,): i * 2 for i in range(10)})
        assert tables["t0"].entry_count == 10


class TestLatencyModel:
    """The latency model must land near the paper's Table 3."""

    def _mean(self, n_tables, op, trials=300):
        import random

        rng = random.Random(0)
        return statistics.mean(
            _batch_latency_us(n_tables, op, rng) for _ in range(trials)
        )

    def test_one_table_insert_near_135us(self):
        assert 120 <= self._mean(1, "insert") <= 150

    def test_two_tables_doubles(self):
        assert 245 <= self._mean(2, "insert") <= 295

    def test_four_tables_sublinear(self):
        """Paper: 4 tables costs ~371 µs, not 540 (RPC pipelining)."""
        four = self._mean(4, "insert")
        assert 340 <= four <= 405
        assert four < 2 * self._mean(2, "insert")

    def test_modify_cheaper_than_insert(self):
        assert BASE_PER_TABLE_US["modify"] < BASE_PER_TABLE_US["insert"]

    def test_zero_tables_free(self):
        import random

        assert _batch_latency_us(0, "insert", random.Random(0)) == 0.0

    def test_update_is_5x_packet_latency(self):
        """Paper: 'A single table update is about 5x the end-to-end latency
        of a packet sent through a software middlebox' (~22.5 µs)."""
        ratio = self._mean(1, "insert") / 22.5
        assert 4.5 <= ratio <= 7.5
