"""Properties of the connection-consistent flow selector.

The pooled punt path leans on three selector guarantees: stickiness
(same 5-tuple, same member while membership is stable), determinism
(the member table is a pure function of names, seed, and slot count —
registration order must not matter), and minimal disruption (removing a
member re-homes only the slots it owned).
"""

import random

import pytest

from repro.switchsim.selector import (
    DEFAULT_SELECTOR_SLOTS,
    FlowSelector,
    canonical_flow_key,
)
from repro.workloads.packets import make_tcp_packet, make_udp_packet


def random_packet(rng: random.Random):
    return make_tcp_packet(
        f"10.{rng.randrange(256)}.{rng.randrange(256)}.{rng.randrange(1, 255)}",
        f"172.16.{rng.randrange(256)}.{rng.randrange(1, 255)}",
        rng.randrange(1024, 65536),
        rng.randrange(1, 1024),
    )


class TestValidation:
    def test_empty_member_list_rejected(self):
        with pytest.raises(ValueError, match="at least one member"):
            FlowSelector([])

    def test_duplicate_members_rejected(self):
        with pytest.raises(ValueError, match="srv1"):
            FlowSelector(["srv0", "srv1", "srv1"])

    def test_bad_slot_count_rejected(self):
        with pytest.raises(ValueError):
            FlowSelector(["srv0"], slots=0)

    def test_cannot_remove_last_member(self):
        selector = FlowSelector(["only"])
        with pytest.raises(ValueError, match="last pool member"):
            selector.remove_member("only")


class TestStickiness:
    def test_same_five_tuple_same_member(self):
        rng = random.Random(11)
        selector = FlowSelector(["a", "b", "c"], seed=7)
        for _ in range(200):
            packet = random_packet(rng)
            first = selector.member_for_packet(packet)
            for _ in range(3):
                assert selector.member_for_packet(packet.copy()) == first

    def test_both_directions_hash_to_one_member(self):
        # Connection consistency: the reply direction of a flow lands on
        # the same member (the flow key is symmetric-canonicalized).
        selector = FlowSelector(["a", "b", "c"], seed=3)
        rng = random.Random(5)
        for _ in range(100):
            saddr = f"10.0.{rng.randrange(256)}.{rng.randrange(1, 255)}"
            daddr = f"172.16.0.{rng.randrange(1, 255)}"
            sport = rng.randrange(1024, 65536)
            dport = rng.randrange(1, 1024)
            fwd = make_tcp_packet(saddr, daddr, sport, dport)
            rev = make_tcp_packet(daddr, saddr, dport, sport)
            assert (
                selector.member_for_packet(fwd)
                == selector.member_for_packet(rev)
            )

    def test_canonical_key_is_symmetric(self):
        fwd = make_tcp_packet("10.0.0.1", "10.0.0.2", 1234, 80)
        rev = make_tcp_packet("10.0.0.2", "10.0.0.1", 80, 1234)
        assert canonical_flow_key(fwd) == canonical_flow_key(rev)

    def test_non_l4_packets_still_route(self):
        selector = FlowSelector(["a", "b"], seed=1)
        packet = make_udp_packet("10.0.0.1", "10.0.0.2", 53, 53)
        assert selector.member_for_packet(packet) in ("a", "b")


class TestDeterminism:
    def test_registration_order_is_irrelevant(self):
        names = ["srv2", "srv0", "srv1", "srv3"]
        tables = [
            FlowSelector(order, seed=42).member_table()
            for order in (names, sorted(names), list(reversed(names)))
        ]
        assert tables[0] == tables[1] == tables[2]

    def test_same_seed_byte_identical_table(self):
        a = FlowSelector(["x", "y", "z"], seed=99)
        b = FlowSelector(["x", "y", "z"], seed=99)
        assert a.member_table() == b.member_table()
        assert repr(a.member_table()) == repr(b.member_table())

    def test_different_seed_different_table(self):
        a = FlowSelector(["x", "y", "z"], seed=1)
        b = FlowSelector(["x", "y", "z"], seed=2)
        assert a.member_table() != b.member_table()

    def test_every_member_owns_slots_by_default(self):
        selector = FlowSelector(["a", "b", "c", "d"], seed=0)
        load = selector.load()
        assert sum(load.values()) == DEFAULT_SELECTOR_SLOTS
        assert all(count > 0 for count in load.values())


class TestMinimalDisruption:
    def test_removal_only_rehomes_the_removed_members_slots(self):
        selector = FlowSelector(["a", "b", "c", "d"], seed=13)
        before = selector.member_table()
        gone = selector.slots_owned("c")
        selector.remove_member("c")
        after = selector.member_table()
        for slot in range(selector.slots):
            if slot in gone:
                assert after[slot] != "c"
            else:
                assert after[slot] == before[slot]

    def test_add_then_remove_restores_the_table(self):
        # Rendezvous hashing: membership changes commute with the table.
        selector = FlowSelector(["a", "b", "c"], seed=13)
        before = selector.member_table()
        selector.add_member("d")
        selector.remove_member("d")
        assert selector.member_table() == before
