"""Compiled pipeline executor and fast-path deployments vs. the
interpreted originals — same traversals, same journeys, same state."""

from itertools import islice

import pytest

from repro.runtime.deployment import GalliumMiddlebox, compile_middlebox
from repro.switchsim.compiled import (
    CompiledPipelineExecutor,
    make_pipeline_executor,
)
from repro.switchsim.pipeline import PipelineExecutor
from repro.switchsim.switch_model import SwitchModel
from repro.workloads import IperfWorkload, middlebox_stream
from tests.conftest import get_bundle


def _switch_pair(name):
    lowered = get_bundle(name).lowered
    plan, program = compile_middlebox(lowered)
    return (
        SwitchModel(program, seed=0),
        SwitchModel(program, seed=0, fast_path=True),
    )


class TestFactory:
    def test_fast_path_selects_compiled_executor(self, middlebox_name):
        lowered = get_bundle(middlebox_name).lowered
        _, program = compile_middlebox(lowered)
        interpreted = SwitchModel(program, seed=0)
        compiled = SwitchModel(program, seed=0, fast_path=True)
        assert isinstance(interpreted._pre, PipelineExecutor)
        assert isinstance(compiled._pre, CompiledPipelineExecutor)
        assert isinstance(compiled._post, CompiledPipelineExecutor)

    def test_make_pipeline_executor_dispatch(self):
        lowered = get_bundle("minilb").lowered
        _, program = compile_middlebox(lowered)
        model = SwitchModel(program, seed=0)
        for fast_path, cls in (
            (False, PipelineExecutor),
            (True, CompiledPipelineExecutor),
        ):
            executor = make_pipeline_executor(
                program.pre, model.adapter, program.needs_server_reg,
                fast_path=fast_path,
            )
            assert isinstance(executor, cls)


class TestSwitchTraversalEquivalence:
    def test_identical_switch_outputs(self, middlebox_name):
        interpreted, compiled = _switch_pair(middlebox_name)
        stream = islice(
            middlebox_stream(middlebox_name, IperfWorkload()), 50
        )
        for packet, port in stream:
            a = interpreted.receive(packet.copy(), port)
            b = compiled.receive(packet.copy(), port)
            assert a.dropped == b.dropped
            assert a.punted == b.punted
            assert [
                (p, bytes(pkt.pack())) for p, pkt in a.emitted
            ] == [(p, bytes(pkt.pack())) for p, pkt in b.emitted]
        assert interpreted.counters() == compiled.counters()
        assert {
            name: reg.value
            for name, reg in interpreted.registers.items()
        } == {name: reg.value for name, reg in compiled.registers.items()}


class TestDeploymentEquivalence:
    def test_fast_path_journeys_match(self, middlebox_name):
        lowered = get_bundle(middlebox_name).lowered
        plan, program = compile_middlebox(lowered)
        interpreted = GalliumMiddlebox(plan, program, seed=0)
        compiled = GalliumMiddlebox(plan, program, seed=0, fast_path=True)
        interpreted.install()
        compiled.install()
        stream = islice(
            middlebox_stream(middlebox_name, IperfWorkload()), 80
        )
        for packet, port in stream:
            a = interpreted.process_packet(packet.copy(), port)
            b = compiled.process_packet(packet.copy(), port)
            assert a.verdict == b.verdict
            assert a.fast_path == b.fast_path
            assert a.punted == b.punted
            assert [
                (p, bytes(pkt.pack())) for p, pkt in a.emitted
            ] == [(p, bytes(pkt.pack())) for p, pkt in b.emitted]
        assert interpreted.state.snapshot() == compiled.state.snapshot()
