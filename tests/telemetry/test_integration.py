"""End-to-end tracing/metrics over real deployments.

Builds the same observed deployments the ``trace``/``metrics`` CLI
commands build and asserts the pipeline emits the event vocabulary the
telemetry design promises — parser extraction, table applies, register
reads/writes with old/new values, punt decisions, server execution,
control-plane batch windows, and cache activity.
"""

import pytest

from repro.cli import _build_observed_deployment, _drive_stream


def run_traced(name, deployment="gallium", packets=12, deep=False, seed=0):
    middlebox, telemetry = _build_observed_deployment(
        name, deployment, seed, 4, tracing=True, deep=deep
    )
    count = _drive_stream(middlebox, name, packets)
    assert count == packets
    return middlebox, telemetry


class TestGalliumTrace:
    @pytest.fixture(scope="class")
    def traced(self):
        return run_traced("mazunat")

    def test_event_vocabulary(self, traced):
        _, telemetry = traced
        kinds = {event.kind for event in telemetry.tracer.events}
        assert {
            "parse", "table_lookup", "register_rmw", "packet_write",
            "punt", "map_insert", "server_exec", "batch_begin",
            "batch_commit", "verdict",
        } <= kinds

    def test_register_rmw_carries_old_and_new(self, traced):
        _, telemetry = traced
        rmw = next(e for e in telemetry.tracer.events
                   if e.kind == "register_rmw")
        assert {"name", "old", "new", "op"} <= set(rmw.detail)

    def test_components_and_packets_attributed(self, traced):
        _, telemetry = traced
        components = {e.component for e in telemetry.tracer.events}
        assert {"switch.parser", "switch.pre", "server",
                "control_plane"} <= components
        punted = [e for e in telemetry.tracer.events if e.kind == "punt"]
        assert all(e.packet is not None for e in punted)

    def test_timestamps_monotonic(self, traced):
        _, telemetry = traced
        times = [e.time_us for e in telemetry.tracer.events]
        assert times == sorted(times)

    def test_metrics_registry_populated(self, traced):
        _, telemetry = traced
        counters = telemetry.metrics.to_dict()["counters"]
        assert counters["switch.punted_packets"] >= 1
        assert counters["switch.fast_path_packets"] >= 1
        assert counters["server.punts_handled"] == counters[
            "switch.punted_packets"
        ]
        assert counters["control_plane.batches_applied"] >= 1

    def test_disabled_tracing_records_nothing(self):
        middlebox, telemetry = _build_observed_deployment(
            "mazunat", "gallium", 0, 4, tracing=False, deep=False
        )
        _drive_stream(middlebox, "mazunat", 6)
        assert telemetry.tracer.events == []
        # ...but the metrics registry still fills up.
        assert telemetry.metrics.counter_value("switch.punted_packets") >= 1


class TestDeepTrace:
    def test_deep_adds_exec_events(self):
        _, shallow = run_traced("firewall", packets=6)
        _, deep = run_traced("firewall", packets=6, deep=True)
        assert not any(e.kind == "exec" for e in shallow.tracer.events)
        execs = [e for e in deep.tracer.events if e.kind == "exec"]
        assert execs
        assert all({"function", "block", "op"} <= set(e.detail)
                   for e in execs)


class TestCachedTrace:
    @pytest.fixture(scope="class")
    def traced(self):
        return run_traced("minilb", deployment="cached", packets=16)

    @pytest.fixture(scope="class")
    def churned(self):
        """A tiny cache under key churn: evictions, then a refill."""
        from repro.net.addresses import ip as ip_addr
        from repro.runtime.cache import build_cached
        from repro.telemetry import Telemetry
        from repro.workloads.packets import make_tcp_packet

        telemetry = Telemetry(tracing=True)
        middlebox = build_cached("minilb", cache_entries=2,
                                 telemetry=telemetry)
        middlebox.state.vectors["backends"] = [
            int(ip_addr("10.0.1.1")), int(ip_addr("10.0.1.2")),
        ]
        middlebox.sync_all_state()
        for client in range(6):
            middlebox.process_packet(
                make_tcp_packet(f"10.7.1.{client + 1}", "10.0.0.100",
                                5, 80), 1
            )
        # The first client was evicted; its return refills the entry.
        middlebox.process_packet(
            make_tcp_packet("10.7.1.1", "10.0.0.100", 5, 80), 1
        )
        return middlebox, telemetry

    def test_cache_events_present(self, traced):
        _, telemetry = traced
        kinds = {event.kind for event in telemetry.tracer.events}
        assert {"cache_hit", "cache_miss"} <= kinds

    def test_evict_and_refill_events(self, churned):
        middlebox, telemetry = churned
        kinds = {event.kind for event in telemetry.tracer.events}
        assert {"cache_evict", "cache_refill"} <= kinds
        counters = telemetry.metrics.to_dict()["counters"]
        assert counters["cache.evictions"] == middlebox.stats.evictions > 0
        assert counters["cache.refills"] == middlebox.stats.refills > 0

    def test_cache_stats_live_in_registry(self, traced):
        middlebox, telemetry = traced
        counters = telemetry.metrics.to_dict()["counters"]
        assert counters["cache.misses"] == middlebox.stats.misses
        assert counters["cache.hits"] == middlebox.stats.hits
        assert counters["cache.misses"] >= 1

    def test_punt_discards_speculative_pre_effects(self, traced):
        """On a cache miss the server reruns the whole program, so the
        switch's speculative pre-pipeline effects must not survive in the
        trace (they would double-count against the baseline)."""
        _, telemetry = traced
        events = telemetry.tracer.events
        misses = [e for e in events if e.kind == "cache_miss"]
        assert misses
        for miss in misses:
            pre_effects = [
                e for e in events
                if e.packet == miss.packet
                and e.component == "switch.pre"
                and e.kind in ("register_write", "register_rmw",
                               "map_insert", "packet_write")
            ]
            assert pre_effects == []
