"""Windowed time series: deterministic bucketing over the sim clock.

The hub's contract (see ``repro.telemetry.timeseries``): window ``i``
covers ``[i * window_us, (i + 1) * window_us)``, quiet windows are
sparse-omitted, names resolve lazily, and the same seed + stream must
reproduce a byte-identical serialization.  Disabled telemetry holds
``None`` — the zero-overhead pin.
"""

import json

import pytest

from repro.sim.clock import SimClock
from repro.telemetry import Telemetry
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.timeseries import DEFAULT_SERIES, TimeSeriesHub


def make_hub(window_us=100.0, tenant=None):
    clock = SimClock()
    metrics = MetricsRegistry()
    hub = TimeSeriesHub(clock, metrics, window_us=window_us, tenant=tenant)
    return clock, metrics, hub


class TestWindowing:
    def test_counter_delta_lands_in_window_where_it_moved(self):
        clock, metrics, hub = make_hub(window_us=10.0)
        counter = metrics.counter("demo.count")
        hub.promote("demo.count")
        counter.inc(3)
        clock.advance(12.0)      # crosses into window 1
        hub.roll()               # closes window 0
        counter.inc(5)
        payload = hub.to_dict()  # finalizes window 1
        windows = payload["series"]["demo.count"]["windows"]
        assert [w["index"] for w in windows] == [0, 1]
        assert [w["delta"] for w in windows] == [3, 5]
        assert windows[0]["start_us"] == 0.0
        assert windows[1]["start_us"] == 10.0
        assert windows[1]["total"] == 8

    def test_rate_is_delta_scaled_to_per_ms(self):
        clock, metrics, hub = make_hub(window_us=100.0)
        counter = metrics.counter("demo.count")
        hub.promote("demo.count")
        counter.inc(4)
        payload = hub.to_dict()
        (window,) = payload["series"]["demo.count"]["windows"]
        assert window["rate_per_ms"] == pytest.approx(40.0)

    def test_quiet_windows_are_sparse_omitted(self):
        clock, metrics, hub = make_hub(window_us=10.0)
        counter = metrics.counter("demo.count")
        hub.promote("demo.count")
        counter.inc()
        # A punt-sized clock jump: many empty windows elapse.
        clock.advance(500.0)
        hub.roll()
        counter.inc()
        payload = hub.to_dict()
        windows = payload["series"]["demo.count"]["windows"]
        assert [w["index"] for w in windows] == [0, 50]

    def test_gauge_emits_only_on_change(self):
        clock, metrics, hub = make_hub(window_us=10.0)
        gauge = metrics.gauge("demo.level")
        hub.promote("demo.level")
        gauge.set(2.0)
        clock.advance(10.0)
        hub.roll()
        # unchanged across this window boundary -> no entry
        clock.advance(10.0)
        hub.roll()
        gauge.set(7.0)
        payload = hub.to_dict()
        windows = payload["series"]["demo.level"]["windows"]
        assert [(w["index"], w["value"]) for w in windows] == [
            (0, 2.0), (2, 7.0),
        ]

    def test_histogram_windows_carry_bucket_deltas(self):
        clock, metrics, hub = make_hub(window_us=10.0)
        hist = metrics.histogram("demo.lat", (1.0, 5.0))
        hub.promote("demo.lat")
        hist.observe(0.5)
        hist.observe(3.0)
        clock.advance(10.0)
        hub.roll()
        hist.observe(100.0)
        payload = hub.to_dict()
        windows = payload["series"]["demo.lat"]["windows"]
        assert windows[0]["count"] == 2
        assert windows[0]["buckets"] == [1, 1, 0]
        assert windows[1]["count"] == 1
        assert windows[1]["buckets"] == [0, 0, 1]
        assert windows[1]["sum"] == pytest.approx(100.0)

    def test_roll_is_noop_inside_open_window(self):
        clock, metrics, hub = make_hub(window_us=100.0)
        counter = metrics.counter("demo.count")
        hub.promote("demo.count")
        counter.inc()
        clock.advance(1.0)
        hub.roll()  # still window 0: nothing closes
        counter.inc()
        payload = hub.to_dict()
        (window,) = payload["series"]["demo.count"]["windows"]
        assert window["delta"] == 2


class TestPromotion:
    def test_lazy_resolution_binds_on_later_roll(self):
        clock, metrics, hub = make_hub(window_us=10.0)
        assert hub.promote("late.counter", required=False) is False
        counter = metrics.counter("late.counter")  # born after promotion
        counter.inc(2)
        payload = hub.to_dict()
        (window,) = payload["series"]["late.counter"]["windows"]
        assert window["delta"] == 2

    def test_never_resolved_names_are_omitted(self):
        clock, metrics, hub = make_hub()
        hub.promote("never.exists", required=False)
        assert "never.exists" not in hub.to_dict()["series"]
        assert "never.exists" in hub.promoted

    def test_promote_defaults_returns_resolved_subset(self):
        clock, metrics, hub = make_hub()
        metrics.counter("switch.punted_packets")
        resolved = hub.promote_defaults()
        assert resolved == ["switch.punted_packets"]
        assert set(hub.promoted) == set(DEFAULT_SERIES)

    def test_tenant_label_serialized(self):
        _, _, hub = make_hub(tenant="minilb")
        assert hub.to_dict()["tenant"] == "minilb"
        _, _, plain = make_hub()
        assert "tenant" not in plain.to_dict()


class TestGuards:
    @pytest.mark.parametrize("bad", [0.0, -5.0])
    def test_nonpositive_window_rejected(self, bad):
        clock = SimClock()
        with pytest.raises(ValueError):
            TimeSeriesHub(clock, MetricsRegistry(), window_us=bad)

    def test_disabled_telemetry_holds_none(self):
        """The zero-overhead pin: no hub, no collector, unless asked."""
        telemetry = Telemetry()
        assert telemetry.series is None
        assert telemetry.active_series is None
        assert telemetry.int_collector is None
        assert telemetry.active_int is None

    def test_enabled_telemetry_builds_hub(self):
        telemetry = Telemetry(series_window_us=50.0, series_tenant="lb")
        assert telemetry.active_series is telemetry.series
        assert telemetry.series.window_us == 50.0
        assert telemetry.series.tenant == "lb"

    def test_deployment_components_hold_none_when_disabled(self):
        """Like the tracer's pin: the disabled fast path is one
        ``is not None`` test per packet, on a cached ``None``."""
        from repro.runtime.deployment import (
            GalliumMiddlebox,
            compile_middlebox,
        )
        from repro.middleboxes import load

        lowered = load("mazunat").lowered
        plan, program = compile_middlebox(lowered)
        box = GalliumMiddlebox(plan, program, telemetry=Telemetry())
        assert box._series is None
        assert box._int is None


class TestDeterminism:
    def drive(self, name="mazunat", packets=15, seed=3):
        from itertools import islice

        from repro.runtime.deployment import (
            GalliumMiddlebox,
            compile_middlebox,
        )
        from repro.middleboxes import load
        from repro.workloads import IperfWorkload, middlebox_stream

        lowered = load(name).lowered
        plan, program = compile_middlebox(lowered)
        telemetry = Telemetry(series_window_us=100.0)
        telemetry.series.promote_defaults()
        box = GalliumMiddlebox(plan, program, seed=seed, telemetry=telemetry)
        box.install()
        stream = islice(middlebox_stream(name, IperfWorkload()), packets)
        for packet, ingress in stream:
            box.process_packet(packet.copy(), ingress)
        return json.dumps(telemetry.series.to_dict(), sort_keys=True)

    def test_same_seed_byte_identical(self):
        assert self.drive() == self.drive()

    def test_deployment_emits_windows(self):
        payload = json.loads(self.drive())
        series = payload["series"]
        assert series["switch.fast_path_packets"]["windows"]
        assert series["latency.end_to_end_us"]["kind"] == "histogram"

    def test_same_fault_plan_reproduces_identical_series(self):
        """Mirror of the trace-determinism fault-plan test: same seeds +
        same fault plan => byte-identical windowed series on both the
        DUT and the reference deployment."""
        from repro.faults.corpus import load_corpus
        from repro.faults.oracle import run_fault_oracle

        entry = load_corpus()[0]

        def run():
            telemetry = Telemetry(series_window_us=100.0)
            reference = Telemetry(series_window_us=100.0)
            for side in (telemetry, reference):
                side.series.promote_defaults()
            run_fault_oracle(
                entry.source, entry.stream, entry.fault_plan,
                policy=entry.policy, injector_seed=entry.injector_seed,
                deployment_seed=entry.deployment_seed, cached=entry.cached,
                provenance=False, _telemetry=(telemetry, reference),
            )
            return (
                json.dumps(telemetry.series.to_dict(), sort_keys=True),
                json.dumps(reference.series.to_dict(), sort_keys=True),
            )

        first, second = run(), run()
        assert first == second
        assert '"windows": [{' in first[0]  # the DUT series is not empty
