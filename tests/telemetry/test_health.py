"""Heartbeat-driven health detection: φ-accrual math, the deployment-
facing monitor lifecycle, the measured-latency probe, and a seeded
100-scenario primary-crash campaign clean under the modeled detector."""

import math

import pytest

from repro.difftest.oracle import StreamSpec
from repro.faults.oracle import FaultOutcome, run_fault_oracle
from repro.faults.plan import FaultPlan, PrimarySwitchCrash
from repro.runtime.degradation import DegradationPolicy
from repro.telemetry.health import (
    HEARTBEAT_INTERVAL_US,
    HealthConfig,
    HealthMonitor,
    PhiAccrualDetector,
    expected_detection_latency_us,
    measure_detection_latency,
    phi_inverse_z,
)
from repro.telemetry.metrics import MetricsRegistry
from tests.faults.test_degradation import FAULTBOX


class TestDetectorMath:
    def test_phi_zero_before_first_beat(self):
        assert PhiAccrualDetector().phi(100.0) == 0.0

    def test_phi_grows_with_silence(self):
        detector = PhiAccrualDetector()
        detector.heartbeat(0.0)
        values = [detector.phi(t) for t in (2.0, 6.0, 10.0, 20.0)]
        assert values == sorted(values)
        assert values[-1] > 3.0

    def test_phi_low_right_after_a_beat(self):
        detector = PhiAccrualDetector()
        detector.heartbeat(0.0)
        detector.heartbeat(4.0)
        assert detector.phi(4.5) < 1.0

    def test_std_floor_applies_to_regular_beats(self):
        detector = PhiAccrualDetector()
        for t in (0.0, 4.0, 8.0, 12.0):
            detector.heartbeat(t)
        _, std = detector.mean_std()
        assert std == HealthConfig().min_std_us

    def test_phi_saturates_finite(self):
        detector = PhiAccrualDetector()
        detector.heartbeat(0.0)
        assert detector.phi(1e6) == 12.0

    def test_phi_inverse_z_matches_definition(self):
        for threshold in (1.0, 3.0, 5.0):
            z = phi_inverse_z(threshold)
            p_later = 0.5 * math.erfc(z / math.sqrt(2.0))
            assert -math.log10(p_later) == pytest.approx(threshold,
                                                         abs=1e-6)

    def test_expected_bound_is_interval_plus_z_sigma(self):
        config = HealthConfig()
        bound = expected_detection_latency_us(config)
        assert bound == pytest.approx(
            config.interval_us
            + phi_inverse_z(config.threshold) * config.min_std_us
        )
        # Default calibration: ~7.09 µs — a handful of fallback packets.
        assert 6.0 < bound < 8.0


class TestHealthMonitor:
    def make(self):
        metrics = MetricsRegistry()
        return metrics, HealthMonitor(metrics)

    def test_beat_until_synthesizes_the_interval_grid(self):
        metrics, monitor = self.make()
        monitor.beat_until(10.0)  # beats at 0, 4, 8
        assert metrics.counter_value("health.heartbeats") == 3
        assert monitor.detector.last_beat_us == 8.0
        monitor.beat_until(10.0)  # idempotent inside the same interval
        assert metrics.counter_value("health.heartbeats") == 3

    def test_crash_is_detected_only_after_phi_crosses(self):
        metrics, monitor = self.make()
        monitor.beat_until(10.0)
        monitor.mark_crashed(10.0)
        assert monitor.crash_pending
        assert monitor.crash_detected(11.0) is False
        assert metrics.counter_value("health.detections") == 0
        bound = expected_detection_latency_us(monitor.config)
        assert monitor.crash_detected(10.0 + bound + 1.0) is True
        assert metrics.counter_value("health.detections") == 1
        assert metrics.counter_value("health.forced_detections") == 0
        latency = monitor.detection_latency_us
        assert 0.0 < latency <= bound + 1.0
        # Latches: further polls stay true, no double booking.
        assert monitor.crash_detected(1e6) is True
        assert metrics.counter_value("health.detections") == 1

    def test_no_beats_synthesized_while_crashed(self):
        metrics, monitor = self.make()
        monitor.mark_crashed(2.0)  # beat at 0 only
        beats = metrics.counter_value("health.heartbeats")
        monitor.beat_until(50.0)
        assert metrics.counter_value("health.heartbeats") == beats

    def test_vacuously_true_with_no_crash(self):
        _, monitor = self.make()
        assert monitor.crash_detected(5.0) is True

    def test_force_detect_books_forced_not_detected(self):
        metrics, monitor = self.make()
        monitor.mark_crashed(4.0)
        monitor.force_detect(5.0)
        assert metrics.counter_value("health.detections") == 0
        assert metrics.counter_value("health.forced_detections") == 1
        assert monitor.detection_latency_us == pytest.approx(1.0)
        assert not monitor.crash_pending

    def test_revive_resumes_heartbeats(self):
        metrics, monitor = self.make()
        monitor.mark_crashed(6.0)
        monitor.crash_detected(6.0 + 20.0)
        monitor.revive(30.0)
        assert not monitor.crash_pending
        before = metrics.counter_value("health.heartbeats")
        monitor.beat_until(30.0 + 2 * HEARTBEAT_INTERVAL_US)
        assert metrics.counter_value("health.heartbeats") == before + 2


class TestMeasuredLatency:
    def test_probe_detects_within_bound(self):
        report = measure_detection_latency()
        assert report["detections"] == 1
        assert report["forced_detections"] == 0
        assert report["promotions"] == 1
        bound = report["expected_bound_us"] + HEARTBEAT_INTERVAL_US
        assert 0.0 < report["detection_latency_us"] <= bound

    def test_probe_is_deterministic(self):
        assert measure_detection_latency() == measure_detection_latency()


class TestPrimaryCrashCampaign:
    def test_hundred_seeded_crash_scenarios_clean_under_phi(self):
        """Acceptance: ≥100 seeded primary-crash scenarios must converge
        (CLEAN or DEGRADED_OK, never a violation) with promotion driven
        by the modeled φ detector rather than the exact fault boundary."""
        outcomes = []
        for scenario in range(100):
            crash_at = 2 + scenario % 9
            window = 1 + scenario % 4
            result = run_fault_oracle(
                FAULTBOX, StreamSpec(seed=scenario, count=16),
                FaultPlan((PrimarySwitchCrash(
                    at_packet=crash_at, promotion_window=window,
                ),)),
                policy=DegradationPolicy(),
                failover=True,
                detection="phi",
                provenance=False,
            )
            assert result.outcome in (
                FaultOutcome.CLEAN, FaultOutcome.DEGRADED_OK
            ), (scenario, result.outcome, result.violation, result.error)
            assert result.violation is None, (scenario, result.violation)
            outcomes.append(result.outcome)
        # The campaign must actually exercise the degraded path.
        assert outcomes.count(FaultOutcome.DEGRADED_OK) >= 90
