"""Unit tests for the metrics registry primitives."""

import pytest

from repro.telemetry import (
    INSTRUCTION_BOUNDS,
    LATENCY_BOUNDS_US,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("punt.served")
        assert counter.value == 0
        counter.inc()
        counter.inc(3)
        assert counter.value == 4

    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_counter_value_helper(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(7)
        assert registry.counter_value("a") == 7
        assert registry.counter_value("missing") == 0

    def test_counters_with_prefix_sorted(self):
        registry = MetricsRegistry()
        registry.counter("drops.by_reason.server_down").inc()
        registry.counter("drops.by_reason.punt_lost").inc(2)
        registry.counter("other").inc()
        found = registry.counters_with_prefix("drops.by_reason.")
        assert [counter.name for counter in found] == [
            "drops.by_reason.punt_lost",
            "drops.by_reason.server_down",
        ]


class TestGauge:
    def test_set_and_read(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("queue.depth")
        gauge.set(12.5)
        assert gauge.value == 12.5
        gauge.set(3)
        assert gauge.value == 3


class TestHistogram:
    def test_fixed_buckets_and_overflow(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", (10.0, 100.0))
        for value in (5.0, 50.0, 500.0, 7.0):
            hist.observe(value)
        snapshot = hist.to_dict()
        assert snapshot["count"] == 4
        assert snapshot["buckets"] == [2, 1, 1]
        assert snapshot["sum"] == pytest.approx(562.0)

    def test_shared_bound_constants(self):
        assert LATENCY_BOUNDS_US[0] < LATENCY_BOUNDS_US[-1]
        assert INSTRUCTION_BOUNDS == tuple(sorted(INSTRUCTION_BOUNDS))

    def test_all_negative_stream_reports_negative_maximum(self):
        """Regression: max_observed started at 0.0, so an all-negative
        observation stream reported a phantom zero maximum (and p100
        clamped to 0.0 instead of the true max)."""
        registry = MetricsRegistry()
        hist = registry.histogram("delta", (-10.0, 0.0, 10.0))
        for value in (-25.0, -7.0, -3.0):
            hist.observe(value)
        assert hist.max_observed == -3.0
        assert hist.percentile(1.0) == -3.0

    def test_bisect_bucketing_matches_linear_scan(self):
        registry = MetricsRegistry()
        bounds = (1.0, 2.0, 4.0, 8.0)
        hist = registry.histogram("scan", bounds)
        values = [0.5, 1.0, 1.5, 2.0, 3.9, 4.0, 7.0, 8.0, 8.1, 100.0]
        for value in values:
            hist.observe(value)
        expected = [0] * (len(bounds) + 1)
        for value in values:
            for position, bound in enumerate(bounds):
                if value <= bound:
                    expected[position] += 1
                    break
            else:
                expected[len(bounds)] += 1
        assert hist.bucket_counts == expected

    def test_empty_or_unsorted_bounds_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("empty", ())
        with pytest.raises(ValueError):
            registry.histogram("unsorted", (5.0, 1.0))


class TestRegistry:
    def test_cross_type_name_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_to_dict_is_sorted_and_complete(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h", (1.0,)).observe(0.5)
        snapshot = registry.to_dict()
        assert list(snapshot["counters"]) == ["a", "b"]
        assert snapshot["gauges"]["g"] == 1.5
        assert snapshot["histograms"]["h"]["count"] == 1
