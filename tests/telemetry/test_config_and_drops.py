"""Satellite regressions: configurable retry policy defaults and the
canonical drop-reason taxonomy."""

import random

import pytest

from repro.runtime.degradation import (
    DROP_REASONS,
    POLICY_REASONS,
    UNSALVAGEABLE_REASONS,
    DegradationPolicy,
    DropAccounting,
)
from repro.switchsim.control_plane import TIMEOUT_MULTIPLE, RetryPolicy
from repro.telemetry import MetricsRegistry


class TestRetryPolicyConfig:
    def test_defaults_unchanged(self):
        """Regression pin: making the constants constructor-configurable
        must not move the defaults."""
        policy = RetryPolicy()
        assert policy.max_attempts == 4
        assert policy.base_backoff_us == 200.0
        assert policy.backoff_multiplier == 2.0
        assert policy.max_backoff_us == 5_000.0
        assert policy.jitter_fraction == 0.1
        assert policy.timeout_multiple == TIMEOUT_MULTIPLE == 3.0

    def test_default_backoff_sequence_unchanged(self):
        policy = RetryPolicy(jitter_fraction=0.0)
        rng = random.Random(0)
        assert [policy.backoff_us(n, rng) for n in (1, 2, 3, 4, 5, 6)] == [
            200.0, 400.0, 800.0, 1600.0, 3200.0, 5000.0,
        ]

    def test_constructor_configurable(self):
        policy = RetryPolicy(
            base_backoff_us=50.0, backoff_multiplier=3.0,
            max_backoff_us=500.0, jitter_fraction=0.0,
            timeout_multiple=7.5,
        )
        rng = random.Random(0)
        assert [policy.backoff_us(n, rng) for n in (1, 2, 3, 4)] == [
            50.0, 150.0, 450.0, 500.0,
        ]
        assert policy.timeout_multiple == 7.5

    def test_timeout_multiple_serializes(self):
        policy = RetryPolicy(timeout_multiple=7.5)
        data = policy.to_dict()
        assert data["timeout_multiple"] == 7.5
        assert RetryPolicy.from_dict(data) == policy
        # Old serialized policies (no timeout_multiple key) still load.
        del data["timeout_multiple"]
        assert RetryPolicy.from_dict(data).timeout_multiple == 3.0

    def test_policy_threads_into_control_plane(self):
        from repro.middleboxes import load
        from repro.runtime.deployment import (
            GalliumMiddlebox,
            compile_middlebox,
        )

        bundle = load("minilb")
        plan, program = compile_middlebox(bundle.lowered)
        retry = RetryPolicy(timeout_multiple=9.0, max_attempts=2)
        middlebox = GalliumMiddlebox(
            plan, program, config=bundle.config,
            policy=DegradationPolicy(retry=retry),
        )
        assert middlebox.switch.control_plane.retry is retry


class TestDropTaxonomy:
    def test_taxonomy_is_the_union_of_its_halves(self):
        assert DROP_REASONS == UNSALVAGEABLE_REASONS | POLICY_REASONS
        assert not UNSALVAGEABLE_REASONS & POLICY_REASONS

    def test_unknown_reason_rejected(self):
        accounting = DropAccounting()
        with pytest.raises(ValueError, match="canonical taxonomy"):
            accounting.count("cosmic_rays")

    def test_counts_land_in_shared_registry(self):
        registry = MetricsRegistry()
        accounting = DropAccounting(metrics=registry)
        accounting.count("server_down")
        accounting.count("server_down")
        accounting.count("punt_lost")
        assert accounting.by_reason == {"server_down": 2, "punt_lost": 1}
        assert registry.counter_value("drops.by_reason.server_down") == 2
        assert registry.counter_value("drops.by_reason.punt_lost") == 1

    def test_legacy_counter_attributes_are_registry_backed(self):
        registry = MetricsRegistry()
        accounting = DropAccounting(metrics=registry)
        accounting.failed_open += 1
        accounting.queued += 2
        assert registry.counter_value("drops.failed_open") == 1
        assert registry.counter_value("drops.queued") == 2
        assert accounting.failed_open == 1
