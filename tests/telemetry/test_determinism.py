"""Trace determinism: tracing consumes no randomness and timestamps come
only from the simulated clock, so the same seed (and the same fault plan)
must reproduce a byte-identical ``--json`` trace."""

import pytest

from repro.cli import main
from repro.faults.corpus import load_corpus
from repro.faults.oracle import run_fault_oracle
from repro.telemetry import Telemetry


def capture(capsys, argv):
    assert main(argv) == 0
    return capsys.readouterr().out


class TestCliDeterminism:
    @pytest.mark.parametrize("deployment", ["gallium", "baseline"])
    def test_trace_json_byte_identical(self, capsys, deployment):
        argv = ["trace", "mazunat", "--packets", "10", "--seed", "7",
                "--deployment", deployment, "--json"]
        assert capture(capsys, argv) == capture(capsys, argv)

    def test_cached_trace_json_byte_identical(self, capsys):
        argv = ["trace", "minilb", "--packets", "10", "--seed", "7",
                "--deployment", "cached", "--cache-entries", "2", "--json"]
        assert capture(capsys, argv) == capture(capsys, argv)

    def test_deep_trace_json_byte_identical(self, capsys):
        argv = ["trace", "minilb", "--packets", "4", "--deep", "--json"]
        assert capture(capsys, argv) == capture(capsys, argv)

    def test_metrics_json_byte_identical(self, capsys):
        argv = ["metrics", "mazunat", "--packets", "10", "--json"]
        assert capture(capsys, argv) == capture(capsys, argv)

    def test_different_seed_may_differ_but_still_validates(self, capsys):
        import json

        from repro.telemetry.schema import load_schema, validate

        one = capture(capsys, ["trace", "mazunat", "--packets", "5",
                               "--seed", "1", "--json"])
        two = capture(capsys, ["trace", "mazunat", "--packets", "5",
                               "--seed", "2", "--json"])
        for text in (one, two):
            assert validate(json.loads(text), load_schema("trace")) == []
        assert json.loads(one)["seed"] != json.loads(two)["seed"]


class TestFaultPlanDeterminism:
    def test_same_fault_plan_reproduces_identical_traces(self):
        """The fault-side provenance re-run relies on this: same seeds +
        same fault plan => the traced scenario replays event-for-event."""
        import json

        entry = load_corpus()[0]

        def run():
            telemetry = Telemetry(tracing=True)
            reference = Telemetry(tracing=True)
            run_fault_oracle(
                entry.source, entry.stream, entry.fault_plan,
                policy=entry.policy, injector_seed=entry.injector_seed,
                deployment_seed=entry.deployment_seed, cached=entry.cached,
                provenance=False, _telemetry=(telemetry, reference),
            )
            return (
                json.dumps(telemetry.tracer.to_dicts(), sort_keys=True),
                json.dumps(reference.tracer.to_dicts(), sort_keys=True),
            )

        assert run() == run()
