"""Satellite: fault-timeline outage windows feed the capacity model, so
``experiments recovery`` prices fallback mode in Gbps."""

import pytest

from repro.eval.experiments import fault_recovery
from repro.telemetry import MetricsRegistry


@pytest.fixture(scope="module")
def table():
    registry = MetricsRegistry()
    header, rows = fault_recovery(punts=400, metrics=registry)
    return header, rows, registry


class TestRecoveryGbps:
    def test_throughput_columns_present(self, table):
        header, rows, _ = table
        assert header[-3:] == [
            "Normal Gbps", "Fallback Gbps", "Effective Gbps"
        ]
        assert len(rows) == 9

    def test_fallback_costs_throughput(self, table):
        _, rows, _ = table
        for row in rows:
            normal, fallback, effective = row[-3:]
            assert fallback < normal
            assert fallback <= effective <= normal

    def test_longer_outages_cost_more(self, table):
        _, rows, _ = table
        # Same queue depth (32), growing outage: effective Gbps shrinks.
        by_outage = [row[-1] for row in rows if "queue=32" in row[0]]
        assert by_outage == sorted(by_outage, reverse=True)
        assert by_outage[0] > by_outage[-1]

    def test_metrics_registry_surfaces_the_cost(self, table):
        _, rows, registry = table
        snapshot = registry.to_dict()
        assert snapshot["gauges"]["recovery.normal_gbps"] > 0
        key = "recovery.outage_50ms.queue_32.effective_gbps"
        assert snapshot["gauges"][key] == pytest.approx(
            [row[-1] for row in rows if "outage=50ms" in row[0]
             and "queue=32" in row[0]][0],
            abs=0.01,
        )
        dropped = "recovery.outage_50ms.queue_8.dropped"
        assert snapshot["counters"][dropped] > 0

    def test_metrics_argument_is_optional(self):
        header, rows = fault_recovery(punts=100)
        assert rows and len(header) == 9
