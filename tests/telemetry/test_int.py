"""In-band telemetry: deterministic sampling, per-hop stamps, flow
aggregation, and the synthesized server hop for punted packets."""

from types import SimpleNamespace

import pytest

from repro.sim.clock import SERVER_INSTR_US, SimClock
from repro.telemetry import INT_KEY, Telemetry
from repro.telemetry.int import IntCollector
from repro.telemetry.metrics import MetricsRegistry


class FakePacket:
    def __init__(self, key=(0x0A000001, 0x0A000002, 1000, 80, 6)):
        self.metadata = {}
        self._key = key

    def five_tuple(self):
        return self._key


def journey(verdict="forward", server_instructions=0, punted=False,
            fallback=False, queued=False, sync_wait_us=0.0):
    return SimpleNamespace(
        verdict=verdict, server_instructions=server_instructions,
        punted=punted, fallback=fallback, queued=queued,
        sync_wait_us=sync_wait_us,
    )


def make_collector(sample_every=1):
    clock = SimClock()
    metrics = MetricsRegistry()
    return clock, metrics, IntCollector(clock, metrics,
                                        sample_every=sample_every)


class TestSampling:
    @pytest.mark.parametrize("bad", [0, -1])
    def test_sample_every_below_one_rejected(self, bad):
        clock = SimClock()
        with pytest.raises(ValueError):
            IntCollector(clock, MetricsRegistry(), sample_every=bad)

    def test_sample_is_every_kth_arrival(self):
        _, metrics, collector = make_collector(sample_every=3)
        decisions = []
        for index in range(7):
            collector.begin_packet(index, FakePacket())
            decisions.append(collector.stamping)
            collector.collect(journey())
        assert decisions == [True, False, False, True, False, False, True]
        assert metrics.counter_value("int.stamped_packets") == 3

    def test_unsampled_packets_get_no_stamps(self):
        _, _, collector = make_collector(sample_every=2)
        packet = FakePacket()
        collector.begin_packet(1, packet)  # 1 % 2 != 0: unsampled
        assert collector.stamping is False
        collector.collect(journey())
        assert INT_KEY not in packet.metadata
        assert collector.flow_reports() == []


class TestStampsAndAggregation:
    def test_stamp_rides_packet_metadata(self):
        clock, _, collector = make_collector()
        packet = FakePacket()
        collector.begin_packet(0, packet)
        clock.advance(1.5)
        collector.stamp(packet, "switch.pre", instructions=12,
                        latency_us=0.024, punted=True)
        (record,) = packet.metadata[INT_KEY]
        assert record["hop"] == "switch.pre"
        assert record["instructions"] == 12
        assert record["punted"] is True
        assert record["time_us"] == 1.5

    def test_flow_aggregate_folds_hops_and_journey_fields(self):
        _, _, collector = make_collector()
        for index in range(2):
            packet = FakePacket()
            collector.begin_packet(index, packet)
            collector.stamp(packet, "switch.pre", 10, 0.02)
            collector.collect(
                journey(punted=index == 0, sync_wait_us=2.5),
                queue_depth=3 - index,
            )
        (report,) = collector.flow_reports()
        assert report["packets"] == 2
        assert report["sampled"] == 2
        assert report["punts"] == 1
        assert report["max_queue_depth"] == 3
        assert report["sync_wait_us"] == pytest.approx(5.0)
        hop = report["hops"]["switch.pre"]
        assert hop["packets"] == 2
        assert hop["instructions"] == 20
        assert hop["latency_us"] == pytest.approx(0.04)

    def test_server_hop_synthesized_from_journey(self):
        _, _, collector = make_collector()
        packet = FakePacket()
        collector.begin_packet(0, packet)
        collector.collect(journey(server_instructions=40, punted=True))
        (report,) = collector.flow_reports()
        server = report["hops"]["server"]
        assert server["packets"] == 1
        assert server["instructions"] == 40
        assert server["latency_us"] == pytest.approx(40 * SERVER_INSTR_US)

    def test_drops_counted(self):
        _, _, collector = make_collector()
        collector.begin_packet(0, FakePacket())
        collector.collect(journey(verdict="drop"))
        (report,) = collector.flow_reports()
        assert report["drops"] == 1

    def test_flows_keep_first_seen_order(self):
        _, _, collector = make_collector()
        keys = [(1, 2, 3, 4, 6), (5, 6, 7, 8, 6), (1, 2, 3, 4, 6)]
        for index, key in enumerate(keys):
            collector.begin_packet(index, FakePacket(key))
            collector.collect(journey())
        labels = [f["flow"] for f in collector.flow_reports()]
        assert labels == ["0.0.0.1:3->0.0.0.2:4/6", "0.0.0.5:7->0.0.0.6:8/6"]
        assert collector.to_dict()["stamped_packets"] == 3


class TestDeploymentIntegration:
    def drive(self, name="mazunat", packets=12, sample_every=1):
        from itertools import islice

        from repro.runtime.deployment import (
            GalliumMiddlebox,
            compile_middlebox,
        )
        from repro.middleboxes import load
        from repro.workloads import IperfWorkload, middlebox_stream

        lowered = load(name).lowered
        plan, program = compile_middlebox(lowered)
        telemetry = Telemetry(int_sample_every=sample_every)
        box = GalliumMiddlebox(plan, program, seed=0, telemetry=telemetry)
        box.install()
        stream = islice(middlebox_stream(name, IperfWorkload()), packets)
        for packet, ingress in stream:
            box.process_packet(packet.copy(), ingress)
        return telemetry

    def test_switch_traversals_are_stamped(self):
        telemetry = self.drive()
        report = telemetry.int_collector.to_dict()
        assert report["stamped_packets"] == 12
        (flow,) = report["flows"]
        assert "switch.pre" in flow["hops"]
        # The first packet of a flow punts: its server leg must appear.
        assert "server" in flow["hops"]
        assert flow["punts"] >= 1

    def test_subsampling_reduces_stamped_count(self):
        telemetry = self.drive(sample_every=4)
        report = telemetry.int_collector.to_dict()
        assert report["stamped_packets"] == 3  # arrivals 0, 4, 8
        (flow,) = report["flows"]
        assert flow["sampled"] == 3
