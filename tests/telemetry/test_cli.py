"""CLI-level tests for ``repro trace`` / ``repro metrics``."""

import json

import pytest

from repro.cli import main
from repro.telemetry.schema import load_schema, validate


class TestTraceCommand:
    def test_human_output(self, capsys):
        assert main(["trace", "mazunat", "--packets", "4"]) == 0
        out = capsys.readouterr().out
        assert "mazunat [gallium]" in out
        assert "switch.parser" in out and "punt" in out

    def test_json_matches_schema(self, capsys):
        assert main(["trace", "mazunat", "--packets", "4", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert validate(payload, load_schema("trace")) == []
        assert payload["deployment"] == "gallium"
        assert payload["packets"] == 4
        assert payload["events"]

    def test_deep_flag_recorded_in_payload(self, capsys):
        assert main(["trace", "minilb", "--packets", "2", "--deep",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["deep"] is True
        assert any(e["kind"] == "exec" for e in payload["events"])

    def test_baseline_deployment(self, capsys):
        assert main(["trace", "firewall", "--packets", "3",
                     "--deployment", "baseline", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert validate(payload, load_schema("trace")) == []
        assert payload["deployment"] == "baseline"

    def test_unknown_middlebox_rejected(self):
        with pytest.raises(SystemExit):
            main(["trace", "nope"])

    def test_uncacheable_middlebox_rejected(self):
        with pytest.raises(SystemExit):
            main(["trace", "mazunat", "--deployment", "cached"])


class TestMetricsCommand:
    def test_human_output(self, capsys):
        assert main(["metrics", "minilb", "--packets", "8"]) == 0
        out = capsys.readouterr().out
        assert "counters:" in out
        assert "switch.punted_packets" in out

    def test_json_matches_schema(self, capsys):
        assert main(["metrics", "minilb", "--packets", "8", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert validate(payload, load_schema("metrics")) == []
        metrics = payload["metrics"]
        assert metrics["counters"]["switch.punted_packets"] >= 1
        assert "switch.pre_instructions" in metrics["histograms"]

    def test_cached_deployment(self, capsys):
        assert main(["metrics", "minilb", "--packets", "8",
                     "--deployment", "cached", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert validate(payload, load_schema("metrics")) == []
        assert "cache.hits" in payload["metrics"]["counters"]
