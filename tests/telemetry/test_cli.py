"""CLI-level tests for ``repro trace`` / ``repro metrics``."""

import json

import pytest

from repro.cli import main
from repro.telemetry.schema import load_schema, validate


class TestTraceCommand:
    def test_human_output(self, capsys):
        assert main(["trace", "mazunat", "--packets", "4"]) == 0
        out = capsys.readouterr().out
        assert "mazunat [gallium]" in out
        assert "switch.parser" in out and "punt" in out

    def test_json_matches_schema(self, capsys):
        assert main(["trace", "mazunat", "--packets", "4", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert validate(payload, load_schema("trace")) == []
        assert payload["deployment"] == "gallium"
        assert payload["packets"] == 4
        assert payload["events"]

    def test_deep_flag_recorded_in_payload(self, capsys):
        assert main(["trace", "minilb", "--packets", "2", "--deep",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["deep"] is True
        assert any(e["kind"] == "exec" for e in payload["events"])

    def test_baseline_deployment(self, capsys):
        assert main(["trace", "firewall", "--packets", "3",
                     "--deployment", "baseline", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert validate(payload, load_schema("trace")) == []
        assert payload["deployment"] == "baseline"

    def test_unknown_middlebox_rejected(self):
        with pytest.raises(SystemExit):
            main(["trace", "nope"])

    def test_uncacheable_middlebox_rejected(self):
        with pytest.raises(SystemExit):
            main(["trace", "mazunat", "--deployment", "cached"])


class TestMetricsCommand:
    def test_human_output(self, capsys):
        assert main(["metrics", "minilb", "--packets", "8"]) == 0
        out = capsys.readouterr().out
        assert "counters:" in out
        assert "switch.punted_packets" in out

    def test_json_matches_schema(self, capsys):
        assert main(["metrics", "minilb", "--packets", "8", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert validate(payload, load_schema("metrics")) == []
        metrics = payload["metrics"]
        assert metrics["counters"]["switch.punted_packets"] >= 1
        assert "switch.pre_instructions" in metrics["histograms"]

    def test_cached_deployment(self, capsys):
        assert main(["metrics", "minilb", "--packets", "8",
                     "--deployment", "cached", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert validate(payload, load_schema("metrics")) == []
        assert "cache.hits" in payload["metrics"]["counters"]


class TestFailoverDeployment:
    def test_metrics_failover(self, capsys):
        assert main(["metrics", "mazunat", "--packets", "6",
                     "--deployment", "failover", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert validate(payload, load_schema("metrics")) == []
        assert payload["deployment"] == "failover"
        counters = payload["metrics"]["counters"]
        assert counters["failover.standby_batches_replayed"] >= 1
        assert counters["failover.promotions"] == 0  # no fault, no promotion

    def test_trace_failover(self, capsys):
        assert main(["trace", "mazunat", "--packets", "3",
                     "--deployment", "failover", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert validate(payload, load_schema("trace")) == []
        assert payload["deployment"] == "failover"


class TestEndToEndLatency:
    """metrics --json carries the end-to-end latency distribution for
    every deployment flavour (the one histogram implementation)."""

    @pytest.mark.parametrize("deployment", [
        "gallium", "baseline", "failover",
    ])
    def test_histogram_present_and_populated(self, deployment, capsys):
        assert main(["metrics", "mazunat", "--packets", "6",
                     "--deployment", deployment, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        histogram = payload["metrics"]["histograms"]["latency.end_to_end_us"]
        assert histogram["count"] == 6
        assert histogram["sum"] > 0

    def test_cached_histogram_present(self, capsys):
        assert main(["metrics", "minilb", "--packets", "8",
                     "--deployment", "cached", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        histogram = payload["metrics"]["histograms"]["latency.end_to_end_us"]
        assert histogram["count"] == 8


class TestTraceSampling:
    def test_sample_every_rejects_zero(self):
        with pytest.raises(SystemExit):
            main(["trace", "mazunat", "--packets", "4", "--sample-every", "0"])

    def test_sample_every_keeps_matching_packets(self, capsys):
        assert main(["trace", "mazunat", "--packets", "4",
                     "--sample-every", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert validate(payload, load_schema("trace")) == []
        packets = {e["packet"] for e in payload["events"]
                   if e["packet"] is not None}
        assert packets == {0, 2}

    def test_punted_only_drops_fast_path(self, capsys):
        # The iperf stream is one long flow: only packet 0 punts.
        assert main(["trace", "mazunat", "--packets", "4",
                     "--punted-only", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        packets = {e["packet"] for e in payload["events"]
                   if e["packet"] is not None}
        assert packets == {0}


class TestObsCommand:
    def test_human_output(self, capsys):
        assert main(["obs", "mazunat", "--packets", "6"]) == 0
        out = capsys.readouterr().out
        assert "mazunat [gallium]" in out
        assert "series:" in out and "flows:" in out
        assert "switch.fast_path_packets" in out
        assert "switch.pre" in out

    def test_json_matches_schema(self, capsys):
        assert main(["obs", "mazunat", "--packets", "6", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert validate(payload, load_schema("obs")) == []
        assert payload["deployment"] == "gallium"
        assert payload["health"] is None
        assert payload["int"]["stamped_packets"] == 6
        assert payload["series"]["series"]

    def test_failover_reports_health(self, capsys):
        assert main(["obs", "mazunat", "--packets", "6",
                     "--deployment", "failover", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert validate(payload, load_schema("obs")) == []
        health = payload["health"]
        assert health is not None
        assert health["heartbeats"] > 0
        assert health["detections"] == 0  # no fault plan: nothing crashes
        assert health["detection_latency_us"] is None

    def test_json_byte_identical_across_reruns(self, capsys):
        def run(argv):
            assert main(argv) == 0
            return capsys.readouterr().out

        plain = ["obs", "mazunat", "--packets", "10", "--seed", "7",
                 "--json"]
        cached = ["obs", "minilb", "--packets", "10", "--seed", "7",
                  "--deployment", "cached", "--json"]
        assert run(plain) == run(plain)
        assert run(cached) == run(cached)

    def test_window_width_changes_bucketing_not_totals(self, capsys):
        def totals(window_us):
            assert main(["obs", "mazunat", "--packets", "8",
                         "--window-us", window_us, "--json"]) == 0
            payload = json.loads(capsys.readouterr().out)
            series = payload["series"]["series"]["switch.fast_path_packets"]
            return sum(w["delta"] for w in series["windows"])

        assert totals("50") == totals("400")

    def test_guards_reject_bad_arguments(self):
        with pytest.raises(SystemExit):
            main(["obs", "mazunat", "--sample-every", "0"])
        with pytest.raises(SystemExit):
            main(["obs", "mazunat", "--window-us", "0"])
