"""Divergence provenance on historical corpus bugs.

Each difftest corpus entry is a minimized reproducer of a real compiler
bug (now fixed).  These tests re-introduce two of those bugs by deleting
the server-side instruction whose mishandling caused them, then assert
the provenance machinery — the exact code path ``run_oracle`` uses on a
DIVERGE outcome — re-runs the scenario with tracing and pinpoints the
first divergent semantic event.
"""

import pytest

from repro.difftest.corpus import CorpusEntry, load_corpus
from repro.difftest.oracle import (
    Outcome,
    _collect_provenance,
    _drive_runtimes,
)
from repro.ir import instructions as irin
from repro.runtime.deployment import compile_middlebox
from repro.telemetry import TraceDiff


@pytest.fixture(scope="module")
def corpus():
    entries = {entry.name: entry for entry in load_corpus()}
    assert len(entries) >= 2, "historical difftest corpus missing"
    return entries


def reintroduce_bug(entry, instruction_type):
    """Compile the reproducer, then delete the first server-side
    instruction of ``instruction_type`` — recreating the class of bug
    where the compiler stranded that effect on the wrong side."""
    plan, program = compile_middlebox(entry.source)
    for block in plan.non_offloaded.blocks.values():
        for index, inst in enumerate(block.instructions):
            if isinstance(inst, instruction_type):
                del block.instructions[index]
                return plan, program
    raise AssertionError(
        f"no {instruction_type.__name__} in {entry.name}'s server partition"
    )


def diverge_and_collect(entry, plan, program):
    result = _drive_runtimes(
        plan, program, entry.stream, check_cached=False,
        cache_entries=2, deployment_seed=0,
    )
    assert result.outcome is Outcome.DIVERGE, result.error
    diff = _collect_provenance(
        plan, program, entry.stream, result.divergence, 2, 0
    )
    assert diff is not None, "provenance collection failed"
    return result, diff


class TestStrandedRegisterWrite:
    """Historical bug: an offloaded register RMW was dropped from the
    server partition, so baseline and deployment disagree on final
    state."""

    @pytest.fixture(scope="class")
    def diverged(self, corpus):
        entry = corpus["stranded_offloaded_register_write"]
        plan, program = reintroduce_bug(entry, irin.RegisterRMW)
        return diverge_and_collect(entry, plan, program)

    def test_divergence_detected_as_state(self, diverged):
        result, _ = diverged
        assert result.divergence.kind == "state"

    def test_diff_pinpoints_first_state_effect(self, diverged):
        _, diff = diverged
        assert diff.divergent
        assert diff.stream.startswith("state member")
        assert diff.position == 0
        assert diff.lhs_event["kind"] == "register_rmw"
        member = diff.stream.split("'")[1]
        assert diff.lhs_event["detail"]["name"] == member

    def test_render_shows_both_sides(self, diverged):
        _, diff = diverged
        rendered = diff.render()
        assert "first divergent effect" in rendered
        assert "baseline" in rendered and "gallium" in rendered


class TestAliasedFieldWrite:
    """Historical bug: an L4 header-field store vanished from the server
    partition, so one packet leaves with the wrong field value."""

    @pytest.fixture(scope="class")
    def diverged(self, corpus):
        entry = corpus["l4_alias_hoist"]
        plan, program = reintroduce_bug(entry, irin.StorePacketField)
        return diverge_and_collect(entry, plan, program)

    def test_divergence_is_packet_indexed(self, diverged):
        result, _ = diverged
        assert result.divergence.kind == "field"
        assert result.divergence.packet_index is not None

    def test_diff_isolates_failing_packet(self, diverged):
        result, diff = diverged
        assert diff.divergent
        assert diff.stream.startswith(
            f"packet {result.divergence.packet_index} field"
        )
        # The deployment never wrote the field at all.
        assert diff.rhs_event is None
        assert diff.lhs_event["kind"] == "packet_write"
        assert "<no such event>" in diff.render()

    def test_only_packet_restricted_the_traces(self, diverged):
        result, diff = diverged
        for event in diff.lhs_context + diff.rhs_context:
            assert event["packet"] in (None, result.divergence.packet_index)


class TestCorpusAttachment:
    def test_trace_diff_rides_on_corpus_entries(self, corpus):
        entry = corpus["stranded_offloaded_register_write"]
        plan, program = reintroduce_bug(entry, irin.RegisterRMW)
        _, diff = diverge_and_collect(entry, plan, program)
        stored = CorpusEntry(
            name="regression",
            source=entry.source,
            stream=entry.stream,
            expect=Outcome.DIVERGE.value,
            trace_diff=diff.to_dict(),
        )
        clone = CorpusEntry.from_dict(stored.to_dict())
        assert clone.trace_diff == diff.to_dict()
        assert TraceDiff.from_dict(clone.trace_diff).render() == diff.render()

    def test_entries_without_provenance_stay_compact(self, corpus):
        entry = next(iter(corpus.values()))
        assert entry.trace_diff is None or isinstance(entry.trace_diff, dict)
        data = CorpusEntry(
            name="x", source="", stream=entry.stream
        ).to_dict()
        assert "trace_diff" not in data


class TestFaultProvenance:
    def test_fault_scenario_rerun_produces_a_diff(self):
        """The fault-side provenance machinery replays a fully seeded
        scenario with tracing on both the deployment and its fault-free
        reference; on the (healthy) historical corpus scenario the two
        traces must agree."""
        from repro.faults.corpus import (
            FaultCorpusEntry,
            load_corpus as load_fault_corpus,
        )
        from repro.faults.oracle import _collect_fault_provenance

        entries = load_fault_corpus()
        assert entries, "historical fault corpus missing"
        entry = entries[0]
        diff = _collect_fault_provenance(
            entry.source, entry.stream, entry.fault_plan,
            policy=entry.policy,
            injector_seed=entry.injector_seed,
            deployment_seed=entry.deployment_seed,
            cached=entry.cached,
        )
        assert diff is not None
        assert not diff.divergent
        assert diff.lhs_events_total > 0
        # And the serialized form rides on fault corpus entries too.
        stored = FaultCorpusEntry(
            name="x", source=entry.source, stream=entry.stream,
            fault_plan=entry.fault_plan, policy=entry.policy,
            trace_diff=diff.to_dict(),
        )
        clone = FaultCorpusEntry.from_dict(stored.to_dict())
        assert clone.trace_diff == diff.to_dict()
