"""Tests for the self-contained JSON-schema validator and the checked-in
trace/metrics schemas."""

import json

import pytest

from repro.telemetry.schema import (
    bundled_schemas,
    check,
    load_schema,
    main,
    validate,
    validate_named,
)


class TestValidator:
    def test_type_mismatch(self):
        assert validate(3, {"type": "string"})
        assert validate("x", {"type": "string"}) == []

    def test_bool_is_not_integer(self):
        assert validate(True, {"type": "integer"})

    def test_union_types(self):
        schema = {"type": ["integer", "null"]}
        assert validate(None, schema) == []
        assert validate(5, schema) == []
        assert validate("x", schema)

    def test_required_and_nested_properties(self):
        schema = {
            "type": "object",
            "required": ["a"],
            "properties": {"a": {"type": "integer", "minimum": 2}},
        }
        assert validate({}, schema)
        assert validate({"a": 1}, schema)
        assert validate({"a": 3}, schema) == []

    def test_enum_and_items(self):
        schema = {"type": "array", "items": {"enum": ["x", "y"]}}
        assert validate(["x", "y"], schema) == []
        errors = validate(["x", "z"], schema)
        assert errors and "[1]" in errors[0]


class TestCheckedInSchemas:
    def test_schemas_load(self):
        for name in ("trace", "metrics"):
            schema = load_schema(name)
            assert schema["type"] == "object"
            assert "version" in schema["required"]

    def test_rejects_bad_deployment_enum(self):
        payload = {
            "version": 1, "middlebox": "x", "deployment": "hardware",
            "seed": 0, "packets": 0, "deep": False, "events": [],
        }
        errors = validate(payload, load_schema("trace"))
        assert any("deployment" in error for error in errors)

    def test_bundled_registry_contains_every_consumer_schema(self):
        names = bundled_schemas()
        # The one shared validator serves tracing, metrics, the faults
        # rollup, and the tenancy report (the perf harness's schema is a
        # checked-in benchmark artifact, routed through validate_file).
        for required in ("trace", "metrics", "faults_summary", "tenancy"):
            assert required in names, names

    def test_unknown_schema_name_lists_available(self):
        with pytest.raises(KeyError, match="tenancy"):
            load_schema("not-a-schema")

    def test_check_raises_with_named_document(self):
        with pytest.raises(ValueError, match="campaign rollup"):
            check({}, "faults_summary", what="campaign rollup")

    def test_validate_named_matches_load_schema(self):
        payload = {"not": "a trace"}
        assert validate_named(payload, "trace") == validate(
            payload, load_schema("trace")
        )

    def test_faults_summary_schema_accepts_real_rollup(self):
        from repro.faults.campaign import CampaignStats

        summary = CampaignStats().summary_dict()
        assert validate_named(summary, "faults_summary") == []

    def test_cli_entry_point(self, tmp_path, capsys):
        good = {
            "version": 1, "middlebox": "x", "deployment": "gallium",
            "seed": 0, "packets": 0,
            "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
        }
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(good))
        assert main(["metrics", str(path)]) == 0
        capsys.readouterr()
        del good["metrics"]
        path.write_text(json.dumps(good))
        assert main(["metrics", str(path)]) == 1
        assert "missing required key" in capsys.readouterr().err
