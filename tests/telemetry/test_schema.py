"""Tests for the self-contained JSON-schema validator and the checked-in
trace/metrics schemas."""

import json

import pytest

from repro.telemetry.schema import load_schema, main, validate


class TestValidator:
    def test_type_mismatch(self):
        assert validate(3, {"type": "string"})
        assert validate("x", {"type": "string"}) == []

    def test_bool_is_not_integer(self):
        assert validate(True, {"type": "integer"})

    def test_union_types(self):
        schema = {"type": ["integer", "null"]}
        assert validate(None, schema) == []
        assert validate(5, schema) == []
        assert validate("x", schema)

    def test_required_and_nested_properties(self):
        schema = {
            "type": "object",
            "required": ["a"],
            "properties": {"a": {"type": "integer", "minimum": 2}},
        }
        assert validate({}, schema)
        assert validate({"a": 1}, schema)
        assert validate({"a": 3}, schema) == []

    def test_enum_and_items(self):
        schema = {"type": "array", "items": {"enum": ["x", "y"]}}
        assert validate(["x", "y"], schema) == []
        errors = validate(["x", "z"], schema)
        assert errors and "[1]" in errors[0]


class TestCheckedInSchemas:
    def test_schemas_load(self):
        for name in ("trace", "metrics"):
            schema = load_schema(name)
            assert schema["type"] == "object"
            assert "version" in schema["required"]

    def test_rejects_bad_deployment_enum(self):
        payload = {
            "version": 1, "middlebox": "x", "deployment": "hardware",
            "seed": 0, "packets": 0, "deep": False, "events": [],
        }
        errors = validate(payload, load_schema("trace"))
        assert any("deployment" in error for error in errors)

    def test_cli_entry_point(self, tmp_path, capsys):
        good = {
            "version": 1, "middlebox": "x", "deployment": "gallium",
            "seed": 0, "packets": 0,
            "metrics": {"counters": {}, "gauges": {}, "histograms": {}},
        }
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(good))
        assert main(["metrics", str(path)]) == 0
        capsys.readouterr()
        del good["metrics"]
        path.write_text(json.dumps(good))
        assert main(["metrics", str(path)]) == 1
        assert "missing required key" in capsys.readouterr().err
