"""Unit tests for the per-packet tracer and the trace differ."""

from repro.sim.clock import SimClock
from repro.telemetry import PacketTracer, Telemetry, diff_traces


def make_tracer(**kwargs) -> PacketTracer:
    return PacketTracer(SimClock(), enabled=True, **kwargs)


class TestPacketTracer:
    def test_disabled_records_nothing(self):
        tracer = PacketTracer(SimClock(), enabled=False)
        tracer.record("register_write", name="x", value=1)
        assert tracer.events == []

    def test_active_tracer_is_none_when_disabled(self):
        assert Telemetry().active_tracer is None
        telemetry = Telemetry(tracing=True)
        assert telemetry.active_tracer is telemetry.tracer

    def test_records_component_packet_and_time(self):
        tracer = make_tracer()
        tracer.clock.advance(2.5)
        tracer.begin_packet(3)
        tracer.set_component("switch.pre")
        tracer.record("register_read", name="ctr", value=7)
        tracer.record("punt", component="switch.parser", reason="miss")
        first, second = tracer.events
        assert (first.seq, first.packet, first.component) == (0, 3, "switch.pre")
        assert first.time_us == 2.5
        assert second.component == "switch.parser"
        assert second.detail == {"reason": "miss"}

    def test_only_packet_filters(self):
        tracer = make_tracer()
        tracer.only_packet = 1
        tracer.begin_packet(0)
        tracer.record("verdict", verdict="send")
        tracer.begin_packet(1)
        tracer.record("verdict", verdict="drop")
        assert [event.packet for event in tracer.events] == [1]

    def test_rollback_effects_keeps_reads_and_renumbers(self):
        tracer = make_tracer()
        tracer.record("register_read", name="a", value=0)
        mark = tracer.mark()
        tracer.record("register_write", name="a", value=1)
        tracer.record("table_lookup", name="t", hit=False)
        tracer.record("map_insert", name="m", key=(1,))
        tracer.rollback_effects(mark)
        kinds = [event.kind for event in tracer.events]
        assert kinds == ["register_read", "table_lookup"]
        assert [event.seq for event in tracer.events] == [0, 1]

    def test_to_dicts_sorts_detail_and_jsonifies_tuples(self):
        tracer = make_tracer()
        tracer.record("map_insert", value=9, key=(1, 2), name="m")
        payload = tracer.to_dicts()[0]
        assert list(payload["detail"]) == ["key", "name", "value"]
        assert payload["detail"]["key"] == [1, 2]


class TestDiffTraces:
    def _effect(self, tracer, name, value):
        tracer.record("register_write", name=name, value=value)

    def test_identical_traces_agree(self):
        lhs, rhs = make_tracer(), make_tracer()
        for tracer in (lhs, rhs):
            self._effect(tracer, "a", 1)
            tracer.record("register_read", name="a", value=1)
        diff = diff_traces(lhs, rhs)
        assert not diff.divergent
        assert "agree" in diff.render()

    def test_reads_are_never_compared(self):
        lhs, rhs = make_tracer(), make_tracer()
        self._effect(lhs, "a", 1)
        self._effect(rhs, "a", 1)
        # The rhs re-reads state (a cache miss would); still equivalent.
        rhs.record("register_read", name="a", value=1)
        rhs.record("table_lookup", name="t", hit=False)
        assert not diff_traces(lhs, rhs).divergent

    def test_first_divergent_value_pinpointed(self):
        lhs, rhs = make_tracer(), make_tracer()
        self._effect(lhs, "a", 1)
        self._effect(lhs, "a", 2)
        self._effect(rhs, "a", 1)
        self._effect(rhs, "a", 99)
        diff = diff_traces(lhs, rhs, "baseline", "gallium")
        assert diff.divergent
        assert diff.stream == "state member 'a'"
        assert diff.position == 1
        assert diff.lhs_event["detail"]["value"] == 2
        assert diff.rhs_event["detail"]["value"] == 99

    def test_missing_event_renders_no_such_event(self):
        lhs, rhs = make_tracer(), make_tracer()
        self._effect(lhs, "a", 1)
        diff = diff_traces(lhs, rhs)
        assert diff.divergent
        assert diff.rhs_event is None
        assert "<no such event>" in diff.render()

    def test_independent_stream_interleaving_tolerated(self):
        lhs, rhs = make_tracer(), make_tracer()
        self._effect(lhs, "a", 1)
        self._effect(lhs, "b", 2)
        self._effect(rhs, "b", 2)
        self._effect(rhs, "a", 1)
        assert not diff_traces(lhs, rhs).divergent

    def test_roundtrip_dict(self):
        lhs, rhs = make_tracer(), make_tracer()
        self._effect(lhs, "a", 1)
        self._effect(rhs, "a", 2)
        diff = diff_traces(lhs, rhs)
        from repro.telemetry import TraceDiff

        clone = TraceDiff.from_dict(diff.to_dict())
        assert clone.render() == diff.render()
