"""Unit tests for the per-packet tracer and the trace differ."""

from repro.sim.clock import SimClock
from repro.telemetry import PacketTracer, Telemetry, diff_traces


def make_tracer(**kwargs) -> PacketTracer:
    return PacketTracer(SimClock(), enabled=True, **kwargs)


class TestPacketTracer:
    def test_disabled_records_nothing(self):
        tracer = PacketTracer(SimClock(), enabled=False)
        tracer.record("register_write", name="x", value=1)
        assert tracer.events == []

    def test_active_tracer_is_none_when_disabled(self):
        assert Telemetry().active_tracer is None
        telemetry = Telemetry(tracing=True)
        assert telemetry.active_tracer is telemetry.tracer

    def test_records_component_packet_and_time(self):
        tracer = make_tracer()
        tracer.clock.advance(2.5)
        tracer.begin_packet(3)
        tracer.set_component("switch.pre")
        tracer.record("register_read", name="ctr", value=7)
        tracer.record("punt", component="switch.parser", reason="miss")
        first, second = tracer.events
        assert (first.seq, first.packet, first.component) == (0, 3, "switch.pre")
        assert first.time_us == 2.5
        assert second.component == "switch.parser"
        assert second.detail == {"reason": "miss"}

    def test_only_packet_filters(self):
        tracer = make_tracer()
        tracer.only_packet = 1
        tracer.begin_packet(0)
        tracer.record("verdict", verdict="send")
        tracer.begin_packet(1)
        tracer.record("verdict", verdict="drop")
        assert [event.packet for event in tracer.events] == [1]

    def test_rollback_effects_keeps_reads_and_renumbers(self):
        tracer = make_tracer()
        tracer.record("register_read", name="a", value=0)
        mark = tracer.mark()
        tracer.record("register_write", name="a", value=1)
        tracer.record("table_lookup", name="t", hit=False)
        tracer.record("map_insert", name="m", key=(1,))
        tracer.rollback_effects(mark)
        kinds = [event.kind for event in tracer.events]
        assert kinds == ["register_read", "table_lookup"]
        assert [event.seq for event in tracer.events] == [0, 1]

    def test_to_dicts_sorts_detail_and_jsonifies_tuples(self):
        tracer = make_tracer()
        tracer.record("map_insert", value=9, key=(1, 2), name="m")
        payload = tracer.to_dicts()[0]
        assert list(payload["detail"]) == ["key", "name", "value"]
        assert payload["detail"]["key"] == [1, 2]


class TestDiffTraces:
    def _effect(self, tracer, name, value):
        tracer.record("register_write", name=name, value=value)

    def test_identical_traces_agree(self):
        lhs, rhs = make_tracer(), make_tracer()
        for tracer in (lhs, rhs):
            self._effect(tracer, "a", 1)
            tracer.record("register_read", name="a", value=1)
        diff = diff_traces(lhs, rhs)
        assert not diff.divergent
        assert "agree" in diff.render()

    def test_reads_are_never_compared(self):
        lhs, rhs = make_tracer(), make_tracer()
        self._effect(lhs, "a", 1)
        self._effect(rhs, "a", 1)
        # The rhs re-reads state (a cache miss would); still equivalent.
        rhs.record("register_read", name="a", value=1)
        rhs.record("table_lookup", name="t", hit=False)
        assert not diff_traces(lhs, rhs).divergent

    def test_first_divergent_value_pinpointed(self):
        lhs, rhs = make_tracer(), make_tracer()
        self._effect(lhs, "a", 1)
        self._effect(lhs, "a", 2)
        self._effect(rhs, "a", 1)
        self._effect(rhs, "a", 99)
        diff = diff_traces(lhs, rhs, "baseline", "gallium")
        assert diff.divergent
        assert diff.stream == "state member 'a'"
        assert diff.position == 1
        assert diff.lhs_event["detail"]["value"] == 2
        assert diff.rhs_event["detail"]["value"] == 99

    def test_missing_event_renders_no_such_event(self):
        lhs, rhs = make_tracer(), make_tracer()
        self._effect(lhs, "a", 1)
        diff = diff_traces(lhs, rhs)
        assert diff.divergent
        assert diff.rhs_event is None
        assert "<no such event>" in diff.render()

    def test_independent_stream_interleaving_tolerated(self):
        lhs, rhs = make_tracer(), make_tracer()
        self._effect(lhs, "a", 1)
        self._effect(lhs, "b", 2)
        self._effect(rhs, "b", 2)
        self._effect(rhs, "a", 1)
        assert not diff_traces(lhs, rhs).divergent

    def test_roundtrip_dict(self):
        lhs, rhs = make_tracer(), make_tracer()
        self._effect(lhs, "a", 1)
        self._effect(rhs, "a", 2)
        diff = diff_traces(lhs, rhs)
        from repro.telemetry import TraceDiff

        clone = TraceDiff.from_dict(diff.to_dict())
        assert clone.render() == diff.render()


class TestSampling:
    """Trace sampling drops whole packets only, so every sampled trace is
    a subsequence of the full trace from the same deterministic run."""

    def test_sample_every_must_be_positive(self):
        import pytest

        with pytest.raises(ValueError):
            make_tracer(sample_every=0)

    def test_sample_every_keeps_whole_packets(self):
        tracer = make_tracer(sample_every=2)
        for packet in range(4):
            tracer.begin_packet(packet)
            tracer.record("verdict", verdict="send")
            tracer.record("register_write", name="x", value=packet)
        tracer.flush()
        assert sorted({e.packet for e in tracer.events}) == [0, 2]
        # Both events of each sampled packet survive — never a partial cut.
        assert len(tracer.events) == 4

    def test_punted_only_drops_fast_path_packets(self):
        tracer = make_tracer(punted_only=True)
        tracer.begin_packet(0)
        tracer.record("register_read", name="x", value=1)
        tracer.record("verdict", verdict="send")  # fast path: no punt
        tracer.begin_packet(1)
        tracer.record("register_read", name="x", value=1)
        tracer.record("punt", reason="miss")
        tracer.record("verdict", verdict="send")
        tracer.flush()
        assert sorted({e.packet for e in tracer.events}) == [1]
        assert [e.seq for e in tracer.events] == [0, 1, 2]  # renumbered

    def test_punted_only_rollback_filters_pending_effects(self):
        tracer = make_tracer(punted_only=True)
        tracer.begin_packet(0)
        mark = tracer.mark()
        tracer.record("punt", reason="miss")
        tracer.record("register_write", name="x", value=1)
        tracer.record("register_read", name="x", value=1)
        tracer.rollback_effects(mark)
        tracer.flush()
        kinds = [e.kind for e in tracer.events]
        assert "register_write" not in kinds
        assert "punt" in kinds and "register_read" in kinds

    def test_to_dicts_flushes_pending(self):
        tracer = make_tracer(punted_only=True)
        tracer.begin_packet(0)
        tracer.record("punt", reason="miss")
        payloads = tracer.to_dicts()
        assert [p["kind"] for p in payloads] == ["punt"]


class TestSampledSubsequence:
    """End-to-end determinism: re-running the same seeded deployment with
    sampling on yields exactly the whole-packet subsequence of the full
    trace (identical events, times, and details — only seq renumbered)."""

    @staticmethod
    def _trace(**telemetry_kwargs):
        from repro.runtime.deployment import GalliumMiddlebox, compile_middlebox
        from repro.workloads.packets import make_tcp_packet
        from tests.conftest import get_bundle

        bundle = get_bundle("mazunat")
        plan, program = compile_middlebox(bundle.lowered)
        telemetry = Telemetry(tracing=True, **telemetry_kwargs)
        box = GalliumMiddlebox(
            plan, program, config=bundle.config, seed=7, telemetry=telemetry
        )
        box.install()
        # Three flows, two packets each: the first packet of a flow punts
        # (NAT miss), the second rides the fast path.
        for index in range(6):
            flow = index % 3
            packet = make_tcp_packet(
                f"192.168.1.{flow + 1}", "8.8.4.4", 1000 + flow, 80
            )
            box.process_packet(packet, 1)
        telemetry.tracer.flush()
        return telemetry.tracer.to_dicts()

    @staticmethod
    def _strip_seq(events):
        return [
            {key: value for key, value in event.items() if key != "seq"}
            for event in events
        ]

    def _assert_subsequence(self, sampled, full):
        iterator = iter(self._strip_seq(full))
        for event in self._strip_seq(sampled):
            for candidate in iterator:
                if candidate == event:
                    break
            else:
                raise AssertionError(
                    f"sampled event not found in order in full trace: {event}"
                )

    def test_sample_every_is_subsequence_of_full(self):
        full = self._trace()
        sampled = self._trace(sample_every=3)
        assert sampled  # non-vacuous
        assert len(sampled) < len(full)
        self._assert_subsequence(sampled, full)
        # And it is exactly the packets the predicate selects (events
        # outside any packet — install-time configure — are always kept).
        want = [e for e in self._strip_seq(full)
                if e["packet"] is None or e["packet"] % 3 == 0]
        assert self._strip_seq(sampled) == want

    def test_punted_only_is_subsequence_of_full(self):
        full = self._trace()
        sampled = self._trace(punted_only=True)
        assert sampled
        assert len(sampled) < len(full)
        self._assert_subsequence(sampled, full)
        # Each flow's first packet punts, the repeat rides the fast path:
        # exactly packets 0-2 survive the punted-only filter.
        punted = {e["packet"] for e in sampled if e["packet"] is not None}
        assert punted == {0, 1, 2}
