"""The seeded program generator: determinism, validity, coverage."""

from repro.difftest.generator import generate_program, generate_source
from repro.ir.lowering import lower_program
from repro.lang.parser import parse_program

SEEDS = range(40)


def test_deterministic():
    """Same seed, same program — failure reports reproduce from the seed."""
    for seed in (0, 1, 7, 1234, 10**9):
        assert generate_source(seed) == generate_source(seed)


def test_seeds_differ():
    sources = {generate_source(seed) for seed in SEEDS}
    assert len(sources) > len(SEEDS) // 2


def test_every_program_lowers():
    """Generated programs stay inside the parseable/lowerable subset."""
    for seed in SEEDS:
        source = generate_source(seed)
        lowered = lower_program(parse_program(source, f"gen{seed}.cc"))
        assert lowered.process.blocks


def test_seed_recorded():
    program = generate_program(42)
    assert program.seed == 42
    assert "seed=42" in program.source()


def test_coverage_over_seed_space():
    """The corners the gauntlet exists for actually appear in the space."""
    sources = [generate_source(seed) for seed in range(120)]
    blob = "\n".join(sources)
    assert "udp->" in blob  # UDP headers
    assert "tcp->" in blob  # TCP headers
    assert "->ttl" in blob or "->tos" in blob  # 8-bit fields
    assert ".insert(" in blob and ".erase(" in blob and ".find(" in blob
    assert "for (" in blob  # bounded loops
    assert "pkt->drop();" in blob and "pkt->send_to(" in blob
    assert "0xdeadbeef" in blob or "0x" in blob  # >16-bit constants
    assert any(s.count("if (") >= 3 for s in sources)  # nested conditionals
    # Resource-boundary programs: at least one long dependent ALU chain.
    assert any(s.count("acc") > 25 for s in sources)
