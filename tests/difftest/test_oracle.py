"""Oracle classification and stream determinism."""

from repro.difftest.oracle import Outcome, StreamSpec, run_oracle
from repro.partition.constraints import SwitchResources

AGREEING = """\
class Box {
  uint32_t total;

  void process(Packet *pkt) {
    iphdr *ip = pkt->network_header();
    total += ip->tot_len;
    ip->ttl = 9;
    pkt->send();
  }
};
"""


def test_agree():
    result = run_oracle(AGREEING, StreamSpec(seed=3, count=10))
    assert result.outcome is Outcome.AGREE
    assert result.packets_run == 10
    assert result.divergence is None


def test_crash_classification():
    """Unparseable source is a crash with the phase in the error."""
    result = run_oracle("class Box { not c++ }", StreamSpec(seed=0, count=1))
    assert result.outcome is Outcome.CRASH
    assert result.error and result.error.startswith("compile:")


def test_partition_rejected():
    """Impossible resource limits are a legitimate refusal, not a bug."""
    limits = SwitchResources(
        memory_bytes=0, pipeline_depth=1, metadata_bytes=0, transfer_bytes=0
    )
    result = run_oracle(AGREEING, StreamSpec(seed=0, count=1), limits=limits)
    assert result.outcome in (Outcome.PARTITION_REJECTED, Outcome.AGREE)


def test_stream_deterministic():
    spec = StreamSpec(seed=99, count=20)
    first = [
        (str(p.ip.saddr), str(p.ip.daddr), p.ip.ttl, ingress)
        for p, ingress in spec.build()
    ]
    second = [
        (str(p.ip.saddr), str(p.ip.daddr), p.ip.ttl, ingress)
        for p, ingress in spec.build()
    ]
    assert first == second


def test_stream_mixes_protocols_and_ports():
    packets = StreamSpec(seed=5, count=40).build()
    assert {ingress for _, ingress in packets} == {1, 2}
    protos = {p.ip.protocol for p, _ in packets}
    assert len(protos) == 2  # TCP and UDP


def test_stream_roundtrip():
    spec = StreamSpec(seed=7, count=3, udp_ratio=0.5)
    assert StreamSpec.from_dict(spec.to_dict()) == spec
