"""Oracle classification and stream determinism."""

from repro.difftest.oracle import Outcome, StreamSpec, run_oracle
from repro.partition.constraints import SwitchResources

AGREEING = """\
class Box {
  uint32_t total;

  void process(Packet *pkt) {
    iphdr *ip = pkt->network_header();
    total += ip->tot_len;
    ip->ttl = 9;
    pkt->send();
  }
};
"""


def test_agree():
    result = run_oracle(AGREEING, StreamSpec(seed=3, count=10))
    assert result.outcome is Outcome.AGREE
    assert result.packets_run == 10
    assert result.divergence is None


def test_crash_classification():
    """Unparseable source is a crash with the phase in the error."""
    result = run_oracle("class Box { not c++ }", StreamSpec(seed=0, count=1))
    assert result.outcome is Outcome.CRASH
    assert result.error and result.error.startswith("compile:")


def test_partition_rejected():
    """Impossible resource limits are a legitimate refusal, not a bug."""
    limits = SwitchResources(
        memory_bytes=0, pipeline_depth=1, metadata_bytes=0, transfer_bytes=0
    )
    result = run_oracle(AGREEING, StreamSpec(seed=0, count=1), limits=limits)
    assert result.outcome in (Outcome.PARTITION_REJECTED, Outcome.AGREE)


def test_stream_deterministic():
    spec = StreamSpec(seed=99, count=20)
    first = [
        (str(p.ip.saddr), str(p.ip.daddr), p.ip.ttl, ingress)
        for p, ingress in spec.build()
    ]
    second = [
        (str(p.ip.saddr), str(p.ip.daddr), p.ip.ttl, ingress)
        for p, ingress in spec.build()
    ]
    assert first == second


def test_stream_mixes_protocols_and_ports():
    packets = StreamSpec(seed=5, count=40).build()
    assert {ingress for _, ingress in packets} == {1, 2}
    protos = {p.ip.protocol for p, _ in packets}
    assert len(protos) == 2  # TCP and UDP


def test_stream_roundtrip():
    spec = StreamSpec(seed=7, count=3, udp_ratio=0.5)
    assert StreamSpec.from_dict(spec.to_dict()) == spec


STATEFUL = """\
class Box {
  // @gallium: max_entries=1024
  HashMap<uint32_t, uint32_t> seen;

  void process(Packet *pkt) {
    iphdr *ip = pkt->network_header();
    uint32_t key = ip->saddr;
    uint32_t *hit = seen.find(&key);
    if (hit == NULL) {
      uint32_t one = 1;
      seen.insert(&key, &one);
    }
    pkt->send();
  }
};
"""


def test_deployment_seed_threads_into_jitter():
    """One deployment-level seed fully determines control-plane jitter:
    same seed, same sync waits — no private-field poking required."""
    from repro.difftest.oracle import DEFAULT_PORT_PAIRS
    from repro.runtime.deployment import GalliumMiddlebox, compile_middlebox

    plan, program = compile_middlebox(STATEFUL)
    stream = StreamSpec(seed=3, count=8).build()

    def waits(seed):
        box = GalliumMiddlebox(
            plan, program, port_pairs=dict(DEFAULT_PORT_PAIRS), seed=seed
        )
        box.install()
        return tuple(
            box.process_packet(p.copy(), ingress).sync_wait_us
            for p, ingress in stream
        )

    assert waits(11) == waits(11)
    assert len({waits(seed) for seed in range(4)}) > 1


def test_run_oracle_accepts_deployment_seed():
    for seed in (0, 7, 123):
        result = run_oracle(
            STATEFUL, StreamSpec(seed=3, count=8), deployment_seed=seed
        )
        assert result.outcome is Outcome.AGREE


def test_shim_budget_refusal_is_rejected_not_crash():
    """Campaign-found harness bug: SwitchProgramError (the Constraint-5
    shim budget) is a deliberate compiler refusal and must classify as
    PARTITION_REJECTED, not CRASH."""
    result = run_oracle(
        STATEFUL, StreamSpec(seed=0, count=1),
        limits=SwitchResources(transfer_bytes=0),
    )
    assert result.outcome is Outcome.PARTITION_REJECTED
    assert "shim" in result.error
