"""Gauntlet driver: seed derivation, stats, report format, budgets."""

from repro.difftest.oracle import Outcome, OracleResult
from repro.difftest.runner import (
    Failure,
    GauntletStats,
    derive_seeds,
    run_gauntlet,
)
from repro.difftest.generator import generate_program
from repro.difftest.oracle import StreamSpec


def test_derive_seeds_decorrelated():
    seen = set()
    for master in range(3):
        for index in range(10):
            seen.add(derive_seeds(master, index))
    assert len(seen) == 30


def test_stats_record():
    stats = GauntletStats()
    stats.record(OracleResult(Outcome.AGREE, cached_checked=True))
    stats.record(OracleResult(Outcome.DIVERGE))
    stats.record(OracleResult(Outcome.CRASH))
    stats.record(OracleResult(Outcome.PARTITION_REJECTED))
    assert (stats.runs, stats.agree, stats.diverge, stats.crash,
            stats.partition_rejected, stats.cached_checked) == (4, 1, 1, 1, 1, 1)
    assert stats.failures == 2
    assert "4 programs" in stats.summary()


def test_failure_report_embeds_seed():
    program = generate_program(77)
    failure = Failure(
        index=0,
        program_seed=77,
        stream=StreamSpec(seed=5, count=3),
        program=program,
        result=OracleResult(Outcome.CRASH, error="boom"),
    )
    report = failure.report()
    assert "program seed : 77" in report
    assert "--seed-override 77" in report
    assert "boom" in report
    assert "class DiffTestBox" in report


def test_small_gauntlet_runs_clean():
    stats, failures = run_gauntlet(runs=5, seed=0, packets=5)
    assert stats.runs == 5
    assert not failures
    assert stats.failures == 0


def test_seed_override_pins_run_zero():
    stats, _ = run_gauntlet(runs=1, seed=123, packets=3, seed_override=77)
    assert stats.runs == 1


def test_time_budget_stops_early():
    stats, _ = run_gauntlet(runs=10**6, seed=0, packets=3, time_budget_s=0.0)
    assert stats.runs < 10**6
