"""The delta-debugging shrinker, driven by synthetic predicates.

Synthetic predicates (plain text checks on the rendered source) make
convergence deterministic and fast — no oracle runs — while exercising
every structural mutation the real gauntlet uses.
"""

import pytest

from repro.difftest.generator import (
    GenProgram,
    If,
    Let,
    MapSpec,
    ScalarUpdate,
    SetField,
    Verdict,
)
from repro.difftest.oracle import StreamSpec
from repro.difftest.shrink import shrink_case


def _program() -> GenProgram:
    return GenProgram(
        maps=[MapSpec("m0", 16, 32, 4096)],
        scalars=["ctr0", "ctr1"],
        use_tcp=True,
        use_udp=False,
        body=[
            Let("x0", 32, "(ip->saddr & 65535)"),
            SetField("ip", "ttl", "7"),
            If(
                cond="(x0 > 100)",
                then=[ScalarUpdate("ctr0", "+=", "1")],
                els=[SetField("ip", "tos", "3")],
            ),
            ScalarUpdate("ctr1", "^=", "255"),
            Verdict("send"),
        ],
    )


def test_converges_to_known_minimal():
    """Predicate 'contains ctr0 += 1' strips everything else away."""
    program, stream = shrink_case(
        _program(),
        StreamSpec(seed=1, count=25),
        lambda p, s: "ctr0 += 1" in p.source(),
    )
    source = program.source()
    assert "ctr0 += 1" in source
    # The If wrapper was unwrapped into its then-arm, the unrelated
    # statements dropped, the unused members removed.
    assert "if (" not in source
    assert len(program.body) == 1
    assert not program.maps
    assert program.scalars == ["ctr0"]
    assert stream.count == 1


def test_never_returns_failing_candidate():
    """The result always satisfies the predicate — even a flaky one."""
    calls = []

    def predicate(program, stream):
        calls.append(1)
        return "ip->ttl" in program.source()

    program, stream = shrink_case(
        _program(), StreamSpec(seed=1, count=25), predicate
    )
    assert calls
    assert predicate(program, stream)


def test_shrinks_literals():
    program, _ = shrink_case(
        _program(),
        StreamSpec(seed=1, count=2),
        lambda p, s: "&" in p.source(),
    )
    assert "65535" not in program.source()


def test_initial_non_failure_raises():
    with pytest.raises(ValueError):
        shrink_case(
            _program(),
            StreamSpec(seed=1, count=2),
            lambda p, s: "no such token" in p.source(),
        )


def test_predicate_exception_is_failure():
    """Invalid mutants raising inside the predicate are simply rejected."""

    def predicate(program, stream):
        if "ip->ttl" not in program.source():
            raise RuntimeError("mutant did not compile")
        return True

    program, _ = shrink_case(_program(), StreamSpec(seed=1, count=2), predicate)
    assert "ip->ttl" in program.source()


class TestTraceGuidedShrinking:
    """Trace-diff hints order candidates before blind bisection."""

    @staticmethod
    def _diff(packet=3, name="ctr0"):
        return {
            "divergent": True,
            "stream": f"state member '{name}'",
            "rhs_event": {
                "seq": 9, "time_us": 2.0, "component": "server",
                "kind": "register_write", "packet": packet,
                "detail": {"name": name},
            },
            "lhs_context": [
                {"seq": 8, "time_us": 1.9, "component": "server",
                 "kind": "register_read", "packet": packet,
                 "detail": {"name": name}},
            ],
        }

    def test_hints_extracted_from_diff(self):
        from repro.difftest.shrink import ShrinkHints

        hints = ShrinkHints.from_trace_diff(self._diff())
        assert hints.packet == 3
        assert hints.names == frozenset({"ctr0"})
        # Non-divergent and missing diffs degrade to empty hints.
        assert ShrinkHints.from_trace_diff(None) == ShrinkHints()
        assert ShrinkHints.from_trace_diff(
            {"divergent": False}
        ) == ShrinkHints()

    def test_guided_stream_cut_lands_after_divergent_packet(self):
        """With a packet hint the first truncation try is packet+1, so a
        divergence needing packets 0..3 settles at count=4 in one call
        instead of walking the blind 1/half/-1 ladder."""
        calls = []

        def predicate(program, stream):
            calls.append(stream.count)
            return stream.count >= 4

        _, stream = shrink_case(
            _program(), StreamSpec(seed=1, count=25), predicate,
            trace_diff=self._diff(packet=3),
        )
        assert stream.count == 4
        # First shrink attempt after the initial check was the guided cut.
        assert calls[1] == 4

    def test_unrelated_statements_dropped_first(self):
        from repro.difftest.shrink import ShrinkHints, _drop_one_statement

        program = _program()
        dropped_sources = []

        def reject_all(candidate, stream):
            dropped_sources.append(candidate.source())
            return False

        _drop_one_statement(
            program, StreamSpec(seed=1, count=2), reject_all,
            ShrinkHints(names=frozenset({"ctr0"})),
        )
        # The first candidate deletion kept every ctr0 mention intact —
        # i.e. the statement tried first does not touch ctr0.
        assert "ctr0 += 1" in dropped_sources[0]
        # The ctr0-touching statements were attempted last.
        assert "ctr0 += 1" not in dropped_sources[-1]
