"""The delta-debugging shrinker, driven by synthetic predicates.

Synthetic predicates (plain text checks on the rendered source) make
convergence deterministic and fast — no oracle runs — while exercising
every structural mutation the real gauntlet uses.
"""

import pytest

from repro.difftest.generator import (
    GenProgram,
    If,
    Let,
    MapSpec,
    ScalarUpdate,
    SetField,
    Verdict,
)
from repro.difftest.oracle import StreamSpec
from repro.difftest.shrink import shrink_case


def _program() -> GenProgram:
    return GenProgram(
        maps=[MapSpec("m0", 16, 32, 4096)],
        scalars=["ctr0", "ctr1"],
        use_tcp=True,
        use_udp=False,
        body=[
            Let("x0", 32, "(ip->saddr & 65535)"),
            SetField("ip", "ttl", "7"),
            If(
                cond="(x0 > 100)",
                then=[ScalarUpdate("ctr0", "+=", "1")],
                els=[SetField("ip", "tos", "3")],
            ),
            ScalarUpdate("ctr1", "^=", "255"),
            Verdict("send"),
        ],
    )


def test_converges_to_known_minimal():
    """Predicate 'contains ctr0 += 1' strips everything else away."""
    program, stream = shrink_case(
        _program(),
        StreamSpec(seed=1, count=25),
        lambda p, s: "ctr0 += 1" in p.source(),
    )
    source = program.source()
    assert "ctr0 += 1" in source
    # The If wrapper was unwrapped into its then-arm, the unrelated
    # statements dropped, the unused members removed.
    assert "if (" not in source
    assert len(program.body) == 1
    assert not program.maps
    assert program.scalars == ["ctr0"]
    assert stream.count == 1


def test_never_returns_failing_candidate():
    """The result always satisfies the predicate — even a flaky one."""
    calls = []

    def predicate(program, stream):
        calls.append(1)
        return "ip->ttl" in program.source()

    program, stream = shrink_case(
        _program(), StreamSpec(seed=1, count=25), predicate
    )
    assert calls
    assert predicate(program, stream)


def test_shrinks_literals():
    program, _ = shrink_case(
        _program(),
        StreamSpec(seed=1, count=2),
        lambda p, s: "&" in p.source(),
    )
    assert "65535" not in program.source()


def test_initial_non_failure_raises():
    with pytest.raises(ValueError):
        shrink_case(
            _program(),
            StreamSpec(seed=1, count=2),
            lambda p, s: "no such token" in p.source(),
        )


def test_predicate_exception_is_failure():
    """Invalid mutants raising inside the predicate are simply rejected."""

    def predicate(program, stream):
        if "ip->ttl" not in program.source():
            raise RuntimeError("mutant did not compile")
        return True

    program, _ = shrink_case(_program(), StreamSpec(seed=1, count=2), predicate)
    assert "ip->ttl" in program.source()
