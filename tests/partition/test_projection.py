"""Tests for CFG projection (paper Figure 4) and rematerialization."""

import pytest

from repro.analysis.reachability import compute_reachability
from repro.ir import instructions as irin
from repro.ir.interp import Interpreter, PacketView, StateStore
from repro.ir.validate import validate_function
from repro.partition.labels import Partition
from repro.partition.projection import NEEDS_SERVER
from tests.conftest import get_bundle, get_compiled


class TestProjectionStructure:
    def test_projections_validate(self, middlebox_name, compiled):
        # Projections read shim-seeded registers, so skip the def check.
        validate_function(compiled.plan.pre, check_defs=False)
        validate_function(compiled.plan.non_offloaded, check_defs=False)
        validate_function(compiled.plan.post, check_defs=False)

    def test_pre_contains_only_pre_instructions(self, middlebox_name, compiled):
        plan = compiled.plan
        for inst in plan.pre.instructions():
            partition = plan.assignment.get(inst.id)
            if partition is None:
                # Synthetic: needs-server flag, rematerialized loads, jumps.
                continue
            assert partition is Partition.PRE

    def test_switch_projections_loop_free(self, middlebox_name, compiled):
        for function in (compiled.plan.pre, compiled.plan.post):
            assert not compute_reachability(function).cyclic_blocks

    def test_pre_has_needs_server_flag(self, middlebox_name, compiled):
        names = set()
        for inst in compiled.plan.pre.instructions():
            result = inst.result()
            if result is not None:
                names.add(result.name)
        assert NEEDS_SERVER in names

    def test_no_server_only_ops_in_switch_projections(
        self, middlebox_name, compiled
    ):
        forbidden = (
            irin.MapInsert, irin.MapErase, irin.StoreState,
            irin.VectorLen, irin.VectorPush, irin.ExternCall,
        )
        for function in (compiled.plan.pre, compiled.plan.post):
            for inst in function.instructions():
                assert not isinstance(inst, forbidden), (
                    f"{middlebox_name}: {inst!r} in {function.name}"
                )


class TestRematerializationP4Gating:
    def test_non_p4_slice_never_rematerialized_into_post(self):
        """Rematerializing a pure slice into a switch partition must skip
        non-P4-expressible ops (multiply/divide/modulo).

        Regression (difftest corpus ``remat_nonp4_into_post``): the
        shim-shrinking pass cloned a pure ``%`` computation into the post
        pipeline and P4 code generation crashed.
        """
        from repro.ir import lower_program
        from repro.lang import parse_program
        from repro.runtime.deployment import compile_middlebox

        source = (
            "class T { void process(Packet *pkt) {"
            " iphdr *ip = pkt->network_header();"
            " udphdr *udp = pkt->udp_header();"
            " uint8_t x = ((udp->dport + 0) % 0);"
            " pkt->send_to(0); } };"
        )
        plan, _ = compile_middlebox(lower_program(parse_program(source)))
        for function in (plan.pre, plan.post):
            for inst in function.instructions():
                assert inst.p4_supported(), f"{inst!r} in {function.name}"


class TestMiniLBFigure4:
    """Projected CFGs match the paper's Figure 4 structure."""

    @pytest.fixture(scope="class")
    def plan(self):
        return get_compiled("minilb").plan

    def test_pre_has_find_branch_rewrite_send(self, plan):
        kinds = [type(i).__name__ for i in plan.pre.instructions()]
        assert "MapFind" in kinds
        assert "Branch" in kinds
        assert "StorePacketField" in kinds
        assert "Send" in kinds

    def test_non_offloaded_has_modulo_vector_insert(self, plan):
        kinds = [type(i).__name__ for i in plan.non_offloaded.instructions()]
        assert "VectorLen" in kinds
        assert "VectorGet" in kinds
        assert "MapInsert" in kinds
        assert "Send" not in kinds

    def test_post_has_rewrite_and_send(self, plan):
        kinds = [type(i).__name__ for i in plan.post.instructions()]
        assert "StorePacketField" in kinds
        assert "Send" in kinds
        assert "MapFind" not in kinds

    def test_branch_replicated_in_all_three(self, plan):
        for function in (plan.pre, plan.non_offloaded, plan.post):
            assert any(
                isinstance(i, irin.Branch) for i in function.instructions()
            ), function.name


class TestProjectionExecution:
    def test_pre_fast_path_sets_no_flag(self):
        """A hit-path execution of the pre projection ends with a verdict."""
        from repro.net.addresses import ip
        from repro.net.headers import EthernetHeader, Ipv4Header, TcpHeader
        from repro.net.packet import RawPacket

        plan = get_compiled("minilb").plan
        state = StateStore(plan.middlebox.state)
        # Seed the connection map so the lookup hits.
        hash32 = int(ip("9.9.9.9")) ^ int(ip("10.0.0.100"))
        state.maps["map"][(hash32 & 0xFFFF,)] = int(ip("10.0.1.1"))
        packet = RawPacket.make_tcp(
            EthernetHeader(),
            Ipv4Header(saddr=ip("9.9.9.9"), daddr=ip("10.0.0.100")),
            TcpHeader(sport=1, dport=80),
        )
        result = Interpreter(plan.pre, state).run(PacketView(packet))
        assert result.verdict == "send"
        assert str(packet.ip.daddr) == "10.0.1.1"

    def test_pre_miss_path_sets_flag(self):
        from repro.net.addresses import ip
        from repro.net.headers import EthernetHeader, Ipv4Header, TcpHeader
        from repro.net.packet import RawPacket

        plan = get_compiled("minilb").plan
        state = StateStore(plan.middlebox.state)
        packet = RawPacket.make_tcp(
            EthernetHeader(),
            Ipv4Header(saddr=ip("9.9.9.9"), daddr=ip("10.0.0.100")),
            TcpHeader(sport=1, dport=80),
        )
        result = Interpreter(plan.pre, state).run(PacketView(packet))
        assert result.verdict is None
        assert result.env.get(NEEDS_SERVER) == 1


class TestRematerialization:
    def test_trojan_five_tuple_not_in_shim(self):
        """Header loads are recomputed server-side, not shipped (§4.3.2)."""
        plan = get_compiled("trojan").plan
        names = set(plan.to_server.names())
        assert not any(name.startswith("src_ip") for name in names)
        assert not any(name.startswith("dst_ip") for name in names)

    def test_minilb_hash_in_shim(self):
        """MiniLB rewrites the IP header, so its loads cannot remat and
        hash32 travels in the shim — exactly the paper's Figure 5."""
        plan = get_compiled("minilb").plan
        assert any(
            name.startswith("hash32") for name in plan.to_server.names()
        )

    def test_remat_loads_present_in_consumer(self):
        plan = get_compiled("trojan").plan
        loads = [
            i for i in plan.non_offloaded.instructions()
            if isinstance(i, irin.LoadPacketField) and i.field == "saddr"
        ]
        assert loads


class TestTransferSpecs:
    def test_minilb_shim_matches_figure5(self):
        plan = get_compiled("minilb").plan
        to_server = set(plan.to_server.names())
        # Figure 5a: the bk_addr==NULL bit and hash32 (plus the map key).
        assert any(n.startswith("found") for n in to_server)
        assert any(n.startswith("hash32") for n in to_server)
        to_switch = set(plan.to_switch.names())
        # Figure 5b: the bit and backends[idx].
        assert any(n.startswith("found") for n in to_switch)
        assert any(n.startswith("bk_addr2") for n in to_switch)

    def test_transfer_bytes_match_reg_widths(self, middlebox_name, compiled):
        plan = compiled.plan
        for spec in (plan.to_server, plan.to_switch):
            total = sum(
                max(1, (r.type.bit_width() + 7) // 8) for r in spec.regs
            )
            assert spec.byte_size() == total
