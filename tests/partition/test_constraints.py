"""Tests for the resource-constraint model."""

import pytest

from repro.partition.constraints import ConstraintReport, SwitchResources


class TestSwitchResources:
    def test_tofino_like_defaults(self):
        limits = SwitchResources.tofino_like()
        assert limits.memory_bytes == 16 * 1024 * 1024
        assert 10 <= limits.pipeline_depth <= 20
        assert limits.metadata_bytes < 200  # "less than a few hundred bytes"
        assert limits.transfer_bytes == 20  # paper's constraint-5 budget

    def test_tiny_is_strictly_smaller(self):
        tiny = SwitchResources.tiny()
        full = SwitchResources.tofino_like()
        assert tiny.memory_bytes < full.memory_bytes
        assert tiny.pipeline_depth < full.pipeline_depth
        assert tiny.metadata_bytes < full.metadata_bytes
        assert tiny.transfer_bytes < full.transfer_bytes

    def test_frozen(self):
        with pytest.raises(Exception):
            SwitchResources().memory_bytes = 1


class TestConstraintReport:
    def test_clean_report_satisfied(self):
        report = ConstraintReport(
            memory_bytes=100, pipeline_depth_pre=3, pipeline_depth_post=2,
            metadata_bytes_pre=10, metadata_bytes_post=5,
            transfer_bytes_to_server=8, transfer_bytes_to_switch=4,
            state_access_sites={"m": 1},
        )
        assert report.satisfied(SwitchResources())
        assert report.violations(SwitchResources()) == []

    def test_each_constraint_reported(self):
        limits = SwitchResources(
            memory_bytes=10, pipeline_depth=2, metadata_bytes=4,
            transfer_bytes=2,
        )
        report = ConstraintReport(
            memory_bytes=100,
            pipeline_depth_pre=5,
            metadata_bytes_pre=9,
            transfer_bytes_to_server=7,
            state_access_sites={"m": 3},
        )
        violations = "\n".join(report.violations(limits))
        for marker in ("constraint 1", "constraint 2", "constraint 3",
                       "constraint 4", "constraint 5"):
            assert marker in violations

    def test_post_depth_checked_too(self):
        limits = SwitchResources(pipeline_depth=3)
        report = ConstraintReport(pipeline_depth_post=9)
        assert any(
            "constraint 2" in v for v in report.violations(limits)
        )

    def test_single_access_site_not_a_violation(self):
        report = ConstraintReport(state_access_sites={"a": 1, "b": 1})
        assert report.satisfied(SwitchResources())
