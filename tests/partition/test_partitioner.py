"""Tests for the partitioning driver and resource constraints (§4.2.2)."""

import pytest

from repro.ir import instructions as irin
from repro.ir import lower_program
from repro.lang import parse_program
from repro.partition import (
    Partition,
    SwitchResources,
    partition_middlebox,
)
from tests.conftest import get_bundle, get_compiled


def lower(statements: str, members: str = ""):
    source = (
        f"class T {{ {members} void process(Packet *pkt) {{ {statements} }} }};"
    )
    return lower_program(parse_program(source))


class TestConstraint1Memory:
    def test_unannotated_map_stays_on_server(self):
        lowered = lower(
            "uint16_t k = 1;"
            " if (t.contains(&k)) { pkt->send(); } else { pkt->drop(); }",
            members="HashMap<uint16_t, uint32_t> t;",  # no max_entries
        )
        plan = partition_middlebox(lowered)
        assert plan.placements["t"].on_switch is False

    def test_annotated_map_fits(self):
        lowered = lower(
            "uint16_t k = 1;"
            " if (t.contains(&k)) { pkt->send(); } else { pkt->drop(); }",
            members="// @gallium: max_entries=1024\n"
                    "HashMap<uint16_t, uint32_t> t;",
        )
        plan = partition_middlebox(lowered)
        assert plan.placements["t"].on_switch
        assert plan.report.memory_bytes == 1024 * 6  # 2B key + 4B value

    def test_memory_pressure_evicts(self):
        lowered = lower(
            "uint16_t k = 1;"
            " if (t.contains(&k)) { pkt->send(); } else { pkt->drop(); }",
            members="// @gallium: max_entries=65536\n"
                    "HashMap<uint16_t, uint32_t> t;",
        )
        tiny = SwitchResources(memory_bytes=1000)
        plan = partition_middlebox(lowered, tiny)
        assert not plan.placements["t"].on_switch
        assert plan.report.memory_bytes <= 1000

    def test_memory_accounting_in_report(self, middlebox_name):
        plan = get_compiled(middlebox_name).plan
        assert plan.report.memory_bytes <= plan.limits.memory_bytes


class TestConstraint2Depth:
    def test_deep_chain_truncated(self):
        # A long dependent ALU chain exceeds a 4-stage pipeline.
        chain = "uint32_t a = 1;" + "".join(
            f" a = a + {i};" for i in range(2, 12)
        )
        lowered = lower(
            chain + " iphdr *ip = pkt->network_header();"
            " ip->ttl = (uint8_t)(a & 0xFF); pkt->send();"
        )
        limits = SwitchResources(pipeline_depth=4)
        plan = partition_middlebox(lowered, limits)
        assert plan.report.pipeline_depth_pre <= 4
        assert plan.counts()["non_off"] > 0

    def test_default_depth_fits_all_middleboxes(self, middlebox_name):
        plan = get_compiled(middlebox_name).plan
        assert plan.report.pipeline_depth_pre <= plan.limits.pipeline_depth
        assert plan.report.pipeline_depth_post <= plan.limits.pipeline_depth


class TestConstraint3SingleAccess:
    def test_sequential_accesses_keep_one(self):
        """Two dependent lookups of the same map: only one offloads."""
        lowered = lower(
            "uint16_t k = 1; uint32_t *a = t.find(&k);"
            " uint16_t k2 = 2; uint32_t *b = t.find(&k2);"
            " if (a != NULL && b != NULL) { pkt->send(); } else { pkt->drop(); }",
            members="// @gallium: max_entries=64\n"
                    "HashMap<uint16_t, uint32_t> t;",
        )
        plan = partition_middlebox(lowered)
        finds = [
            i for i in lowered.process.instructions()
            if isinstance(i, irin.MapFind)
        ]
        offloaded = [
            f for f in finds
            if plan.assignment[f.id] is not Partition.NON_OFF
        ]
        assert len(offloaded) <= 1

    def test_exclusive_branch_register_reads_both_offload(self):
        """Scalar (register) reads on mutually exclusive paths both stay on
        the switch — a register extern can appear in several branches."""
        lowered = lower(
            "uint8_t d = pkt->ingress_port();"
            " iphdr *ip = pkt->network_header();"
            " if (d == 1) { ip->daddr = target; pkt->send(); }"
            " else { ip->saddr = target; pkt->send(); }",
            members="uint32_t target;",
        )
        plan = partition_middlebox(lowered)
        loads = [
            i for i in lowered.process.instructions()
            if isinstance(i, irin.LoadState)
        ]
        assert len(loads) == 2
        assert all(plan.assignment[l.id] is Partition.PRE for l in loads)

    def test_exclusive_branch_table_accesses_keep_one(self):
        """Tables follow the strict paper rule: one application per
        pipeline, even across exclusive branches (Tofino restriction)."""
        lowered = lower(
            "uint8_t d = pkt->ingress_port();"
            " if (d == 1) {"
            "   uint16_t k = 1;"
            "   if (t.contains(&k)) { pkt->send(); } else { pkt->drop(); }"
            " } else {"
            "   uint16_t k2 = 2;"
            "   if (t.contains(&k2)) { pkt->send(); } else { pkt->drop(); }"
            " }",
            members="// @gallium: max_entries=64\n"
                    "HashMap<uint16_t, uint32_t> t;",
        )
        plan = partition_middlebox(lowered)
        finds = [
            i for i in lowered.process.instructions()
            if isinstance(i, irin.MapFind)
        ]
        offloaded = [
            f for f in finds
            if plan.assignment[f.id] is not Partition.NON_OFF
        ]
        assert len(offloaded) == 1

    def test_report_counts_per_traversal_sites(self, middlebox_name):
        plan = get_compiled(middlebox_name).plan
        assert all(v <= 1 for v in plan.report.state_access_sites.values())


class TestConstraints45Budgets:
    def test_transfer_budget_enforced(self, middlebox_name):
        plan = get_compiled(middlebox_name).plan
        assert plan.to_server.byte_size() <= plan.limits.transfer_bytes
        assert plan.to_switch.byte_size() <= plan.limits.transfer_bytes

    def test_metadata_budget_enforced(self, middlebox_name):
        plan = get_compiled(middlebox_name).plan
        assert plan.report.metadata_bytes_pre <= plan.limits.metadata_bytes
        assert plan.report.metadata_bytes_post <= plan.limits.metadata_bytes

    def test_starved_switch_still_partitions(self):
        """With tiny budgets everything legally collapses to the server."""
        bundle = get_bundle("minilb")
        limits = SwitchResources(
            memory_bytes=256, pipeline_depth=3, metadata_bytes=4,
            transfer_bytes=2,
        )
        plan = partition_middlebox(bundle.lowered, limits)
        assert plan.report.satisfied(limits)

    def test_tighter_budget_offloads_less(self):
        bundle = get_bundle("lb")
        generous = partition_middlebox(bundle.lowered, SwitchResources())
        tight = partition_middlebox(
            bundle.lowered, SwitchResources(transfer_bytes=6)
        )
        assert tight.counts()["pre"] <= generous.counts()["pre"]
        assert tight.to_server.byte_size() <= 6


class TestPlacements:
    def test_write_locality_pins_offloaded_writers(self):
        """State written on the switch must not also be accessed on the
        server: replication is one-directional (journal -> switch), so a
        switch-side register write would leave the server's copy stale.

        Regression (difftest corpus ``stranded_offloaded_register_write``):
        with two RMWs on one scalar, single-access kept one on the switch
        and the server then updated a stale value.
        """
        lowered = lower(
            "ctr0 += 1; ctr0 -= 0; pkt->send();",
            members="uint32_t ctr0;",
        )
        plan = partition_middlebox(lowered)
        assert plan.placements["ctr0"].kind.value != "switch_register"
        rmws = [
            i for i in lowered.process.instructions()
            if isinstance(i, irin.RegisterRMW)
        ]
        assert len(rmws) == 2
        assert all(plan.assignment[r.id] is Partition.NON_OFF for r in rmws)

    def test_sole_register_writer_still_offloads(self):
        """The write-locality rule must not cost us the common case."""
        lowered = lower(
            "ctr0 += 1; pkt->send();",
            members="uint32_t ctr0;",
        )
        plan = partition_middlebox(lowered)
        assert plan.placements["ctr0"].kind.value == "switch_register"

    def test_minilb_placements(self):
        plan = get_compiled("minilb").plan
        assert plan.placements["map"].kind.value == "replicated_table"
        assert plan.placements["backends"].kind.value == "server_only"

    def test_mazunat_counter_is_switch_register(self):
        plan = get_compiled("mazunat").plan
        assert plan.placements["port_counter"].kind.value == "switch_register"
        assert plan.placements["nat_out"].kind.value == "replicated_table"

    def test_firewall_tables_not_replicated(self):
        plan = get_compiled("firewall").plan
        assert plan.placements["wl_out"].kind.value == "switch_table"
        assert plan.placements["wl_in"].kind.value == "switch_table"

    def test_trojan_flow_table_on_switch(self):
        plan = get_compiled("trojan").plan
        assert plan.placements["flows"].on_switch
        assert plan.placements["host_state"].on_switch

    def test_fully_offloaded_middleboxes_have_empty_server_partition(self):
        for name in ("firewall", "proxy"):
            plan = get_compiled(name).plan
            assert plan.counts()["non_off"] == 0
            assert plan.to_server.byte_size() == 0

    def test_summary_mentions_counts(self, middlebox_name):
        summary = get_compiled(middlebox_name).plan.summary()
        assert "pre=" in summary and "non_off=" in summary
