"""Tests for the label-removing algorithm (paper §4.2.1)."""

import pytest

from repro.analysis.depgraph import build_dependency_graph
from repro.ir import instructions as irin
from repro.ir import lower_program
from repro.lang import parse_program
from repro.partition.labels import (
    Label,
    Partition,
    initial_labels,
    run_label_removal,
)
from tests.conftest import get_bundle


def lower(statements: str, members: str = ""):
    source = (
        f"class T {{ {members} void process(Packet *pkt) {{ {statements} }} }};"
    )
    return lower_program(parse_program(source))


def labels_for(lowered, predicate):
    graph = build_dependency_graph(lowered.process)
    assignment = run_label_removal(graph)
    inst = next(i for i in graph.instructions if predicate(i))
    return assignment.labels[inst.id], assignment, inst


class TestInitialLabels:
    def test_p4_supported_gets_all_labels(self):
        lowered = lower("uint32_t a = 1 + 2; pkt->send();")
        graph = build_dependency_graph(lowered.process)
        labels = initial_labels(graph)
        add = next(
            i for i in graph.instructions if isinstance(i, irin.BinOp)
        )
        assert labels[add.id] == {Label.PRE, Label.POST, Label.NON_OFF}

    def test_unsupported_op_non_off_only(self):
        lowered = lower("uint32_t a = 7 % 3; pkt->send();")
        graph = build_dependency_graph(lowered.process)
        labels = initial_labels(graph)
        mod = next(
            i for i in graph.instructions
            if isinstance(i, irin.BinOp) and i.op is irin.BinOpKind.MOD
        )
        assert labels[mod.id] == {Label.NON_OFF}

    def test_map_insert_non_off_only(self):
        lowered = lower(
            "uint16_t k = 1; uint32_t v = 2; t.insert(&k, &v); pkt->send();",
            members="HashMap<uint16_t, uint32_t> t;",
        )
        graph = build_dependency_graph(lowered.process)
        labels = initial_labels(graph)
        insert = next(
            i for i in graph.instructions if isinstance(i, irin.MapInsert)
        )
        assert labels[insert.id] == {Label.NON_OFF}

    def test_removed_pins_apply(self):
        lowered = lower("uint32_t a = 1 + 2; pkt->send();")
        graph = build_dependency_graph(lowered.process)
        add = next(i for i in graph.instructions if isinstance(i, irin.BinOp))
        labels = initial_labels(graph, {add.id: {Label.PRE, Label.POST}})
        assert labels[add.id] == {Label.NON_OFF}


class TestRules:
    def test_rule2_pre_removal_propagates_downstream(self):
        """A value computed from a non-offloadable op cannot be pre."""
        lowered = lower(
            "uint32_t a = 7 % 3; uint32_t b = a + 1;"
            " iphdr *ip = pkt->network_header(); ip->ttl = (uint8_t)b;"
            " pkt->send();"
        )
        label_set, _, _ = labels_for(
            lowered,
            lambda i: isinstance(i, irin.BinOp)
            and i.op is irin.BinOpKind.ADD,
        )
        assert Label.PRE not in label_set

    def test_rule1_post_removal_propagates_upstream(self):
        """Upstream of a server-only statement loses post."""
        lowered = lower(
            "uint16_t k = 1; uint32_t v = k + 1; t.insert(&k, &v);"
            " pkt->send();",
            members="HashMap<uint16_t, uint32_t> t;",
        )
        label_set, _, _ = labels_for(
            lowered,
            lambda i: isinstance(i, irin.BinOp)
            and i.op is irin.BinOpKind.ADD,
        )
        assert Label.POST not in label_set

    def test_rule5_loops_non_off(self):
        lowered = lower(
            "uint32_t acc = 0;"
            " for (uint32_t i = 0; i < 3; i += 1) { acc += 1; }"
            " pkt->send();"
        )
        graph = build_dependency_graph(lowered.process)
        assignment = run_label_removal(graph)
        loop_add = next(
            i for i in graph.instructions
            if isinstance(i, irin.RegisterRMW) or (
                isinstance(i, irin.BinOp) and i.op is irin.BinOpKind.ADD
                and graph.self_dependent(i)
            )
        )
        assert assignment.labels[loop_add.id] == {Label.NON_OFF}

    def test_verdict_after_insert_not_pre(self):
        """Output-commit edges keep state-installing paths off the fast path."""
        lowered = lower(
            "uint16_t k = 1; uint32_t v = 2; t.insert(&k, &v); pkt->send();",
            members="HashMap<uint16_t, uint32_t> t;",
        )
        label_set, _, _ = labels_for(lowered, lambda i: isinstance(i, irin.Send))
        assert Label.PRE not in label_set
        assert Label.POST in label_set  # released by the post partition

    def test_pure_filter_drop_stays_pre(self):
        lowered = lower(
            "uint16_t k = 1;"
            " if (t.contains(&k)) { pkt->send(); } else { pkt->drop(); }",
            members="HashMap<uint16_t, uint32_t> t;",
        )
        label_set, _, _ = labels_for(lowered, lambda i: isinstance(i, irin.Drop))
        assert Label.PRE in label_set


class TestPartitionAssignment:
    def test_pre_wins_over_post(self):
        lowered = lower("uint32_t a = 1 + 1; pkt->send();")
        graph = build_dependency_graph(lowered.process)
        assignment = run_label_removal(graph)
        add = next(i for i in graph.instructions if isinstance(i, irin.BinOp))
        assert assignment.partition_of(add) is Partition.PRE

    def test_partition_order_respected_along_edges(self, middlebox_name, bundle):
        """For every dependency edge, partition(src) <= partition(dst)."""
        graph = build_dependency_graph(bundle.lowered.process)
        assignment = run_label_removal(graph)
        for (src_id, dst_id) in graph.edges:
            src = graph.by_id(src_id)
            dst = graph.by_id(dst_id)
            assert (
                assignment.partition_of(src).value
                <= assignment.partition_of(dst).value
            ), f"{middlebox_name}: edge {src!r} -> {dst!r} violates order"

    def test_offloaded_count(self):
        lowered = lower("uint32_t a = 1 + 1; pkt->send();")
        graph = build_dependency_graph(lowered.process)
        assignment = run_label_removal(graph)
        assert assignment.offloaded_count() == len(graph.instructions)


class TestMiniLBFigure4Labels:
    """The MiniLB partitioning must match the paper's Figure 4."""

    @pytest.fixture(scope="class")
    def assignment(self):
        lowered = get_bundle("minilb").lowered
        graph = build_dependency_graph(lowered.process)
        return run_label_removal(graph)

    def _partition(self, assignment, predicate):
        inst = next(
            i for i in assignment.graph.instructions if predicate(i)
        )
        return assignment.partition_of(inst)

    def test_find_is_pre(self, assignment):
        assert self._partition(
            assignment, lambda i: isinstance(i, irin.MapFind)
        ) is Partition.PRE

    def test_insert_is_non_off(self, assignment):
        assert self._partition(
            assignment, lambda i: isinstance(i, irin.MapInsert)
        ) is Partition.NON_OFF

    def test_modulo_is_non_off(self, assignment):
        assert self._partition(
            assignment,
            lambda i: isinstance(i, irin.BinOp)
            and i.op is irin.BinOpKind.MOD,
        ) is Partition.NON_OFF

    def test_backend_lookup_is_non_off(self, assignment):
        assert self._partition(
            assignment, lambda i: isinstance(i, irin.VectorGet)
        ) is Partition.NON_OFF

    def test_hit_path_send_is_pre_and_miss_send_is_post(self, assignment):
        sends = [
            i for i in assignment.graph.instructions
            if isinstance(i, irin.Send)
        ]
        partitions = sorted(
            assignment.partition_of(send).name for send in sends
        )
        assert partitions == ["POST", "PRE"]

    def test_miss_daddr_rewrite_is_post(self, assignment):
        stores = [
            i for i in assignment.graph.instructions
            if isinstance(i, irin.StorePacketField) and i.field == "daddr"
        ]
        partitions = sorted(
            assignment.partition_of(store).name for store in stores
        )
        assert partitions == ["POST", "PRE"]

    def test_branch_is_pre(self, assignment):
        assert self._partition(
            assignment, lambda i: isinstance(i, irin.Branch)
        ) is Partition.PRE
