"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``compile <name|file.cc>``
    Run the Gallium pipeline; print the partition summary and write the
    ``.p4`` / ``_server.cc`` artifacts.  ``--no-verify`` skips the static
    verification layer.
``verify <name|file.cc|all> [--json] [--cached]``
    Run the three-stage static verifier (IR well-formedness, partition
    invariants, P4 resource lint) and print human-readable or JSON
    diagnostics without writing artifacts.
``partition <name|file.cc>``
    Print the three projected partition CFGs (paper Figure 4).
``experiments [table1|table2|table3|fig7|fig8|fig9|all]``
    Regenerate the paper's tables/figures.
``list``
    List the bundled middleboxes.
``difftest --runs N --seed S [--shrink] [--compiled]``
    Differential-testing gauntlet: generate random middleboxes and compare
    the FastClick baseline against the Gallium (and cached) deployments.
    ``--compiled`` instead runs every generated program through both the
    IR interpreter and the compiled fast-path engine, demanding
    byte-identical verdicts, environments, journals, and metrics.
``perf [--middlebox M] [--packets N] [--out BENCH_6.json]``
    Time the interpreter vs. the compiled engine across the bare-engine,
    FastClick-baseline, and Gallium deployments on a fixed-seed workload;
    write and schema-check the BENCH payload.
``trace <middlebox> [--deployment D] [--packets N] [--deep] [--json]``
    Drive a traffic stream through one deployment with per-packet tracing
    enabled and print the event trace (or the schema-checked JSON payload).
``metrics <middlebox> [--deployment D] [--packets N] [--json]``
    Same drive with tracing off; print the metrics-registry snapshot.
``obs <middlebox> [--deployment D] [--packets N] [--window-us W]
[--sample-every K] [--json]``
    Time-resolved observability: the same drive with windowed time
    series (fixed ``W``-microsecond windows on the simulated clock),
    in-band per-hop telemetry stamped onto every ``K``-th packet and
    aggregated into per-flow reports, and — on the failover deployment —
    the φ-accrual health monitor's heartbeat/detection summary.  JSON
    output is byte-deterministic and schema-checked (``obs`` schema).
``faults --runs N --seed S [--summary-json PATH]``
    Fault-injection campaign: replay generated middleboxes under random
    fault schedules and verify, via the fault-aware oracle, that the
    deployment converges back to equivalence or degrades exactly per its
    declared policy — never diverging silently.  ``--summary-json``
    additionally writes a cross-scenario rollup (promotion-window length
    distributions, rollback rates by fault kind).
``tenancy [tenant ...] [--packets N] [--admit-only] [--json]``
    Multi-tenant switch: admit the named middleboxes (default: minilb,
    mazunat, lb) under one shared resource budget, lint the combined
    artifact against constraints 1–5, run them together on one pipeline
    with a shared control-plane RPC channel, and prove per-tenant
    isolation byte-exactly against solo deployments.  Exits non-zero on
    a rejected tenant or an isolation violation.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.compiler import compile_source
from repro.eval import render_table
from repro.eval.experiments import (
    EVAL_MIDDLEBOXES,
    failover_recovery,
    fault_recovery,
    figure7_throughput,
    figure8_workloads,
    figure9_fct,
    pool_recovery,
    table1_loc,
    table2_latency,
    table3_state_sync,
    tenancy_sweep,
)
from repro.ir.printer import format_function
from repro.middleboxes import MIDDLEBOX_NAMES, load_source


def _read_source(target: str) -> tuple:
    if target in MIDDLEBOX_NAMES:
        return load_source(target), f"{target}.cc", target
    path = Path(target)
    if not path.exists():
        raise SystemExit(
            f"error: {target!r} is neither a bundled middlebox"
            f" ({', '.join(MIDDLEBOX_NAMES)}) nor a file"
        )
    return path.read_text(), path.name, path.stem


def cmd_compile(args) -> int:
    source, filename, stem = _read_source(args.target)
    result = compile_source(source, filename=filename,
                            verify=not args.no_verify)
    print(result.plan.summary())
    print(f"input {result.input_loc()} LoC -> P4 {result.p4_loc()} LoC"
          f" + C++ {result.cpp_loc()} LoC")
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    p4_path = out_dir / f"{stem}.p4"
    cpp_path = out_dir / f"{stem}_server.cc"
    p4_path.write_text(result.p4_source)
    cpp_path.write_text(result.cpp_source)
    print(f"wrote {p4_path}")
    print(f"wrote {cpp_path}")
    return 0


def cmd_partition(args) -> int:
    source, filename, _ = _read_source(args.target)
    result = compile_source(source, filename=filename)
    plan = result.plan
    for title, function in (
        ("pre-processing (switch)", plan.pre),
        ("non-offloaded (server)", plan.non_offloaded),
        ("post-processing (switch)", plan.post),
    ):
        print(f"=== {title} ===")
        print(format_function(function))
        print()
    print("shim to server :", plan.to_server.names(),
          f"({plan.to_server.byte_size()} bytes)")
    print("shim to switch :", plan.to_switch.names(),
          f"({plan.to_switch.byte_size()} bytes)")
    return 0


def cmd_verify(args) -> int:
    import json

    from repro.verify import verify_compilation

    if args.target == "all":
        targets = list(MIDDLEBOX_NAMES)
    else:
        targets = [args.target]
    payloads = []
    failed = False
    for target in targets:
        source, filename, _ = _read_source(target)
        result = compile_source(source, filename=filename, verify=False)
        report = verify_compilation(result, cache_mode=args.cached)
        payload = report.to_dict()
        failed = failed or not report.ok
        if not args.json:
            print(report.format())
        if args.symbolic:
            from repro.middleboxes.registry import load
            from repro.telemetry.schema import check
            from repro.verify.symbolic import verify_symbolic

            config = (load(target).config
                      if target in MIDDLEBOX_NAMES else None)
            sym = verify_symbolic(
                result.plan, result.switch_program,
                source=source, config=config,
            )
            sym_dict = sym.to_dict()
            check(sym_dict, "symbolic", f"verify --symbolic ({target})")
            payload["symbolic"] = sym_dict
            failed = failed or not sym.proved
            if not args.json:
                verdict = "PROVED" if sym.proved else "NOT PROVED"
                print(
                    f"{sym.program}: translation validation {verdict}"
                    f" ({sym.scenarios} scenarios, {sym.worlds} worlds,"
                    f" {sym.elapsed_s:.2f}s)"
                )
                for diagnostic in sym.diagnostics:
                    print(diagnostic.format())
                for counterexample in sym.counterexamples:
                    print(
                        f"  counterexample ({counterexample.code}):"
                        f" {counterexample.replay_detail}"
                        + (f" -> {counterexample.corpus_path}"
                           if counterexample.corpus_path else "")
                    )
        payloads.append(payload)
    if args.json:
        print(json.dumps(payloads[0] if args.target != "all" else payloads,
                         indent=2))
    return 1 if failed else 0


def cmd_experiments(args) -> int:
    which = args.which
    if which in ("table1", "all"):
        print("Table 1 — lines of code")
        print(render_table(*table1_loc()))
        print()
    if which in ("table2", "all"):
        print("Table 2 — latency (µs)")
        print(render_table(*table2_latency(samples=100)))
        print()
    if which in ("table3", "all"):
        print("Table 3 — state sync latency (µs)")
        print(render_table(*table3_state_sync(trials=100)))
        print()
    if which in ("fig7", "all"):
        for name in EVAL_MIDDLEBOXES:
            print(f"Figure 7 — {name} throughput (Gbps)")
            print(render_table(*figure7_throughput(name)))
            print()
    if which in ("fig8", "all"):
        for name in EVAL_MIDDLEBOXES:
            print(f"Figure 8 — {name} workload throughput (Gbps)")
            print(render_table(*figure8_workloads(name, flows=args.flows)))
            print()
    if which in ("fig9", "all"):
        for name in EVAL_MIDDLEBOXES:
            print(f"Figure 9 — {name} FCT by flow size (µs)")
            print(render_table(*figure9_fct(name, flows=args.flows)))
            print()
    if which in ("recovery", "all"):
        print("Fault recovery — punt-path outage timelines")
        print(render_table(*fault_recovery()))
        print()
        print("Failover — standby promotion window cost")
        print(render_table(*failover_recovery()))
        print()
        print("Server pool — member-crash migration cost")
        print(render_table(*pool_recovery()))
        print()
    if which in ("tenancy", "all"):
        print("Multi-tenancy — shared-channel queueing vs tenant count")
        print(render_table(*tenancy_sweep()))
        print()
    return 0


def cmd_difftest(args) -> int:
    from repro.difftest import run_compiled_gauntlet, run_gauntlet

    if args.compiled:
        stats, _failures = run_compiled_gauntlet(
            runs=args.runs,
            seed=args.seed,
            packets=args.packets,
            max_failures=args.max_failures,
            time_budget_s=args.time_budget,
            seed_override=args.seed_override,
            log=print,  # streams progress and each failure report as found
        )
        print(stats.summary())
        return 1 if stats.failures else 0

    stats, failures = run_gauntlet(
        runs=args.runs,
        seed=args.seed,
        packets=args.packets,
        shrink_failures=args.shrink,
        max_failures=args.max_failures,
        time_budget_s=args.time_budget,
        seed_override=args.seed_override,
        symbolic=args.symbolic,
        log=print,  # streams progress and each failure report as found
    )
    print(stats.summary())
    return 1 if stats.failures else 0


def cmd_faults(args) -> int:
    from repro.faults import run_campaign

    servers = 0
    if args.servers is not None:
        if args.cached or args.failover:
            raise SystemExit(
                "error: --servers does not compose with --cached or"
                " --failover — run those campaigns separately"
            )
        from repro.runtime.pool import default_member_names

        # Validate the pool size up front (ValueError on N < 1) so a bad
        # flag fails before any scenario runs.
        default_member_names(args.servers)
        servers = args.servers
    stats, failures = run_campaign(
        runs=args.runs,
        seed=args.seed,
        packets=args.packets,
        max_failures=args.max_failures,
        time_budget_s=args.time_budget,
        seed_override=args.seed_override,
        shrink_failures=args.shrink,
        cached=args.cached,
        cache_entries=args.cache_entries,
        failover=args.failover,
        pool_servers=servers,
        log=print,  # streams progress and each failure report as found
    )
    print(stats.summary())
    if args.summary_json is not None:
        import json

        from repro.telemetry.schema import check

        summary = stats.summary_dict()
        check(summary, "faults_summary", what="campaign rollup")
        out_path = Path(args.summary_json)
        out_path.write_text(
            json.dumps(summary, indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {out_path}")
    return 1 if stats.failures else 0


#: Default tenant set: the three bundled middleboxes the shared budget
#: comfortably admits together (the CI smoke's isolation triple).
DEFAULT_TENANTS = ("minilb", "mazunat", "lb")


def cmd_tenancy(args) -> int:
    import json

    from repro.telemetry.schema import check
    from repro.tenancy import (
        SharedSwitchBudget,
        SwitchResourceAllocator,
        build_tenant_specs,
    )
    from repro.tenancy.lint import verify_combined
    from repro.tenancy.oracle import run_isolation_oracle

    names = list(args.tenants) if args.tenants else list(DEFAULT_TENANTS)
    for name in names:
        if name not in MIDDLEBOX_NAMES:
            raise SystemExit(
                f"error: {name!r} is not a bundled middlebox"
                f" ({', '.join(MIDDLEBOX_NAMES)})"
            )
    defaults = SharedSwitchBudget()
    budget = SharedSwitchBudget(
        memory_bytes=args.budget_memory or defaults.memory_bytes,
        pipeline_depth=args.budget_stages or defaults.pipeline_depth,
        table_slots_per_stage=(
            args.budget_table_slots or defaults.table_slots_per_stage
        ),
        phv_bytes=args.budget_phv or defaults.phv_bytes,
    )
    specs = build_tenant_specs(names)
    lint_report = verify_combined(specs, budget)
    isolation = None
    series_window = (
        args.series_window if args.series_window > 0 else None
    )
    if args.admit_only:
        admission = SwitchResourceAllocator(budget).admit(specs)
    else:
        isolation = run_isolation_oracle(
            names,
            packets_per_tenant=args.packets,
            budget=budget,
            seed=args.seed,
            fast_path=args.fast_path,
            series_window_us=series_window,
        )
        admission = isolation.admission
    if args.json:
        payload = {
            "version": 1,
            "tenants": names,
            "packets_per_tenant": 0 if args.admit_only else args.packets,
            "seed": args.seed,
            "admission": admission.to_dict(),
            "lint": lint_report.to_dict(),
            "isolation": (
                isolation.to_dict() if isolation is not None else None
            ),
            "channel": isolation.channel if isolation is not None else None,
            "counters": (
                isolation.counters if isolation is not None else None
            ),
            "series": (
                isolation.series if isolation is not None else None
            ),
        }
        check(payload, "tenancy", what="tenancy report")
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(f"# tenancy — {', '.join(names)}")
        print(admission.format())
        if not lint_report.ok:
            print()
            print(lint_report.format())
        if isolation is not None:
            print()
            print(isolation.format())
            print()
            print("shared channel:")
            for tenant, stats in sorted(isolation.channel.items()):
                print(
                    f"  {tenant:10s} {stats['rpc_count']} RPCs,"
                    f" mean queue wait"
                    f" {stats['queue_wait_mean_us']:.1f} µs"
                )
    failed = not lint_report.ok or (
        isolation is not None and not isolation.ok
    )
    return 1 if failed else 0


def cmd_perf(args) -> int:
    from repro.eval.perf import run_perf, validate_payload, write_payload

    payload = run_perf(
        middlebox=args.middlebox,
        packets=args.packets,
        seed=args.seed,
        log=print,
    )
    errors = validate_payload(payload)
    if errors:
        for error in errors:
            print(f"schema error: {error}", file=sys.stderr)
        return 1
    out_path = Path(args.out)
    write_payload(payload, out_path)
    print(f"wrote {out_path} (pass={'yes' if payload['pass'] else 'NO'})")
    return 0 if payload["pass"] else 1


def _build_observed_deployment(name, deployment, seed, cache_entries,
                               tracing, deep, sample_every=None,
                               punted_only=False, series_window_us=None,
                               int_sample_every=None):
    """Deploy one bundled middlebox with a telemetry bundle attached."""
    from repro.middleboxes import load
    from repro.telemetry import Telemetry

    if name not in MIDDLEBOX_NAMES:
        raise SystemExit(
            f"error: {name!r} is not a bundled middlebox"
            f" ({', '.join(MIDDLEBOX_NAMES)})"
        )
    telemetry = Telemetry(tracing=tracing, deep=deep,
                          sample_every=sample_every,
                          punted_only=punted_only,
                          series_window_us=series_window_us,
                          int_sample_every=int_sample_every)
    bundle = load(name)
    if deployment == "baseline":
        from repro.runtime.baseline import FastClickRuntime

        middlebox = FastClickRuntime(
            bundle.lowered, config=bundle.config, telemetry=telemetry
        )
    elif deployment == "cached":
        from repro.runtime.cache import (
            CacheConfigurationError,
            CachedGalliumMiddlebox,
        )
        from repro.runtime.deployment import compile_middlebox

        plan, program = compile_middlebox(bundle.lowered)
        try:
            middlebox = CachedGalliumMiddlebox(
                plan, program, cache_entries=cache_entries,
                config=bundle.config, seed=seed, telemetry=telemetry,
            )
        except CacheConfigurationError as exc:
            raise SystemExit(f"error: {exc}")
    elif deployment == "failover":
        from repro.runtime.deployment import compile_middlebox
        from repro.runtime.failover import FailoverDeployment

        plan, program = compile_middlebox(bundle.lowered)
        middlebox = FailoverDeployment(
            plan, program, config=bundle.config, seed=seed,
            telemetry=telemetry,
        )
    else:
        from repro.runtime.deployment import (
            GalliumMiddlebox,
            compile_middlebox,
        )

        plan, program = compile_middlebox(bundle.lowered)
        middlebox = GalliumMiddlebox(
            plan, program, config=bundle.config, seed=seed,
            telemetry=telemetry,
        )
    middlebox.install()
    return middlebox, telemetry


def _drive_stream(middlebox, name: str, packets: int) -> int:
    from itertools import islice

    from repro.workloads import IperfWorkload, middlebox_stream

    count = 0
    for packet, port in islice(
        middlebox_stream(name, IperfWorkload()), packets
    ):
        middlebox.process_packet(packet, port)
        count += 1
    return count


def cmd_trace(args) -> int:
    import json

    if args.sample_every is not None and args.sample_every < 1:
        raise SystemExit("error: --sample-every must be >= 1")
    middlebox, telemetry = _build_observed_deployment(
        args.target, args.deployment, args.seed, args.cache_entries,
        tracing=True, deep=args.deep,
        sample_every=args.sample_every, punted_only=args.punted_only,
    )
    count = _drive_stream(middlebox, args.target, args.packets)
    telemetry.tracer.flush()
    if args.json:
        payload = {
            "version": 1,
            "middlebox": args.target,
            "deployment": args.deployment,
            "seed": args.seed,
            "packets": count,
            "deep": args.deep,
            "events": telemetry.tracer.to_dicts(),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(f"# {args.target} [{args.deployment}]"
              f" — {count} packets,"
              f" {len(telemetry.tracer.events)} events")
        print(telemetry.tracer.format())
    return 0


def cmd_metrics(args) -> int:
    import json

    middlebox, telemetry = _build_observed_deployment(
        args.target, args.deployment, args.seed, args.cache_entries,
        tracing=False, deep=False,
    )
    count = _drive_stream(middlebox, args.target, args.packets)
    snapshot = telemetry.metrics.to_dict()
    if args.json:
        payload = {
            "version": 1,
            "middlebox": args.target,
            "deployment": args.deployment,
            "seed": args.seed,
            "packets": count,
            "metrics": snapshot,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"# {args.target} [{args.deployment}] — {count} packets")
    if snapshot["counters"]:
        print("counters:")
        for name, value in snapshot["counters"].items():
            print(f"  {name:<40s} {value}")
    if snapshot["gauges"]:
        print("gauges:")
        for name, value in snapshot["gauges"].items():
            print(f"  {name:<40s} {value}")
    if snapshot["histograms"]:
        print("histograms:")
        for name, hist in snapshot["histograms"].items():
            print(f"  {name:<40s} count={hist['count']}"
                  f" sum={hist['sum']:.3f}")
            buckets = ", ".join(
                f"<={'inf' if bound is None else bound}: {n}"
                for bound, n in zip(
                    list(hist["bounds"]) + [None], hist["buckets"]
                )
                if n
            )
            if buckets:
                print(f"  {'':<40s} {buckets}")
    return 0


def cmd_obs(args) -> int:
    import json

    from repro.telemetry.schema import check

    if args.sample_every < 1:
        raise SystemExit("error: --sample-every must be >= 1")
    if args.window_us <= 0:
        raise SystemExit("error: --window-us must be positive")
    middlebox, telemetry = _build_observed_deployment(
        args.target, args.deployment, args.seed, args.cache_entries,
        tracing=False, deep=False,
        series_window_us=args.window_us,
        int_sample_every=args.sample_every,
    )
    telemetry.series.promote_defaults()
    count = _drive_stream(middlebox, args.target, args.packets)
    series = telemetry.series.to_dict()
    int_report = telemetry.int_collector.to_dict()
    health = None
    monitor = getattr(middlebox, "health", None)
    if monitor is not None:
        from repro.telemetry.health import expected_detection_latency_us

        latency = monitor.detection_latency_us
        health = {
            "interval_us": round(monitor.config.interval_us, 6),
            "threshold": round(monitor.config.threshold, 6),
            "min_std_us": round(monitor.config.min_std_us, 6),
            "window": monitor.config.window,
            "heartbeats": telemetry.metrics.counter_value(
                "health.heartbeats"
            ),
            "detections": telemetry.metrics.counter_value(
                "health.detections"
            ),
            "forced_detections": telemetry.metrics.counter_value(
                "health.forced_detections"
            ),
            "expected_bound_us": round(
                expected_detection_latency_us(monitor.config), 3
            ),
            "detection_latency_us": (
                round(latency, 3) if latency is not None else None
            ),
        }
    if args.json:
        payload = {
            "version": 1,
            "middlebox": args.target,
            "deployment": args.deployment,
            "seed": args.seed,
            "packets": count,
            "window_us": round(args.window_us, 6),
            "sample_every": args.sample_every,
            "series": series,
            "int": int_report,
            "health": health,
        }
        check(payload, "obs", what="obs report")
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"# {args.target} [{args.deployment}] — {count} packets,"
          f" window {args.window_us:g} µs,"
          f" INT sample 1/{args.sample_every}")
    print("series:")
    for name, entry in series["series"].items():
        windows = entry["windows"]
        span = (f"windows {windows[0]['index']}-{windows[-1]['index']}"
                if windows else "quiet")
        print(f"  {name:<36s} {entry['kind']:<10s}"
              f" {len(windows):3d} active ({span})")
    print("flows:")
    for flow in int_report["flows"]:
        hops = ", ".join(
            f"{hop}={spec['latency_us']:.3f}µs"
            for hop, spec in flow["hops"].items()
        )
        print(f"  {flow['flow']:<34s} {flow['packets']:3d} pkts,"
              f" {flow['punts']} punts — {hops}")
    if health is not None:
        latency = health["detection_latency_us"]
        print(f"health: {health['heartbeats']} heartbeats,"
              f" {health['detections']} detections,"
              f" latency "
              + (f"{latency:.3f} µs" if latency is not None else "n/a")
              + f" (bound {health['expected_bound_us']:.3f} µs)")
    return 0


def cmd_list(args) -> int:
    from repro.middleboxes import load

    for name in MIDDLEBOX_NAMES:
        bundle = load(name)
        loc = bundle.lowered.program.source_line_count()
        print(f"{name:10s} {bundle.display_name:16s} {loc:4d} LoC")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Gallium reproduction: middlebox-to-P4 compiler"
        " + evaluation harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compile_parser = sub.add_parser("compile", help="compile a middlebox")
    compile_parser.add_argument("target", help="bundled name or .cc file")
    compile_parser.add_argument("--out", default="out",
                                help="artifact output directory")
    compile_parser.add_argument("--no-verify", action="store_true",
                                help="skip the static verification layer")
    compile_parser.set_defaults(func=cmd_compile)

    verify_parser = sub.add_parser(
        "verify", help="run the static verifier over a middlebox"
    )
    verify_parser.add_argument(
        "target", help="bundled name, .cc file, or 'all'"
    )
    verify_parser.add_argument("--json", action="store_true",
                               help="emit machine-readable JSON diagnostics")
    verify_parser.add_argument("--cached", action="store_true",
                               help="also check cached-deployment"
                               " preconditions (PART006)")
    verify_parser.add_argument("--symbolic", action="store_true",
                               help="also run translation validation: prove"
                               " the composed deployment equivalent to the"
                               " source on a bounded symbolic packet space"
                               " (SYM001-SYM008)")
    verify_parser.set_defaults(func=cmd_verify)

    partition_parser = sub.add_parser(
        "partition", help="show the three partition CFGs"
    )
    partition_parser.add_argument("target")
    partition_parser.set_defaults(func=cmd_partition)

    experiments_parser = sub.add_parser(
        "experiments", help="regenerate paper tables/figures"
    )
    experiments_parser.add_argument(
        "which",
        nargs="?",
        default="all",
        choices=["table1", "table2", "table3", "fig7", "fig8", "fig9",
                 "recovery", "tenancy", "all"],
    )
    experiments_parser.add_argument("--flows", type=int, default=1000)
    experiments_parser.set_defaults(func=cmd_experiments)

    difftest_parser = sub.add_parser(
        "difftest", help="run the differential-testing gauntlet"
    )
    difftest_parser.add_argument("--runs", type=int, default=200,
                                 help="number of generated programs")
    difftest_parser.add_argument("--seed", type=int, default=0,
                                 help="master seed (one seed per gauntlet)")
    difftest_parser.add_argument("--packets", type=int, default=25,
                                 help="packets per stream")
    difftest_parser.add_argument("--shrink", action="store_true",
                                 help="delta-debug each failure to a minimal"
                                 " reproducer")
    difftest_parser.add_argument("--max-failures", type=int, default=10,
                                 help="stop after this many failures")
    difftest_parser.add_argument("--seed-override", type=int, default=None,
                                 help="pin the program seed of run 0"
                                 " (reproduce a reported failure)")
    difftest_parser.add_argument("--time-budget", type=float, default=None,
                                 help="stop early after this many seconds")
    difftest_parser.add_argument("--compiled", action="store_true",
                                 help="differential-test the compiled"
                                 " fast-path engine against the IR"
                                 " interpreter instead (byte-identical"
                                 " verdicts, env, journals, metrics)")
    difftest_parser.add_argument("--symbolic", action="store_true",
                                 help="add the symbolic prover as a third"
                                 " opinion next to the oracle and the static"
                                 " verifier; disagreement reports name the"
                                 " dissenting checker")
    difftest_parser.set_defaults(func=cmd_difftest)

    faults_parser = sub.add_parser(
        "faults", help="run the fault-injection campaign"
    )
    faults_parser.add_argument("--runs", type=int, default=200,
                               help="number of fault scenarios")
    faults_parser.add_argument("--seed", type=int, default=0,
                               help="master seed (one seed per campaign)")
    faults_parser.add_argument("--packets", type=int, default=25,
                               help="packets per stream")
    faults_parser.add_argument("--max-failures", type=int, default=10,
                               help="stop after this many failures")
    faults_parser.add_argument("--seed-override", type=int, default=None,
                               help="pin the program seed of run 0"
                               " (reproduce a reported failure)")
    faults_parser.add_argument("--time-budget", type=float, default=None,
                               help="stop early after this many seconds")
    faults_parser.add_argument("--shrink", action="store_true",
                               help="delta-debug each failure (fault plan,"
                               " program, stream) to a minimal reproducer")
    faults_parser.add_argument("--cached", action="store_true",
                               help="run scenarios on the bounded-table"
                               " cache deployment")
    faults_parser.add_argument("--cache-entries", type=int, default=2,
                               help="cache bound per replicated table"
                               " (with --cached)")
    faults_parser.add_argument("--failover", action="store_true",
                               help="run scenarios on the active-standby"
                               " failover deployment (adds switch-crash,"
                               " crash-during-batch and stale-standby"
                               " fault kinds)")
    faults_parser.add_argument("--servers", type=int, default=None,
                               metavar="N",
                               help="run every scenario on a punt-path"
                               " server pool of N members under pool fault"
                               " plans (member crashes/drains with live"
                               " flow-state migration); does not compose"
                               " with --cached/--failover")
    faults_parser.add_argument("--summary-json", default=None, metavar="PATH",
                               help="write the cross-scenario rollup"
                               " (window-length distributions, rollback"
                               " rates by fault kind) as JSON")
    faults_parser.set_defaults(func=cmd_faults)

    tenancy_parser = sub.add_parser(
        "tenancy", help="multi-tenant switch: admit, run, and prove"
        " per-tenant isolation"
    )
    tenancy_parser.add_argument(
        "tenants", nargs="*", metavar="tenant",
        help=f"bundled middlebox names (default:"
        f" {' '.join(DEFAULT_TENANTS)})",
    )
    tenancy_parser.add_argument("--packets", type=int, default=100,
                                help="workload packets per tenant")
    tenancy_parser.add_argument("--seed", type=int, default=0,
                                help="deployment seed (same for solo"
                                " references)")
    tenancy_parser.add_argument("--admit-only", action="store_true",
                                help="stop after admission + combined"
                                " lint; run no traffic")
    tenancy_parser.add_argument("--fast-path", action="store_true",
                                help="run tenants on the compiled engine")
    tenancy_parser.add_argument("--json", action="store_true",
                                help="emit the schema-checked JSON report")
    tenancy_parser.add_argument("--budget-memory", type=int, default=None,
                                metavar="BYTES",
                                help="override shared SRAM budget")
    tenancy_parser.add_argument("--budget-stages", type=int, default=None,
                                metavar="N",
                                help="override shared pipeline depth")
    tenancy_parser.add_argument("--budget-table-slots", type=int,
                                default=None, metavar="N",
                                help="override table slots per stage")
    tenancy_parser.add_argument("--series-window", type=float, default=100.0,
                                metavar="US",
                                help="per-tenant time-series window width"
                                " in simulated µs (0 disables windowing)")
    tenancy_parser.add_argument("--budget-phv", type=int, default=None,
                                metavar="BYTES",
                                help="override shared PHV byte budget")
    tenancy_parser.set_defaults(func=cmd_tenancy)

    perf_parser = sub.add_parser(
        "perf", help="interpreter-vs-compiled perf trajectory (make perf)"
    )
    perf_parser.add_argument("--middlebox", default="mazunat",
                             help="bundled middlebox to time")
    perf_parser.add_argument("--packets", type=int, default=20_000,
                             help="packets per (runtime, engine) cell")
    perf_parser.add_argument("--seed", type=int, default=0,
                             help="deployment seed")
    perf_parser.add_argument("--out", default="BENCH_6.json",
                             help="BENCH payload output path")
    perf_parser.set_defaults(func=cmd_perf)

    def _add_observe_args(observe_parser):
        observe_parser.add_argument("target", help="bundled middlebox name")
        observe_parser.add_argument(
            "--deployment", default="gallium",
            choices=["gallium", "cached", "baseline", "failover"],
            help="which runtime to observe",
        )
        observe_parser.add_argument("--packets", type=int, default=25,
                                    help="packets to drive through")
        observe_parser.add_argument("--seed", type=int, default=0,
                                    help="deployment seed")
        observe_parser.add_argument("--cache-entries", type=int, default=16,
                                    help="cache bound per replicated table"
                                    " (with --deployment cached)")
        observe_parser.add_argument("--json", action="store_true",
                                    help="emit the schema-checked JSON"
                                    " payload")

    trace_parser = sub.add_parser(
        "trace", help="per-packet event trace of one deployment"
    )
    _add_observe_args(trace_parser)
    trace_parser.add_argument("--deep", action="store_true",
                              help="also record one event per executed IR"
                              " instruction")
    trace_parser.add_argument("--sample-every", type=int, default=None,
                              metavar="N",
                              help="record only every Nth packet's events"
                              " (whole-packet sampling; the result is a"
                              " subsequence of the full trace)")
    trace_parser.add_argument("--punted-only", action="store_true",
                              help="record only packets that took the"
                              " slow path")
    trace_parser.set_defaults(func=cmd_trace)

    metrics_parser = sub.add_parser(
        "metrics", help="metrics-registry snapshot of one deployment"
    )
    _add_observe_args(metrics_parser)
    metrics_parser.set_defaults(func=cmd_metrics)

    obs_parser = sub.add_parser(
        "obs", help="time-resolved observability: windowed series +"
        " in-band per-hop telemetry (+ health, on failover)"
    )
    _add_observe_args(obs_parser)
    obs_parser.add_argument("--window-us", type=float, default=100.0,
                            metavar="US",
                            help="series window width in simulated µs")
    obs_parser.add_argument("--sample-every", type=int, default=1,
                            metavar="N",
                            help="stamp INT metadata on every Nth packet")
    obs_parser.set_defaults(func=cmd_obs)

    list_parser = sub.add_parser("list", help="list bundled middleboxes")
    list_parser.set_defaults(func=cmd_list)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
