"""Partition plan: the partitioner's output consumed by code generation.

A :class:`PartitionPlan` bundles the per-instruction assignment, the three
projected CFGs (Figure 4), the cross-partition transfer sets (Figure 5),
the per-state placement decisions (Figure 6), and the measured resource
usage.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.ir.function import Function
from repro.ir.instructions import Instruction
from repro.ir.lowering import LoweredMiddlebox, StateMember
from repro.ir.values import Reg
from repro.partition.constraints import ConstraintReport, SwitchResources
from repro.partition.labels import Partition


class PlacementKind(enum.Enum):
    """Where a state member lives at runtime (paper Figure 6 + §4.3.3)."""

    #: Map/vector on the switch as a match-action table, never written on
    #: the packet path (configure-time contents installed via control plane).
    SWITCH_TABLE = "switch_table"
    #: Map/vector replicated: read on the switch, written by the server,
    #: synchronized with write-back tables + atomic bit.
    REPLICATED_TABLE = "replicated_table"
    #: Scalar on the switch as a P4 register (read/RMW on the switch only).
    SWITCH_REGISTER = "switch_register"
    #: Scalar replicated: read on switch, written by the server.
    REPLICATED_REGISTER = "replicated_register"
    #: State that never reaches the switch.
    SERVER_ONLY = "server_only"


@dataclass
class StatePlacement:
    member: StateMember
    kind: PlacementKind
    #: capacity used for switch memory accounting (entries)
    entries: int = 0
    #: bytes of switch memory this placement consumes
    memory_bytes: int = 0

    @property
    def on_switch(self) -> bool:
        return self.kind is not PlacementKind.SERVER_ONLY

    @property
    def replicated(self) -> bool:
        return self.kind in (
            PlacementKind.REPLICATED_TABLE,
            PlacementKind.REPLICATED_REGISTER,
        )


@dataclass
class TransferSpec:
    """Variables crossing one partition boundary (one shim direction)."""

    regs: List[Reg] = field(default_factory=list)

    def byte_size(self) -> int:
        return sum(_reg_bytes(reg) for reg in self.regs)

    def names(self) -> List[str]:
        return [reg.name for reg in self.regs]


def _reg_bytes(reg: Reg) -> int:
    bits = reg.type.bit_width() if hasattr(reg.type, "bit_width") else 32
    return max(1, (bits + 7) // 8)


@dataclass
class PartitionPlan:
    """Everything downstream stages need about the partitioning."""

    middlebox: LoweredMiddlebox
    limits: SwitchResources
    #: instruction id -> partition
    assignment: Dict[int, Partition]
    #: the three projected functions (Figure 4)
    pre: Function
    non_offloaded: Function
    post: Function
    #: shim contents: switch -> server and server -> switch (Figure 5)
    to_server: TransferSpec
    to_switch: TransferSpec
    #: per-state placement decisions
    placements: Dict[str, StatePlacement]
    report: ConstraintReport
    #: name of the synthetic needs-server flag register in the pre function
    needs_server_reg: Optional[str] = None

    def partition_of(self, inst: Instruction) -> Partition:
        return self.assignment[inst.id]

    def instructions_in(self, partition: Partition) -> List[Instruction]:
        return [
            inst
            for inst in self.middlebox.process.instructions()
            if self.assignment.get(inst.id) is partition
        ]

    def offloaded_fraction(self) -> float:
        total = len(self.assignment)
        if not total:
            return 0.0
        offloaded = sum(
            1 for p in self.assignment.values() if p is not Partition.NON_OFF
        )
        return offloaded / total

    def counts(self) -> Dict[str, int]:
        out = {"pre": 0, "non_off": 0, "post": 0}
        for partition in self.assignment.values():
            if partition is Partition.PRE:
                out["pre"] += 1
            elif partition is Partition.POST:
                out["post"] += 1
            else:
                out["non_off"] += 1
        return out

    def summary(self) -> str:
        counts = self.counts()
        placements = ", ".join(
            f"{name}:{placement.kind.value}"
            for name, placement in sorted(self.placements.items())
        )
        return (
            f"{self.middlebox.name}: pre={counts['pre']}"
            f" non_off={counts['non_off']} post={counts['post']};"
            f" shim {self.to_server.byte_size()}B/"
            f"{self.to_switch.byte_size()}B; state [{placements}]"
        )
