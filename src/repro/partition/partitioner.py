"""The partitioning driver (paper §4.2.2).

Order of operations follows the paper:

1. run the label-removing algorithm (expressiveness + dependencies only),
2. constraint 2 — prune pre/post labels past the pipeline-depth distance,
3. constraint 1 — evict switch state (in reverse/forward program order)
   until the table memory fits,
4. constraint 3 — exhaustive per-state placement search keeping at most
   one offloaded access site per global state,
5. constraints 4 & 5 — greedily move boundary statements to the server
   until the scratchpad and shim budgets fit,
6. project the three partition CFGs, compute transfer sets and state
   placements, and return the :class:`PartitionPlan`.

Every refinement step re-runs the label rules, as the paper prescribes
("Each time a statement is moved, Gallium runs the label-removing algorithm
to ensure that the dependency constraints are met").
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.depgraph import DependencyGraph, build_dependency_graph
from repro.analysis.distance import dependency_distances
from repro.analysis.liveness import peak_live_bytes, transfer_variables
from repro.ir import instructions as irin
from repro.ir.function import Function
from repro.ir.lowering import LoweredMiddlebox, StateMember
from repro.partition.constraints import ConstraintReport, SwitchResources
from repro.partition.labels import (
    Label,
    LabelAssignment,
    Partition,
    run_label_removal,
)
from repro.partition.plan import (
    PartitionPlan,
    PlacementKind,
    StatePlacement,
    TransferSpec,
)
from repro.partition.projection import NEEDS_SERVER, project_partition


class PartitionError(Exception):
    """Raised when no feasible partitioning exists (should not happen:
    all-server is always feasible; this signals an internal bug or an
    unannotated structure the caller must fix)."""


_OFFLOAD_LABELS = {Label.PRE, Label.POST}
_MAX_ENUM_SITES = 8


def partition_middlebox(
    lowered: LoweredMiddlebox,
    limits: Optional[SwitchResources] = None,
) -> PartitionPlan:
    limits = limits or SwitchResources.tofino_like()
    graph = build_dependency_graph(lowered.process)
    removed: Dict[int, Set[Label]] = {}

    assignment = run_label_removal(graph, removed)

    # -- constraint 2: pipeline depth ------------------------------------
    from_entry, to_exit = dependency_distances(graph)
    depth = limits.pipeline_depth
    changed = False
    for inst in graph.instructions:
        if from_entry[inst.id] > depth:
            removed.setdefault(inst.id, set()).add(Label.PRE)
            changed = True
        if to_exit[inst.id] > depth:
            removed.setdefault(inst.id, set()).add(Label.POST)
            changed = True
    if changed:
        assignment = run_label_removal(graph, removed)

    # -- constraint 1: switch memory ---------------------------------------
    assignment = _enforce_memory(lowered, graph, removed, assignment, limits)

    # -- constraint 3: one offloaded access site per global state -----------
    assignment = _enforce_single_access(lowered, graph, removed, assignment)

    # -- one-directional replication: state written on the switch must not
    # also be accessed on the server (write-back only flows server->switch,
    # so a server access would observe a stale copy) -------------------------
    assignment = _enforce_write_locality(lowered, graph, removed, assignment)

    # -- constraints 4 & 5: metadata + shim budgets -------------------------
    # Budget refinement can move a state access to the server, which may
    # strand an offloaded write of the same state; re-check write locality
    # until both are stable (each pin strictly shrinks the offloaded set).
    while True:
        assignment, projections, transfers = _enforce_budgets(
            lowered, graph, removed, assignment, limits, from_entry, to_exit
        )
        if not _pin_stranded_offloaded_writers(lowered, graph, removed, assignment):
            break
        assignment = run_label_removal(graph, removed)

    pre_projection, non_off_projection, post_projection = projections
    to_server, to_switch = transfers
    placements = _derive_placements(lowered, graph, assignment, limits)
    report = _measure(
        lowered, graph, assignment, placements,
        pre_projection, post_projection, to_server, to_switch,
    )
    violations = report.violations(limits)
    if violations:
        raise PartitionError(
            f"{lowered.name}: partitioning left violations: {violations}"
        )
    return PartitionPlan(
        middlebox=lowered,
        limits=limits,
        assignment=assignment.assignment(),
        pre=pre_projection.function,
        non_offloaded=non_off_projection.function,
        post=post_projection.function,
        to_server=to_server,
        to_switch=to_switch,
        placements=placements,
        report=report,
        needs_server_reg=NEEDS_SERVER,
    )


# ---------------------------------------------------------------------------
# Constraint 1 — switch memory
# ---------------------------------------------------------------------------


def _state_entries(member: StateMember, limits: SwitchResources) -> Optional[int]:
    """Capacity for switch accounting; None = cannot be placed on switch."""
    if member.kind == "map":
        if member.max_entries is not None:
            return member.max_entries
        return limits.default_map_entries
    if member.kind == "vector":
        if member.max_entries is not None:
            return member.max_entries
        return limits.default_vector_entries
    return 1


def _switch_states(
    lowered: LoweredMiddlebox,
    graph: DependencyGraph,
    assignment: LabelAssignment,
) -> Dict[str, List[irin.Instruction]]:
    """Global states with at least one offloaded access site."""
    out: Dict[str, List[irin.Instruction]] = {}
    for inst in graph.instructions:
        if assignment.partition_of(inst) is Partition.NON_OFF:
            continue
        for loc in inst.global_state_accesses():
            if loc.name in lowered.state:
                out.setdefault(loc.name, []).append(inst)
    return out


def _memory_usage(
    lowered: LoweredMiddlebox,
    states: Dict[str, List[irin.Instruction]],
    limits: SwitchResources,
) -> int:
    total = 0
    for name in states:
        member = lowered.state[name]
        entries = _state_entries(member, limits)
        if entries is None:
            continue  # handled by the annotation pinning pass
        total += entries * member.byte_cost_per_entry()
    return total


def _enforce_memory(
    lowered: LoweredMiddlebox,
    graph: DependencyGraph,
    removed: Dict[int, Set[Label]],
    assignment: LabelAssignment,
    limits: SwitchResources,
) -> LabelAssignment:
    # First pin away accesses to maps that carry no size annotation: the
    # paper requires the developer annotation before a map can be offloaded.
    changed = False
    for inst in graph.instructions:
        for loc in inst.global_state_accesses():
            member = lowered.state.get(loc.name)
            if member is None:
                continue
            if _state_entries(member, limits) is None:
                if removed.setdefault(inst.id, set()) >= _OFFLOAD_LABELS:
                    continue
                removed[inst.id] |= _OFFLOAD_LABELS
                changed = True
    if changed:
        assignment = run_label_removal(graph, removed)

    # Evict state until memory fits: remove "pre" labels in reverse program
    # order and "post" labels in program order (paper §4.2.2).
    program_order = list(lowered.process.instructions())
    while True:
        states = _switch_states(lowered, graph, assignment)
        if _memory_usage(lowered, states, limits) <= limits.memory_bytes:
            return assignment
        evicted = False
        for inst in reversed(program_order):
            if (
                assignment.partition_of(inst) is Partition.PRE
                and inst.global_state_accesses()
            ):
                removed.setdefault(inst.id, set()).add(Label.PRE)
                evicted = True
                break
        if not evicted:
            for inst in program_order:
                if (
                    assignment.partition_of(inst) is Partition.POST
                    and inst.global_state_accesses()
                ):
                    removed.setdefault(inst.id, set()).add(Label.POST)
                    evicted = True
                    break
        if not evicted:
            return assignment  # nothing left on the switch
        assignment = run_label_removal(graph, removed)


# ---------------------------------------------------------------------------
# Constraint 3 — single offloaded access site per state
# ---------------------------------------------------------------------------


def _enforce_single_access(
    lowered: LoweredMiddlebox,
    graph: DependencyGraph,
    removed: Dict[int, Set[Label]],
    assignment: LabelAssignment,
) -> LabelAssignment:
    while True:
        conflict = _find_multi_access_state(lowered, graph, assignment)
        if conflict is None:
            return assignment
        state_name, sites = conflict
        if len(sites) > _MAX_ENUM_SITES:
            # Far too many sites to enumerate: keep the first site only.
            keep_options = [sites[0]]
        else:
            keep_options = sites
        best_choice = None
        best_count = -1
        for keep in keep_options:
            trial_removed = {k: set(v) for k, v in removed.items()}
            for site in sites:
                if site.id != keep.id:
                    trial_removed.setdefault(site.id, set()).update(
                        _OFFLOAD_LABELS
                    )
            trial = run_label_removal(graph, trial_removed)
            count = _placement_score(graph, trial)
            if count > best_count:
                best_count = count
                best_choice = keep
        for site in sites:
            if site.id != best_choice.id:
                removed.setdefault(site.id, set()).update(_OFFLOAD_LABELS)
        assignment = run_label_removal(graph, removed)


def _pin_stranded_offloaded_writers(
    lowered: LoweredMiddlebox,
    graph: DependencyGraph,
    removed: Dict[int, Set[Label]],
    assignment: LabelAssignment,
) -> bool:
    """Pin offloaded writes of server-accessed state to the server.

    State replication is one-directional: the server's write journal is
    folded into switch tables/registers, but a switch-side write (a
    ``RegisterRMW`` in an offloaded partition) never flows back into the
    server's ``StateStore``.  If the server also reads or writes that
    state, it would observe a stale copy — so any state member with both
    an offloaded write site and a non-offloaded access site must have its
    offloaded write sites moved to the server.  Returns True if anything
    was pinned (caller re-runs label removal).
    """
    offloaded_writers: Dict[str, List[irin.Instruction]] = {}
    server_accessed: Set[str] = set()
    for inst in graph.instructions:
        partition = assignment.partition_of(inst)
        for loc in inst.writes():
            if loc.is_global and loc.name in lowered.state:
                if partition is Partition.NON_OFF:
                    server_accessed.add(loc.name)
                else:
                    offloaded_writers.setdefault(loc.name, []).append(inst)
        if partition is Partition.NON_OFF:
            for loc in inst.reads():
                if loc.is_global and loc.name in lowered.state:
                    server_accessed.add(loc.name)
    pinned = False
    for name, writers in offloaded_writers.items():
        if name not in server_accessed:
            continue
        for inst in writers:
            removed.setdefault(inst.id, set()).update(_OFFLOAD_LABELS)
            pinned = True
    return pinned


def _enforce_write_locality(
    lowered: LoweredMiddlebox,
    graph: DependencyGraph,
    removed: Dict[int, Set[Label]],
    assignment: LabelAssignment,
) -> LabelAssignment:
    """Fixpoint of :func:`_pin_stranded_offloaded_writers`.

    Pinning a write site turns it into a server access site, which can in
    turn strand another offloaded writer of the same state, so iterate;
    the offloaded set shrinks monotonically, guaranteeing termination.
    """
    while _pin_stranded_offloaded_writers(lowered, graph, removed, assignment):
        assignment = run_label_removal(graph, removed)
    return assignment


def _placement_score(graph: DependencyGraph, trial: LabelAssignment) -> int:
    """Objective for the constraint-3 placement search.

    The paper maximizes the number of offloaded statements and notes (§7)
    that this pure count can pick sub-optimal placements because it values
    an integer addition as much as a table lookup.  We keep the statement
    count but weight offloaded *verdicts* heavily: a verdict on the switch
    is what creates a fast path (packets complete without the server), and
    that dominates any constant number of offloaded ALU ops.
    """
    score = 0
    for inst in graph.instructions:
        partition = trial.partition_of(inst)
        if partition is Partition.NON_OFF:
            continue
        # A verdict in the PRE partition completes packets on the switch
        # without any server involvement — that is the fast path itself.
        if inst.is_verdict and partition is Partition.PRE:
            score += 10
        else:
            score += 1
    return score


def _find_multi_access_state(
    lowered: LoweredMiddlebox,
    graph: DependencyGraph,
    assignment: LabelAssignment,
) -> Optional[Tuple[str, List[irin.Instruction]]]:
    """Find a state whose offloaded access sites violate constraint 3.

    *Registers* (scalar globals) may be read on mutually exclusive control
    paths — e.g. a NAT reading its external-IP register on both the hit and
    the miss arm — because a register extern can appear in several exclusive
    branches; only co-reachable register accesses collide.  *Tables*
    (maps/vectors) follow the paper strictly: a match-action table can be
    applied only once in the pipeline, so at most one access site may stay
    on the switch regardless of path exclusivity.
    """
    info = graph.reachability
    states = _switch_states(lowered, graph, assignment)
    for name in sorted(states):
        sites = states[name]
        if len(sites) < 2:
            continue
        member = lowered.state.get(name)
        if member is not None and member.kind != "scalar":
            return name, sites
        for i, first in enumerate(sites):
            for second in sites[i + 1 :]:
                if info.can_happen_after(first, second) or info.can_happen_after(
                    second, first
                ):
                    return name, [first, second]
    return None


# ---------------------------------------------------------------------------
# Constraints 4 & 5 — scratchpad metadata and shim transfer budgets
# ---------------------------------------------------------------------------


def _build_projections(lowered: LoweredMiddlebox, graph, assignment):
    postdoms = graph.reachability.postdominators
    mapping = assignment.assignment()
    pre = project_partition(
        lowered.process, mapping, Partition.PRE, postdoms
    )
    non_off = project_partition(
        lowered.process, mapping, Partition.NON_OFF, postdoms
    )
    post = project_partition(
        lowered.process, mapping, Partition.POST, postdoms
    )
    return pre, non_off, post


def _build_transfers(pre, non_off, post) -> Tuple[TransferSpec, TransferSpec]:
    """Shim contents from the projections' unsatisfied uses.

    A projection's *undefined uses* are exactly the values it needs from
    earlier partitions (local rematerialization already removed everything
    the partition can recompute itself).  A value the post partition needs
    but the server partition does not still flows through the server, so it
    appears in both shims.
    """
    from repro.ir.validate import unsatisfied_uses

    pre_defs = _definitions(pre.function)
    non_off_defs = _definitions(non_off.function)
    non_off_needs = unsatisfied_uses(non_off.function)
    post_needs = unsatisfied_uses(post.function)
    to_server_regs: Dict[str, object] = {}
    for name, reg in non_off_needs.items():
        if name in pre_defs:
            to_server_regs[name] = reg
    for name, reg in post_needs.items():
        if name in pre_defs and name not in non_off_defs:
            to_server_regs[name] = reg
    to_switch_regs = {
        name: reg
        for name, reg in post_needs.items()
        if name in pre_defs or name in non_off_defs
    }
    to_server = TransferSpec(
        [to_server_regs[name] for name in sorted(to_server_regs)]
    )
    to_switch = TransferSpec(
        [to_switch_regs[name] for name in sorted(to_switch_regs)]
    )
    return to_server, to_switch


def _definitions(function) -> Dict[str, object]:
    defs: Dict[str, object] = {}
    for inst in function.instructions():
        result = inst.result()
        if result is not None:
            defs[result.name] = result
        found = getattr(inst, "found", None)
        if found is not None and hasattr(found, "name"):
            defs[found.name] = found
    return defs




def _projected_depth(function: Function) -> int:
    """Longest stage-costing dependency chain of a *projected* pipeline.

    Constraint 2 must hold on the program the switch actually runs: CFG
    projection rematerializes pure slices into the pipeline (header
    re-reads, ALU recomputation), so the emitted chain can be longer than
    the original function's distance metric accounts for.
    """
    from repro.analysis.reachability import compute_reachability

    info = compute_reachability(function)
    if info.cyclic_blocks:
        return 10**9  # loops can never fit a pipeline; force eviction
    projected_graph = build_dependency_graph(function, info)
    from_entry, _ = dependency_distances(projected_graph)
    return max(from_entry.values(), default=0)


def _enforce_budgets(
    lowered: LoweredMiddlebox,
    graph: DependencyGraph,
    removed: Dict[int, Set[Label]],
    assignment: LabelAssignment,
    limits: SwitchResources,
    from_entry: Dict[int, int],
    to_exit: Dict[int, int],
):
    """Greedy boundary movement (paper's single linear scan, generalized).

    While a budget is violated, move the offloaded instruction nearest the
    violated boundary (deepest dependency distance) to the server and
    re-run the label rules.  Terminates: each move strictly shrinks the
    offloaded set, and the all-server partitioning satisfies everything.

    Also re-checks constraint 2 on the projections: rematerialized slices
    can deepen the emitted pipeline beyond the pre-projection distance
    bound (found by the static verifier's P4L006 lint).
    """
    while True:
        pre, non_off, post = _build_projections(lowered, graph, assignment)
        to_server, to_switch = _build_transfers(pre, non_off, post)
        meta_pre = peak_live_bytes(pre.function)
        meta_post = peak_live_bytes(post.function)
        over_pre = (
            to_server.byte_size() > limits.transfer_bytes
            or meta_pre > limits.metadata_bytes
            or _projected_depth(pre.function) > limits.pipeline_depth
        )
        over_post = (
            to_switch.byte_size() > limits.transfer_bytes
            or meta_post > limits.metadata_bytes
            or _projected_depth(post.function) > limits.pipeline_depth
        )
        if not over_pre and not over_post:
            return assignment, (pre, non_off, post), (to_server, to_switch)
        moved = False
        if over_pre:
            candidate = _deepest(
                graph, assignment, Partition.PRE, from_entry
            )
            if candidate is not None:
                removed.setdefault(candidate.id, set()).add(Label.PRE)
                moved = True
        if over_post and not moved:
            candidate = _deepest(
                graph, assignment, Partition.POST, to_exit
            )
            if candidate is not None:
                removed.setdefault(candidate.id, set()).add(Label.POST)
                moved = True
        if not moved:
            # Nothing left to move yet a budget is still violated — the
            # projections are effectively empty, so this cannot happen
            # unless the limits are inconsistent.
            raise PartitionError(
                f"{lowered.name}: cannot satisfy metadata/transfer budgets"
            )
        assignment = run_label_removal(graph, removed)


def _deepest(
    graph: DependencyGraph,
    assignment: LabelAssignment,
    partition: Partition,
    distance: Dict[int, int],
) -> Optional[irin.Instruction]:
    """The offloaded instruction farthest along the dependency order
    (closest to the partition boundary).

    Prefers compute/state instructions (moving control flow alone rarely
    frees budget), but falls back to branches and verdicts when nothing
    else is left — the all-server partition trivially satisfies every
    budget, so the refinement loop must always be able to make progress.
    """
    best = None
    best_distance = -1
    fallback = None
    fallback_distance = -1
    for inst in graph.instructions:
        if assignment.partition_of(inst) is not partition:
            continue
        if isinstance(inst, (irin.Jump, irin.Return)):
            continue
        inst_distance = distance.get(inst.id, 0)
        if inst.is_verdict or isinstance(inst, irin.Branch):
            if inst_distance > fallback_distance:
                fallback_distance = inst_distance
                fallback = inst
            continue
        if inst_distance > best_distance:
            best_distance = inst_distance
            best = inst
    return best if best is not None else fallback


# ---------------------------------------------------------------------------
# Placement + measurement
# ---------------------------------------------------------------------------


def _derive_placements(
    lowered: LoweredMiddlebox,
    graph: DependencyGraph,
    assignment: LabelAssignment,
    limits: SwitchResources,
) -> Dict[str, StatePlacement]:
    placements: Dict[str, StatePlacement] = {}
    switch_states = _switch_states(lowered, graph, assignment)
    server_writers: Dict[str, bool] = {}
    for inst in graph.instructions:
        if assignment.partition_of(inst) is Partition.NON_OFF:
            for loc in inst.writes():
                if loc.is_global and loc.name in lowered.state:
                    server_writers[loc.name] = True
    for name, member in lowered.state.items():
        on_switch = name in switch_states
        written_on_server = server_writers.get(name, False)
        if not on_switch:
            placements[name] = StatePlacement(member, PlacementKind.SERVER_ONLY)
            continue
        entries = _state_entries(member, limits) or 0
        memory = entries * member.byte_cost_per_entry()
        if member.kind == "scalar":
            kind = (
                PlacementKind.REPLICATED_REGISTER
                if written_on_server
                else PlacementKind.SWITCH_REGISTER
            )
        else:
            kind = (
                PlacementKind.REPLICATED_TABLE
                if written_on_server
                else PlacementKind.SWITCH_TABLE
            )
        placements[name] = StatePlacement(member, kind, entries, memory)
    return placements


def _measure(
    lowered: LoweredMiddlebox,
    graph: DependencyGraph,
    assignment: LabelAssignment,
    placements: Dict[str, StatePlacement],
    pre, post, to_server: TransferSpec, to_switch: TransferSpec,
) -> ConstraintReport:
    # Depth is measured on the projections — the pipelines the switch
    # actually runs — so remat-induced chains count (see _projected_depth).
    depth_pre = _projected_depth(pre.function)
    depth_post = _projected_depth(post.function)
    site_insts: Dict[str, List[irin.Instruction]] = {}
    for inst in graph.instructions:
        partition = assignment.partition_of(inst)
        if partition is not Partition.NON_OFF:
            for loc in inst.global_state_accesses():
                if loc.name in lowered.state:
                    site_insts.setdefault(loc.name, []).append(inst)
    # Register reads on mutually exclusive paths share a stage; table
    # applications never do (Tofino applies a table at most once).
    info = graph.reachability
    sites: Dict[str, int] = {}
    for name, insts in site_insts.items():
        member = lowered.state.get(name)
        if member is not None and member.kind != "scalar":
            sites[name] = len(insts)
            continue
        conflict = 1
        for i, first in enumerate(insts):
            for second in insts[i + 1 :]:
                if info.can_happen_after(first, second) or info.can_happen_after(
                    second, first
                ):
                    conflict = max(conflict, 2)
        sites[name] = conflict
    return ConstraintReport(
        memory_bytes=sum(p.memory_bytes for p in placements.values()),
        pipeline_depth_pre=depth_pre,
        pipeline_depth_post=depth_post,
        metadata_bytes_pre=peak_live_bytes(pre.function),
        metadata_bytes_post=peak_live_bytes(post.function),
        transfer_bytes_to_server=to_server.byte_size(),
        transfer_bytes_to_switch=to_switch.byte_size(),
        state_access_sites=sites,
    )
