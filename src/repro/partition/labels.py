"""The label-removing algorithm (paper §4.2.1).

Each instruction starts with the label set ``{pre, post, non_off}`` if P4
can express it, else ``{non_off}``.  Rules are applied to a fixpoint:

1. ``S' ⇝* S  ∧  post ∉ L(S)   ⟹  post ∉ L(S')``
2. ``S' ⇝* S  ∧  pre ∉ L(S')   ⟹  pre ∉ L(S)``
3. ``S' ⇝* S  ∧  same global state  ∧  pre ∈ L(S')   ⟹  pre ∉ L(S)``
4. ``S' ⇝* S  ∧  same global state  ∧  post ∈ L(S)   ⟹  post ∉ L(S')``
5. ``S ⇝* S  ⟹  L(S) = {non_off}`` (loops never offload)

where ``S' ⇝* S`` means S transitively depends on S'.  The algorithm
terminates because the total number of labels decreases monotonically.

Partition assignment from the final label sets: ``pre ∈ L`` → PRE;
else ``post ∈ L`` → POST; else NON_OFF.  (This is the maximal-offload
reading of the paper's assignment rule and reproduces Figure 4.)

*Pins* let later passes force instructions into the non-offloaded
partition (resource-constraint refinement re-runs the rules after each
pin, as §4.2.2 prescribes).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional, Set

from repro.analysis.depgraph import DependencyGraph
from repro.ir.instructions import Instruction


class Label(enum.Enum):
    PRE = "pre"
    POST = "post"
    NON_OFF = "non_off"


class Partition(enum.Enum):
    """Final partition assignment; ordered by execution phase."""

    PRE = 0
    NON_OFF = 1
    POST = 2


ALL_LABELS = frozenset({Label.PRE, Label.POST, Label.NON_OFF})
NON_OFF_ONLY = frozenset({Label.NON_OFF})


@dataclass
class LabelAssignment:
    """Result of the label-removing fixpoint."""

    labels: Dict[int, Set[Label]]
    graph: DependencyGraph

    def partition_of(self, inst: Instruction) -> Partition:
        label_set = self.labels[inst.id]
        if Label.PRE in label_set:
            return Partition.PRE
        if Label.POST in label_set:
            return Partition.POST
        return Partition.NON_OFF

    def assignment(self) -> Dict[int, Partition]:
        return {
            inst.id: self.partition_of(inst) for inst in self.graph.instructions
        }

    def offloaded_count(self) -> int:
        """Number of instructions assigned to the switch."""
        return sum(
            1
            for inst in self.graph.instructions
            if self.partition_of(inst) is not Partition.NON_OFF
        )


def initial_labels(
    graph: DependencyGraph,
    removed: Optional[Dict[int, Set[Label]]] = None,
) -> Dict[int, Set[Label]]:
    """Initial label sets, minus any labels pinned away by ``removed``.

    The resource-refinement passes of §4.2.2 express "move this statement
    to the non-offloaded partition" as removing its pre/post labels up
    front and re-running the rules.
    """
    labels: Dict[int, Set[Label]] = {}
    removed = removed or {}
    for inst in graph.instructions:
        if inst.p4_supported():
            label_set = set(ALL_LABELS)
        else:
            label_set = set(NON_OFF_ONLY)
        label_set -= removed.get(inst.id, set())
        label_set.add(Label.NON_OFF)  # every statement can run on the server
        labels[inst.id] = label_set
    return labels


def run_label_removal(
    graph: DependencyGraph,
    removed: Optional[Dict[int, Set[Label]]] = None,
) -> LabelAssignment:
    """Apply rules 1–5 to a fixpoint and return the final label sets."""
    labels = initial_labels(graph, removed)
    instructions = graph.instructions

    # Rule 5 first: any instruction that transitively depends on itself (or
    # sits on a CFG cycle) can only be non-offloaded.
    for inst in instructions:
        if graph.self_dependent(inst) or graph.reachability.in_cycle(inst):
            labels[inst.id] = set(NON_OFF_ONLY)

    shares_global = _shared_global_matrix(graph)

    changed = True
    while changed:
        changed = False
        for src_id, dst_ids in graph.closure.items():
            src_labels = labels[src_id]
            for dst_id in dst_ids:
                if dst_id == src_id:
                    continue
                dst_labels = labels[dst_id]
                # Rule 1: downstream lost post -> upstream loses post.
                if Label.POST not in dst_labels and Label.POST in src_labels:
                    src_labels.discard(Label.POST)
                    changed = True
                # Rule 2: upstream lost pre -> downstream loses pre.
                if Label.PRE not in src_labels and Label.PRE in dst_labels:
                    dst_labels.discard(Label.PRE)
                    changed = True
                if (src_id, dst_id) in shares_global:
                    # Rule 3: upstream access offloadable as pre -> the
                    # downstream access to the same state cannot be pre.
                    if Label.PRE in src_labels and Label.PRE in dst_labels:
                        dst_labels.discard(Label.PRE)
                        changed = True
                    # Rule 4: downstream access may be post -> the upstream
                    # access cannot be post.
                    if Label.POST in dst_labels and Label.POST in src_labels:
                        src_labels.discard(Label.POST)
                        changed = True
    return LabelAssignment(labels=labels, graph=graph)


def _shared_global_matrix(graph: DependencyGraph) -> Set[tuple]:
    """Pairs (src_id, dst_id) in the closure that access a common global."""
    accesses = {
        inst.id: inst.global_state_accesses() for inst in graph.instructions
    }
    shared: Set[tuple] = set()
    for src_id, dst_ids in graph.closure.items():
        src_access = accesses.get(src_id)
        if not src_access:
            continue
        for dst_id in dst_ids:
            if dst_id == src_id:
                continue
            if src_access & accesses.get(dst_id, set()):
                shared.add((src_id, dst_id))
    return shared
