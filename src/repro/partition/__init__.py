"""Program partitioning (paper §4.2).

Splits the lowered middlebox into pre-processing, non-offloaded, and
post-processing partitions:

* :mod:`repro.partition.labels` — the label-removing algorithm (rules 1–5
  of §4.2.1) over the dependency graph,
* :mod:`repro.partition.constraints` — the switch resource model
  (constraints 1–5 of §4.2.2),
* :mod:`repro.partition.placement` — global-state placement: the
  exhaustive single-access search for constraint 3 and the derived
  table/register/replication decisions,
* :mod:`repro.partition.projection` — CFG projection of each partition
  (Figure 4) with punt/fast-path logic,
* :mod:`repro.partition.partitioner` — the driver tying it all together
  and producing a :class:`~repro.partition.plan.PartitionPlan`.
"""

from repro.partition.labels import Label, LabelAssignment, run_label_removal
from repro.partition.constraints import SwitchResources, ConstraintReport
from repro.partition.plan import (
    Partition,
    PartitionPlan,
    StatePlacement,
    PlacementKind,
)
from repro.partition.partitioner import partition_middlebox, PartitionError
from repro.partition.projection import project_partition, ProjectionResult

__all__ = [
    "Label",
    "LabelAssignment",
    "run_label_removal",
    "SwitchResources",
    "ConstraintReport",
    "Partition",
    "PartitionPlan",
    "StatePlacement",
    "PlacementKind",
    "partition_middlebox",
    "PartitionError",
    "project_partition",
    "ProjectionResult",
]
