"""CFG projection: split the program into per-partition CFGs (Figure 4).

Each partition's CFG mirrors the original control structure but contains
only that partition's instructions.  Branches assigned to an *earlier*
partition are kept — their condition values arrive through the shim header
(Figure 5 allocates bits for exactly these).  Branches assigned to a
*later* partition guard no instructions of this partition (the label rules
guarantee dependency order PRE ≤ NON_OFF ≤ POST along every edge), so the
projection skips the whole guarded region by jumping to the branch's
immediate postdominator.

The PRE projection additionally maintains a ``__needs_server`` flag: it is
set whenever the projection skips *effectful* foreign work (global-state
mutation, extern side effect, verdict).  When the PRE program falls off the
end without a verdict, the switch punts the packet to the middlebox server
— the fast-path / slow-path decision of Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set

from repro.lang.types import BOOL
from repro.ir import instructions as irin
from repro.ir.function import BasicBlock, Function
from repro.ir.values import Const, Reg, aliased_packet_region
from repro.partition.labels import Partition

NEEDS_SERVER = "__needs_server"

EXIT_BLOCK = "__exit"


@dataclass
class ProjectionResult:
    function: Function
    partition: Partition
    #: registers this projection reads that it never defines (must be
    #: seeded from the shim header / earlier partitions)
    undefined_uses: Set[str]


def _effectful(inst: irin.Instruction) -> bool:
    """Foreign work that forces the packet through the server."""
    if inst.is_verdict:
        return True
    if isinstance(inst, (irin.Jump, irin.Branch, irin.Return)):
        return False
    for loc in inst.writes():
        if loc.is_global or loc.is_packet:
            return True
    if isinstance(inst, irin.ExternCall) and inst.extra_writes:
        return True
    return False


def _immediate_postdominator(
    function: Function, postdominators: Dict[str, Set[str]], block: str
) -> Optional[str]:
    """The nearest strict postdominator of ``block`` (None if it exits)."""
    strict = postdominators.get(block, set()) - {block}
    if not strict:
        return None
    # The immediate postdominator is the strict postdominator that is
    # postdominated by every other strict postdominator.
    for candidate in strict:
        others = strict - {candidate}
        candidate_post = postdominators.get(candidate, set())
        if others <= candidate_post:
            return candidate
    return None


def project_partition(
    function: Function,
    assignment: Dict[int, Partition],
    partition: Partition,
    postdominators: Dict[str, Set[str]],
) -> ProjectionResult:
    """Project ``function`` onto one partition (see module docstring)."""
    projected = Function(f"{function.name}.{partition.name.lower()}", function.entry)
    needs_server = Reg(NEEDS_SERVER, BOOL, is_temp=False)
    track_flag = partition is Partition.PRE

    for name in function.blocks:
        projected.add_block(name)
    exit_block = projected.add_block(EXIT_BLOCK)
    exit_block.append(irin.Return())

    for name, block in function.blocks.items():
        new_block = projected.blocks[name]
        if track_flag and name == function.entry:
            new_block.append(irin.Assign(needs_server, Const(0, BOOL)))
        flagged_here = False
        for inst in block.body:
            inst_partition = assignment.get(inst.id, Partition.NON_OFF)
            if inst_partition is partition:
                new_block.append(inst)
            elif (
                inst_partition.value > partition.value
                and track_flag
                and not flagged_here
                and _effectful(inst)
            ):
                new_block.append(irin.Assign(needs_server, Const(1, BOOL)))
                flagged_here = True
        terminator = block.terminator
        if terminator is None:
            new_block.append(irin.Jump(EXIT_BLOCK))
            continue
        term_partition = assignment.get(terminator.id, Partition.NON_OFF)
        if isinstance(terminator, irin.Jump):
            new_block.append(irin.Jump(terminator.target,
                                       stmt_id=terminator.stmt_id))
        elif isinstance(terminator, irin.Branch):
            if term_partition.value <= partition.value and _region_has_work(
                function, assignment, partition, name, postdominators
            ):
                new_block.append(
                    irin.Branch(terminator.cond, terminator.if_true,
                                terminator.if_false,
                                stmt_id=terminator.stmt_id)
                )
            else:
                # The guarded region holds no instructions of this
                # partition (always true for later-partition branches, and
                # for loops whose body lives elsewhere): skip to the join.
                # This also keeps foreign loop skeletons out of switch
                # pipelines, which cannot loop.
                if track_flag and _region_effectful(
                    function, assignment, partition, name, postdominators
                ):
                    new_block.append(irin.Assign(needs_server, Const(1, BOOL)))
                join = _immediate_postdominator(function, postdominators, name)
                new_block.append(irin.Jump(join if join else EXIT_BLOCK))
        elif terminator.is_verdict:
            if term_partition is partition:
                new_block.append(terminator)
            else:
                if (
                    track_flag
                    and term_partition.value > partition.value
                    and not flagged_here
                ):
                    new_block.append(irin.Assign(needs_server, Const(1, BOOL)))
                new_block.append(irin.Jump(EXIT_BLOCK))
        elif isinstance(terminator, irin.Return):
            new_block.append(irin.Jump(EXIT_BLOCK))
        else:  # pragma: no cover - exhaustive above
            raise TypeError(f"unknown terminator {terminator!r}")

    _prune_unreachable(projected)
    _simplify_empty_blocks(projected)
    if partition is not Partition.PRE:
        _rematerialize_pure_slices(function, projected, partition)
    return ProjectionResult(
        function=projected,
        partition=partition,
        undefined_uses=_undefined_uses(projected),
    )


def _rematerialize_pure_slices(
    original: Function, projected: Function, partition: Partition
) -> None:
    """Recompute pure values locally instead of shipping them in the shim.

    A value the projection needs from an earlier partition can be
    recomputed locally when its defining slice is *pure*: header loads of
    regions the program never rewrites, ALU ops, casts and copies over
    other pure values or constants.  The packet itself carries the header
    bytes, so re-reading them is free — this is what keeps the 5-tuple out
    of the shim and the constraint-5 budget honest (paper §4.3.2's 20-byte
    budget assumes exactly this).

    Table lookups, register reads, externs, and multiply-assigned locals
    stay in the shim: recomputing a lookup would double the table access
    (constraint 3) and multiply-assigned values are path-dependent.

    When the destination partition is a switch pipeline (POST), the slice
    must additionally be P4-expressible — rematerializing a multiply or
    division there would synthesize an instruction the switch cannot run
    (caught by ``SwitchProgram.validate``); such values ride the shim
    instead.
    """
    from repro.ir.validate import unsatisfied_uses

    written_regions = {
        aliased_packet_region(inst.region)
        for inst in original.instructions()
        if isinstance(inst, irin.StorePacketField)
    }
    # Single-definition pure instructions of the original program.
    def_count: Dict[str, int] = {}
    def_inst: Dict[str, irin.Instruction] = {}
    for inst in original.instructions():
        result = inst.result()
        regs = [result] if result is not None else []
        found = getattr(inst, "found", None)
        if isinstance(found, Reg):
            regs.append(found)
        for reg in regs:
            def_count[reg.name] = def_count.get(reg.name, 0) + 1
            def_inst[reg.name] = inst

    # Names already defined inside the projection must not be re-defined by
    # a remat slice (and cannot be read at the entry point), so any slice
    # touching them is ineligible.
    proj_defs: set = set()
    for inst in projected.instructions():
        result = inst.result()
        if result is not None:
            proj_defs.add(result.name)
        found = getattr(inst, "found", None)
        if isinstance(found, Reg):
            proj_defs.add(found.name)

    pure_cache: Dict[str, bool] = {}

    def is_pure(name: str) -> bool:
        if name in pure_cache:
            return pure_cache[name]
        pure_cache[name] = False  # break cycles conservatively
        if name in proj_defs:
            return False
        if def_count.get(name, 0) != 1:
            return False
        inst = def_inst[name]
        if partition is Partition.POST and not inst.p4_supported():
            ok = False
        elif isinstance(inst, irin.LoadPacketField):
            ok = aliased_packet_region(inst.region) not in written_regions or (
                inst.region == "meta" and inst.field == "ingress_port"
            )
        elif isinstance(inst, (irin.Assign, irin.Cast, irin.BinOp, irin.UnOp)):
            ok = all(
                is_pure(op.name)
                for op in inst.operands()
                if isinstance(op, Reg)
            )
        else:
            ok = False
        pure_cache[name] = ok
        return ok

    needed = unsatisfied_uses(projected)
    slice_names: List[str] = []
    seen: set = set()

    def collect(name: str) -> None:
        if name in seen:
            return
        seen.add(name)
        inst = def_inst[name]
        for op in inst.operands():
            if isinstance(op, Reg):
                collect(op.name)
        slice_names.append(name)

    for name in sorted(needed):
        if is_pure(name):
            collect(name)
    if not slice_names:
        return
    entry = projected.blocks[projected.entry]
    insert_at = 0
    # Keep the needs-server flag initialization first if present.
    if entry.instructions and isinstance(entry.instructions[0], irin.Assign):
        first = entry.instructions[0]
        if first.dst.name == NEEDS_SERVER:
            insert_at = 1
    clones = [def_inst[name] for name in slice_names]
    entry.instructions[insert_at:insert_at] = clones


def _rematerializable_loads(
    function: Function,
    assignment: Dict[int, Partition],
    partition: Partition,
) -> List[irin.LoadPacketField]:
    """Earlier-partition header loads this partition can safely re-execute.

    Safe iff the loaded region is never written anywhere in the program
    (conservative: any write to the region disables rematerialization for
    all its loads) — then re-reading yields the same value the original
    load produced.
    """
    if partition is Partition.PRE:
        return []
    written_regions = {
        aliased_packet_region(inst.region)
        for inst in function.instructions()
        if isinstance(inst, irin.StorePacketField)
    }
    used_names: Set[str] = set()
    for inst in function.instructions():
        if assignment.get(inst.id, Partition.NON_OFF) is partition:
            for op in inst.operands():
                if isinstance(op, Reg):
                    used_names.add(op.name)
    loads: List[irin.LoadPacketField] = []
    seen: Set[str] = set()
    for inst in function.instructions():
        if not isinstance(inst, irin.LoadPacketField):
            continue
        if assignment.get(inst.id, Partition.NON_OFF).value >= partition.value:
            continue
        if aliased_packet_region(inst.region) in written_regions:
            continue
        if inst.dst.name in used_names and inst.dst.name not in seen:
            seen.add(inst.dst.name)
            loads.append(inst)
    return loads


def _region_has_work(
    function: Function,
    assignment: Dict[int, Partition],
    partition: Partition,
    branch_block: str,
    postdominators: Dict[str, Set[str]],
) -> bool:
    """Does the branch's guarded region (or the branch's own verdict arms)
    contain any instruction assigned to ``partition``?"""
    join = _immediate_postdominator(function, postdominators, branch_block)
    seen: Set[str] = set()
    stack = list(function.blocks[branch_block].successors())
    while stack:
        current = stack.pop()
        if current in seen or current == join or current not in function.blocks:
            continue
        seen.add(current)
        block = function.blocks[current]
        for inst in block.instructions:
            if isinstance(inst, (irin.Jump,)):
                continue
            if assignment.get(inst.id, Partition.NON_OFF) is partition:
                return True
        stack.extend(block.successors())
    return False


def _region_effectful(
    function: Function,
    assignment: Dict[int, Partition],
    partition: Partition,
    branch_block: str,
    postdominators: Dict[str, Set[str]],
) -> bool:
    """Does the region guarded by ``branch_block``'s branch do foreign work?"""
    join = _immediate_postdominator(function, postdominators, branch_block)
    seen: Set[str] = set()
    stack = list(function.blocks[branch_block].successors())
    while stack:
        current = stack.pop()
        if current in seen or current == join or current not in function.blocks:
            continue
        seen.add(current)
        block = function.blocks[current]
        for inst in block.instructions:
            inst_partition = assignment.get(inst.id, Partition.NON_OFF)
            if inst_partition.value > partition.value and _effectful(inst):
                return True
        stack.extend(block.successors())
    return False


def _undefined_uses(function: Function) -> Set[str]:
    defined: Set[str] = set()
    used: Set[str] = set()
    for inst in function.instructions():
        for op in inst.operands():
            if isinstance(op, Reg):
                used.add(op.name)
        result = inst.result()
        if result is not None:
            defined.add(result.name)
        found = getattr(inst, "found", None)
        if isinstance(found, Reg):
            defined.add(found.name)
    return used - defined


def _prune_unreachable(function: Function) -> None:
    reachable: Set[str] = set()
    stack = [function.entry]
    while stack:
        name = stack.pop()
        if name in reachable or name not in function.blocks:
            continue
        reachable.add(name)
        stack.extend(function.blocks[name].successors())
    for name in list(function.blocks):
        if name not in reachable:
            del function.blocks[name]


def _simplify_empty_blocks(function: Function) -> None:
    """Forward jumps through blocks that contain only a Jump."""
    forward: Dict[str, str] = {}
    for name, block in function.blocks.items():
        if name == function.entry:
            continue
        if len(block.instructions) == 1 and isinstance(
            block.instructions[0], irin.Jump
        ):
            forward[name] = block.instructions[0].target

    def resolve(name: str) -> str:
        seen = set()
        while name in forward and name not in seen:
            seen.add(name)
            name = forward[name]
        return name

    for block in function.blocks.values():
        term = block.terminator
        if isinstance(term, irin.Jump):
            target = resolve(term.target)
            if target != term.target:
                block.instructions[-1] = irin.Jump(target, stmt_id=term.stmt_id)
        elif isinstance(term, irin.Branch):
            new_true = resolve(term.if_true)
            new_false = resolve(term.if_false)
            if new_true != term.if_true or new_false != term.if_false:
                block.instructions[-1] = irin.Branch(
                    term.cond, new_true, new_false, stmt_id=term.stmt_id
                )
    _prune_unreachable(function)
