"""Switch resource model (paper §4.2.2, constraints 1–5).

Defaults mirror the paper's Tofino-class description (§2.2): a few tens of
MB of table memory, 10–20 pipeline stages (we default to the conservative
12 the paper alludes to), under ~100 bytes of per-packet scratchpad
metadata, and a 20-byte budget for the shim header that carries temporary
state between switch and server.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class SwitchResources:
    """Resource limits the generated P4 program must respect."""

    #: Constraint 1 — total switch memory for global state, in bytes.
    memory_bytes: int = 16 * 1024 * 1024
    #: Constraint 2 — match-action pipeline depth (longest dependency
    #: chain).  §2.2 puts physical stage counts "around 10 to 20"; every
    #: chain step in our metric is a stage-consuming op, so we default to
    #: the upper end.
    pipeline_depth: int = 20
    #: Constraint 4 — per-packet scratchpad metadata, in bytes.
    metadata_bytes: int = 96
    #: Constraint 5 — per-direction shim-header budget, in bytes.
    transfer_bytes: int = 20
    #: Default table size assumed for offloaded maps with no annotation
    #: (None = an unannotated map cannot be placed on the switch).
    default_map_entries: Optional[int] = None
    #: Default table size for offloaded read-only vectors.
    default_vector_entries: int = 1024

    @classmethod
    def tofino_like(cls) -> "SwitchResources":
        return cls()

    @classmethod
    def tiny(cls) -> "SwitchResources":
        """A deliberately starved switch, used by constraint-pressure tests."""
        return cls(
            memory_bytes=4096,
            pipeline_depth=6,
            metadata_bytes=16,
            transfer_bytes=8,
        )


@dataclass
class ConstraintReport:
    """Measured resource usage of a candidate partitioning."""

    memory_bytes: int = 0
    pipeline_depth_pre: int = 0
    pipeline_depth_post: int = 0
    metadata_bytes_pre: int = 0
    metadata_bytes_post: int = 0
    transfer_bytes_to_server: int = 0
    transfer_bytes_to_switch: int = 0
    #: state name -> number of offloaded access sites (constraint 3)
    state_access_sites: Dict[str, int] = field(default_factory=dict)

    def violations(self, limits: SwitchResources) -> List[str]:
        # The accounting lives in the resource allocator (this is the
        # one-tenant case of shared-switch admission); import lazily to
        # keep partition importable without the tenancy package loaded.
        from repro.tenancy.allocator import constraint_violations

        return constraint_violations(self, limits)

    def satisfied(self, limits: SwitchResources) -> bool:
        return not self.violations(limits)
