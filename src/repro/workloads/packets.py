"""Packet and flow builders used by tests, examples, and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.net.addresses import Ipv4Address, MacAddress, ip, mac
from repro.net.headers import (
    EthernetHeader,
    IPPROTO_TCP,
    IPPROTO_UDP,
    Ipv4Header,
    TcpFlags,
    TcpHeader,
    UdpHeader,
)
from repro.net.packet import RawPacket

CLIENT_MAC = "02:00:00:00:01:01"
SERVER_MAC = "02:00:00:00:02:01"


def make_tcp_packet(
    saddr: str,
    daddr: str,
    sport: int,
    dport: int,
    flags: int = TcpFlags.ACK,
    payload: bytes = b"",
    seq: int = 0,
    ingress_port: int = 1,
) -> RawPacket:
    packet = RawPacket.make_tcp(
        EthernetHeader(mac(SERVER_MAC), mac(CLIENT_MAC)),
        Ipv4Header(saddr=ip(saddr), daddr=ip(daddr)),
        TcpHeader(sport=sport, dport=dport, flags=flags, seq=seq),
        payload,
    )
    packet.ingress_port = ingress_port
    return packet


def make_udp_packet(
    saddr: str,
    daddr: str,
    sport: int,
    dport: int,
    payload: bytes = b"",
    ingress_port: int = 1,
) -> RawPacket:
    packet = RawPacket.make_udp(
        EthernetHeader(mac(SERVER_MAC), mac(CLIENT_MAC)),
        Ipv4Header(saddr=ip(saddr), daddr=ip(daddr)),
        UdpHeader(sport=sport, dport=dport),
        payload,
    )
    packet.ingress_port = ingress_port
    return packet


@dataclass
class FlowSpec:
    """One TCP flow: endpoints plus how many data packets to emit."""

    saddr: str
    daddr: str
    sport: int
    dport: int
    data_packets: int = 10
    payload_size: int = 1400
    ingress_port: int = 1
    protocol: int = IPPROTO_TCP

    def packet_count(self) -> int:
        """SYN + data + FIN for TCP; data only for UDP."""
        if self.protocol == IPPROTO_TCP:
            return self.data_packets + 2
        return self.data_packets


def flow_packets(spec: FlowSpec) -> Iterator[RawPacket]:
    """Emit a flow's packets in order: SYN, data..., FIN (TCP only)."""
    if spec.protocol == IPPROTO_TCP:
        yield make_tcp_packet(
            spec.saddr, spec.daddr, spec.sport, spec.dport,
            flags=TcpFlags.SYN, ingress_port=spec.ingress_port,
        )
        for index in range(spec.data_packets):
            yield make_tcp_packet(
                spec.saddr, spec.daddr, spec.sport, spec.dport,
                flags=TcpFlags.ACK,
                payload=b"\x00" * spec.payload_size,
                seq=index + 1,
                ingress_port=spec.ingress_port,
            )
        yield make_tcp_packet(
            spec.saddr, spec.daddr, spec.sport, spec.dport,
            flags=TcpFlags.FIN | TcpFlags.ACK,
            ingress_port=spec.ingress_port,
        )
    else:
        for _ in range(spec.data_packets):
            yield make_udp_packet(
                spec.saddr, spec.daddr, spec.sport, spec.dport,
                payload=b"\x00" * spec.payload_size,
                ingress_port=spec.ingress_port,
            )
