"""Traffic generation for the evaluation.

* :mod:`repro.workloads.packets` — packet builders and flow descriptors,
* :mod:`repro.workloads.iperf` — the TCP microbenchmark traffic (10
  parallel flows, §6.3) and per-middlebox packet streams,
* :mod:`repro.workloads.conga` — the CONGA enterprise and data-mining
  flow-size distributions and samplers (§6.3's "realistic workloads").
"""

from repro.workloads.packets import (
    FlowSpec,
    make_tcp_packet,
    make_udp_packet,
    flow_packets,
)
from repro.workloads.iperf import IperfWorkload, middlebox_stream
from repro.workloads.conga import (
    CongaDistribution,
    ENTERPRISE,
    DATA_MINING,
    sample_flow_sizes,
)

__all__ = [
    "FlowSpec",
    "make_tcp_packet",
    "make_udp_packet",
    "flow_packets",
    "IperfWorkload",
    "middlebox_stream",
    "CongaDistribution",
    "ENTERPRISE",
    "DATA_MINING",
    "sample_flow_sizes",
]
