"""iperf-style microbenchmark traffic (paper §6.3).

"We generate ten parallel TCP connections using iperf to test the maximum
achievable throughput" — :class:`IperfWorkload` produces those flows, and
:func:`middlebox_stream` adapts the stream to each middlebox's expected
traffic pattern (direction conventions, whitelisted tuples, redirected
ports, established TCP flows...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.net.headers import IPPROTO_TCP, TcpFlags
from repro.net.packet import RawPacket
from repro.workloads.packets import FlowSpec, flow_packets, make_tcp_packet

VIP = "10.0.0.100"
EXTERNAL_SERVER = "8.8.4.4"


@dataclass
class IperfWorkload:
    """N parallel TCP connections with a configurable packet size."""

    connections: int = 10
    packets_per_connection: int = 50
    packet_size: int = 1500  # wire bytes incl. headers

    @property
    def payload_size(self) -> int:
        # 14 (eth) + 20 (ip) + 20 (tcp)
        return max(0, self.packet_size - 54)

    def flows(self, daddr: str = VIP) -> List[FlowSpec]:
        return [
            FlowSpec(
                saddr=f"192.168.1.{index + 1}",
                daddr=daddr,
                sport=10000 + index,
                dport=5001,
                data_packets=self.packets_per_connection,
                payload_size=self.payload_size,
            )
            for index in range(self.connections)
        ]


def middlebox_stream(
    name: str, workload: IperfWorkload
) -> Iterator[Tuple[RawPacket, int]]:
    """(packet, ingress_port) stream appropriate for one middlebox."""
    if name in ("minilb", "lb"):
        for spec in workload.flows(VIP):
            for packet in flow_packets(spec):
                yield packet, 1
    elif name == "mazunat":
        # Internal clients talk to an external server; every packet flows
        # internal -> external (iperf sender side), like the paper's setup.
        for spec in workload.flows(EXTERNAL_SERVER):
            for packet in flow_packets(spec):
                yield packet, 1
    elif name == "firewall":
        # Traffic matching the installed whitelist (rule i: 192.168.1.(i+1)
        # -> 10.0.0.(i+1), sport 1000+i, dport 80).
        for index in range(workload.connections):
            host = (index % 250) + 1
            spec = FlowSpec(
                saddr=f"192.168.1.{host}",
                daddr=f"10.0.0.{host}",
                sport=1000 + (index % 64),
                dport=80,
                data_packets=workload.packets_per_connection,
                payload_size=workload.payload_size,
            )
            for packet in flow_packets(spec):
                yield packet, 1
    elif name == "proxy":
        for spec in workload.flows("10.9.9.9"):
            spec.dport = 80  # redirected port
            for packet in flow_packets(spec):
                yield packet, 1
    elif name == "trojan":
        for spec in workload.flows(EXTERNAL_SERVER):
            spec.dport = 5001
            for packet in flow_packets(spec):
                yield packet, 1
    else:
        raise KeyError(f"unknown middlebox {name!r}")


def established_flow_packets(
    name: str, count: int, packet_size: int = 1500
) -> Iterator[Tuple[RawPacket, int]]:
    """Data packets of one pre-established flow (for latency tests).

    The caller should first push the flow's SYN through the middlebox so
    per-flow state exists; these are the steady-state packets.
    """
    payload = b"\x00" * max(0, packet_size - 54)
    if name == "firewall":
        for seq in range(count):
            yield make_tcp_packet(
                "192.168.1.1", "10.0.0.1", 1000, 80,
                payload=payload, seq=seq + 1,
            ), 1
        return
    daddr = {"mazunat": EXTERNAL_SERVER, "trojan": EXTERNAL_SERVER,
             "proxy": "10.9.9.9"}.get(name, VIP)
    for seq in range(count):
        yield make_tcp_packet(
            "192.168.1.1", daddr, 10000, 5001 if name != "proxy" else 80,
            payload=payload, seq=seq + 1,
        ), 1
