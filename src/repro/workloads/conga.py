"""CONGA flow-size distributions (paper §6.3's realistic workloads).

The paper draws flow sizes from the enterprise and data-mining workloads
of CONGA (Alizadeh et al., SIGCOMM'14).  The original traces are not
public; the distributions below re-synthesize the published CDF shapes
with the two properties the Gallium evaluation leans on:

* ~90 % of flows in both workloads are small (< 10 packets),
* the data-mining workload's long flows are *longer* than the
  enterprise workload's ("We do better on the data-mining workload
  because the long flows are longer"), so more bytes ride the fast path.

Sampling inverts the CDF with log-linear interpolation between knots.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class CongaDistribution:
    """A flow-size CDF given as (bytes, cumulative probability) knots."""

    name: str
    knots: Tuple[Tuple[int, float], ...]

    def sample(self, rng: random.Random) -> int:
        """Draw one flow size in bytes (inverse-CDF, log-interpolated)."""
        u = rng.random()
        previous_size, previous_cdf = self.knots[0]
        if u <= previous_cdf:
            return previous_size
        for size, cdf in self.knots[1:]:
            if u <= cdf:
                # Interpolate in log-size space for a smooth heavy tail.
                span = cdf - previous_cdf
                fraction = (u - previous_cdf) / span if span > 0 else 0.0
                log_low = math.log(max(previous_size, 1))
                log_high = math.log(max(size, 1))
                return int(math.exp(log_low + fraction * (log_high - log_low)))
            previous_size, previous_cdf = size, cdf
        return self.knots[-1][0]

    def mean_estimate(self, samples: int = 20000, seed: int = 7) -> float:
        rng = random.Random(seed)
        total = sum(self.sample(rng) for _ in range(samples))
        return total / samples


#: Enterprise workload: mostly small request/response flows, tail to ~100 MB.
ENTERPRISE = CongaDistribution(
    "enterprise",
    (
        (100, 0.02),
        (500, 0.30),
        (1_000, 0.50),
        (5_000, 0.80),
        (15_000, 0.90),  # ~10 packets
        (100_000, 0.96),
        (1_000_000, 0.99),
        (10_000_000, 0.998),
        (100_000_000, 1.0),
    ),
)

#: Data-mining workload: even more tiny flows, but a much heavier tail
#: (shuffle phases move GBs).
DATA_MINING = CongaDistribution(
    "datamining",
    (
        (100, 0.45),
        (500, 0.70),
        (1_000, 0.80),
        (15_000, 0.90),  # ~10 packets
        (100_000, 0.94),
        (1_000_000, 0.96),
        (10_000_000, 0.98),
        (100_000_000, 0.995),
        (1_000_000_000, 1.0),
    ),
)

DISTRIBUTIONS = {"enterprise": ENTERPRISE, "datamining": DATA_MINING}


def sample_flow_sizes(
    distribution: CongaDistribution, count: int, seed: int = 42
) -> List[int]:
    """Draw ``count`` flow sizes (paper: "We draw 100000 flow sizes")."""
    rng = random.Random(seed)
    return [distribution.sample(rng) for _ in range(count)]


def packets_in_flow(size_bytes: int, mtu_payload: int = 1400) -> int:
    """Data packets needed to carry ``size_bytes``."""
    return max(1, (size_bytes + mtu_payload - 1) // mtu_payload)
