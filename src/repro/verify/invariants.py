"""Stage 2 — partition invariants (codes PART001-PART006).

Statically re-proves the three Gallium properties the dynamic oracles only
observe:

* **Write locality** (PART001/PART002, paper §4.3.3): state replication is
  one-directional (server journal folds into switch tables; switch-side
  writes never flow back), so a state element written in an offloaded
  partition must have *all* of its accesses offloaded.
* **Run-to-completion** (PART003, §4.2.1 rules 1-2): every dependency edge
  must respect partition phase order PRE ≤ NON_OFF ≤ POST — no def-use edge
  may flow from a later partition back into an earlier one.
* **Boundary liveness within budget** (PART004/PART005, §4.3.2): every
  value a projection reads from an earlier partition must appear in the
  generated shim header, and each direction's header must fit the
  constraint-5 transfer budget (+2 bytes of verdict/port plumbing, matching
  ``SwitchProgram.validate``).

PART006 is the cached-deployment precondition (`CachedGalliumMiddlebox`
rejects switch pipelines that RMW registers); it is only emitted when the
caller asks for ``cache_mode`` so ordinary compilations of RMW-offloading
programs stay clean.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.analysis.depgraph import build_dependency_graph
from repro.codegen.headers import ShimLayout
from repro.ir import instructions as irin
from repro.ir.function import Function
from repro.ir.validate import unsatisfied_uses
from repro.partition.labels import Partition
from repro.partition.plan import PartitionPlan

from repro.verify.diagnostics import Diagnostic, STAGE_PARTITION, error


def verify_partition(
    plan: PartitionPlan,
    shim_to_server: ShimLayout,
    shim_to_switch: ShimLayout,
    cache_mode: bool = False,
) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    out.extend(_check_write_locality(plan))
    out.extend(_check_run_to_completion(plan))
    out.extend(_check_boundary_liveness(plan, shim_to_server, shim_to_switch))
    out.extend(_check_shim_budget(plan, shim_to_server, shim_to_switch))
    if cache_mode:
        out.extend(_check_cache_compatibility(plan))
    return out


def _partition_of(plan: PartitionPlan, inst: irin.Instruction) -> Partition:
    # Projection treats unassigned instructions as server-side; mirror that.
    return plan.assignment.get(inst.id, Partition.NON_OFF)


def _check_write_locality(plan: PartitionPlan) -> List[Diagnostic]:
    state_names = set(plan.middlebox.state)
    offloaded_writers: Dict[str, List[irin.Instruction]] = {}
    server_writers: Set[str] = set()
    server_readers: Set[str] = set()
    for inst in plan.middlebox.process.instructions():
        partition = _partition_of(plan, inst)
        for loc in inst.writes():
            if loc.is_global and loc.name in state_names:
                if partition is Partition.NON_OFF:
                    server_writers.add(loc.name)
                else:
                    offloaded_writers.setdefault(loc.name, []).append(inst)
        if partition is Partition.NON_OFF:
            for loc in inst.reads():
                if loc.is_global and loc.name in state_names:
                    server_readers.add(loc.name)
    out: List[Diagnostic] = []
    for name, writers in sorted(offloaded_writers.items()):
        if name in server_writers:
            code, what = "PART001", "also written on the server"
        elif name in server_readers:
            code, what = "PART002", "read on the server"
        else:
            continue
        for inst in writers:
            out.append(
                error(
                    code,
                    STAGE_PARTITION,
                    f"offloaded write to state {name!r} which is {what}"
                    " (one-directional replication violated)",
                    function=plan.middlebox.process.name,
                    location=inst.location,
                )
            )
    return out


def _check_run_to_completion(plan: PartitionPlan) -> List[Diagnostic]:
    graph = build_dependency_graph(plan.middlebox.process)
    out: List[Diagnostic] = []
    for (src_id, dst_id), kinds in sorted(graph.edges.items()):
        src = graph.by_id(src_id)
        dst = graph.by_id(dst_id)
        src_phase = _partition_of(plan, src)
        dst_phase = _partition_of(plan, dst)
        if src_phase.value > dst_phase.value:
            kind_names = ",".join(sorted(k.value for k in kinds))
            out.append(
                error(
                    "PART003",
                    STAGE_PARTITION,
                    f"{dst_phase.name} instruction {dst!r} depends"
                    f" ({kind_names}) on {src_phase.name} instruction"
                    f" {src!r}: execution order would flow backward",
                    function=plan.middlebox.process.name,
                    location=dst.location,
                )
            )
    return out


def _definitions(function: Function) -> Set[str]:
    defs: Set[str] = set()
    for inst in function.instructions():
        result = inst.result()
        if result is not None:
            defs.add(result.name)
        found = getattr(inst, "found", None)
        if found is not None and hasattr(found, "name"):
            defs.add(found.name)
    return defs


def _check_boundary_liveness(
    plan: PartitionPlan,
    shim_to_server: ShimLayout,
    shim_to_switch: ShimLayout,
) -> List[Diagnostic]:
    """Re-derive each projection's needs and compare against the shims."""
    pre_defs = _definitions(plan.pre)
    non_off_defs = _definitions(plan.non_offloaded)
    out: List[Diagnostic] = []
    server_fields = set(shim_to_server.field_names())
    for name, reg in sorted(unsatisfied_uses(plan.non_offloaded).items()):
        if name in pre_defs and name not in server_fields:
            out.append(
                error(
                    "PART004",
                    STAGE_PARTITION,
                    f"%{name} crosses the pre->server boundary but is"
                    " missing from the to-server shim"
                    f" {sorted(server_fields)}",
                    function=plan.non_offloaded.name,
                )
            )
    switch_fields = set(shim_to_switch.field_names())
    for name, reg in sorted(unsatisfied_uses(plan.post).items()):
        upstream = name in pre_defs or name in non_off_defs
        if upstream and name not in switch_fields:
            out.append(
                error(
                    "PART004",
                    STAGE_PARTITION,
                    f"%{name} crosses the server->post boundary but is"
                    " missing from the to-switch shim"
                    f" {sorted(switch_fields)}",
                    function=plan.post.name,
                )
            )
    return out


def _check_shim_budget(
    plan: PartitionPlan,
    shim_to_server: ShimLayout,
    shim_to_switch: ShimLayout,
) -> List[Diagnostic]:
    # +2 bytes: the verdict/egress-port plumbing fields the runtime adds on
    # top of the constraint-5 payload budget (mirrors SwitchProgram.validate).
    budget = plan.limits.transfer_bytes + 2
    out: List[Diagnostic] = []
    for layout in (shim_to_server, shim_to_switch):
        if layout.byte_size > budget:
            out.append(
                error(
                    "PART005",
                    STAGE_PARTITION,
                    f"shim {layout.direction} is {layout.byte_size}B"
                    f" (> {budget}B budget)",
                    function=plan.middlebox.process.name,
                )
            )
    return out


def _check_cache_compatibility(plan: PartitionPlan) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for function in (plan.pre, plan.post):
        for inst in function.instructions():
            if isinstance(inst, irin.RegisterRMW):
                out.append(
                    error(
                        "PART006",
                        STAGE_PARTITION,
                        f"switch pipeline RMWs register {inst.state!r}:"
                        " a cached deployment cannot rerun it on the"
                        " miss path without double-applying the update",
                        function=function.name,
                        location=inst.location,
                    )
                )
    return out
