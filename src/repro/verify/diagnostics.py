"""Diagnostic records produced by the static verification layer.

Every check in :mod:`repro.verify` reports a :class:`Diagnostic` instead of
raising: a stable machine-readable code (``IR007``, ``PART003``, ``P4L005``
...), a severity, the verification stage that produced it, and — whenever
the offending IR instruction carries one — a source span, so a partitioner
bug surfaces as ``fw.cc:12:4: error PART003: ...`` rather than a deploy-time
``SwitchProgramError``.  A :class:`VerificationReport` aggregates the
diagnostics for one program and serializes to the JSON schema CI consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.lang.diagnostics import SourceLocation

#: Stage identifiers, in pipeline order.
STAGE_IR = "ir"
STAGE_PARTITION = "partition"
STAGE_P4LINT = "p4lint"
STAGE_TENANCY = "tenancy"
STAGE_SYMBOLIC = "symbolic"

#: code -> one-line description, the authoritative registry (docs render it).
DIAGNOSTIC_CODES: Dict[str, str] = {
    # Stage 1 — IR verifier (structural well-formedness).
    "IR001": "entry block missing from function",
    "IR002": "empty basic block",
    "IR003": "block does not end with a terminator",
    "IR004": "terminator in the middle of a block body",
    "IR005": "branch or jump to an unknown block",
    "IR006": "temporary assigned more than once (SSA violation)",
    "IR007": "register may be read before any definition",
    "IR008": "unreachable block silently dropped from the CFG",
    "IR009": "operand type inconsistency",
    "IR010": "extern call does not match its declared signature",
    # Stage 2 — partition invariants (paper §4.1–§4.3).
    "PART001": "state written both in an offloaded partition and on the server",
    "PART002": "offloaded write to state the server also reads",
    "PART003": "dependency edge flows backward across partitions",
    "PART004": "value live across a partition boundary missing from the shim",
    "PART005": "shim header exceeds the per-direction transfer budget",
    "PART006": "switch-side register write incompatible with cached deployment",
    # Stage 3 — P4 resource lint (paper §2.2 constraints 1-5).
    "P4L001": "instruction not expressible in a P4 pipeline",
    "P4L002": "state access not backed by a switch table or register",
    "P4L003": "stateful element accessed more than once per pipeline",
    "P4L004": "control-flow loop in a switch pipeline",
    "P4L005": "table memory exceeds the switch memory budget (constraint 1)",
    "P4L006": "dependency chain exceeds the pipeline depth (constraint 2)",
    "P4L007": "per-packet metadata exceeds the scratchpad (constraint 4)",
    "P4L008": "register wider than the 64-bit ALU datapath",
    "P4L009": "more tables applied than physical pipeline stages",
    "P4L010": "action complexity: oversized straight-line block",
    # Stage 4 — multi-tenant combined-artifact lint (shared-budget
    # admission, repro.tenancy).
    "TEN001": "tenant rejected by the shared-switch resource allocator",
    "TEN002": "combined artifact exceeds a shared-switch budget axis",
    "TEN003": "per-tenant artifact failed the P4 resource lint",
    "TEN004": "tenant namespaces collide on the shared switch",
    # Stage 5 — translation validation (symbolic equivalence prover,
    # repro.verify.symbolic).
    "SYM001": "verdict mismatch between source and composed deployment",
    "SYM002": "egress-port mismatch on an emitted packet",
    "SYM003": "header-field mismatch on an emitted packet",
    "SYM004": "state-write mismatch after processing",
    "SYM005": "replicated switch copy diverges from the server master",
    "SYM006": "composition crashes where the source program does not",
    "SYM007": "path-condition unsoundness: counterexample replays equivalent",
    "SYM008": "symbolic budget exhausted — equivalence inconclusive",
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of the static verifier."""

    code: str
    severity: str  # "error" | "warning"
    stage: str  # STAGE_IR | STAGE_PARTITION | STAGE_P4LINT
    message: str
    function: Optional[str] = None
    block: Optional[str] = None
    location: Optional[SourceLocation] = None

    def format(self) -> str:
        span = ""
        if self.location is not None and self.location.line:
            span = f"{self.location}: "
        where = ""
        if self.function:
            where = f" [{self.function}" + (f"/{self.block}]" if self.block else "]")
        return f"{span}{self.severity} {self.code}: {self.message}{where}"

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "code": self.code,
            "severity": self.severity,
            "stage": self.stage,
            "message": self.message,
        }
        if self.function:
            out["function"] = self.function
        if self.block:
            out["block"] = self.block
        if self.location is not None and self.location.line:
            out["location"] = {
                "file": self.location.filename,
                "line": self.location.line,
                "column": self.location.column,
            }
        return out


@dataclass
class VerificationReport:
    """All diagnostics the three stages produced for one program."""

    program: str
    diagnostics: List[Diagnostic] = field(default_factory=list)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "warning"]

    @property
    def ok(self) -> bool:
        return not self.errors

    def codes(self) -> List[str]:
        return [d.code for d in self.diagnostics]

    def extend(self, diagnostics: List[Diagnostic]) -> None:
        self.diagnostics.extend(diagnostics)

    def format(self) -> str:
        if not self.diagnostics:
            return f"{self.program}: verification OK"
        lines = [d.format() for d in self.diagnostics]
        verdict = "OK" if self.ok else "FAILED"
        lines.append(
            f"{self.program}: verification {verdict}"
            f" ({len(self.errors)} errors, {len(self.warnings)} warnings)"
        )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "program": self.program,
            "ok": self.ok,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }


class VerificationError(Exception):
    """Compilation rejected by the static verifier."""

    def __init__(self, report: VerificationReport):
        self.report = report
        super().__init__(report.format())


def error(
    code: str,
    stage: str,
    message: str,
    function: Optional[str] = None,
    block: Optional[str] = None,
    location: Optional[SourceLocation] = None,
) -> Diagnostic:
    assert code in DIAGNOSTIC_CODES, code
    return Diagnostic(code, "error", stage, message, function, block, location)


def warning(
    code: str,
    stage: str,
    message: str,
    function: Optional[str] = None,
    block: Optional[str] = None,
    location: Optional[SourceLocation] = None,
) -> Diagnostic:
    assert code in DIAGNOSTIC_CODES, code
    return Diagnostic(code, "warning", stage, message, function, block, location)
