"""Stage 3 — P4 resource lint (codes P4L001-P4L010).

Walks the emitted switch program (pipeline CFGs + table/register specs, the
structure the ``.p4`` text is printed from) and statically bounds it against
the same constraint-1..5 limits :mod:`repro.switchsim` enforces when a
program is loaded — so a resource violation becomes a compile error with a
source span instead of a deploy-time ``SwitchProgramError``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.depgraph import build_dependency_graph
from repro.analysis.distance import dependency_distances
from repro.analysis.liveness import peak_live_bytes
from repro.analysis.reachability import compute_reachability
from repro.ir import instructions as irin
from repro.ir.function import Function
from repro.switchsim.program import _SWITCH_STATE_OPS, SwitchProgram

from repro.verify.diagnostics import Diagnostic, STAGE_P4LINT, error, warning

#: Widest register a single-stage ALU operation can update atomically.
REGISTER_WIDTH_LIMIT = 64

#: Stage-costing instructions per block beyond which a compiled action is
#: unlikely to fit a single stage's VLIW budget (lint warning only).  Pure
#: copies and casts are free — the same accounting as
#: ``analysis.distance._stage_cost``.
ACTION_COMPLEXITY_LIMIT = 32

_FREE_OPS = (irin.Assign, irin.Cast, irin.Jump, irin.Return)


def lint_switch_program(program: SwitchProgram) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for label, function in (("pre", program.pre), ("post", program.post)):
        out.extend(_lint_pipeline(program, label, function))
    out.extend(_lint_memory(program))
    out.extend(_lint_registers(program))
    return out


def _lint_pipeline(
    program: SwitchProgram, label: str, function: Function
) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    info = compute_reachability(function)
    if info.cyclic_blocks:
        out.append(
            error(
                "P4L004",
                STAGE_P4LINT,
                f"control-flow loop through blocks"
                f" {sorted(info.cyclic_blocks)}",
                function=function.name,
            )
        )
    state_sites: Dict[str, List[irin.Instruction]] = {}
    for inst in function.instructions():
        if isinstance(inst, _SWITCH_STATE_OPS):
            state = inst.state
            if state not in program.tables and state not in program.registers:
                out.append(
                    error(
                        "P4L002",
                        STAGE_P4LINT,
                        f"access to state {state!r} that has no switch"
                        " table or register backing it",
                        function=function.name,
                        location=inst.location,
                    )
                )
            state_sites.setdefault(state, []).append(inst)
        elif not inst.p4_supported():
            out.append(
                error(
                    "P4L001",
                    STAGE_P4LINT,
                    f"instruction not expressible in P4: {inst!r}",
                    function=function.name,
                    location=inst.location,
                )
            )
    for state, sites in sorted(state_sites.items()):
        if len(sites) > 1 and not (
            state in program.registers
            and _mutually_exclusive(info, sites)
        ):
            out.append(
                error(
                    "P4L003",
                    STAGE_P4LINT,
                    f"state {state!r} accessed {len(sites)} times in the"
                    f" {label} pipeline (a table applies at most once)",
                    function=function.name,
                    location=sites[1].location,
                )
            )
    tables_applied = {
        state for state in state_sites if state in program.tables
    }
    if len(tables_applied) > program.limits.pipeline_depth:
        out.append(
            error(
                "P4L009",
                STAGE_P4LINT,
                f"{len(tables_applied)} tables applied in the {label}"
                f" pipeline (> {program.limits.pipeline_depth} stages)",
                function=function.name,
            )
        )
    metadata = peak_live_bytes(function)
    if metadata > program.limits.metadata_bytes:
        out.append(
            error(
                "P4L007",
                STAGE_P4LINT,
                f"peak live metadata {metadata}B exceeds the"
                f" {program.limits.metadata_bytes}B scratchpad",
                function=function.name,
            )
        )
    if not info.cyclic_blocks:
        # Depth is the longest stage-costing dependency chain; undefined
        # over cyclic pipelines (P4L004 already rejects those).
        graph = build_dependency_graph(function, info)
        from_entry, _ = dependency_distances(graph)
        depth = max(from_entry.values(), default=0)
        if depth > program.limits.pipeline_depth:
            out.append(
                error(
                    "P4L006",
                    STAGE_P4LINT,
                    f"dependency chain of {depth} stages exceeds the"
                    f" {program.limits.pipeline_depth}-stage pipeline",
                    function=function.name,
                )
            )
    for block_name, block in function.blocks.items():
        body = sum(
            1 for inst in block.body if not isinstance(inst, _FREE_OPS)
        )
        if body > ACTION_COMPLEXITY_LIMIT:
            out.append(
                warning(
                    "P4L010",
                    STAGE_P4LINT,
                    f"{body} stage-costing instructions in one block"
                    f" (> {ACTION_COMPLEXITY_LIMIT}); the compiled action"
                    " may not fit a single stage",
                    function=function.name,
                    block=block_name,
                )
            )
    return out


def _mutually_exclusive(info, sites: List[irin.Instruction]) -> bool:
    for i, first in enumerate(sites):
        for second in sites[i + 1 :]:
            if info.can_happen_after(first, second) or info.can_happen_after(
                second, first
            ):
                return False
    return True


def _lint_memory(program: SwitchProgram) -> List[Diagnostic]:
    total = 0
    for spec in program.tables.values():
        total += spec.size * (sum(spec.key_widths) + spec.value_width + 7) // 8
    if total > program.limits.memory_bytes:
        return [
            error(
                "P4L005",
                STAGE_P4LINT,
                f"tables need {total}B of switch memory"
                f" (> {program.limits.memory_bytes}B, constraint 1)",
            )
        ]
    return []


def _lint_registers(program: SwitchProgram) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for name, spec in sorted(program.registers.items()):
        if spec.width_bits > REGISTER_WIDTH_LIMIT:
            out.append(
                error(
                    "P4L008",
                    STAGE_P4LINT,
                    f"register {name!r} is {spec.width_bits} bits wide"
                    f" (> {REGISTER_WIDTH_LIMIT}-bit ALU datapath)",
                )
            )
    return out
