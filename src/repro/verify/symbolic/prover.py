"""Translation validation: the per-compilation symbolic equivalence prover.

For one compiled artifact this module proves (or disproves with a
concrete, interpreter-confirmed counterexample) that

    switch pre-pipeline  ⊕  punt-path server partition  ⊕  post-pipeline

composed through the §4.3.3 replication shim is observably equivalent to
the *source* lowered function, on a bounded symbolic packet space:

* symbolic IP/TCP/UDP header fields (every field the difftest oracle
  observes), one packet shape per scenario (TCP or UDP headers present,
  ``ip.protocol`` concrete per shape),
* concrete Ethernet header, payload, and ingress port per scenario,
* concrete table/register pre-states enumerated by a seeded sampler
  (the post-``configure()`` state plus randomized variants).

Within one scenario the prover runs the standard script-DFS over worlds
(decision vectors — see :class:`~repro.verify.symbolic.engine.Chooser`),
executing the source function and the full composition under one shared
chooser so corresponding branches take corresponding sides.  Observables
are compared exactly the way ``repro.difftest.oracle`` compares runtimes:
verdict, resolved egress port, the observed header fields, final maps and
scalars (switch-resident registers read from the switch), and
replicated-table convergence.

A symbolic mismatch is never reported directly: the prover first searches
the path condition for a concrete witness packet + pre-state, replays it
through the real interpreter deployments, and only a replay that actually
diverges becomes a ``SYM00x`` error (and a minimized reproducer appended
to the difftest corpus).  A witness whose replay *agrees* is path-condition
unsoundness (``SYM007``) — a prover bug, reported loudly.  Worlds the
budgets cut off make the whole proof inconclusive (``SYM008``) rather
than silently passing.
"""

from __future__ import annotations

import itertools
import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.codegen.headers import (
    FLAG_VERDICT_DROP,
    FLAG_VERDICT_NONE,
    FLAG_VERDICT_SEND,
)
from repro.difftest.generator import FIELD_WIDTHS
from repro.difftest.oracle import DEFAULT_PORT_PAIRS
from repro.ir import instructions as irin
from repro.ir.externs import ExternHost
from repro.ir.interp import Interpreter, PacketView, StateStore
from repro.verify.diagnostics import (
    STAGE_SYMBOLIC,
    Diagnostic,
    error,
    warning,
)
from repro.verify.symbolic.engine import (
    BudgetExhausted,
    Chooser,
    CompositionViolation,
    SymExecError,
    SymExternHost,
    SymPacketView,
    SymStateStore,
    SymSwitchState,
    sym_run,
)
from repro.verify.symbolic.terms import (
    Term,
    atoms_of,
    binop,
    const,
    constants_of,
    evaluate,
    truth,
    wrap,
)
from repro.workloads.packets import make_tcp_packet, make_udp_packet

#: divergence kind (oracle vocabulary) -> symbolic diagnostic code
KIND_TO_CODE = {
    "verdict": "SYM001",
    "egress": "SYM002",
    "field": "SYM003",
    "state": "SYM004",
    "switch_state": "SYM005",
}


@dataclass(frozen=True)
class SymbolicBudget:
    """Deterministic exploration bounds (no wall-clock cutoffs)."""

    #: worlds (decision vectors) explored per scenario
    max_worlds: int = 4096
    #: fresh boolean decisions per world (source + composition combined)
    max_decisions: int = 192
    #: symbolic interpreter steps per function run
    max_steps: int = 200_000
    #: exhaustive witness search cap (product of candidate pool sizes)
    witness_limit: int = 20_000
    #: random witness draws when the pool product exceeds the cap
    random_tries: int = 4_000
    #: randomized pre-state variants beyond the post-configure base
    prestate_variants: int = 2
    #: witnesses replayed per mismatch before giving up
    confirm_attempts: int = 8
    #: seed for the pre-state sampler and the random witness draws
    seed: int = 0


#: Small bounds for per-test and difftest cross-check use.
SMOKE_BUDGET = SymbolicBudget(
    max_worlds=512, witness_limit=4_000, random_tries=1_000,
    prestate_variants=1,
)


@dataclass
class Counterexample:
    """One confirmed disproof: packet + pre-state the interpreter
    confirms diverges between the baseline and the deployment."""

    code: str
    detail: str
    packet: dict  # serialized packet spec (see packet_from_spec)
    prestate: dict  # concrete server StateStore snapshot
    scenario: str
    confirmed: bool
    replay_detail: str = ""
    corpus_path: Optional[str] = None

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "detail": self.detail,
            "packet": self.packet,
            "prestate": serialize_prestate(self.prestate),
            "scenario": self.scenario,
            "confirmed": self.confirmed,
            "replay_detail": self.replay_detail,
            "corpus_path": self.corpus_path,
        }


@dataclass
class SymbolicReport:
    """Outcome of one translation-validation run."""

    program: str
    diagnostics: List[Diagnostic] = field(default_factory=list)
    counterexamples: List[Counterexample] = field(default_factory=list)
    inconclusive: List[str] = field(default_factory=list)
    scenarios: int = 0
    worlds: int = 0
    decisions: int = 0
    source_crash_worlds: int = 0
    elapsed_s: float = 0.0

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def proved(self) -> bool:
        return not self.errors and not self.inconclusive

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "program": self.program,
            "proved": self.proved,
            "scenarios": self.scenarios,
            "worlds": self.worlds,
            "decisions": self.decisions,
            "source_crash_worlds": self.source_crash_worlds,
            "elapsed_s": round(self.elapsed_s, 3),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "counterexamples": [c.to_dict() for c in self.counterexamples],
            "inconclusive": list(self.inconclusive),
        }


# ---------------------------------------------------------------------------
# Packet specs (shared with the difftest corpus)
# ---------------------------------------------------------------------------


def packet_from_spec(spec: dict):
    """Materialize a serialized counterexample packet.

    The spec pins every symbolic header field; unspecified fields keep the
    template defaults (which is exactly what the symbolic run assumed —
    absent atoms evaluate to their concrete template value or 0)."""
    payload = bytes.fromhex(spec.get("payload", ""))
    ingress = int(spec.get("ingress", 1))
    if spec.get("kind") == "udp":
        packet = make_udp_packet(
            "10.0.0.1", "10.9.0.1", 1, 1, payload=payload,
            ingress_port=ingress,
        )
    else:
        packet = make_tcp_packet(
            "10.0.0.1", "10.9.0.1", 1, 1, payload=payload,
            ingress_port=ingress,
        )
    view = PacketView(packet)
    for key, value in spec.get("fields", {}).items():
        region, field_name = key.split(".", 1)
        view.set_field(region, field_name, int(value))
    return packet


def serialize_prestate(prestate: dict) -> dict:
    """JSON-safe form of a StateStore snapshot (tuple keys -> lists)."""
    return {
        "maps": {
            name: [[list(keys), value] for keys, value in entries.items()]
            for name, entries in prestate.get("maps", {}).items()
        },
        "vectors": {
            name: list(values)
            for name, values in prestate.get("vectors", {}).items()
        },
        "scalars": dict(prestate.get("scalars", {})),
    }


def deserialize_prestate(data: dict) -> dict:
    """Inverse of :func:`serialize_prestate`."""
    return {
        "maps": {
            name: {tuple(keys): value for keys, value in entries}
            for name, entries in data.get("maps", {}).items()
        },
        "vectors": {
            name: list(values)
            for name, values in data.get("vectors", {}).items()
        },
        "scalars": dict(data.get("scalars", {})),
    }


# ---------------------------------------------------------------------------
# Scenarios
# ---------------------------------------------------------------------------


@dataclass
class Scenario:
    """One concrete slice of the bounded packet/state space."""

    label: str
    kind: str  # "tcp" | "udp"
    ingress: int
    payload: bytes
    prestate: dict  # server StateStore snapshot (concrete)
    switch_prestate: dict  # derived: {"tables": ..., "registers": ...}
    #: atom name -> (region, field, width)
    atoms: Dict[str, Tuple[str, str, int]] = field(default_factory=dict)


def _base_prestate(plan, config) -> dict:
    state = StateStore(plan.middlebox.state)
    externs = ExternHost(config=config)
    if plan.middlebox.configure is not None:
        Interpreter(plan.middlebox.configure, state, externs).run()
    state.drain_journal()
    return state.snapshot()


def _member_width(type_, default: int = 32) -> int:
    try:
        width = type_.bit_width()
    except Exception:
        return default
    return width if width and width > 0 else default


def _sample_prestates(plan, base: dict, variants: int,
                      rng: random.Random) -> List[dict]:
    """The base post-configure state plus seeded randomized variants.

    Variants perturb scalars and add a couple of map entries (within the
    declared key/value widths and ``max_entries`` caps) so lookups can
    both hit and miss; configure-built vectors are left alone (their
    contents are config-determined and the oracle never compares them)."""
    prestates = [base]
    members = plan.middlebox.state
    if not members:
        return prestates
    for _ in range(max(0, variants)):
        snap = {
            "maps": {k: dict(v) for k, v in base["maps"].items()},
            "vectors": {k: list(v) for k, v in base["vectors"].items()},
            "scalars": dict(base["scalars"]),
        }
        changed = False
        for name, member in members.items():
            if member.kind == "map":
                key_masks = [
                    (1 << _member_width(t)) - 1 for t in member.key_types()
                ]
                value_mask = (1 << _member_width(member.value_type())) - 1
                table = snap["maps"][name]
                cap = member.max_entries
                for _entry in range(2):
                    if cap is not None and len(table) >= cap:
                        break
                    keys = tuple(
                        rng.choice([0, 1, 2, rng.randrange(1 << 16)]) & mask
                        for mask in key_masks
                    )
                    table[keys] = rng.randrange(1 << 16) & value_mask
                    changed = True
            elif member.kind == "scalar":
                mask = (1 << _member_width(member.member_type)) - 1
                snap["scalars"][name] = rng.randrange(1 << 16) & mask
                changed = True
        if changed:
            prestates.append(snap)
    return prestates


def _switch_prestate(plan, server_snapshot: dict) -> dict:
    """Derive the switch's pre-state exactly like ``sync_all_state``."""
    tables: Dict[str, dict] = {}
    registers: Dict[str, int] = {}
    for name, placement in plan.placements.items():
        if not placement.on_switch:
            continue
        member = placement.member
        if member.kind == "map":
            tables[name] = dict(server_snapshot["maps"][name])
        elif member.kind == "vector":
            tables[name] = {
                (index,): value
                for index, value in enumerate(
                    server_snapshot["vectors"][name]
                )
            }
        else:
            registers[name] = server_snapshot["scalars"][name]
    return {"tables": tables, "registers": registers}


def _function_traits(function) -> Tuple[bool, bool]:
    """(reads meta.ingress_port, calls payload externs) for ``function``."""
    reads_ingress = False
    reads_payload = False
    for block in function.blocks.values():
        for inst in block.instructions:
            if isinstance(inst, irin.LoadPacketField):
                if inst.region == "meta" and inst.field == "ingress_port":
                    reads_ingress = True
            elif isinstance(inst, irin.ExternCall):
                if inst.name in ("payload_len", "payload_byte"):
                    reads_payload = True
    return reads_ingress, reads_payload


#: The symbolic header fields: every oracle-observed field except
#: ``ip.protocol``, which stays concrete per packet shape (the two shapes
#: cover both protocol branches; a protocol value contradicting the
#: header shape is not a packet the workloads can build).
_SYMBOLIC_FIELDS = sorted(
    key for key in FIELD_WIDTHS if key != ("ip", "protocol")
)

_IPPROTO = {"tcp": 6, "udp": 17}


def enumerate_scenarios(plan, config, budget: SymbolicBudget) -> List[Scenario]:
    rng = random.Random(budget.seed)
    base = _base_prestate(plan, config)
    variants = budget.prestate_variants if plan.middlebox.state else 0
    prestates = _sample_prestates(plan, base, variants, rng)
    reads_ingress, reads_payload = _function_traits(plan.middlebox.process)
    ingresses = [1, 2] if reads_ingress else [1]
    payloads = [b"", b"AB\x00\x07"] if reads_payload else [b""]
    scenarios: List[Scenario] = []
    for kind in ("tcp", "udp"):
        for ingress in ingresses:
            for payload in payloads:
                for index, prestate in enumerate(prestates):
                    scenarios.append(Scenario(
                        label=(f"{kind}/in{ingress}/pay{len(payload)}"
                               f"/state{index}"),
                        kind=kind,
                        ingress=ingress,
                        payload=payload,
                        prestate=prestate,
                        switch_prestate=_switch_prestate(plan, prestate),
                    ))
    return scenarios


def _template_eth(kind: str) -> Dict[Tuple[str, str], int]:
    packet = (make_udp_packet if kind == "udp" else make_tcp_packet)(
        "10.0.0.1", "10.9.0.1", 1, 1
    )
    eth = packet.eth
    return {
        ("eth", "h_dest"): int(eth.dst),
        ("eth", "h_source"): int(eth.src),
        ("eth", "h_proto"): eth.ethertype,
    }


def make_symbolic_packet(scenario: Scenario):
    """Fresh :class:`SymPacketView` + atom registry for one scenario.

    Atoms are shared by name across the source and composition runs (both
    copy the same base view), which is what makes structural term identity
    meaningful."""
    from repro.verify.symbolic.terms import atom

    fields: Dict[Tuple[str, str], Term] = {}
    for key, value in _template_eth(scenario.kind).items():
        fields[key] = const(value)
    has_tcp = scenario.kind == "tcp"
    has_udp = scenario.kind == "udp"
    # Concrete structural fields the subset can read but the oracle does
    # not observe (writes to them are raw stores, faithfully mirrored).
    fields[("ip", "version")] = const(4)
    fields[("ip", "ihl")] = const(5)
    fields[("ip", "protocol")] = const(_IPPROTO[scenario.kind])
    if has_tcp:
        fields[("tcp", "doff")] = const(5)
    atoms: Dict[str, Tuple[str, str, int]] = {}
    for region, name in _SYMBOLIC_FIELDS:
        if region == "tcp" and not has_tcp:
            continue
        if region == "udp" and not has_udp:
            continue
        width = FIELD_WIDTHS[(region, name)]
        atom_name = f"{region}.{name}"
        fields[(region, name)] = atom(atom_name, width)
        atoms[atom_name] = (region, name, width)
    scenario.atoms = atoms
    return SymPacketView(
        fields, has_ip=True, has_tcp=has_tcp, has_udp=has_udp,
        payload=scenario.payload, ingress_port=const(scenario.ingress),
    )


# ---------------------------------------------------------------------------
# One world: source vs composition
# ---------------------------------------------------------------------------


@dataclass
class Mismatch:
    kind: str  # oracle divergence vocabulary, see KIND_TO_CODE
    detail: str
    #: term pair to drive apart (None: the mismatch is path-definite)
    obligation: Optional[Tuple[Term, Term]] = None


@dataclass
class WorldResult:
    status: str  # "ok" | "mismatch" | "composition" | "source_error"
    chooser: Chooser
    mismatch: Optional[Mismatch] = None
    detail: str = ""


def _verdict_flag(verdict: Optional[str]) -> int:
    if verdict == "send":
        return FLAG_VERDICT_SEND
    if verdict == "drop":
        return FLAG_VERDICT_DROP
    return FLAG_VERDICT_NONE


def _resolve_egress_sym(egress: Optional[Term], ingress: int,
                        chooser: Chooser) -> Term:
    """Mirror of ``SwitchModel._resolve_egress`` (and the baseline's
    ``explicit if explicit else port_pairs`` rule): an explicit port of 0
    falls through to the port-pair map."""
    fallback = const(DEFAULT_PORT_PAIRS.get(ingress, ingress))
    if egress is None:
        return fallback
    if chooser.decide(binop(irin.BinOpKind.NE, egress, const(0))):
        return egress
    return fallback


def _shim_pack(layout, values: Dict[str, Term]) -> Dict[str, Term]:
    """encode ∘ decode through a shim layout: wrap each field to width."""
    return {
        f.name: wrap(values.get(f.name, const(0)), (1 << f.width_bits) - 1)
        for f in layout.fields
    }


def _replicated_members(plan) -> set:
    from repro.partition.plan import PlacementKind

    return {
        name
        for name, placement in plan.placements.items()
        if placement.replicated
        or placement.kind is PlacementKind.SWITCH_TABLE
    }


def _sym_updates(plan, replicated: set, journal: List[tuple]) -> List[tuple]:
    """Mirror of ``ServerRuntime._updates_from_journal``."""
    updates: List[tuple] = []
    for op, member, keys, value in journal:
        if member not in replicated:
            continue
        placement = plan.placements[member]
        if placement.member.kind == "scalar":
            updates.append(("register", member, (), value))
        elif op == "insert":
            updates.append(("insert", member, keys, value))
        elif op == "erase":
            updates.append(("delete", member, keys, None))
        elif op == "push":
            updates.append(("insert", member, keys, value))
        elif op == "store":
            updates.append(("register", member, (), value))
    return updates


@dataclass
class CompOutcome:
    verdict: str  # "send" | "drop"
    egress: Optional[Term]
    packet: SymPacketView
    server: SymStateStore
    switch: SymSwitchState


def _run_composition(plan, program, scenario: Scenario,
                     base_packet: SymPacketView, chooser: Chooser,
                     config, max_steps: int) -> CompOutcome:
    packet = base_packet.copy()
    switch = SymSwitchState(program, scenario.switch_prestate, chooser)
    server = SymStateStore(plan.middlebox.state, scenario.prestate, chooser)
    # The switch pipelines run with a bare ExternHost (no deployment
    # config); only the server's interpreter sees the config sections.
    switch_externs = SymExternHost(None, chooser)
    server_externs = SymExternHost(config, chooser)

    switch.begin_traversal()
    pre = sym_run(plan.pre, switch, chooser, packet=packet,
                  externs=switch_externs, max_steps=max_steps)
    if pre.verdict == "send":
        egress = _resolve_egress_sym(pre.egress, scenario.ingress, chooser)
        return CompOutcome("send", egress, packet, server, switch)
    if pre.verdict == "drop":
        return CompOutcome("drop", None, packet, server, switch)

    # Punt: shim to the server (encode ∘ decode wraps to field widths).
    to_server = {"__ingress_port": const(scenario.ingress)}
    for shim_field in program.shim_to_server.fields:
        if shim_field.name.startswith("__"):
            continue
        to_server[shim_field.name] = pre.env.get(shim_field.name, const(0))
    values = _shim_pack(program.shim_to_server, to_server)
    values.pop("__ingress_port", None)
    env = {k: v for k, v in values.items() if not k.startswith("__")}
    server.drain_journal()
    server_result = sym_run(
        plan.non_offloaded, server, chooser, packet=packet,
        externs=server_externs, initial_env=env, max_steps=max_steps,
    )
    updates = _sym_updates(
        plan, _replicated_members(plan), server.drain_journal()
    )

    out_values: Dict[str, Term] = {
        "__verdict": const(_verdict_flag(server_result.verdict)),
        "__egress_port": (server_result.egress
                          if server_result.egress is not None else const(0)),
        "__ingress_port": const(scenario.ingress),
    }
    for shim_field in program.shim_to_switch.fields:
        if shim_field.name.startswith("__"):
            continue
        out_values[shim_field.name] = server_result.env.get(
            shim_field.name, const(0)
        )
    values2 = _shim_pack(program.shim_to_switch, out_values)

    # Replication batch commits before the return leg (output commit).
    if updates:
        switch.apply_updates(updates)

    flag = values2.get("__verdict", const(0))
    assert flag.is_const  # verdicts are path-concrete by construction
    if flag.value == FLAG_VERDICT_DROP:
        return CompOutcome("drop", None, packet, server, switch)
    if flag.value == FLAG_VERDICT_SEND:
        egress = _resolve_egress_sym(
            values2.get("__egress_port"), scenario.ingress, chooser
        )
        return CompOutcome("send", egress, packet, server, switch)

    # No server verdict: the post-processing pipeline decides.
    env2 = {k: v for k, v in values2.items() if not k.startswith("__")}
    switch.begin_traversal()
    post = sym_run(plan.post, switch, chooser, packet=packet,
                   externs=switch_externs, initial_env=env2,
                   max_steps=max_steps)
    if post.verdict == "send":
        egress = _resolve_egress_sym(post.egress, scenario.ingress, chooser)
        return CompOutcome("send", egress, packet, server, switch)
    # post drop, or no verdict anywhere: the switch drops defensively.
    return CompOutcome("drop", None, packet, server, switch)


#: Fields compared on an emitted packet — the oracle's OBSERVED_FIELDS.
_OBSERVED = sorted(FIELD_WIDTHS)


def _first_unequal(pairs: Sequence[Tuple[str, Term, Term]],
                   kind: str) -> Optional[Mismatch]:
    """Compare term pairs; constant-fold equalities, return the first
    that is definitely or possibly unequal."""
    candidate: Optional[Mismatch] = None
    for label, lhs, rhs in pairs:
        eq = binop(irin.BinOpKind.EQ, lhs, rhs)
        decided = truth(eq)
        if decided is True:
            continue
        if decided is False:
            return Mismatch(kind, f"{label}: {lhs!r} != {rhs!r}")
        if candidate is None:
            candidate = Mismatch(
                kind, f"{label}: {lhs!r} may differ from {rhs!r}",
                obligation=(lhs, rhs),
            )
    return candidate


def _compare_world(plan, source, src_packet: SymPacketView,
                   src_store: SymStateStore,
                   comp: CompOutcome, chooser: Chooser) -> Optional[Mismatch]:
    """Oracle-faithful comparison of the two symbolic runs."""
    src_verdict = "send" if source.verdict == "send" else "drop"
    if src_verdict != comp.verdict:
        return Mismatch(
            "verdict",
            f"source={src_verdict!r} composition={comp.verdict!r}",
        )
    if src_verdict == "send":
        src_egress = _resolve_egress_sym(
            source.egress, _ingress_of(src_packet), chooser,
        )
        mismatch = _first_unequal(
            [("egress port", src_egress, comp.egress)], "egress"
        )
        if mismatch is not None:
            return mismatch
        field_pairs = []
        for region, name in _OBSERVED:
            field_pairs.append((
                f"{region}->{name}",
                src_packet.get_field(region, name),
                comp.packet.get_field(region, name),
            ))
        mismatch = _first_unequal(field_pairs, "field")
        if mismatch is not None:
            return mismatch

    # Final state: maps and scalars, switch-resident registers read from
    # the switch (exactly `oracle._compare_state`); vectors are not
    # compared there and not here.
    from repro.partition.plan import PlacementKind

    map_pairs = []
    for name, entries in src_store.maps.items():
        comp_entries = comp.server.maps[name]
        if len(entries) != len(comp_entries):
            return Mismatch(
                "state",
                f"map {name!r}: source has {len(entries)} entries,"
                f" composition has {len(comp_entries)}",
            )
        for index, ((src_keys, src_value), (dut_keys, dut_value)) in (
                enumerate(zip(entries, comp_entries))):
            for position, (a, b) in enumerate(zip(src_keys, dut_keys)):
                map_pairs.append((f"map {name}[{index}].key{position}", a, b))
            map_pairs.append((f"map {name}[{index}].value",
                              src_value, dut_value))
    mismatch = _first_unequal(map_pairs, "state")
    if mismatch is not None:
        return mismatch

    scalar_pairs = []
    for name, value in src_store.scalars.items():
        placement = plan.placements.get(name)
        if (placement is not None
                and placement.kind is PlacementKind.SWITCH_REGISTER):
            dut_value = comp.switch.registers[name].value
        else:
            dut_value = comp.server.scalars[name]
        scalar_pairs.append((f"scalar {name}", value, dut_value))
    mismatch = _first_unequal(scalar_pairs, "state")
    if mismatch is not None:
        return mismatch

    # Replicated-table convergence (oracle `_check_replication`).
    repl_pairs = []
    for name, placement in plan.placements.items():
        if placement.kind is not PlacementKind.REPLICATED_TABLE:
            continue
        if placement.member.kind != "map":
            continue
        switch_entries = comp.switch.tables[name].entries
        server_entries = comp.server.maps[name]
        if len(switch_entries) != len(server_entries):
            return Mismatch(
                "switch_state",
                f"replicated table {name!r}: switch has"
                f" {len(switch_entries)} entries, server has"
                f" {len(server_entries)}",
            )
        for index, ((s_keys, s_value), (m_keys, m_value)) in (
                enumerate(zip(switch_entries, server_entries))):
            for position, (a, b) in enumerate(zip(s_keys, m_keys)):
                repl_pairs.append(
                    (f"replicated {name}[{index}].key{position}", a, b)
                )
            repl_pairs.append(
                (f"replicated {name}[{index}].value", s_value, m_value)
            )
    return _first_unequal(repl_pairs, "switch_state")


def _ingress_of(packet: SymPacketView) -> int:
    assert packet.ingress_port.is_const
    return packet.ingress_port.value


def _run_world(plan, program, scenario: Scenario, script: Tuple[bool, ...],
               config, budget: SymbolicBudget) -> WorldResult:
    chooser = Chooser(script, max_decisions=budget.max_decisions)
    base_packet = make_symbolic_packet(scenario)
    src_packet = base_packet.copy()
    src_store = SymStateStore(
        plan.middlebox.state, scenario.prestate, chooser
    )
    src_externs = SymExternHost(config, chooser)
    try:
        source = sym_run(
            plan.middlebox.process, src_store, chooser, packet=src_packet,
            externs=src_externs, max_steps=budget.max_steps,
        )
    except SymExecError as exc:
        # The *source program* fails on this path: the oracle would
        # classify the run as CRASH, not a compiler divergence.
        return WorldResult("source_error", chooser, detail=str(exc))
    try:
        comp = _run_composition(
            plan, program, scenario, base_packet, chooser, config,
            budget.max_steps,
        )
    except (CompositionViolation, SymExecError) as exc:
        # Only the composition fails: a deployment-side crash candidate.
        return WorldResult("composition", chooser, detail=str(exc))
    mismatch = _compare_world(
        plan, source, src_packet, src_store, comp, chooser
    )
    if mismatch is None:
        return WorldResult("ok", chooser)
    return WorldResult("mismatch", chooser, mismatch=mismatch)


# ---------------------------------------------------------------------------
# Witness search + interpreter replay
# ---------------------------------------------------------------------------


def _witness_candidates(scenario: Scenario, chooser: Chooser,
                        obligation: Optional[Tuple[Term, Term]],
                        budget: SymbolicBudget, rng: random.Random):
    """Yield concrete atom assignments satisfying the world's path
    condition (and the disequality, when one is required)."""
    terms = [term for term, _choice in chooser.conditions]
    if obligation is not None:
        terms.extend(obligation)
    atom_widths = atoms_of(terms)
    names = sorted(atom_widths)
    consts = constants_of(terms)

    pools: Dict[str, List[int]] = {}
    for name in names:
        mask = (1 << atom_widths[name]) - 1
        pool = {0, 1, mask}
        for value in consts:
            for probe in (value - 1, value, value + 1):
                pool.add(probe & mask)
        pools[name] = sorted(pool)

    def satisfies(assignment: Dict[str, int]) -> bool:
        memo: dict = {}
        for term, choice in chooser.conditions:
            if bool(evaluate(term, assignment, memo)) != choice:
                return False
        if obligation is not None:
            lhs, rhs = obligation
            return (evaluate(lhs, assignment, memo)
                    != evaluate(rhs, assignment, memo))
        return True

    total = 1
    for name in names:
        total *= len(pools[name])
    if total <= budget.witness_limit:
        for combo in itertools.product(*(pools[name] for name in names)):
            assignment = dict(zip(names, combo))
            if satisfies(assignment):
                yield assignment
    else:
        for _ in range(budget.random_tries):
            assignment = {
                name: (rng.choice(pools[name]) if rng.random() < 0.7
                       else rng.randrange(1 << atom_widths[name]))
                for name in names
            }
            if satisfies(assignment):
                yield assignment


def _packet_spec(scenario: Scenario, assignment: Dict[str, int]) -> dict:
    fields = {}
    for name, (_region, _field, width) in sorted(scenario.atoms.items()):
        fields[name] = assignment.get(name, 0) & ((1 << width) - 1)
    return {
        "kind": scenario.kind,
        "ingress": scenario.ingress,
        "payload": scenario.payload.hex(),
        "fields": fields,
    }


def replay_counterexample(plan, program, config, prestate: dict,
                          spec: dict) -> Tuple[bool, str]:
    """Ground truth: replay one packet + pre-state through the real
    interpreter deployments; returns ``(diverged, detail)``."""
    from repro.difftest.oracle import (
        _check_replication,
        _compare_packet,
        _compare_state,
        _journey_observation,
        _observe_fields,
        _resolve_port,
    )
    from repro.runtime.baseline import FastClickRuntime
    from repro.runtime.deployment import GalliumMiddlebox

    packet = packet_from_spec(spec)
    ingress = int(spec.get("ingress", 1))

    baseline = FastClickRuntime(plan.middlebox, config=config)
    baseline.install()
    baseline.state.restore(prestate)
    baseline.state.drain_journal()

    try:
        dut = GalliumMiddlebox(
            plan, program, port_pairs=dict(DEFAULT_PORT_PAIRS), config=config
        )
        dut.install()
        dut.state.restore(prestate)
        dut.state.drain_journal()
        dut.sync_all_state()
    except Exception as exc:
        # The baseline accepts this pre-state but the deployment cannot
        # even install it: a real divergence of the compiled artifact.
        return True, f"deployment setup crash: {type(exc).__name__}: {exc}"

    base_packet = packet.copy()
    try:
        base_result = baseline.process_packet(base_packet, ingress)
    except Exception as exc:
        return False, f"baseline crash: {exc}"
    if base_result.verdict != "send":
        base_obs = ("drop", None, None)
    else:
        base_obs = (
            "send",
            _resolve_port(base_result.egress_port, ingress,
                          DEFAULT_PORT_PAIRS),
            _observe_fields(base_packet),
        )
    dut_packet = packet.copy()
    try:
        journey = dut.process_packet(dut_packet, ingress)
    except Exception as exc:
        return True, f"deployment crash: {type(exc).__name__}: {exc}"
    divergence = _compare_packet(
        "gallium", 0, base_obs, _journey_observation(journey)
    )
    if divergence is None:
        divergence = (_compare_state("gallium", baseline, dut)
                      or _check_replication(dut))
    if divergence is None:
        return False, "replay agrees"
    return True, str(divergence)


def _minimize_spec(plan, program, config, prestate: dict, spec: dict,
                   base_prestate: dict) -> Tuple[dict, dict]:
    """Greedy counterexample minimization against the concrete replay:
    prefer the post-configure pre-state and zero out every header field
    that is not needed to keep the divergence."""
    diverged, _ = replay_counterexample(
        plan, program, config, base_prestate, spec
    )
    if diverged:
        prestate = base_prestate
    fields = dict(spec["fields"])
    for name in sorted(fields):
        if fields[name] == 0:
            continue
        trial = dict(spec, fields=dict(fields, **{name: 0}))
        diverged, _ = replay_counterexample(
            plan, program, config, prestate, trial
        )
        if diverged:
            fields[name] = 0
    return dict(spec, fields=fields), prestate


# ---------------------------------------------------------------------------
# The prover
# ---------------------------------------------------------------------------


def verify_symbolic(
    plan,
    program,
    source: Optional[str] = None,
    config: Optional[Dict[int, list]] = None,
    budget: Optional[SymbolicBudget] = None,
    corpus_dir=None,
) -> SymbolicReport:
    """Prove one compilation equivalent, or disprove it with a confirmed
    counterexample.

    ``source`` (the middlebox source text) is only needed to append
    disproofs to the difftest corpus; ``corpus_dir`` overrides the
    corpus location (tests point it at a tmp dir).  Returns a
    :class:`SymbolicReport`; callers decide whether errors abort."""
    budget = budget or SymbolicBudget()
    report = SymbolicReport(program=plan.middlebox.name)
    rng = random.Random(budget.seed ^ 0xC0FFEE)
    started = time.perf_counter()
    scenarios = enumerate_scenarios(plan, config, budget)
    report.scenarios = len(scenarios)

    for scenario in scenarios:
        if report.counterexamples:
            break  # first confirmed disproof ends the run
        pending: List[Tuple[bool, ...]] = [()]
        explored = 0
        while pending:
            if explored >= budget.max_worlds:
                report.inconclusive.append(
                    f"{scenario.label}: world budget exhausted"
                    f" ({budget.max_worlds} worlds,"
                    f" {len(pending)} paths unexplored)"
                )
                break
            script = pending.pop()
            explored += 1
            report.worlds += 1
            try:
                world = _run_world(
                    plan, program, scenario, script, config, budget
                )
            except BudgetExhausted as exc:
                report.inconclusive.append(f"{scenario.label}: {exc}")
                continue
            report.decisions += len(world.chooser.trace)
            for index in range(len(script), len(world.chooser.trace)):
                flipped = tuple(world.chooser.trace[:index]) + (
                    not world.chooser.trace[index],
                )
                pending.append(flipped)
            if world.status == "ok":
                continue
            if world.status == "source_error":
                report.source_crash_worlds += 1
                continue
            handled = _handle_suspect(
                plan, program, source, config, scenario, world,
                budget, rng, report, corpus_dir,
            )
            if handled:
                break  # confirmed disproof: stop this scenario
        if report.counterexamples:
            break

    report.elapsed_s = time.perf_counter() - started
    if report.inconclusive and not report.counterexamples:
        report.diagnostics.append(error(
            "SYM008", STAGE_SYMBOLIC,
            "equivalence inconclusive: "
            + "; ".join(report.inconclusive[:3])
            + (f" (+{len(report.inconclusive) - 3} more)"
               if len(report.inconclusive) > 3 else ""),
            function=plan.middlebox.process.name,
        ))
    return report


def _handle_suspect(plan, program, source, config, scenario: Scenario,
                    world: WorldResult, budget: SymbolicBudget,
                    rng: random.Random, report: SymbolicReport,
                    corpus_dir) -> bool:
    """Search a witness for one suspicious world, confirm it by replay,
    and record the resulting diagnostic.  Returns True when a confirmed
    counterexample was produced (the scenario can stop)."""
    if world.status == "composition":
        code = "SYM006"
        detail = f"composition violation: {world.detail}"
        obligation = None
    else:
        code = KIND_TO_CODE[world.mismatch.kind]
        detail = world.mismatch.detail
        obligation = world.mismatch.obligation

    attempts = 0
    unsound = 0
    for assignment in _witness_candidates(
            scenario, world.chooser, obligation, budget, rng):
        attempts += 1
        if attempts > budget.confirm_attempts:
            break
        spec = _packet_spec(scenario, assignment)
        diverged, replay_detail = replay_counterexample(
            plan, program, config, scenario.prestate, spec
        )
        if not diverged:
            unsound += 1
            continue
        base = _base_prestate(plan, config)
        spec, prestate = _minimize_spec(
            plan, program, config, scenario.prestate, spec, base
        )
        counterexample = Counterexample(
            code=code, detail=detail, packet=spec, prestate=prestate,
            scenario=scenario.label, confirmed=True,
            replay_detail=replay_detail,
        )
        if source is not None:
            counterexample.corpus_path = _append_to_corpus(
                plan.middlebox.name, source, config, code, spec, prestate,
                replay_detail, corpus_dir,
            )
        report.counterexamples.append(counterexample)
        report.diagnostics.append(error(
            code, STAGE_SYMBOLIC,
            f"{detail} [scenario {scenario.label};"
            f" counterexample confirmed: {replay_detail}]",
            function=plan.middlebox.process.name,
        ))
        return True

    if unsound:
        # A symbolic mismatch whose witnesses all replay as equivalent:
        # the prover's path condition missed a constraint — a prover bug,
        # never silently swallowed.
        report.diagnostics.append(error(
            "SYM007", STAGE_SYMBOLIC,
            f"path-condition unsoundness: {detail} [scenario"
            f" {scenario.label}; {unsound} witnesses replayed equivalent]",
            function=plan.middlebox.process.name,
        ))
        return True
    # No witness at all: the path may simply be infeasible (case splits
    # are not mutually consistent by construction), but equivalence on
    # this world is then unproven — surface it as inconclusive.
    report.inconclusive.append(
        f"{scenario.label}: unwitnessed symbolic mismatch ({detail})"
    )
    return False


def _append_to_corpus(name: str, source: str, config, code: str, spec: dict,
                      prestate: dict, replay_detail: str,
                      corpus_dir) -> Optional[str]:
    from repro.difftest.corpus import (
        CORPUS_DIR,
        CorpusEntry,
        replay_entry,
        save_entry,
    )
    from repro.difftest.oracle import StreamSpec

    directory = corpus_dir if corpus_dir is not None else CORPUS_DIR
    entry = CorpusEntry(
        name=f"symbolic_{name}_{code.lower()}",
        source=source,
        stream=StreamSpec(seed=0, count=1, packets=[spec]),
        description=(
            f"translation-validation counterexample ({code}):"
            f" {replay_detail}"
        ),
        check_cached=False,
        config=({str(k): list(v) for k, v in config.items()}
                if config else None),
        prestate=serialize_prestate(prestate),
    )
    # The recorded expectation is whatever a fresh compile of the *source*
    # does on this packet: a compiler-bug disproof replays DIVERGE, while
    # a disproof of a mutated artifact pins AGREE on the clean compile.
    entry.expect = replay_entry(entry).outcome.value
    try:
        return str(save_entry(entry, directory))
    except OSError:
        return None
