"""Symbolic execution engine mirroring the IR interpreter.

One **world** is a single control-flow path through a function (or a
composed switch⊕server journey), identified by the sequence of boolean
decisions its :class:`Chooser` made — branch outcomes, table-entry
matches, vector-index cases.  The prover explores worlds with the
standard script-DFS: run with a decision prefix, then enqueue every
one-bit flip of the fresh suffix, until no unexplored flip remains or
the world budget is exhausted.

Everything here mirrors a concrete twin line by line:

========================  ========================================
symbolic class            concrete twin
========================  ========================================
``sym_run``               ``repro.ir.interp.Interpreter.run``
``SymPacketView``         ``repro.ir.interp.PacketView``
``SymStateStore``         ``repro.ir.interp.StateStore``
``SymSwitchState``        ``repro.switchsim.pipeline.SwitchStateAdapter``
                          + ``ExactMatchTable`` + ``Register``
``SymExternHost``         ``repro.ir.externs.ExternHost``
========================  ========================================

The mirrors take :class:`~repro.verify.symbolic.terms.Term` values where
the twins take ints; a deliberate divergence anywhere between a mirror
and its twin is a soundness hole, so keep them in lockstep.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ir import instructions as irin
from repro.ir.function import Function
from repro.ir.interp import _FIELD_MAP, _MAX_STEPS, _width_of
from repro.ir.lowering import StateMember
from repro.ir.values import Const, Operand, Reg
from repro.lang.types import BOOL, IntType
from repro.verify.symbolic.terms import (
    MASK64,
    Term,
    binop,
    boolify,
    const,
    truth,
    unop,
    wrap,
)


class SymExecError(Exception):
    """A failure both the source and the composition would hit identically
    (undefined register, unresolvable scalar width, RMW width mismatch on
    the server store) — mirrors :class:`repro.ir.interp.InterpreterError`."""


class CompositionViolation(Exception):
    """The composed switch pipeline attempted something the data plane
    cannot do — mirrors :class:`repro.switchsim.pipeline.DataPlaneViolation`
    and the control plane's :class:`TableEntryLimit`."""


class BudgetExhausted(Exception):
    """A symbolic budget (steps, decisions, worlds) ran out."""


# ---------------------------------------------------------------------------
# Decisions
# ---------------------------------------------------------------------------


class Chooser:
    """Resolves undecided boolean terms along one world.

    A decision already implied by the term's interval (or constancy) is
    free.  A structurally identical term asked twice in one world gets
    the same answer — this is what keeps the source run and the
    composition run on *corresponding* paths, since both ask about the
    same header-field terms.  Fresh decisions consume the ``script``
    (the DFS prefix); beyond it the default is True, and every fresh
    decision is recorded in ``trace`` so the driver can enqueue flips.
    """

    def __init__(self, script: Tuple[bool, ...] = (),
                 max_decisions: int = 192):
        self.script = script
        self.max_decisions = max_decisions
        self.decided: Dict[tuple, bool] = {}
        self.trace: List[bool] = []
        #: (term, outcome) pairs for every fresh decision — the world's
        #: path condition, used by the counterexample search.
        self.conditions: List[Tuple[Term, bool]] = []

    def decide(self, term: Term) -> bool:
        tv = truth(term)
        if tv is not None:
            return tv
        cached = self.decided.get(term.key)
        if cached is not None:
            return cached
        index = len(self.trace)
        if index >= self.max_decisions:
            raise BudgetExhausted(
                f"decision budget exhausted ({self.max_decisions})"
            )
        choice = self.script[index] if index < len(self.script) else True
        self.trace.append(choice)
        self.decided[term.key] = choice
        self.conditions.append((term, choice))
        return choice


# ---------------------------------------------------------------------------
# Packet adapter
# ---------------------------------------------------------------------------


class SymPacketView:
    """Symbolic mirror of :class:`PacketView` over a packet *shape*.

    The shape (which headers exist, the concrete payload) is fixed per
    scenario; header fields are terms.  Reads of absent headers yield 0
    and writes to them are dropped, with the same TCP→UDP port aliasing
    the concrete view applies.
    """

    def __init__(self, fields: Dict[Tuple[str, str], Term],
                 has_ip: bool, has_tcp: bool, has_udp: bool,
                 payload: bytes, ingress_port: Term):
        self.fields = fields
        self.has_ip = has_ip
        self.has_tcp = has_tcp
        self.has_udp = has_udp
        self.payload_bytes = payload
        self.ingress_port = ingress_port

    def copy(self) -> "SymPacketView":
        return SymPacketView(dict(self.fields), self.has_ip, self.has_tcp,
                             self.has_udp, self.payload_bytes,
                             self.ingress_port)

    def _resolve(self, region: str, field_name: str) -> Optional[Tuple[str, str]]:
        """The storage key for (region, field), or None if absent."""
        if region == "ip":
            return ("ip", field_name) if self.has_ip else None
        if region == "tcp":
            if self.has_tcp:
                return ("tcp", field_name)
            if self.has_udp and field_name in ("sport", "dport"):
                return ("udp", field_name)
            return None
        if region == "udp":
            return ("udp", field_name) if self.has_udp else None
        return None

    def get_field(self, region: str, field_name: str) -> Term:
        if region == "meta":
            if field_name == "ingress_port":
                return self.ingress_port
            raise SymExecError(f"unknown meta field {field_name!r}")
        if region == "eth":
            try:
                return self.fields[("eth", field_name)]
            except KeyError:
                raise SymExecError(f"unknown eth field {field_name!r}") from None
        if (region, field_name) not in _FIELD_MAP:
            raise SymExecError(f"unknown field {region}.{field_name}")
        key = self._resolve(region, field_name)
        if key is None:
            return const(0)
        return self.fields.get(key, const(0))

    def set_field(self, region: str, field_name: str, value: Term) -> None:
        if region == "eth":
            if field_name in ("h_dest", "h_source"):
                self.fields[("eth", field_name)] = wrap(value, (1 << 48) - 1)
            elif field_name == "h_proto":
                self.fields[("eth", field_name)] = wrap(value, 0xFFFF)
            else:
                raise SymExecError(f"unknown eth field {field_name!r}")
            return
        mapping = _FIELD_MAP.get((region, field_name))
        if mapping is None:
            raise SymExecError(f"unknown field {region}.{field_name}")
        key = self._resolve(region, field_name)
        if key is None:
            return  # writes to absent headers are dropped
        is_addr = mapping[2]
        if is_addr:
            value = wrap(value, 0xFFFFFFFF)
        # Non-address fields store the raw value, exactly like the
        # concrete view's bare setattr.
        self.fields[key] = value

    def payload(self) -> bytes:
        return self.payload_bytes


# ---------------------------------------------------------------------------
# Server-side state
# ---------------------------------------------------------------------------


def _keys_equal(entry_keys: Tuple[Term, ...], keys: Tuple[Term, ...]) -> Term:
    if len(entry_keys) != len(keys):
        return const(0)
    cond = const(1)
    for have, want in zip(entry_keys, keys):
        cond = binop(irin.BinOpKind.LAND, cond,
                     binop(irin.BinOpKind.EQ, want, have))
    return cond


class SymStateStore:
    """Symbolic mirror of :class:`StateStore` seeded from a concrete
    pre-state snapshot.  Maps are ordered entry lists because keys may
    become symbolic mid-run (an insert under a symbolic header field)."""

    def __init__(self, members: Dict[str, StateMember], snapshot: dict,
                 chooser: Chooser):
        self.members = members
        self.chooser = chooser
        self.maps: Dict[str, List[Tuple[Tuple[Term, ...], Term]]] = {}
        self.vectors: Dict[str, List[Term]] = {}
        self.scalars: Dict[str, Term] = {}
        self._scalar_masks: Dict[str, int] = {}
        for name, member in members.items():
            if member.kind == "map":
                self.maps[name] = [
                    (tuple(const(k) for k in keys), const(value))
                    for keys, value in snapshot.get("maps", {}).get(name, {}).items()
                ]
            elif member.kind == "vector":
                self.vectors[name] = [
                    const(value)
                    for value in snapshot.get("vectors", {}).get(name, [])
                ]
            else:
                self.scalars[name] = const(
                    snapshot.get("scalars", {}).get(name, 0)
                )
                try:
                    width = member.member_type.bit_width()
                except Exception:
                    width = 0
                if width > 0:
                    self._scalar_masks[name] = (1 << width) - 1
        self.journal: List[tuple] = []

    # -- maps ----------------------------------------------------------------

    def _find_entry(self, name: str, keys: Tuple[Term, ...]) -> Optional[int]:
        for index, (entry_keys, _value) in enumerate(self.maps[name]):
            if self.chooser.decide(_keys_equal(entry_keys, keys)):
                return index
        return None

    def map_find(self, name: str, keys: Tuple[Term, ...]) -> Tuple[bool, Term]:
        index = self._find_entry(name, keys)
        if index is None:
            return False, const(0)
        return True, self.maps[name][index][1]

    def map_insert(self, name: str, keys: Tuple[Term, ...], value: Term) -> None:
        member = self.members[name]
        table = self.maps[name]
        index = self._find_entry(name, keys)
        if (
            member.max_entries is not None
            and index is None
            and len(table) >= member.max_entries
        ):
            self.journal.append(("insert_failed", name, keys, value))
            return
        if index is None:
            table.append((keys, value))
        else:
            table[index] = (table[index][0], value)
        self.journal.append(("insert", name, keys, value))

    def map_erase(self, name: str, keys: Tuple[Term, ...]) -> None:
        index = self._find_entry(name, keys)
        if index is not None:
            del self.maps[name][index]
        self.journal.append(("erase", name, keys, None))

    # -- vectors --------------------------------------------------------------

    def vector_get(self, name: str, index: Term) -> Term:
        vector = self.vectors[name]
        if index.is_const:
            i = index.value
            return vector[i] if 0 <= i < len(vector) else const(0)
        for i in range(max(0, index.lo), min(len(vector) - 1, index.hi) + 1):
            if self.chooser.decide(binop(irin.BinOpKind.EQ, index, const(i))):
                return vector[i]
        return const(0)

    def vector_len(self, name: str) -> Term:
        return const(len(self.vectors[name]))

    def vector_push(self, name: str, value: Term) -> None:
        self.vectors[name].append(value)
        self.journal.append(
            ("push", name, (const(len(self.vectors[name]) - 1),), value)
        )

    # -- scalars ---------------------------------------------------------------

    def load_scalar(self, name: str) -> Term:
        return self.scalars[name]

    def _scalar_mask(self, name: str) -> int:
        mask = self._scalar_masks.get(name)
        if mask is None:
            raise SymExecError(
                f"scalar {name!r} has no resolvable width;"
                " refusing an unmasked write"
            )
        return mask

    def store_scalar(self, name: str, value: Term) -> None:
        value = wrap(value, self._scalar_mask(name))
        self.scalars[name] = value
        self.journal.append(("store", name, (), value))

    def rmw_scalar(self, name: str, op, operand: Term,
                   width: Optional[int] = None) -> Term:
        mask = self._scalar_mask(name)
        if width:
            member_width = mask.bit_length()
            if width != member_width:
                raise SymExecError(
                    f"register {name!r}: RMW width {width} does not match"
                    f" the member width {member_width}"
                )
        old = self.scalars[name]
        self.scalars[name] = wrap(binop(op, old, operand), mask)
        self.journal.append(("store", name, (), self.scalars[name]))
        return old

    # -- snapshots ---------------------------------------------------------------

    def drain_journal(self) -> List[tuple]:
        entries = self.journal
        self.journal = []
        return entries


# ---------------------------------------------------------------------------
# Switch-side state
# ---------------------------------------------------------------------------


class SymTable:
    """One exact-match table's committed contents (fault-free, so the
    write-back stage is always folded — a plain ordered entry list)."""

    def __init__(self, name: str, size: int):
        self.name = name
        self.size = size
        self.entries: List[Tuple[Tuple[Term, ...], Term]] = []

    def _find(self, keys: Tuple[Term, ...], chooser: Chooser) -> Optional[int]:
        for index, (entry_keys, _value) in enumerate(self.entries):
            if chooser.decide(_keys_equal(entry_keys, keys)):
                return index
        return None

    def lookup(self, keys: Tuple[Term, ...], chooser: Chooser) -> Tuple[bool, Term]:
        index = self._find(keys, chooser)
        if index is None:
            return False, const(0)
        return True, self.entries[index][1]


class SymRegister:
    """One P4 register cell; every write wraps at the declared width,
    mirroring :class:`repro.switchsim.registers.Register`."""

    def __init__(self, name: str, width_bits: int, value: Term):
        self.name = name
        self.width_bits = width_bits
        self.mask = (1 << width_bits) - 1
        self.value = wrap(value, self.mask)


class SymSwitchState:
    """Symbolic mirror of the switch's tables/registers plus the
    :class:`SwitchStateAdapter` access rules (the run-time shadow of
    constraint 3) and the fault-free control-plane update path."""

    def __init__(self, program, prestate: dict, chooser: Chooser):
        self.chooser = chooser
        self.tables: Dict[str, SymTable] = {}
        for name, spec in program.tables.items():
            table = SymTable(name, spec.size)
            for keys, value in prestate.get("tables", {}).get(name, {}).items():
                table.entries.append(
                    (tuple(const(k) for k in keys), const(value))
                )
            self.tables[name] = table
        self.registers: Dict[str, SymRegister] = {
            name: SymRegister(
                name, spec.width_bits,
                const(prestate.get("registers", {}).get(name, 0)),
            )
            for name, spec in program.registers.items()
        }
        self._access_counts: Dict[str, int] = {}

    def begin_traversal(self) -> None:
        self._access_counts = {}

    def _count(self, state: str) -> None:
        self._access_counts[state] = self._access_counts.get(state, 0) + 1
        if self._access_counts[state] > 1:
            raise CompositionViolation(
                f"stateful element {state!r} accessed twice in one traversal"
            )

    # -- StateStore interface (data plane) ------------------------------------

    def map_find(self, name: str, keys: Tuple[Term, ...]) -> Tuple[bool, Term]:
        self._count(name)
        table = self.tables.get(name)
        if table is None:
            raise CompositionViolation(f"lookup on unknown table {name!r}")
        return table.lookup(keys, self.chooser)

    def vector_get(self, name: str, index: Term) -> Term:
        self._count(name)
        table = self.tables.get(name)
        if table is None:
            raise CompositionViolation(f"lookup on unknown table {name!r}")
        found, value = table.lookup((index,), self.chooser)
        return value if found else const(0)

    def load_scalar(self, name: str) -> Term:
        self._count(name)
        register = self.registers.get(name)
        if register is None:
            raise CompositionViolation(f"read of unknown register {name!r}")
        return register.value

    def rmw_scalar(self, name: str, op, operand: Term,
                   width: Optional[int] = None) -> Term:
        self._count(name)
        register = self.registers.get(name)
        if register is None:
            raise CompositionViolation(f"RMW of unknown register {name!r}")
        if width and width != register.width_bits:
            raise CompositionViolation(
                f"RMW width {width} does not match register {name!r}"
                f" width {register.width_bits}"
            )
        old = register.value
        register.value = wrap(binop(op, old, operand), register.mask)
        return old

    # -- operations the data plane cannot do -----------------------------------

    def map_insert(self, name: str, keys, value) -> None:
        raise CompositionViolation(
            f"map_insert({name!r}) in a switch pipeline — table writes must"
            " go through the control plane"
        )

    def map_erase(self, name: str, keys) -> None:
        raise CompositionViolation(f"map_erase({name!r}) in a switch pipeline")

    def store_scalar(self, name: str, value) -> None:
        raise CompositionViolation(
            f"bare register write {name!r} in a switch pipeline"
        )

    def vector_len(self, name: str) -> Term:
        raise CompositionViolation(
            f"vector_len({name!r}) has no switch implementation"
        )

    def vector_push(self, name: str, value) -> None:
        raise CompositionViolation(f"vector_push({name!r}) in a switch pipeline")

    # -- control plane (replication batch, fault-free) --------------------------

    def apply_updates(self, updates) -> None:
        """Apply one punt's replication batch (``kind, member, keys,
        value`` tuples) the way a fault-free ``apply_batch`` commit does."""
        for kind, member, keys, value in updates:
            if kind == "register":
                register = self.registers.get(member)
                if register is None:
                    raise CompositionViolation(
                        f"register update for unknown register {member!r}"
                    )
                register.value = wrap(value, register.mask)
                continue
            table = self.tables.get(member)
            if table is None:
                raise CompositionViolation(
                    f"table update for unknown table {member!r}"
                )
            index = table._find(keys, self.chooser)
            if kind == "insert":
                if index is None:
                    if len(table.entries) >= table.size:
                        raise CompositionViolation(
                            f"table {member!r} full ({table.size} entries)"
                        )
                    table.entries.append((keys, value))
                else:
                    table.entries[index] = (table.entries[index][0], value)
            elif kind == "delete":
                if index is not None:
                    del table.entries[index]
            else:
                raise CompositionViolation(f"unknown update kind {kind!r}")


# ---------------------------------------------------------------------------
# Externs
# ---------------------------------------------------------------------------


class SymExternHost:
    """Symbolic mirror of :class:`ExternHost` with the oracle runtimes'
    defaults: frozen clock (``lambda: 0``), concrete config sections,
    concrete payload read through the packet view."""

    def __init__(self, config: Optional[Dict[int, list]] = None,
                 chooser: Optional[Chooser] = None):
        self.config: Dict[int, list] = dict(config or {})
        self.chooser = chooser

    def call(self, name: str, args: List[Term], packet) -> Term:
        if name == "payload_len":
            return const(len(packet.payload()) if packet is not None else 0)
        if name == "payload_byte":
            payload = packet.payload() if packet is not None else b""
            return self._index_bytes(payload, args[0])
        if name == "now_sec":
            return const(0)  # ExternHost's default clock is `lambda: 0`
        if name == "config_len":
            return self._over_sections(args[0], lambda s: const(len(s)))
        if name == "config_u32":
            return self._over_sections(
                args[0], lambda s: self._index_seq(s, args[1])
            )
        if name == "log_event":
            return const(0)
        raise SymExecError(f"unknown extern {name!r}")

    def _over_sections(self, section: Term, fn) -> Term:
        if section.is_const:
            return fn(self.config.get(section.value, ()))
        for key in self.config:
            cond = binop(irin.BinOpKind.EQ, section, const(key))
            if self.chooser.decide(cond):
                return fn(self.config[key])
        return fn(())

    def _index_seq(self, seq, index: Term) -> Term:
        if index.is_const:
            i = index.value
            return const(seq[i] if 0 <= i < len(seq) else 0)
        for i in range(max(0, index.lo), min(len(seq) - 1, index.hi) + 1):
            if self.chooser.decide(binop(irin.BinOpKind.EQ, index, const(i))):
                return const(seq[i])
        return const(0)

    def _index_bytes(self, payload: bytes, index: Term) -> Term:
        return self._index_seq(payload, index)


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


class SymResult:
    """Mirror of :class:`ExecutionResult` with Term-valued egress/env."""

    __slots__ = ("verdict", "egress", "env", "steps")

    def __init__(self, verdict: Optional[str], egress: Optional[Term],
                 env: Dict[str, Term], steps: int):
        self.verdict = verdict
        self.egress = egress
        self.env = env
        self.steps = steps


def _wrap_reg(value: Term, reg: Reg) -> Term:
    type_ = reg.type
    if type_ is BOOL:
        return boolify(value)
    if isinstance(type_, IntType):
        return wrap(value, type_.mask)
    return wrap(value, MASK64)


def sym_run(
    function: Function,
    state,
    chooser: Chooser,
    packet: Optional[SymPacketView] = None,
    externs: Optional[SymExternHost] = None,
    initial_env: Optional[Dict[str, Term]] = None,
    max_steps: int = _MAX_STEPS,
) -> SymResult:
    """Symbolically execute one IR function — ``Interpreter.run``'s mirror.

    ``state`` is a :class:`SymStateStore` or :class:`SymSwitchState`; both
    expose the StateStore surface the interpreter calls.
    """
    externs = externs or SymExternHost(chooser=chooser)
    env: Dict[str, Term] = dict(initial_env or {})
    block = function.blocks[function.entry]
    steps = 0
    verdict: Optional[str] = None
    egress: Optional[Term] = None

    def value_of(operand: Operand) -> Term:
        if isinstance(operand, Const):
            return const(operand.value)
        if isinstance(operand, Reg):
            try:
                return env[operand.name]
            except KeyError:
                raise SymExecError(
                    f"{function.name}: read of undefined register"
                    f" %{operand.name}"
                ) from None
        raise SymExecError(f"bad operand {operand!r}")

    while True:
        next_block: Optional[str] = None
        for inst in block.instructions:
            steps += 1
            if steps > max_steps:
                raise BudgetExhausted(
                    f"{function.name}: symbolic step limit exceeded"
                )
            if isinstance(inst, irin.Assign):
                env[inst.dst.name] = _wrap_reg(value_of(inst.src), inst.dst)
            elif isinstance(inst, irin.BinOp):
                result = binop(inst.op, value_of(inst.lhs), value_of(inst.rhs))
                env[inst.dst.name] = _wrap_reg(result, inst.dst)
            elif isinstance(inst, irin.UnOp):
                env[inst.dst.name] = _wrap_reg(
                    unop(inst.op, value_of(inst.src)), inst.dst
                )
            elif isinstance(inst, irin.Cast):
                env[inst.dst.name] = _wrap_reg(value_of(inst.src), inst.dst)
            elif isinstance(inst, irin.LoadPacketField):
                if packet is None:
                    raise SymExecError("packet access without a packet")
                env[inst.dst.name] = _wrap_reg(
                    packet.get_field(inst.region, inst.field), inst.dst
                )
            elif isinstance(inst, irin.StorePacketField):
                if packet is None:
                    raise SymExecError("packet access without a packet")
                packet.set_field(inst.region, inst.field, value_of(inst.src))
            elif isinstance(inst, irin.LoadState):
                env[inst.dst.name] = _wrap_reg(
                    state.load_scalar(inst.state), inst.dst
                )
            elif isinstance(inst, irin.StoreState):
                state.store_scalar(inst.state, value_of(inst.src))
            elif isinstance(inst, irin.RegisterRMW):
                old = state.rmw_scalar(
                    inst.state,
                    inst.op,
                    value_of(inst.operand),
                    _width_of(inst.dst.type),
                )
                env[inst.dst.name] = _wrap_reg(old, inst.dst)
            elif isinstance(inst, irin.MapFind):
                keys = tuple(value_of(k) for k in inst.keys)
                found, value = state.map_find(inst.state, keys)
                env[inst.found.name] = const(int(found))
                if inst.value is not None:
                    env[inst.value.name] = value
            elif isinstance(inst, irin.MapInsert):
                keys = tuple(value_of(k) for k in inst.keys)
                state.map_insert(inst.state, keys, value_of(inst.value))
            elif isinstance(inst, irin.MapErase):
                keys = tuple(value_of(k) for k in inst.keys)
                state.map_erase(inst.state, keys)
            elif isinstance(inst, irin.VectorGet):
                env[inst.dst.name] = state.vector_get(
                    inst.state, value_of(inst.index)
                )
            elif isinstance(inst, irin.VectorLen):
                env[inst.dst.name] = state.vector_len(inst.state)
            elif isinstance(inst, irin.VectorPush):
                state.vector_push(inst.state, value_of(inst.value))
            elif isinstance(inst, irin.ExternCall):
                args = [value_of(a) for a in inst.args]
                result = externs.call(inst.name, args, packet)
                if inst.dst is not None:
                    env[inst.dst.name] = _wrap_reg(result, inst.dst)
            elif isinstance(inst, irin.SendTo):
                verdict = "send"
                egress = value_of(inst.port)
                next_block = None
                break
            elif isinstance(inst, irin.Send):
                verdict = "send"
                next_block = None
                break
            elif isinstance(inst, irin.Drop):
                verdict = "drop"
                next_block = None
                break
            elif isinstance(inst, irin.Jump):
                next_block = inst.target
                break
            elif isinstance(inst, irin.Branch):
                taken = chooser.decide(value_of(inst.cond))
                next_block = inst.if_true if taken else inst.if_false
                break
            elif isinstance(inst, irin.Return):
                next_block = None
                break
            else:
                raise SymExecError(
                    f"unhandled instruction {type(inst).__name__}"
                )
        if next_block is None:
            return SymResult(verdict, egress, env, steps)
        block = function.blocks[next_block]
