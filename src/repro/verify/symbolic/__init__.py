"""Translation validation: symbolic equivalence proving per compilation.

See :mod:`repro.verify.symbolic.prover` for the prover itself,
:mod:`repro.verify.symbolic.engine` for the symbolic interpreter, and
:mod:`repro.verify.symbolic.terms` for the bit-vector term language.
"""

from repro.verify.symbolic.engine import (
    BudgetExhausted,
    Chooser,
    CompositionViolation,
    SymExecError,
)
from repro.verify.symbolic.prover import (
    SMOKE_BUDGET,
    Counterexample,
    SymbolicBudget,
    SymbolicReport,
    deserialize_prestate,
    packet_from_spec,
    replay_counterexample,
    serialize_prestate,
    verify_symbolic,
)

__all__ = [
    "BudgetExhausted",
    "Chooser",
    "CompositionViolation",
    "Counterexample",
    "SMOKE_BUDGET",
    "SymExecError",
    "SymbolicBudget",
    "SymbolicReport",
    "deserialize_prestate",
    "packet_from_spec",
    "replay_counterexample",
    "serialize_prestate",
    "verify_symbolic",
]
