"""CI smoke for the translation validator (``make symbolic-smoke``).

Three gates, all blocking:

1. every bundled middlebox proves at the default budget (no ``SYM008``
   inconclusives),
2. every report validates against the checked-in ``symbolic`` JSON
   schema (:mod:`repro.telemetry.schema`),
3. a seeded semantic mutation is *dis*proved with an
   interpreter-confirmed counterexample — the prover can say no, not
   just yes.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

#: The seeded mutation: corrupt ip.ttl in the pre pipeline of this
#: corpus reproducer (the static stages cannot see it; SYM003 must).
MUTATED_ENTRY = "remat_nonp4_into_post"


def main() -> int:
    from repro.compiler import compile_source
    from repro.difftest.corpus import load_corpus
    from repro.ir import instructions as irin
    from repro.ir.values import const_int
    from repro.middleboxes.registry import MIDDLEBOX_NAMES, load
    from repro.telemetry.schema import check
    from repro.verify.symbolic import verify_symbolic

    for name in MIDDLEBOX_NAMES:
        middlebox = load(name)
        result = compile_source(middlebox.source, verify=False)
        report = verify_symbolic(
            result.plan, result.switch_program, config=middlebox.config
        )
        check(report.to_dict(), "symbolic", f"symbolic report ({name})")
        if not report.proved:
            print(f"symbolic-smoke: {name} did not prove:", file=sys.stderr)
            for diag in report.diagnostics:
                print(f"  {diag.format()}", file=sys.stderr)
            return 1
        print(
            f"symbolic-smoke: {report.program} proved"
            f" ({report.scenarios} scenarios, {report.worlds} worlds,"
            f" {report.elapsed_s:.2f}s)"
        )

    entries = {entry.name: entry for entry in load_corpus()}
    source = entries[MUTATED_ENTRY].source
    result = compile_source(source, verify=False)
    pre = result.switch_program.pre
    pre.blocks[pre.entry].instructions.insert(
        0, irin.StorePacketField("ip", "ttl", const_int(13))
    )
    with tempfile.TemporaryDirectory() as scratch:
        report = verify_symbolic(
            result.plan,
            result.switch_program,
            source=source,
            corpus_dir=Path(scratch),
        )
    check(report.to_dict(), "symbolic", "symbolic report (seeded mutation)")
    if report.proved or not report.counterexamples:
        print(
            "symbolic-smoke: seeded mutation was not disproved",
            file=sys.stderr,
        )
        return 1
    counterexample = report.counterexamples[0]
    if not counterexample.confirmed:
        print(
            "symbolic-smoke: counterexample did not replay:"
            f" {counterexample.replay_detail}",
            file=sys.stderr,
        )
        return 1
    print(
        f"symbolic-smoke: seeded mutation disproved"
        f" ({counterexample.code}, counterexample confirmed)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
