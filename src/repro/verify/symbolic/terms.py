"""Bit-vector terms for the translation validator (no external solver).

A :class:`Term` is a constant, an atom (one symbolic packet input), or an
operation node mirroring the IR interpreter's evaluation semantics
(:func:`repro.ir.interp._apply_binop` / ``Interpreter._wrap``) over
unbounded Python integers.  Every node carries an unsigned interval
``[lo, hi]`` computed at construction — the only "theory" the prover
needs, because all runtime values are wrapped to their register width
immediately after every operation, so interval reasoning decides most
branch conditions and wrap nodes fold away whenever the operand already
fits.

Smart constructors fold constants eagerly (with exactly the interpreter's
arithmetic, so a folded term and a concrete interpretation can never
disagree) and canonicalize just enough that the source function and the
switch⊕server composition — which execute the *same* projected
instructions routed through width-masking shim headers — produce
structurally identical terms on equivalent paths.  Structural identity is
the proof; anything else becomes a case split or a counterexample search.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.ir.instructions import BinOpKind, UnOpKind
from repro.ir.interp import _apply_binop

#: Mask mirroring the interpreter's default (non-IntType, non-bool) wrap.
MASK64 = 0xFFFFFFFFFFFFFFFF

_COMPARISONS = {
    BinOpKind.EQ, BinOpKind.NE, BinOpKind.LT, BinOpKind.LE,
    BinOpKind.GT, BinOpKind.GE, BinOpKind.LAND, BinOpKind.LOR,
}


class Term:
    """One node of a symbolic expression DAG (immutable)."""

    __slots__ = ("kind", "op", "args", "value", "name", "lo", "hi", "key",
                 "_hash")

    def __init__(self, kind, op, args, value, name, lo, hi, key):
        self.kind = kind  # "const" | "atom" | "op"
        self.op = op  # BinOpKind/UnOpKind/"wrap"/"bool" for kind == "op"
        self.args = args  # tuple of Terms
        self.value = value  # int payload: const value, or wrap mask
        self.name = name  # atom name
        self.lo = lo
        self.hi = hi
        self.key = key  # structural identity (hashable)
        self._hash = hash(key)

    def __hash__(self):
        return self._hash

    def __eq__(self, other):
        return isinstance(other, Term) and self.key == other.key

    @property
    def is_const(self) -> bool:
        return self.kind == "const"

    def __repr__(self):
        if self.kind == "const":
            return f"{self.value}"
        if self.kind == "atom":
            return f"{self.name}"
        op = getattr(self.op, "name", self.op)
        if self.op == "wrap":
            return f"wrap({self.args[0]!r}, {self.value:#x})"
        return f"{str(op).lower()}({', '.join(repr(a) for a in self.args)})"


_CONST_CACHE: Dict[int, Term] = {}


def const(value: int) -> Term:
    term = _CONST_CACHE.get(value)
    if term is None:
        term = Term("const", None, (), value, None, value, value,
                    ("c", value))
        if -256 <= value <= 65536:
            _CONST_CACHE[value] = term
    return term


def atom(name: str, width: int) -> Term:
    hi = (1 << width) - 1
    return Term("atom", None, (), width, name, 0, hi, ("a", name, width))


def _mk_op(op, args: Tuple[Term, ...], lo: int, hi: int,
           value: Optional[int] = None) -> Term:
    key = ("o", getattr(op, "name", op), value) + tuple(a.key for a in args)
    return Term("op", op, args, value, None, lo, hi, key)


def truth(term: Term) -> Optional[bool]:
    """Truthiness of ``term`` if the interval decides it, else ``None``."""
    if term.lo == 0 and term.hi == 0:
        return False
    if term.lo > 0 or term.hi < 0:
        return True
    if term.is_const:
        return bool(term.value)
    return None


def _bits_hi(*terms: Term) -> int:
    width = max(t.hi.bit_length() for t in terms)
    return (1 << width) - 1


def binop(op: BinOpKind, a: Term, b: Term) -> Term:
    """Build ``op(a, b)`` with the interpreter's exact semantics."""
    if a.is_const and b.is_const:
        return const(_apply_binop(op, a.value, b.value))
    kind = BinOpKind
    if op is kind.ADD:
        if a.is_const and a.value == 0:
            return b
        if b.is_const and b.value == 0:
            return a
        return _mk_op(op, (a, b), a.lo + b.lo, a.hi + b.hi)
    if op is kind.SUB:
        if b.is_const and b.value == 0:
            return a
        if a.key == b.key:
            return const(0)
        return _mk_op(op, (a, b), a.lo - b.hi, a.hi - b.lo)
    if op is kind.MUL:
        if (a.is_const and a.value == 0) or (b.is_const and b.value == 0):
            return const(0)
        if a.is_const and a.value == 1:
            return b
        if b.is_const and b.value == 1:
            return a
        corners = [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi]
        return _mk_op(op, (a, b), min(corners), max(corners))
    if op is kind.DIV:
        # a // b with b == 0 -> 0; operands are wrapped register values
        # (non-negative), so the quotient stays within [0, a.hi].
        if a.lo >= 0 and b.lo >= 0:
            return _mk_op(op, (a, b), 0, a.hi)
        return _mk_op(op, (a, b), -(abs(a.lo) + abs(a.hi)),
                      abs(a.lo) + abs(a.hi))
    if op is kind.MOD:
        if a.lo >= 0 and b.lo >= 0:
            return _mk_op(op, (a, b), 0, max(b.hi - 1, 0))
        return _mk_op(op, (a, b), -(abs(b.hi)), abs(b.hi))
    if op is kind.AND:
        if (a.is_const and a.value == 0) or (b.is_const and b.value == 0):
            return const(0)
        if a.key == b.key:
            return a
        if a.lo >= 0 and b.lo >= 0:
            return _mk_op(op, (a, b), 0, min(a.hi, b.hi))
        return _mk_op(op, (a, b), min(a.lo, b.lo, 0), max(a.hi, b.hi, 0))
    if op is kind.OR:
        if a.is_const and a.value == 0:
            return b
        if b.is_const and b.value == 0:
            return a
        if a.key == b.key:
            return a
        if a.lo >= 0 and b.lo >= 0:
            return _mk_op(op, (a, b), max(a.lo, b.lo), _bits_hi(a, b))
        return _mk_op(op, (a, b), min(a.lo, b.lo), -1 if (a.hi < 0 or b.hi < 0) else _bits_hi(a, b))
    if op is kind.XOR:
        if a.key == b.key:
            return const(0)
        if a.lo >= 0 and b.lo >= 0:
            return _mk_op(op, (a, b), 0, _bits_hi(a, b))
        return _mk_op(op, (a, b), -(1 << 64), 1 << 64)
    if op is kind.SHL:
        if b.is_const:
            shift = b.value & 63
            if shift == 0:
                return a
            return _mk_op(op, (a, b), a.lo << shift if a.lo >= 0 else a.lo << shift,
                          a.hi << shift)
        if a.lo >= 0:
            return _mk_op(op, (a, b), 0, a.hi << 63)
        return _mk_op(op, (a, b), a.lo << 63, max(a.hi, 0) << 63)
    if op is kind.SHR:
        if b.is_const:
            shift = b.value & 63
            if shift == 0:
                return a
            return _mk_op(op, (a, b), a.lo >> shift, a.hi >> shift)
        if a.lo >= 0:
            return _mk_op(op, (a, b), 0, a.hi)
        return _mk_op(op, (a, b), a.lo, max(a.hi, 0))
    if op in _COMPARISONS:
        decided = _decide_comparison(op, a, b)
        if decided is not None:
            return const(decided)
        return _mk_op(op, (a, b), 0, 1)
    raise ValueError(f"unknown binop {op}")


def _decide_comparison(op: BinOpKind, a: Term, b: Term) -> Optional[int]:
    kind = BinOpKind
    same = a.key == b.key
    disjoint = a.hi < b.lo or b.hi < a.lo
    if op is kind.EQ:
        if same:
            return 1
        if disjoint:
            return 0
    elif op is kind.NE:
        if same:
            return 0
        if disjoint:
            return 1
    elif op is kind.LT:
        if a.hi < b.lo:
            return 1
        if same or a.lo >= b.hi:
            # a >= b everywhere -> a < b is false
            return 0
    elif op is kind.LE:
        if same or a.hi <= b.lo:
            return 1
        if a.lo > b.hi:
            return 0
    elif op is kind.GT:
        if b.hi < a.lo:
            return 1
        if b.lo >= a.hi:
            return 0
    elif op is kind.GE:
        if same or b.hi <= a.lo:
            return 1
        if b.lo > a.hi:
            return 0
    elif op is kind.LAND:
        ta, tb = truth(a), truth(b)
        if ta is False or tb is False:
            return 0
        if ta is True and tb is True:
            return 1
    elif op is kind.LOR:
        ta, tb = truth(a), truth(b)
        if ta is True or tb is True:
            return 1
        if ta is False and tb is False:
            return 0
    return None


def unop(op: UnOpKind, a: Term) -> Term:
    if a.is_const:
        if op is UnOpKind.NEG:
            return const(-a.value)
        if op is UnOpKind.NOT:
            return const(~a.value)
        return const(int(not a.value))
    if op is UnOpKind.NEG:
        return _mk_op(op, (a,), -a.hi, -a.lo)
    if op is UnOpKind.NOT:
        return _mk_op(op, (a,), ~a.hi, ~a.lo)
    # LNOT
    tv = truth(a)
    if tv is not None:
        return const(int(not tv))
    return _mk_op(op, (a,), 0, 1)


def wrap(a: Term, mask: int) -> Term:
    """``a & mask`` mirroring ``Interpreter._wrap`` for integer types."""
    if a.is_const:
        return const(a.value & mask)
    if 0 <= a.lo and a.hi <= mask:
        return a
    return _mk_op("wrap", (a,), 0, mask, value=mask)


def boolify(a: Term) -> Term:
    """``1 if a else 0`` mirroring the interpreter's BOOL wrap."""
    tv = truth(a)
    if tv is not None:
        return const(int(tv))
    if a.lo >= 0 and a.hi <= 1:
        return a  # already 0/1
    return _mk_op("bool", (a,), 0, 1)


def evaluate(term: Term, assignment: Dict[str, int],
             _memo: Optional[dict] = None) -> int:
    """Concretely evaluate ``term`` (atoms default to 0)."""
    memo = _memo if _memo is not None else {}
    cached = memo.get(term.key)
    if cached is not None:
        return cached
    if term.kind == "const":
        result = term.value
    elif term.kind == "atom":
        result = assignment.get(term.name, 0)
    else:
        args = [evaluate(a, assignment, memo) for a in term.args]
        op = term.op
        if op == "wrap":
            result = args[0] & term.value
        elif op == "bool":
            result = 1 if args[0] else 0
        elif isinstance(op, UnOpKind):
            if op is UnOpKind.NEG:
                result = -args[0]
            elif op is UnOpKind.NOT:
                result = ~args[0]
            else:
                result = int(not args[0])
        else:
            result = _apply_binop(op, args[0], args[1])
    memo[term.key] = result
    return result


def atoms_of(terms: Iterable[Term]) -> Dict[str, int]:
    """Atom name -> bit width over a collection of terms."""
    out: Dict[str, int] = {}
    stack: List[Term] = list(terms)
    seen: Set[tuple] = set()
    while stack:
        term = stack.pop()
        if term.key in seen:
            continue
        seen.add(term.key)
        if term.kind == "atom":
            out[term.name] = term.value
        stack.extend(term.args)
    return out


def constants_of(terms: Iterable[Term]) -> Set[int]:
    """Constant values appearing anywhere in ``terms`` (witness pools)."""
    out: Set[int] = set()
    stack: List[Term] = list(terms)
    seen: Set[tuple] = set()
    while stack:
        term = stack.pop()
        if term.key in seen:
            continue
        seen.add(term.key)
        if term.kind == "const":
            out.add(term.value)
        elif term.op == "wrap":
            out.add(term.value)
        stack.extend(term.args)
    return out
