"""Static verification layer: IR verifier, partition invariants, P4 lint.

Three stages run over every compilation (``compiler.compile_lowered``
gates on them by default; ``--no-verify`` opts out) and standalone via
``python -m repro verify <program>``:

1. :mod:`repro.verify.ir_verifier` — structural well-formedness of the
   lowered function and all three partition projections (IR001-IR010),
2. :mod:`repro.verify.invariants` — the partitioner's correctness
   obligations on the pre/offload/post split (PART001-PART006),
3. :mod:`repro.verify.p4lint` — constraint-1..5 resource bounds on the
   emitted switch program (P4L001-P4L010).

A fourth, opt-in stage — :mod:`repro.verify.symbolic`, translation
validation (SYM001-SYM008) — symbolically proves the composed deployment
equivalent to the source function per compilation; it runs behind
``compile_lowered(symbolic=True)`` and ``verify --symbolic`` rather than
on every compile (it costs seconds, not milliseconds).  Import
:func:`verify_symbolic` lazily from here; the submodule pulls in the
runtime/difftest stack for counterexample replay.

The difftest gauntlet runs the same stages as a per-program cross-check: a
program whose oracle run agrees but whose artifacts fail verification (or
vice versa) is a new bug class and gets its own failure report.
"""

from __future__ import annotations

from typing import FrozenSet, List

from repro.codegen.headers import ShimLayout
from repro.partition.plan import PartitionPlan
from repro.switchsim.program import SwitchProgram

from repro.verify.diagnostics import (
    DIAGNOSTIC_CODES,
    Diagnostic,
    VerificationError,
    VerificationReport,
)
from repro.verify.invariants import verify_partition
from repro.verify.ir_verifier import verify_ir
from repro.verify.p4lint import lint_switch_program

__all__ = [
    "DIAGNOSTIC_CODES",
    "Diagnostic",
    "VerificationError",
    "VerificationReport",
    "lint_switch_program",
    "verify_artifacts",
    "verify_compilation",
    "verify_ir",
    "verify_partition",
    "verify_symbolic",
]


def __getattr__(name: str):
    # Lazy: repro.verify.symbolic imports the runtime/difftest stack for
    # counterexample replay; keep plain `import repro.verify` light.
    if name == "verify_symbolic":
        from repro.verify.symbolic import verify_symbolic

        return verify_symbolic
    raise AttributeError(name)


def verify_artifacts(
    plan: PartitionPlan,
    shim_to_server: ShimLayout,
    shim_to_switch: ShimLayout,
    switch_program: SwitchProgram,
    cache_mode: bool = False,
) -> VerificationReport:
    """Run all three stages over one program's compiled artifacts."""
    report = VerificationReport(program=plan.middlebox.name)

    # Stage 1: the full lowered function, then each projection.  The
    # projections read boundary values from the shim headers, so those
    # field names count as defined-on-entry for the def-before-use check.
    report.extend(verify_ir(plan.middlebox.process))
    report.extend(verify_ir(plan.pre))
    server_inputs: FrozenSet[str] = frozenset(shim_to_server.field_names())
    report.extend(verify_ir(plan.non_offloaded, boundary_inputs=server_inputs))
    switch_inputs: FrozenSet[str] = frozenset(shim_to_switch.field_names())
    report.extend(verify_ir(plan.post, boundary_inputs=switch_inputs))

    # Stage 2: partition invariants.
    report.extend(
        verify_partition(
            plan, shim_to_server, shim_to_switch, cache_mode=cache_mode
        )
    )

    # Stage 3: switch resource lint.
    report.extend(lint_switch_program(switch_program))
    return report


def verify_compilation(result, cache_mode: bool = False) -> VerificationReport:
    """Convenience wrapper over a ``compiler.CompilationResult``."""
    return verify_artifacts(
        result.plan,
        result.shim_to_server,
        result.shim_to_switch,
        result.switch_program,
        cache_mode=cache_mode,
    )
