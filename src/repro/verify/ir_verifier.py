"""Stage 1 — structural well-formedness of IR functions (codes IR001-IR010).

Re-implements the checks of :mod:`repro.ir.validate` as diagnostics instead
of a fail-fast exception, and adds the checks validation never had: CFG
reachability (no block silently dropped), conservative operand typing, and
extern signature conformance against :data:`repro.ir.externs.EXTERN_SPECS`.

Projected partition functions read some registers from the shim header
rather than defining them locally; callers pass those names as
``boundary_inputs`` so the def-before-use dataflow treats them as defined
on entry instead of reporting false IR007s.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set

from repro.ir import instructions as irin
from repro.ir.externs import EXTERN_SPECS
from repro.ir.function import Function
from repro.ir.validate import _defined_regs, _used_regs
from repro.ir.values import Reg
from repro.lang.types import VOID

from repro.verify.diagnostics import Diagnostic, STAGE_IR, error, warning


def verify_ir(
    function: Function,
    boundary_inputs: FrozenSet[str] = frozenset(),
) -> List[Diagnostic]:
    """Run every structural check; return all diagnostics found."""
    out: List[Diagnostic] = []
    if function.entry not in function.blocks:
        out.append(
            error(
                "IR001",
                STAGE_IR,
                f"entry block {function.entry!r} missing",
                function=function.name,
            )
        )
        return out
    out.extend(_check_blocks(function))
    out.extend(_check_ssa(function))
    out.extend(_check_reachability(function))
    out.extend(_check_defs_before_use(function, boundary_inputs))
    out.extend(_check_types(function))
    out.extend(_check_externs(function))
    return out


def _check_blocks(function: Function) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for name, block in function.blocks.items():
        if not block.instructions:
            out.append(
                error(
                    "IR002",
                    STAGE_IR,
                    "empty basic block",
                    function=function.name,
                    block=name,
                )
            )
            continue
        last = block.instructions[-1]
        if not last.is_terminator:
            out.append(
                error(
                    "IR003",
                    STAGE_IR,
                    f"block falls through after {last!r}",
                    function=function.name,
                    block=name,
                    location=last.location,
                )
            )
        for inst in block.instructions[:-1]:
            if inst.is_terminator:
                out.append(
                    error(
                        "IR004",
                        STAGE_IR,
                        f"terminator {inst!r} before end of block",
                        function=function.name,
                        block=name,
                        location=inst.location,
                    )
                )
        for target in block.successors():
            if target not in function.blocks:
                out.append(
                    error(
                        "IR005",
                        STAGE_IR,
                        f"branch to unknown block {target!r}",
                        function=function.name,
                        block=name,
                        location=last.location,
                    )
                )
    return out


def _check_ssa(function: Function) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    temp_defs: Dict[str, List[irin.Instruction]] = {}
    for inst in function.instructions():
        for reg in _defined_regs(inst):
            if reg.is_temp:
                temp_defs.setdefault(reg.name, []).append(inst)
    for name, sites in temp_defs.items():
        if len(sites) > 1:
            out.append(
                error(
                    "IR006",
                    STAGE_IR,
                    f"temp %{name} assigned {len(sites)} times",
                    function=function.name,
                    location=sites[1].location,
                )
            )
    return out


def _check_reachability(function: Function) -> List[Diagnostic]:
    reachable: Set[str] = set()
    stack = [function.entry]
    while stack:
        name = stack.pop()
        if name in reachable or name not in function.blocks:
            continue
        reachable.add(name)
        stack.extend(function.blocks[name].successors())
    out: List[Diagnostic] = []
    for name in function.blocks:
        if name not in reachable:
            out.append(
                warning(
                    "IR008",
                    STAGE_IR,
                    "block is unreachable from the entry",
                    function=function.name,
                    block=name,
                )
            )
    return out


def _check_defs_before_use(
    function: Function, boundary_inputs: FrozenSet[str]
) -> List[Diagnostic]:
    """Forward definitely-defined dataflow, seeded with the shim inputs."""
    preds = function.predecessors()
    order = function.block_order()
    all_regs: Set[str] = set(boundary_inputs)
    for inst in function.instructions():
        for reg in _defined_regs(inst):
            all_regs.add(reg.name)
    defined_in: Dict[str, Set[str]] = {
        name: set(all_regs) for name in function.blocks
    }
    defined_in[function.entry] = set(boundary_inputs)

    def defined_out(block_name: str) -> Set[str]:
        defined = set(defined_in[block_name])
        for inst in function.blocks[block_name].instructions:
            for reg in _defined_regs(inst):
                defined.add(reg.name)
        return defined

    changed = True
    while changed:
        changed = False
        for name in order:
            if name == function.entry:
                incoming: Set[str] = set(boundary_inputs)
            else:
                pred_list = preds.get(name, [])
                if not pred_list:
                    continue  # unreachable: IR008 already reported
                incoming = set(all_regs)
                for pred in pred_list:
                    incoming &= defined_out(pred)
            if incoming != defined_in[name]:
                defined_in[name] = incoming
                changed = True

    out: List[Diagnostic] = []
    seen: Set[str] = set()
    for name, block in function.blocks.items():
        if name != function.entry and not preds.get(name):
            continue
        defined = set(defined_in[name])
        for inst in block.instructions:
            for reg in _used_regs(inst):
                if reg.name not in defined and reg.name not in seen:
                    seen.add(reg.name)
                    out.append(
                        error(
                            "IR007",
                            STAGE_IR,
                            f"%{reg.name} may be read before definition"
                            f" in {inst!r}",
                            function=function.name,
                            block=name,
                            location=inst.location,
                        )
                    )
            for reg in _defined_regs(inst):
                defined.add(reg.name)
    return out


def _width(reg_or_const: object) -> Optional[int]:
    type_ = getattr(reg_or_const, "type", None)
    if type_ is None or not hasattr(type_, "bit_width"):
        return None
    try:
        return int(type_.bit_width())
    except (TypeError, ValueError):
        return None


def _check_types(function: Function) -> List[Diagnostic]:
    """Conservative operand typing: flag only provable inconsistencies."""
    out: List[Diagnostic] = []

    def bad(inst: irin.Instruction, block: str, message: str) -> None:
        out.append(
            error(
                "IR009",
                STAGE_IR,
                message,
                function=function.name,
                block=block,
                location=inst.location,
            )
        )

    for name, block in function.blocks.items():
        for inst in block.instructions:
            if isinstance(inst, irin.BinOp):
                kind = inst.op
                boolean = kind.is_comparison or kind in (
                    irin.BinOpKind.LAND,
                    irin.BinOpKind.LOR,
                )
                if boolean and _width(inst.dst) not in (None, 1):
                    bad(
                        inst,
                        name,
                        f"comparison result %{inst.dst.name} is"
                        f" {_width(inst.dst)} bits wide (expected 1)",
                    )
            elif isinstance(inst, irin.Cast):
                if (
                    inst.dst.type is not None
                    and inst.to_type is not None
                    and inst.dst.type != inst.to_type
                ):
                    bad(
                        inst,
                        name,
                        f"cast destination %{inst.dst.name} typed"
                        f" {inst.dst.type!r}, cast target {inst.to_type!r}",
                    )
            elif isinstance(inst, irin.MapFind):
                if _width(inst.found) not in (None, 1):
                    bad(
                        inst,
                        name,
                        f"map-find hit flag %{inst.found.name} is"
                        f" {_width(inst.found)} bits wide (expected 1)",
                    )
            elif isinstance(inst, irin.Branch):
                if isinstance(inst.cond, Reg) and _width(inst.cond) not in (
                    None,
                    1,
                ):
                    bad(
                        inst,
                        name,
                        f"branch condition %{inst.cond.name} is"
                        f" {_width(inst.cond)} bits wide (expected 1)",
                    )
    return out


def _check_externs(function: Function) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for name, block in function.blocks.items():
        for inst in block.instructions:
            if not isinstance(inst, irin.ExternCall):
                continue
            spec = EXTERN_SPECS.get(inst.name)
            location = inst.location

            def bad(message: str) -> None:
                out.append(
                    error(
                        "IR010",
                        STAGE_IR,
                        message,
                        function=function.name,
                        block=name,
                        location=location,
                    )
                )

            if spec is None:
                bad(f"call to undeclared extern {inst.name!r}")
                continue
            if len(inst.args) != len(spec.params):
                bad(
                    f"extern {inst.name!r} called with {len(inst.args)}"
                    f" args (declares {len(spec.params)})"
                )
            if spec.return_type == VOID and inst.dst is not None:
                bad(f"void extern {inst.name!r} assigned to %{inst.dst.name}")
            if spec.return_type != VOID and inst.dst is None:
                bad(f"result of extern {inst.name!r} discarded")
            declared_reads = {loc.name for loc in spec.reads}
            declared_writes = {loc.name for loc in spec.writes}
            actual_reads = {loc.name for loc in inst.extra_reads}
            actual_writes = {loc.name for loc in inst.extra_writes}
            if actual_reads != declared_reads:
                bad(
                    f"extern {inst.name!r} effect mismatch:"
                    f" reads {sorted(actual_reads)}"
                    f" (declares {sorted(declared_reads)})"
                )
            if actual_writes != declared_writes:
                bad(
                    f"extern {inst.name!r} effect mismatch:"
                    f" writes {sorted(actual_writes)}"
                    f" (declares {sorted(declared_writes)})"
                )
    return out
