"""Multi-tenant switch: N middleboxes on one shared pipeline.

The production shape the ROADMAP targets is one physical switch fronting
many offloaded services.  This package provides the three layers that
shape needs:

* :mod:`repro.tenancy.allocator` — a first-class
  :class:`~repro.tenancy.allocator.SwitchResourceAllocator` admitting N
  compiled artifacts under one :class:`~repro.tenancy.allocator.\
SharedSwitchBudget` (stage placement, SRAM carving, PHV arbitration),
  with deterministic admission order and actionable rejection
  diagnostics.  It is also the single authority for the per-program
  §4.2.2 constraint checks the partitioner runs.
* :mod:`repro.tenancy.deployment` — a
  :class:`~repro.tenancy.deployment.MultiTenantDeployment` installing all
  admitted programs on one simulated pipeline, dispatching packets by
  ingress port or VLAN, isolating per-tenant state namespaces, and
  running every tenant's control plane as a concurrent submitter on one
  shared FIFO RPC channel.
* :mod:`repro.tenancy.oracle` — the tenant-isolation oracle: each
  tenant's multi-tenant run must be byte-identical (verdicts, egress
  bytes, final register/table state) to its solo deployment.
* :mod:`repro.tenancy.lint` — P4-lint of the *combined* artifact against
  constraints 1–5.
"""

from repro.tenancy.allocator import (
    AdmissionRejection,
    AdmissionReport,
    SharedSwitchBudget,
    SwitchResourceAllocator,
    TenantPlacement,
    TenantSpec,
    build_tenant_specs,
    constraint_violations,
)

__all__ = [
    "AdmissionRejection",
    "AdmissionReport",
    "SharedSwitchBudget",
    "SwitchResourceAllocator",
    "TenantPlacement",
    "TenantSpec",
    "build_tenant_specs",
    "constraint_violations",
]
