"""The switch resource allocator: N compiled middleboxes, one budget.

Everything before this module checked resources *per program*: the
partitioner measured one plan against one :class:`SwitchResources` and the
P4 lint re-proved the same bounds on the emitted artifact.  A production
switch fronts many services, and on an RMT pipeline (Bosshart et al.) the
stages, SRAM and PHV are a *shared* substrate — arbitrating them across
programs is the central compiler problem at that scale (cf. the RMT
backend paper).  This module makes that arbitration first-class:

* :func:`constraint_violations` is the single authority for the paper's
  §4.2.2 constraint 1–5 accounting.  The partitioner's final gate and
  :meth:`ConstraintReport.violations <repro.partition.constraints.\
ConstraintReport.violations>` both delegate here, so per-program admission
  is just the one-tenant case of the shared problem.
* :class:`SwitchResourceAllocator` admits N compiled artifacts under one
  :class:`SharedSwitchBudget`: per-tenant stage placement (stage 0 is the
  dispatch table, tenant tables pack from stage 1 with a bounded number of
  table slots per stage), register/table memory carved into contiguous
  per-tenant ranges, and PHV/header arbitration (every tenant's metadata
  and shim fields coexist in the parser's static PHV layout, so they sum).

Admission is deterministic and order-independent: tenants are admitted in
canonical order (sorted by name) regardless of submission order, so the
admit/reject verdict set is a function of the tenant *set*, never of the
call sequence.  A rejection names the exhausted resource, the tenant that
broke the budget, and who holds the remainder — an actionable diagnostic,
not a boolean.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.partition.constraints import ConstraintReport, SwitchResources
from repro.partition.plan import PartitionPlan
from repro.switchsim.program import SwitchProgram

#: Local port numbering inside one tenant's slice: 1/2 network, 3 server.
PORTS_PER_TENANT = 4

#: VLAN ids assigned to admitted tenants start here (100, 101, ...).
VLAN_BASE = 100

#: PHV bytes consumed by the shared dispatch machinery (tenant id + the
#: original-VLAN scratch field), counted once, not per tenant.
DISPATCH_PHV_BYTES = 4


# ---------------------------------------------------------------------------
# The per-program constraint authority (the one-tenant case)
# ---------------------------------------------------------------------------


def constraint_violations(
    report: ConstraintReport, limits: SwitchResources
) -> List[str]:
    """Constraint 1–5 violations of one measured partitioning.

    This is the accounting that used to live on
    ``ConstraintReport.violations``; it moved here so the allocator is the
    single authority for switch resource checks (the report method and the
    partitioner's final gate both delegate to it).
    """
    problems: List[str] = []
    if report.memory_bytes > limits.memory_bytes:
        problems.append(
            f"constraint 1: switch memory {report.memory_bytes} >"
            f" {limits.memory_bytes}"
        )
    depth = max(report.pipeline_depth_pre, report.pipeline_depth_post)
    if depth > limits.pipeline_depth:
        problems.append(
            f"constraint 2: dependency chain {depth} >"
            f" pipeline depth {limits.pipeline_depth}"
        )
    for state, sites in report.state_access_sites.items():
        if sites > 1:
            problems.append(
                f"constraint 3: state {state!r} has {sites} offloaded"
                " access sites"
            )
    metadata = max(report.metadata_bytes_pre, report.metadata_bytes_post)
    if metadata > limits.metadata_bytes:
        problems.append(
            f"constraint 4: per-packet metadata {metadata} bytes >"
            f" {limits.metadata_bytes}"
        )
    transfer = max(
        report.transfer_bytes_to_server, report.transfer_bytes_to_switch
    )
    if transfer > limits.transfer_bytes:
        problems.append(
            f"constraint 5: shim transfer {transfer} bytes >"
            f" {limits.transfer_bytes}"
        )
    return problems


def admit_single(
    name: str, report: ConstraintReport, limits: SwitchResources
) -> List[str]:
    """The partitioner's final admission gate (one tenant, one budget)."""
    return constraint_violations(report, limits)


# ---------------------------------------------------------------------------
# The shared budget and the N-tenant admission
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SharedSwitchBudget:
    """What one physical RMT pipeline offers the tenant population.

    Memory and stage count match the single-program
    :class:`SwitchResources` defaults (it is the same physical switch);
    the PHV budget is larger than the per-program 96-byte scratchpad
    because the parser's container file holds every program's fields at
    once, but far from N×96 — PHV pressure is exactly what makes
    multi-tenancy a packing problem.
    """

    #: Total match-table SRAM shared by every tenant, in bytes.
    memory_bytes: int = 16 * 1024 * 1024
    #: Physical match-action stages, including the dispatch stage.
    pipeline_depth: int = 20
    #: Match-table slots available per stage (RMT: a handful of parallel
    #: tables per stage; tenants' tables share stages).
    table_slots_per_stage: int = 4
    #: PHV bytes available to tenant metadata + shim fields combined.
    phv_bytes: int = 128
    #: Stages reserved at the front of the pipeline for tenant dispatch.
    dispatch_stages: int = 1

    @classmethod
    def tofino_like(cls) -> "SharedSwitchBudget":
        return cls()

    @classmethod
    def tiny(cls) -> "SharedSwitchBudget":
        """A deliberately starved shared switch for rejection tests."""
        return cls(
            memory_bytes=512 * 1024,
            pipeline_depth=10,
            table_slots_per_stage=2,
            phv_bytes=48,
        )

    def to_dict(self) -> dict:
        return {
            "memory_bytes": self.memory_bytes,
            "pipeline_depth": self.pipeline_depth,
            "table_slots_per_stage": self.table_slots_per_stage,
            "phv_bytes": self.phv_bytes,
            "dispatch_stages": self.dispatch_stages,
        }


@dataclass(frozen=True)
class TenantSpec:
    """One compiled middlebox asking for a slice of the shared switch."""

    name: str
    plan: PartitionPlan
    program: SwitchProgram
    #: static per-port config passed to the tenant's server runtime
    config: Optional[dict] = None

    @property
    def memory_bytes(self) -> int:
        """Table SRAM plus register file bytes this tenant needs."""
        registers = sum(
            (spec.width_bits + 7) // 8
            for spec in self.program.registers.values()
        )
        return self.program.memory_bytes() + registers

    @property
    def stage_depth(self) -> int:
        """Stages this tenant's deepest pipeline occupies (its tables are
        applied at most once each, so they never need more stages than
        the table count either)."""
        report = self.plan.report
        return max(
            report.pipeline_depth_pre,
            report.pipeline_depth_post,
            len(self.program.tables),
        )

    @property
    def phv_bytes(self) -> int:
        """PHV bytes this tenant's fields pin in the shared layout: its
        scratchpad peak plus the wider of its two shim headers."""
        report = self.plan.report
        metadata = max(report.metadata_bytes_pre, report.metadata_bytes_post)
        shim = max(
            self.program.shim_to_server.byte_size,
            self.program.shim_to_switch.byte_size,
        )
        return metadata + shim

    def table_slots(self, stage: int) -> int:
        """Table slots this tenant occupies in (tenant-relative) ``stage``
        (1-based, after dispatch).  Tables pack from stage 1, one slot
        each — the pessimistic packing the admission check bounds."""
        return 1 if 1 <= stage <= len(self.program.tables) else 0


@dataclass
class TenantPlacement:
    """Where an admitted tenant landed on the shared switch."""

    name: str
    #: order among admitted tenants (drives port base and VLAN id)
    index: int
    #: contiguous SRAM carve [offset, offset + memory_bytes)
    memory_offset: int
    memory_bytes: int
    #: stages this tenant's tables/ALUs occupy (after the dispatch stage)
    stage_first: int
    stage_last: int
    phv_bytes: int
    vlan: int
    port_base: int

    @property
    def server_port(self) -> int:
        return self.port_base + 3

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "index": self.index,
            "memory_offset": self.memory_offset,
            "memory_bytes": self.memory_bytes,
            "stage_first": self.stage_first,
            "stage_last": self.stage_last,
            "phv_bytes": self.phv_bytes,
            "vlan": self.vlan,
            "port_base": self.port_base,
        }


@dataclass(frozen=True)
class AdmissionRejection:
    """Why one tenant could not be admitted."""

    name: str
    #: the exhausted budget axis: "memory_bytes" | "pipeline_depth"
    #: | "table_slots" | "phv_bytes"
    resource: str
    message: str

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "resource": self.resource,
            "message": self.message,
        }


@dataclass
class AdmissionReport:
    """The allocator's verdict over one tenant set."""

    budget: SharedSwitchBudget
    admitted: List[TenantPlacement] = field(default_factory=list)
    rejected: List[AdmissionRejection] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.rejected

    def placement(self, name: str) -> TenantPlacement:
        for placement in self.admitted:
            if placement.name == name:
                return placement
        raise KeyError(name)

    def totals(self) -> Dict[str, int]:
        return {
            "memory_bytes": sum(p.memory_bytes for p in self.admitted),
            "phv_bytes": DISPATCH_PHV_BYTES
            + sum(p.phv_bytes for p in self.admitted),
            "stages": self.budget.dispatch_stages
            + max((p.stage_last for p in self.admitted), default=0),
        }

    def to_dict(self) -> dict:
        return {
            "budget": self.budget.to_dict(),
            "admitted": [p.to_dict() for p in self.admitted],
            "rejected": [r.to_dict() for r in self.rejected],
            "totals": self.totals(),
        }

    def format(self) -> str:
        lines = []
        totals = self.totals()
        lines.append(
            f"budget: {self.budget.memory_bytes} B SRAM,"
            f" {self.budget.pipeline_depth} stages"
            f" ({self.budget.dispatch_stages} dispatch),"
            f" {self.budget.table_slots_per_stage} table slots/stage,"
            f" {self.budget.phv_bytes} B PHV"
        )
        for placement in self.admitted:
            lines.append(
                f"  admit {placement.name}: SRAM"
                f" [{placement.memory_offset},"
                f" {placement.memory_offset + placement.memory_bytes}),"
                f" stages {placement.stage_first}-{placement.stage_last},"
                f" {placement.phv_bytes} B PHV, vlan {placement.vlan},"
                f" ports {placement.port_base + 1}-{placement.server_port}"
            )
        for rejection in self.rejected:
            lines.append(f"  reject {rejection.name}: {rejection.message}")
        lines.append(
            f"  used: {totals['memory_bytes']} B SRAM,"
            f" {totals['stages']} stages, {totals['phv_bytes']} B PHV"
        )
        return "\n".join(lines)


class SwitchResourceAllocator:
    """Admits compiled middleboxes onto one shared switch budget."""

    def __init__(self, budget: Optional[SharedSwitchBudget] = None):
        self.budget = budget if budget is not None else SharedSwitchBudget()

    def admit(self, tenants: Sequence[TenantSpec]) -> AdmissionReport:
        """Admit as many tenants as the budget allows.

        Tenants are processed in canonical order (sorted by name), so the
        admit/reject verdict set never depends on submission order.  A
        tenant that does not fit is rejected and admission continues —
        one oversized tenant must not shadow-reject everything sorted
        after it.
        """
        names = [spec.name for spec in tenants]
        if len(set(names)) != len(names):
            duplicates = sorted(
                {name for name in names if names.count(name) > 1}
            )
            raise ValueError(
                f"duplicate tenant name(s): {', '.join(duplicates)}"
            )
        report = AdmissionReport(budget=self.budget)
        memory_offset = 0
        phv_used = DISPATCH_PHV_BYTES
        tenant_stages = (
            self.budget.pipeline_depth - self.budget.dispatch_stages
        )
        slot_usage = [0] * (tenant_stages + 1)  # 1-based tenant stages
        for spec in sorted(tenants, key=lambda s: s.name):
            rejection = self._check(
                spec, report, memory_offset, phv_used, tenant_stages,
                slot_usage,
            )
            if rejection is not None:
                report.rejected.append(rejection)
                continue
            index = len(report.admitted)
            placement = TenantPlacement(
                name=spec.name,
                index=index,
                memory_offset=memory_offset,
                memory_bytes=spec.memory_bytes,
                stage_first=self.budget.dispatch_stages + 1,
                stage_last=self.budget.dispatch_stages + spec.stage_depth,
                phv_bytes=spec.phv_bytes,
                vlan=VLAN_BASE + index,
                port_base=index * PORTS_PER_TENANT,
            )
            report.admitted.append(placement)
            memory_offset += spec.memory_bytes
            phv_used += spec.phv_bytes
            for stage in range(1, tenant_stages + 1):
                slot_usage[stage] += spec.table_slots(stage)
        return report

    def _check(
        self,
        spec: TenantSpec,
        report: AdmissionReport,
        memory_offset: int,
        phv_used: int,
        tenant_stages: int,
        slot_usage: List[int],
    ) -> Optional[AdmissionRejection]:
        holders = ", ".join(p.name for p in report.admitted) or "nobody"
        if spec.stage_depth > tenant_stages:
            return AdmissionRejection(
                spec.name, "pipeline_depth",
                f"tenant {spec.name!r} rejected: pipeline_depth exhausted —"
                f" needs {spec.stage_depth} stages but only"
                f" {tenant_stages} remain after the"
                f" {self.budget.dispatch_stages}-stage dispatch"
                f" (budget {self.budget.pipeline_depth})",
            )
        remaining = self.budget.memory_bytes - memory_offset
        if spec.memory_bytes > remaining:
            return AdmissionRejection(
                spec.name, "memory_bytes",
                f"tenant {spec.name!r} rejected: memory_bytes exhausted —"
                f" needs {spec.memory_bytes} B, {remaining} B of"
                f" {self.budget.memory_bytes} B remain"
                f" ({memory_offset} B held by {holders})",
            )
        phv_remaining = self.budget.phv_bytes - phv_used
        if spec.phv_bytes > phv_remaining:
            return AdmissionRejection(
                spec.name, "phv_bytes",
                f"tenant {spec.name!r} rejected: phv_bytes exhausted —"
                f" needs {spec.phv_bytes} B, {phv_remaining} B of"
                f" {self.budget.phv_bytes} B remain"
                f" ({phv_used} B held by dispatch + {holders})",
            )
        for stage in range(1, tenant_stages + 1):
            needed = spec.table_slots(stage)
            if not needed:
                break
            free = self.budget.table_slots_per_stage - slot_usage[stage]
            if needed > free:
                return AdmissionRejection(
                    spec.name, "table_slots",
                    f"tenant {spec.name!r} rejected: table_slots exhausted"
                    f" at stage {self.budget.dispatch_stages + stage} —"
                    f" needs {needed} slot(s), {free} of"
                    f" {self.budget.table_slots_per_stage} remain"
                    f" (held by {holders})",
                )
        return None


def build_tenant_specs(names: Sequence[str]) -> List[TenantSpec]:
    """Compile bundled middleboxes into tenant specs (CLI/test helper)."""
    from repro.middleboxes import load
    from repro.runtime.deployment import compile_middlebox

    specs: List[TenantSpec] = []
    for name in names:
        bundle = load(name)
        plan, program = compile_middlebox(bundle.lowered)
        specs.append(
            TenantSpec(
                name=name, plan=plan, program=program, config=bundle.config
            )
        )
    return specs
