"""Tenant-scoped fault injection and the fault-isolation oracle.

The multi-tenant switch promises that one tenant's trouble is *its own*:
a lossy punt link carved to tenant A must degrade A exactly as it would
degrade A's solo deployment under the same faults, and must not perturb
any co-resident tenant by a single byte.  This module makes that claim
checkable:

* :func:`scoped_plan` projects a :class:`~repro.faults.plan.FaultPlan`
  of :class:`~repro.faults.plan.TenantLinkFault` specs onto one tenant,
  yielding the equivalent *unscoped* plan that tenant's own injector
  (and its solo reference run) executes;
* :func:`tenant_injector_seed` derives each tenant's injector seed from
  the campaign seed and the tenant's name, so co-residents never share
  a randomness stream and the solo reference can reproduce the exact
  same fault draws;
* :func:`run_fault_isolation_oracle` runs the shared deployment under a
  tenant-scoped plan and compares **every** tenant against its solo
  reference — the faulted tenant against a solo run with the *identical*
  scoped plan and seed, the unfaulted tenants against clean solo runs —
  demanding byte equality on verdicts, paths, egress frames, and final
  data-plane state;
* :func:`run_tenancy_fault_campaign` sweeps seeded random tenant-scoped
  schedules across many scenarios, the tenancy flavour of the fault
  campaign.

Isolation of the unfaulted tenants is *by construction* (only the named
tenant gets an injector at all); the oracle proves the byte-level
consequence rather than assuming it.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.faults.plan import FaultPlan, TenantLinkFault
from repro.tenancy.allocator import SharedSwitchBudget
from repro.tenancy.deployment import MultiTenantDeployment
from repro.tenancy.oracle import (
    IsolationResult,
    _compare_tenant,
    build_tenant_specs,
    run_solo,
)
from repro.workloads.iperf import IperfWorkload, middlebox_stream

#: XOR'd into the campaign seed per scenario to derive the plan RNG.
_PLAN_SALT = 0x7E2A27


def tenant_injector_seed(injector_seed: int, name: str) -> int:
    """Per-tenant injector seed: campaign seed blended with the tenant's
    name so co-residents draw from disjoint randomness streams and a solo
    reference run can reproduce the exact same draws."""
    return injector_seed ^ zlib.crc32(name.encode("utf-8"))


def scoped_plan(fault_plan: FaultPlan, tenant: str) -> FaultPlan:
    """Project a tenant-scoped plan onto one tenant.

    Returns the equivalent *unscoped* plan (plain :class:`LinkFault`
    specs) containing exactly the faults addressed to ``tenant``.  Plans
    handed to a multi-tenant deployment may contain only tenant-scoped
    fault kinds — an unscoped fault has no owner, so scoping it silently
    would hide a configuration bug.
    """
    scoped = []
    for spec in fault_plan.faults:
        if spec.kind != "tenant_link":
            raise ValueError(
                f"multi-tenant fault plans accept only tenant-scoped"
                f" faults, got kind {spec.kind!r}"
            )
        if spec.tenant == tenant:
            scoped.append(spec.as_link_fault())
    return FaultPlan(faults=tuple(scoped))


@dataclass
class TenancyFaultScenario:
    """One campaign scenario: a tenant set and a tenant-scoped plan."""

    index: int
    names: List[str]
    faulted: str
    plan: FaultPlan
    ok: bool = False
    injected: Dict[str, int] = field(default_factory=dict)
    mismatches: List[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "names": list(self.names),
            "faulted": self.faulted,
            "plan": self.plan.to_dict(),
            "ok": self.ok,
            "injected": dict(self.injected),
            "mismatches": list(self.mismatches),
        }


def run_fault_isolation_oracle(
    names: Sequence[str],
    fault_plan: FaultPlan,
    packets_per_tenant: int = 60,
    budget: Optional[SharedSwitchBudget] = None,
    seed: int = 0,
    injector_seed: int = 0,
    fast_path: bool = False,
    workload: Optional[IperfWorkload] = None,
) -> IsolationResult:
    """Prove fault isolation for one tenant set under one scoped plan.

    Every admitted tenant is compared byte-exactly against its solo
    reference run under *its own* slice of the plan: the faulted
    tenant's reference runs solo with the identical scoped faults and
    derived injector seed (so it degrades identically if and only if
    co-residency leaked nothing), and each unfaulted tenant's reference
    is the plain clean solo run.
    """
    # Short flows by default: a tenant-link fault only bites on the punt
    # path, so the default workload keeps new flows (and therefore punts)
    # coming instead of one long iperf connection that punts once.
    workload = workload or IperfWorkload(
        connections=32, packets_per_connection=3
    )
    specs = build_tenant_specs(list(names))
    shared = MultiTenantDeployment(
        specs, budget=budget, seed=seed, fast_path=fast_path,
        fault_plan=fault_plan, injector_seed=injector_seed,
    )
    shared.install()
    streams = {
        t.name: middlebox_stream(t.name, workload)
        for t in shared.tenants
    }
    multi_journeys = shared.run_workload(streams, packets_per_tenant)
    multi_state = shared.state_snapshots()
    injected: Dict[str, int] = {}
    for tenant in shared.tenants:
        injector = tenant.middlebox.injector
        if injector is not None:
            for kind, count in injector.injected.items():
                injected[kind] = injected.get(kind, 0) + count
    result = IsolationResult(
        admission=shared.admission,
        channel=shared.channel_stats(),
        counters=shared.switch.counters(),
        injected=injected,
    )
    for tenant in shared.tenants:
        tenant_plan = scoped_plan(fault_plan, tenant.name)
        solo_journeys, solo_state = run_solo(
            tenant.name, packets_per_tenant, seed=seed, fast_path=fast_path,
            fault_plan=tenant_plan if tenant_plan.faults else None,
            injector_seed=tenant_injector_seed(injector_seed, tenant.name),
            workload=workload,
        )
        verdict = _compare_tenant(
            tenant,
            multi_journeys[tenant.name],
            multi_state[tenant.name],
            solo_journeys,
            solo_state,
        )
        result.verdicts.append(verdict)
    return result


def generate_tenant_plan(
    rng: random.Random, names: Sequence[str], stream_len: int
) -> FaultPlan:
    """Draw one random tenant-scoped schedule: 1–2 punt-link faults, all
    addressed to a single randomly chosen tenant."""
    faulted = rng.choice(list(names))
    specs = []
    for _ in range(rng.randint(1, 2)):
        start = rng.randrange(0, max(1, stream_len // 2))
        specs.append(TenantLinkFault(
            tenant=faulted,
            direction=rng.choice(["to_server", "to_switch"]),
            mode=rng.choice(["loss", "loss", "corrupt"]),
            probability=rng.choice([0.15, 0.3, 0.6]),
            start=start,
            stop=rng.choice([None, start + rng.randint(3, stream_len)]),
        ))
    return FaultPlan(faults=tuple(specs))


def run_tenancy_fault_campaign(
    names: Sequence[str],
    scenarios: int = 20,
    packets_per_tenant: int = 40,
    seed: int = 0,
    fast_path: bool = False,
) -> List[TenancyFaultScenario]:
    """Sweep seeded random tenant-scoped fault schedules.

    Each scenario draws a plan (one faulted tenant, 1–2 punt-link
    faults) and runs the full fault-isolation oracle; a scenario passes
    only when every tenant — faulted and clean alike — is byte-exact
    against its solo reference.
    """
    results: List[TenancyFaultScenario] = []
    for index in range(scenarios):
        rng = random.Random((seed ^ _PLAN_SALT) + index)
        plan = generate_tenant_plan(rng, names, packets_per_tenant)
        faulted = plan.faults[0].tenant
        outcome = run_fault_isolation_oracle(
            names, plan,
            packets_per_tenant=packets_per_tenant,
            seed=seed, injector_seed=index, fast_path=fast_path,
        )
        scenario = TenancyFaultScenario(
            index=index, names=list(names), faulted=faulted, plan=plan,
            ok=outcome.ok,
        )
        for verdict in outcome.verdicts:
            scenario.mismatches.extend(
                f"{verdict.name}: {m}" for m in verdict.mismatches
            )
        scenario.injected = dict(outcome.injected)
        results.append(scenario)
    return results
