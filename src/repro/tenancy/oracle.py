"""Tenant-isolation oracle: multi-tenant output ≡ solo output, byte-exact.

The multi-tenant switch promises each admitted middlebox the semantics of
its solo deployment — co-residency may only add control-plane queueing
delay, never change behaviour.  This oracle proves it the strong way: it
runs every tenant twice on the same workload slice — once inside the
shared deployment (streams interleaved round-robin, control planes
contending on one RPC channel) and once alone — and demands byte
equality on

* per-packet verdicts (send/drop, fast-path/punted flags),
* egress frames (tenant-local egress port + packed wire bytes), and
* final data-plane state (every register value, every table snapshot).

Shared-channel queue wait (``sync_wait_us``) is the one sanctioned
difference; anything else is an isolation violation with the packet index
and field named.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import islice
from typing import Dict, List, Optional, Sequence, Tuple

from repro.runtime.deployment import GalliumMiddlebox, PacketJourney
from repro.telemetry import Telemetry
from repro.tenancy.allocator import (
    AdmissionReport,
    SharedSwitchBudget,
    build_tenant_specs,
)
from repro.tenancy.deployment import (
    MultiTenantDeployment,
    TenantRuntime,
    deployment_state_snapshot,
)
from repro.workloads.iperf import IperfWorkload, middlebox_stream

#: How many mismatches to spell out per tenant before truncating.
_MISMATCH_LIMIT = 5


@dataclass
class TenantVerdict:
    """One tenant's isolation comparison against its solo run."""

    name: str
    packets: int
    punts: int
    #: mean shared-channel-induced extra output-commit wait (µs)
    extra_sync_wait_us: float
    mismatches: List[str] = field(default_factory=list)

    @property
    def isolated(self) -> bool:
        return not self.mismatches

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "packets": self.packets,
            "punts": self.punts,
            "isolated": self.isolated,
            "extra_sync_wait_us": round(self.extra_sync_wait_us, 3),
            "mismatches": list(self.mismatches),
        }


@dataclass
class IsolationResult:
    """Oracle outcome for one tenant set."""

    admission: AdmissionReport
    verdicts: List[TenantVerdict] = field(default_factory=list)
    #: per-tenant shared-channel pressure from the multi-tenant run
    channel: Dict[str, dict] = field(default_factory=dict)
    #: per-tenant switch counters from the multi-tenant run
    counters: Dict[str, dict] = field(default_factory=dict)
    #: faults actually injected, by kind (tenant-scoped runs only)
    injected: Dict[str, int] = field(default_factory=dict)
    #: per-tenant windowed time series (``series_window_us`` runs only)
    series: Dict[str, dict] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(v.isolated for v in self.verdicts)

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "admission": self.admission.to_dict(),
            "tenants": [v.to_dict() for v in self.verdicts],
        }

    def format(self) -> str:
        lines = []
        for verdict in self.verdicts:
            status = "isolated" if verdict.isolated else "VIOLATION"
            lines.append(
                f"  {verdict.name}: {status} — {verdict.packets} packets,"
                f" {verdict.punts} punts,"
                f" +{verdict.extra_sync_wait_us:.1f} µs mean queue wait"
            )
            lines.extend(f"    {m}" for m in verdict.mismatches)
        verdict_line = "PASS" if self.ok else "FAIL"
        lines.append(f"isolation: {verdict_line}")
        return "\n".join(lines)


def run_solo(
    name: str,
    packets: int,
    seed: int = 0,
    fast_path: bool = False,
    fault_plan=None,
    injector_seed: int = 0,
    policy=None,
    workload: Optional[IperfWorkload] = None,
) -> Tuple[List[PacketJourney], dict]:
    """One tenant's reference run: alone on its own switch.

    Compiles fresh (compilation is deterministic, and sharing compiled
    objects with the multi-tenant run could let one side's mutations
    leak into the other — the exact thing the oracle must not assume).

    With ``fault_plan`` the solo run executes the given (already
    unscoped) plan under ``injector_seed`` — the fault-isolation
    oracle's reference for a faulted tenant, which must degrade
    *identically* to the tenant's multi-tenant run.
    """
    (spec,) = build_tenant_specs([name])
    injector = None
    if fault_plan is not None:
        from repro.faults.injector import FaultInjector
        from repro.runtime.degradation import DegradationPolicy

        policy = policy or DegradationPolicy()
        injector = FaultInjector(
            fault_plan, seed=injector_seed,
            max_attempts=policy.retry.max_attempts,
        )
    middlebox = GalliumMiddlebox(
        spec.plan,
        spec.program,
        config=spec.config,
        seed=seed,
        telemetry=Telemetry(),
        fast_path=fast_path,
        policy=policy,
        injector=injector,
    )
    middlebox.install()
    journeys = []
    stream = islice(
        middlebox_stream(name, workload or IperfWorkload()), packets
    )
    for packet, ingress_port in stream:
        journeys.append(middlebox.process_packet(packet, ingress_port))
    return journeys, deployment_state_snapshot(middlebox)


def run_isolation_oracle(
    names: Sequence[str],
    packets_per_tenant: int = 100,
    budget: Optional[SharedSwitchBudget] = None,
    seed: int = 0,
    fast_path: bool = False,
    series_window_us: Optional[float] = None,
) -> IsolationResult:
    """Run the multi-tenant deployment and compare every admitted tenant
    against its solo reference.

    ``series_window_us`` turns on per-tenant windowed time series for
    the multi-tenant run; the hubs land on
    :attr:`IsolationResult.series` keyed by tenant name.
    """
    specs = build_tenant_specs(list(names))
    shared = MultiTenantDeployment(
        specs, budget=budget, seed=seed, fast_path=fast_path,
        series_window_us=series_window_us,
    )
    shared.install()
    streams = {
        t.name: middlebox_stream(t.name, IperfWorkload())
        for t in shared.tenants
    }
    multi_journeys = shared.run_workload(streams, packets_per_tenant)
    multi_state = shared.state_snapshots()
    result = IsolationResult(
        admission=shared.admission,
        channel=shared.channel_stats(),
        counters=shared.switch.counters(),
        series=shared.series_snapshots(),
    )
    for tenant in shared.tenants:
        solo_journeys, solo_state = run_solo(
            tenant.name, packets_per_tenant, seed=seed, fast_path=fast_path
        )
        verdict = _compare_tenant(
            tenant,
            multi_journeys[tenant.name],
            multi_state[tenant.name],
            solo_journeys,
            solo_state,
        )
        result.verdicts.append(verdict)
    return result


def _compare_tenant(
    tenant: TenantRuntime,
    multi: List[PacketJourney],
    multi_state: dict,
    solo: List[PacketJourney],
    solo_state: dict,
) -> TenantVerdict:
    mismatches: List[str] = []

    def note(message: str) -> None:
        if len(mismatches) < _MISMATCH_LIMIT:
            mismatches.append(message)
        elif len(mismatches) == _MISMATCH_LIMIT:
            mismatches.append("... (further mismatches truncated)")

    if len(multi) != len(solo):
        note(
            f"packet count differs: multi={len(multi)} solo={len(solo)}"
        )
    base = tenant.placement.port_base
    extra_wait = 0.0
    punts = 0
    for index, (m, s) in enumerate(zip(multi, solo)):
        if m.verdict != s.verdict:
            note(
                f"packet {index}: verdict {m.verdict!r} != solo"
                f" {s.verdict!r}"
            )
        if (m.punted, m.fast_path) != (s.punted, s.fast_path):
            note(
                f"packet {index}: path (punted={m.punted},"
                f" fast={m.fast_path}) != solo (punted={s.punted},"
                f" fast={s.fast_path})"
            )
        m_egress = [(port - base, frame.pack()) for port, frame in m.emitted]
        s_egress = [(port, frame.pack()) for port, frame in s.emitted]
        if m_egress != s_egress:
            note(f"packet {index}: egress bytes differ from solo")
        if m.punted:
            punts += 1
            extra_wait += m.sync_wait_us - s.sync_wait_us
    if multi_state != solo_state:
        for kind in ("registers", "tables"):
            m_kind, s_kind = multi_state[kind], solo_state[kind]
            for key in sorted(set(m_kind) | set(s_kind)):
                if m_kind.get(key) != s_kind.get(key):
                    note(
                        f"final {kind[:-1]} {key!r} differs:"
                        f" multi={m_kind.get(key)!r}"
                        f" solo={s_kind.get(key)!r}"
                    )
    return TenantVerdict(
        name=tenant.name,
        packets=len(multi),
        punts=punts,
        extra_sync_wait_us=extra_wait / punts if punts else 0.0,
        mismatches=mismatches,
    )
