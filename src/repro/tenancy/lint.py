"""P4 lint of the *combined* multi-tenant artifact (constraints 1–5).

The per-program verifier (:mod:`repro.verify.p4lint`) proves each
middlebox fits a switch by itself.  Co-residency adds the questions this
stage answers: do the artifacts still satisfy constraints 1–5 when their
tables, registers, headers, and stages share one pipeline, and are their
state namespaces actually disjoint?  Findings are reported as
:class:`~repro.verify.diagnostics.Diagnostic` records (codes TEN001–004)
so CI consumes them through the same report schema as the solo verifier.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.verify.diagnostics import (
    STAGE_TENANCY,
    Diagnostic,
    VerificationReport,
    error,
)
from repro.verify.p4lint import lint_switch_program
from repro.tenancy.allocator import (
    DISPATCH_PHV_BYTES,
    SharedSwitchBudget,
    SwitchResourceAllocator,
    TenantSpec,
)


def lint_combined(
    specs: Sequence[TenantSpec],
    budget: Optional[SharedSwitchBudget] = None,
) -> List[Diagnostic]:
    """Validate the combined artifact of ``specs`` under one budget."""
    out: List[Diagnostic] = []
    out.extend(_lint_tenant_artifacts(specs))
    out.extend(_lint_namespaces(specs))
    out.extend(_lint_budget(specs, budget))
    return out


def verify_combined(
    specs: Sequence[TenantSpec],
    budget: Optional[SharedSwitchBudget] = None,
) -> VerificationReport:
    """The combined-artifact lint as a standard verification report."""
    names = "+".join(sorted(spec.name for spec in specs))
    report = VerificationReport(program=f"tenancy[{names}]")
    report.extend(lint_combined(specs, budget))
    return report


def _lint_tenant_artifacts(
    specs: Sequence[TenantSpec],
) -> List[Diagnostic]:
    """Re-run the per-program resource lint on every tenant's artifact.

    A program that fails constraints 1–5 alone can only get worse with
    neighbours; surfacing it here (wrapped as TEN003, with the solo code
    in the message) keeps the combined report self-contained.
    """
    out: List[Diagnostic] = []
    for spec in sorted(specs, key=lambda s: s.name):
        for diag in lint_switch_program(spec.program):
            if diag.severity != "error":
                continue
            out.append(
                error(
                    "TEN003",
                    STAGE_TENANCY,
                    f"tenant {spec.name!r}: solo lint failed with"
                    f" {diag.code}: {diag.message}",
                    function=spec.name,
                )
            )
    return out


def _lint_namespaces(specs: Sequence[TenantSpec]) -> List[Diagnostic]:
    """Tenant state lives in per-tenant namespaces; the combined switch
    prefixes every table/register with the tenant name, so the only way
    to collide is two tenants sharing a name."""
    out: List[Diagnostic] = []
    seen: dict = {}
    for spec in specs:
        if spec.name in seen:
            out.append(
                error(
                    "TEN004",
                    STAGE_TENANCY,
                    f"two tenants named {spec.name!r}: namespaced state"
                    f" ({spec.name}.<table>) would collide",
                    function=spec.name,
                )
            )
        seen[spec.name] = spec
    return out


def _lint_budget(
    specs: Sequence[TenantSpec],
    budget: Optional[SharedSwitchBudget],
) -> List[Diagnostic]:
    """Constraints 1–5 for the combined artifact, via the allocator.

    Constraint 3 (single access site per stateful element) is inherited:
    namespacing keeps every tenant's elements private, so co-residency
    cannot add access sites — only the shared budget axes (1, 2, 4/5 as
    PHV) need re-proving, which is exactly the allocator's admission.
    """
    allocator = SwitchResourceAllocator(budget)
    unique = {spec.name: spec for spec in specs}
    admission = allocator.admit(list(unique.values()))
    out: List[Diagnostic] = []
    for rejection in admission.rejected:
        out.append(
            error(
                "TEN001",
                STAGE_TENANCY,
                rejection.message,
                function=rejection.name,
            )
        )
    totals = admission.totals()
    checks = (
        (
            totals["memory_bytes"],
            allocator.budget.memory_bytes,
            "combined table+register memory",
            "B (constraint 1)",
        ),
        (
            totals["stages"],
            allocator.budget.pipeline_depth,
            "combined pipeline depth incl. dispatch",
            "stages (constraint 2)",
        ),
        (
            totals["phv_bytes"],
            allocator.budget.phv_bytes,
            "combined PHV (metadata + shim headers + dispatch"
            f" {DISPATCH_PHV_BYTES} B)",
            "B (constraints 4+5)",
        ),
    )
    for used, limit, what, unit in checks:
        if used > limit:
            out.append(
                error(
                    "TEN002",
                    STAGE_TENANCY,
                    f"{what} {used} > {limit} {unit}",
                )
            )
    return out
