"""The multi-tenant switch: all admitted programs on one pipeline.

One physical switch fronts N admitted middleboxes (§4.3.1 generalized):
the combined program's first table matches the ingress port (and the VLAN
tag, when present) to pick the owning tenant, then jumps into that
tenant's pre/post pipelines.  In the simulator each tenant's pipelines,
tables, and registers are its solo-compiled artifacts installed side by
side — the dispatch stage and the per-tenant port/SRAM/PHV carve come
from the :class:`~repro.tenancy.allocator.AdmissionReport`.

Isolation model
---------------
Each tenant keeps its **own** telemetry bundle (clock, metrics, tracer)
and jitter RNG, exactly as in its solo deployment; tenants share only the
physical substrate the allocator carved (disjoint by construction) and
the control plane's **FIFO RPC channel**.  The shared channel is the one
coupling: a tenant's update batch queues behind other tenants' in-flight
RPCs (`control_plane.rpc_queue_wait_us` goes strictly positive, which a
solo deployment can never make it do — it would have to queue behind
itself).  Queue wait only delays output commit (``sync_wait_us``); it
never changes a verdict, register, or egress byte.  That is the isolation
guarantee :mod:`repro.tenancy.oracle` proves byte-exactly against solo
runs.

Dispatch
--------
Global ingress ports are carved in blocks of
:data:`~repro.tenancy.allocator.PORTS_PER_TENANT` per tenant (tenant *i*
owns ``base = i * 4``: ``base+1``/``base+2`` network, ``base+3`` its punt
port).  A packet carrying a ``vlan`` metadata tag is dispatched by the
tenant's admitted VLAN id instead, arriving on the tenant's local port 1.
Egress ports in every emitted pair are translated back to global.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import islice
from typing import Dict, Iterator, List, Optional, Tuple

from repro.net.packet import RawPacket
from repro.runtime.deployment import GalliumMiddlebox, PacketJourney
from repro.switchsim.control_plane import RpcChannel
from repro.telemetry import Telemetry
from repro.tenancy.allocator import (
    PORTS_PER_TENANT,
    AdmissionReport,
    SharedSwitchBudget,
    SwitchResourceAllocator,
    TenantPlacement,
    TenantSpec,
)

#: Metadata key carrying a packet's VLAN tag (dispatch alternative to port).
VLAN_KEY = "vlan"


class TenantDispatchError(Exception):
    """A packet arrived that no admitted tenant owns."""


def deployment_state_snapshot(middlebox: GalliumMiddlebox) -> dict:
    """Final data-plane state of one deployment, byte-comparable.

    The isolation oracle compares this between a tenant's multi-tenant
    and solo runs; keys and entry order are canonical (sorted) so dict
    equality is byte equality of the serialized form.
    """
    switch = middlebox.switch
    return {
        "registers": {
            name: register.value
            for name, register in sorted(switch.registers.items())
        },
        "tables": {
            name: sorted(table.snapshot().items())
            for name, table in sorted(switch.tables.items())
        },
    }


@dataclass
class TenantRuntime:
    """One admitted tenant's slice of the shared switch."""

    spec: TenantSpec
    placement: TenantPlacement
    middlebox: GalliumMiddlebox
    journeys: List[PacketJourney] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.spec.name

    def state_snapshot(self) -> dict:
        """Final data-plane state, byte-comparable against a solo run."""
        return deployment_state_snapshot(self.middlebox)


class MultiTenantSwitchModel:
    """The shared-pipeline view over all admitted tenants.

    Presents the combined switch the way the emitted P4 artifact would:
    one dispatch function from (ingress port, VLAN) to the owning tenant,
    and tenant-namespaced ``tables``/``registers`` views over the carved
    state (the underlying objects *are* each tenant's — the namespace
    prefix is the isolation boundary made visible).
    """

    def __init__(self, tenants: List[TenantRuntime]):
        self._tenants = tenants
        self._by_name = {t.name: t for t in tenants}
        self._by_vlan = {t.placement.vlan: t for t in tenants}

    @property
    def tenants(self) -> List[TenantRuntime]:
        return list(self._tenants)

    @property
    def tables(self) -> Dict[str, object]:
        return {
            f"{tenant.name}.{name}": table
            for tenant in self._tenants
            for name, table in tenant.middlebox.switch.tables.items()
        }

    @property
    def registers(self) -> Dict[str, object]:
        return {
            f"{tenant.name}.{name}": register
            for tenant in self._tenants
            for name, register in tenant.middlebox.switch.registers.items()
        }

    def tenant(self, name: str) -> TenantRuntime:
        return self._by_name[name]

    def dispatch(
        self, packet: RawPacket, ingress_port: Optional[int]
    ) -> Tuple[TenantRuntime, int]:
        """Resolve a packet to (owning tenant, tenant-local ingress port).

        VLAN tag wins when present; otherwise the global port's carve
        block decides.
        """
        vlan = packet.metadata.get(VLAN_KEY)
        if vlan is not None:
            tenant = self._by_vlan.get(vlan)
            if tenant is None:
                raise TenantDispatchError(
                    f"no tenant owns vlan {vlan}"
                    f" (admitted: {sorted(self._by_vlan)})"
                )
            local = 1
            if ingress_port is not None:
                base = tenant.placement.port_base
                if base < ingress_port <= base + PORTS_PER_TENANT:
                    local = ingress_port - base
            return tenant, local
        if ingress_port is None:
            raise TenantDispatchError(
                "packet has neither a vlan tag nor an ingress port"
            )
        index, local = divmod(ingress_port - 1, PORTS_PER_TENANT)
        local += 1
        if not 0 <= index < len(self._tenants):
            raise TenantDispatchError(
                f"ingress port {ingress_port} is outside every tenant's"
                f" carve (tenants occupy ports 1-"
                f"{len(self._tenants) * PORTS_PER_TENANT})"
            )
        return self._tenants[index], local

    def counters(self) -> Dict[str, Dict[str, int]]:
        return {
            tenant.name: tenant.middlebox.switch.counters()
            for tenant in self._tenants
        }


class MultiTenantDeployment:
    """All admitted middleboxes running on one switch + shared channel."""

    def __init__(
        self,
        specs: List[TenantSpec],
        budget: Optional[SharedSwitchBudget] = None,
        seed: int = 0,
        tracing: bool = False,
        fast_path: bool = False,
        fault_plan=None,
        injector_seed: int = 0,
        policy=None,
        series_window_us: Optional[float] = None,
    ):
        self.allocator = SwitchResourceAllocator(budget)
        self.admission = self.allocator.admit(specs)
        self.seed = seed
        self.fault_plan = fault_plan
        #: the one shared control-plane pipe (the M/M/1 FIFO)
        self.channel = RpcChannel()
        by_name = {spec.name: spec for spec in specs}
        tenants: List[TenantRuntime] = []
        for placement in self.admission.admitted:
            spec = by_name[placement.name]
            injector = None
            tenant_policy = policy
            if fault_plan is not None:
                # Tenant-scoped faults: only the named tenant gets an
                # injector at all — isolation of the *unfaulted* tenants
                # is by construction, and the oracle then proves the
                # byte-level consequence.
                from repro.tenancy.faults import (
                    scoped_plan,
                    tenant_injector_seed,
                )

                scoped = scoped_plan(fault_plan, spec.name)
                if scoped.faults:
                    from repro.faults.injector import FaultInjector
                    from repro.runtime.degradation import DegradationPolicy

                    tenant_policy = policy or DegradationPolicy()
                    injector = FaultInjector(
                        scoped,
                        seed=tenant_injector_seed(injector_seed, spec.name),
                        max_attempts=tenant_policy.retry.max_attempts,
                    )
            middlebox = GalliumMiddlebox(
                spec.plan,
                spec.program,
                config=spec.config,
                seed=seed,
                telemetry=Telemetry(
                    tracing=tracing,
                    series_window_us=series_window_us,
                    series_tenant=spec.name,
                ),
                fast_path=fast_path,
                policy=tenant_policy,
                injector=injector,
            )
            # Share the RPC pipe; everything else stays per-tenant.
            middlebox.switch.control_plane.attach_channel(self.channel)
            if middlebox.telemetry.series is not None:
                # Windowing on: promote the default series now, before
                # any traffic, so window 0 starts at the epoch for every
                # tenant and the per-tenant hubs line up.
                middlebox.telemetry.series.promote_defaults()
            tenants.append(TenantRuntime(spec, placement, middlebox))
        self.switch = MultiTenantSwitchModel(tenants)

    @property
    def tenants(self) -> List[TenantRuntime]:
        return self.switch.tenants

    def install(self) -> None:
        """Configure every tenant and push its state to the switch."""
        for tenant in self.tenants:
            tenant.middlebox.install()

    # -- the packet path ----------------------------------------------------

    def process_packet(
        self, packet: RawPacket, ingress_port: Optional[int] = None
    ) -> Tuple[str, PacketJourney]:
        """Dispatch one packet to its tenant; returns (tenant, journey).

        ``ingress_port`` is global; the owning tenant sees its local
        port and the journey's emitted pairs are translated back to
        global ports.
        """
        tenant, local_port = self.switch.dispatch(packet, ingress_port)
        packet.metadata.pop(VLAN_KEY, None)
        journey = tenant.middlebox.process_packet(packet, local_port)
        base = tenant.placement.port_base
        journey.emitted = [
            (base + port, frame) for port, frame in journey.emitted
        ]
        tenant.journeys.append(journey)
        return tenant.name, journey

    def run_workload(
        self,
        streams: Dict[str, Iterator[Tuple[RawPacket, int]]],
        packets_per_tenant: int,
    ) -> Dict[str, List[PacketJourney]]:
        """Interleave per-tenant streams round-robin through the switch.

        ``streams`` maps tenant name to a (packet, local ingress port)
        iterator — the same stream a solo deployment would consume, so
        solo and multi-tenant runs see identical per-tenant workloads.
        Round-robin interleaving is what makes the shared channel queue:
        tenant B's punt lands while tenant A's write-back RPC is still
        in flight.
        """
        bounded = {
            name: islice(stream, packets_per_tenant)
            for name, stream in streams.items()
        }
        active = [t for t in self.tenants if t.name in bounded]
        exhausted: set = set()
        while len(exhausted) < len(active):
            for tenant in active:
                if tenant.name in exhausted:
                    continue
                try:
                    packet, local_port = next(bounded[tenant.name])
                except StopIteration:
                    exhausted.add(tenant.name)
                    continue
                global_port = tenant.placement.port_base + local_port
                self.process_packet(packet, global_port)
        return {t.name: list(t.journeys) for t in active}

    # -- observability -------------------------------------------------------

    def metrics_snapshots(self) -> Dict[str, dict]:
        """Per-tenant metrics, tagged by tenant name."""
        return {
            tenant.name: tenant.middlebox.telemetry.metrics.to_dict()
            for tenant in self.tenants
        }

    def channel_stats(self) -> Dict[str, dict]:
        """Shared-channel pressure as each tenant experienced it."""
        out: Dict[str, dict] = {}
        for tenant in self.tenants:
            metrics = tenant.middlebox.telemetry.metrics
            hist = metrics.histogram("control_plane.rpc_queue_wait_us")
            out[tenant.name] = {
                "rpc_count": hist.count,
                "queue_wait_total_us": hist.sum,
                "queue_wait_mean_us": hist.mean,
            }
        return out

    def state_snapshots(self) -> Dict[str, dict]:
        return {
            tenant.name: tenant.state_snapshot() for tenant in self.tenants
        }

    def series_snapshots(self) -> Dict[str, dict]:
        """Per-tenant windowed time series (tenants whose telemetry has
        windowing on; empty when ``series_window_us`` was not given)."""
        out: Dict[str, dict] = {}
        for tenant in self.tenants:
            hub = tenant.middlebox.telemetry.series
            if hub is not None:
                out[tenant.name] = hub.to_dict()
        return out
