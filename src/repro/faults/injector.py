"""Deterministic, seed-driven execution of a :class:`FaultPlan`.

The injector is the only source of randomness in a fault run: given the
same plan, seed, and packet sequence it makes the identical decisions, so
every campaign scenario is a reproducer.  The deployment queries it at
well-defined points (punt emission, batch attempts, window checks) and the
injector answers from one seeded RNG, counting everything it injects.

Transient batch faults compose soundly with the retry machinery because
the control plane is transactional: every attempt is journaled in an undo
log, so an exhausted "timeout" (updates landed, confirmation lost) rolls
*forward* from the log's high-water mark and an exhausted "fail" or
"crash" rolls the switch back byte-exactly.  Timeouts may therefore fire
on any attempt, including the final one — the historical restriction that
spared the last permitted attempt is gone.  "Doomed" batches — which
exhaust every retry — still use the veto-style "fail" so the abort is
clean.

Failover plans add three queries: :meth:`switch_down` also honours
``switch_crash`` windows and the dynamic promotion window a mid-batch
crash opens, :meth:`batch_fault` can answer ``"crash"`` (sticky for the
rest of that batch: the control-plane connection is gone), and
:meth:`standby_replay_dropped` decides whether a committed batch's replay
to the warm standby is lost.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.faults.plan import (
    BatchFault,
    FaultPlan,
    LinkFault,
    PuntReorder,
    ServerCrash,
    StaleReplication,
    SwitchReprogram,
    WritebackOverflow,
)


class FaultInjector:
    """Executes one fault plan deterministically under a seed."""

    def __init__(self, plan: FaultPlan, seed: int = 0, max_attempts: int = 4):
        self.plan = plan
        self.seed = seed
        self.max_attempts = max_attempts
        self._rng = random.Random(seed)
        self._index = 0
        self._cleared = False
        self._batch_doomed = False
        self._restart_loses_state = False
        #: a mid-batch crash fired for the current batch (sticky: every
        #: remaining attempt of that batch sees the dead connection)
        self._batch_crash_active = False
        #: a fired crash awaiting consumption by the failover deployment
        self._batch_crash_pending = False
        #: promotion window the pending crash will open once consumed
        self._batch_crash_window = 0
        #: each failover plan crashes the primary at most once
        self._primary_crashed = False
        #: [start, stop) switch outage opened by a consumed mid-batch crash
        self._dynamic_switch_outage: Optional[tuple] = None
        #: injected-fault counters by label (for campaign coverage stats)
        self.injected: Dict[str, int] = {}

    def _count(self, label: str) -> None:
        self.injected[label] = self.injected.get(label, 0) + 1

    def note(self, label: str) -> None:
        """Public counting hook for deployment-driven fault events.

        Pool membership changes fire at window *edges* the deployment
        detects, not at an injector query, so the deployment reports them
        here (labels like ``pool_member_crash[srv1]``) and campaign
        coverage sees per-member counts for free.
        """
        self._count(label)

    # -- per-packet bookkeeping ------------------------------------------------

    def begin_packet(self, index: int) -> None:
        self._index = index
        self._batch_doomed = False
        self._batch_crash_active = False

    def clear(self) -> None:
        """All faults off (recovery phase): every query is benign."""
        self._cleared = True

    # -- outage windows ----------------------------------------------------------

    def server_down(self, index: int) -> bool:
        if self._cleared:
            return False
        for spec in self.plan.by_kind("crash"):
            if spec.active(index):
                if spec.lose_state:
                    self._restart_loses_state = True
                return True
        return False

    def pool_member_down(self, member: str, index: int) -> bool:
        """Whether pool member ``member`` is down (crash) or quiescing
        (drain) at packet ``index``; False once faults are cleared so
        :meth:`~repro.runtime.pool.PooledDeployment.recover` completes
        any pending migration."""
        if self._cleared:
            return False
        return any(
            spec.member == member and spec.active(index)
            for kind in ("pool_member_crash", "pool_member_drain")
            for spec in self.plan.by_kind(kind)
        )

    def take_restart_state_loss(self) -> bool:
        """Whether the restart that just happened lost server state
        (consumed: the next crash window re-arms it)."""
        lost = self._restart_loses_state
        self._restart_loses_state = False
        return lost

    def switch_down(self, index: int) -> bool:
        if self._cleared:
            return False
        if self._dynamic_switch_outage is not None:
            lo, hi = self._dynamic_switch_outage
            if lo <= index < hi:
                return True
        return any(
            spec.active(index)
            for kind in ("reprogram", "switch_crash")
            for spec in self.plan.by_kind(kind)
        )

    def take_batch_crash(self) -> bool:
        """Consume a mid-batch primary crash (the failover deployment's
        hook): opens the promotion-window switch outage starting at the
        *next* packet — the data plane keeps forwarding until the
        supervisor declares the primary dead at the packet boundary."""
        if not self._batch_crash_pending:
            return False
        self._batch_crash_pending = False
        self._dynamic_switch_outage = (
            self._index + 1, self._index + 1 + self._batch_crash_window,
        )
        return True

    # -- punt-path link faults ---------------------------------------------------

    def punt_frame_fate(self) -> Optional[str]:
        """Fate of the switch→server frame for the current packet."""
        return self._frame_fate("to_server", "punt")

    def return_frame_fate(self) -> Optional[str]:
        """Fate of the server→switch frame for the current packet."""
        return self._frame_fate("to_switch", "return")

    def _frame_fate(self, direction: str, label: str) -> Optional[str]:
        if self._cleared:
            return None
        for spec in self.plan.by_kind("link"):
            if spec.direction != direction or not spec.active(self._index):
                continue
            if self._rng.random() < spec.probability:
                fate = (
                    f"{label}_lost" if spec.mode == "loss"
                    else f"{label}_corrupted"
                )
                self._count(fate)
                return fate
        return None

    # -- control-plane batch faults ---------------------------------------------

    def batch_fault(self, attempt: int) -> Optional[str]:
        """Fault decision for one batch attempt (the control-plane hook).

        ``attempt`` is 1-based.  Attempt 1 additionally decides whether
        the whole batch is doomed (fails every retry) or overflows.
        """
        if self._cleared:
            return None
        if self._batch_crash_active:
            # The control-plane connection died earlier in this batch;
            # every further attempt sees the same dead connection.
            return "crash"
        if attempt == 1:
            self._batch_doomed = False
            for spec in self.plan.by_kind("crash_batch"):
                if (
                    not self._primary_crashed
                    and spec.active(self._index)
                    and self._rng.random() < spec.probability
                ):
                    self._primary_crashed = True
                    self._batch_crash_active = True
                    self._batch_crash_pending = True
                    self._batch_crash_window = spec.promotion_window
                    self._count("crash_during_batch")
                    return "crash"
            for spec in self.plan.by_kind("overflow"):
                if spec.active(self._index) and (
                    self._rng.random() < spec.probability
                ):
                    self._count("writeback_overflow")
                    return "overflow"
            for spec in self.plan.by_kind("batch"):
                if spec.active(self._index) and spec.doom_probability and (
                    self._rng.random() < spec.doom_probability
                ):
                    self._batch_doomed = True
        if self._batch_doomed:
            self._count("batch_doomed_attempt")
            return "fail"
        for spec in self.plan.by_kind("batch"):
            if not spec.active(self._index):
                continue
            if self._rng.random() < spec.probability:
                self._count(f"batch_{spec.mode}")
                return spec.mode
        return None

    # -- standby replication (failover deployments) -------------------------------

    def standby_replay_dropped(self) -> bool:
        """Whether the current committed batch's replay to the warm
        standby is lost on the replication path."""
        if self._cleared:
            return False
        for spec in self.plan.by_kind("standby_stale"):
            if spec.active(self._index) and (
                self._rng.random() < spec.probability
            ):
                self._count("standby_replay_dropped")
                return True
        return False

    # -- replication lag ----------------------------------------------------------

    def stale_extra_us(self) -> float:
        if self._cleared:
            return 0.0
        total = 0.0
        for spec in self.plan.by_kind("stale"):
            if spec.active(self._index) and (
                self._rng.random() < spec.probability
            ):
                self._count("stale_replication")
                total += spec.extra_us
        return total

    # -- queue drain order --------------------------------------------------------

    def drain_order(self, count: int) -> List[int]:
        # Deliberately NOT gated on clear(): reordering is a property of
        # frames already sitting in the queue when recovery starts, so the
        # final drain shuffles even when it happens in the recovery phase.
        order = list(range(count))
        if count < 2:
            return order
        if self.plan.by_kind("reorder"):
            self._rng.shuffle(order)
            self._count("drain_reordered")
        return order
