"""Discrete-event timeline of an outage + recovery on the punt path.

The campaign (packet-indexed, semantics-first) proves *what* the
deployment does under faults; this module models *when* — driving the
:class:`repro.sim.Simulator` through a server outage to get recovery
time, queue occupancy, and the latency the fault adds to punted packets.
It feeds the fault-recovery experiment table
(:func:`repro.eval.experiments.fault_recovery`).

Model: punts arrive at a fixed inter-arrival time and need one service
slot each (server run + state-sync batch, Table 3).  During the outage
window punts queue up to the policy's bounded depth (beyond it they are
dropped — the deployment's ``queue_overflow`` degradation); when the
server returns the backlog drains at the service rate while new punts
keep arriving.  Recovery is complete when the queue first empties.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.sim.events import Simulator
from repro.switchsim.control_plane import (
    RetryPolicy,
    expected_batch_latency_us,
)
from repro.telemetry.metrics import Histogram

#: Bucket bounds (µs) for the outage-latency histogram — punt latencies
#: range from one service slot (~hundreds of µs) up to the longest outage
#: plus drain (~tens of ms).
TIMELINE_BOUNDS_US = (
    100.0, 200.0, 500.0, 1_000.0, 2_000.0, 5_000.0,
    10_000.0, 20_000.0, 50_000.0, 100_000.0,
)


def _latency_histogram() -> Histogram:
    return Histogram("timeline.latency_us", TIMELINE_BOUNDS_US)


@dataclass
class OutageScenario:
    """One punt-path outage to simulate."""

    #: punt inter-arrival time (µs) — the slow-path load
    arrival_interval_us: float = 50.0
    #: per-punt service time (µs): server run + replication batch
    service_us: float = expected_batch_latency_us(1, "modify")
    #: when the server goes down (µs into the run)
    outage_start_us: float = 1_000.0
    #: how long it stays down (µs)
    outage_us: float = 10_000.0
    #: bounded punt-queue depth (DegradationPolicy.punt_queue_depth)
    queue_depth: int = 32
    #: total punts driven through the timeline
    punts: int = 2_000

    def describe(self) -> str:
        return (
            f"outage={self.outage_us / 1000:.0f}ms"
            f" queue={self.queue_depth}"
            f" load=1/{self.arrival_interval_us:.0f}µs"
        )


@dataclass
class RecoveryTimeline:
    """What the simulation observed."""

    scenario: OutageScenario
    served: int = 0
    dropped: int = 0
    max_queue: int = 0
    #: µs after the server returned until the backlog first emptied
    recovery_us: float = 0.0
    #: per-served-punt latency distribution (completion − arrival, µs) —
    #: a registry histogram, so the percentile math lives in one place
    #: (:meth:`repro.telemetry.metrics.Histogram.percentile`).
    latency: Histogram = field(default_factory=_latency_histogram)

    @property
    def baseline_latency_us(self) -> float:
        """Fault-free punt latency (service only, no queueing)."""
        return self.scenario.service_us

    def added_p99_us(self) -> float:
        return max(0.0, self.latency.percentile(0.99) - self.baseline_latency_us)


def simulate_outage(scenario: OutageScenario) -> RecoveryTimeline:
    """Run one outage scenario on the discrete-event engine."""
    sim = Simulator()
    timeline = RecoveryTimeline(scenario)
    outage_end = scenario.outage_start_us + scenario.outage_us
    queue: List[float] = []  # arrival times of waiting punts
    state = {"busy": False, "recovered_at": None}

    def server_up(now: float) -> bool:
        return not (scenario.outage_start_us <= now < outage_end)

    def start_service(arrival_time: float) -> None:
        state["busy"] = True

        def complete() -> None:
            timeline.served += 1
            timeline.latency.observe(sim.now - arrival_time)
            state["busy"] = False
            pump()

        sim.schedule(scenario.service_us, complete)

    def pump() -> None:
        """Serve the head of the queue if the server is free."""
        if state["busy"] or not server_up(sim.now):
            return
        if queue:
            start_service(queue.pop(0))
        elif (
            state["recovered_at"] is None and sim.now >= outage_end
        ):
            # Backlog just emptied for the first time post-outage.
            state["recovered_at"] = sim.now
            timeline.recovery_us = sim.now - outage_end

    def arrive() -> None:
        if state["busy"] or not server_up(sim.now):
            if len(queue) >= scenario.queue_depth:
                timeline.dropped += 1
            else:
                queue.append(sim.now)
                timeline.max_queue = max(timeline.max_queue, len(queue))
        else:
            start_service(sim.now)

    for index in range(scenario.punts):
        sim.schedule_at(index * scenario.arrival_interval_us, arrive)
    sim.schedule_at(outage_end, pump)  # the server comes back
    sim.run()
    if state["recovered_at"] is None:
        # Queue never emptied before the arrivals stopped; recovery ends
        # when the last punt finishes.
        timeline.recovery_us = max(0.0, sim.now - outage_end)
    return timeline


def retry_latency_us(
    failed_attempts: int,
    policy: Optional[RetryPolicy] = None,
    n_tables: int = 1,
    op: str = "modify",
) -> float:
    """Nominal extra output-commit wait after ``failed_attempts`` vetoed
    batch attempts (jitter-free; the worst case the fault harness charges
    a packet that eventually commits)."""
    policy = policy or RetryPolicy()
    base = expected_batch_latency_us(n_tables, op)
    wait = 0.0
    nominal_backoff = policy.base_backoff_us
    for _ in range(failed_attempts):
        wait += base  # the failed attempt burns its RPC time
        wait += min(policy.max_backoff_us, nominal_backoff)
        nominal_backoff *= policy.backoff_multiplier
    return wait
