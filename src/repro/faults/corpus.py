"""Fault-scenario reproducer corpus.

Mirrors the difftest corpus: every runtime bug the fault campaign finds is
committed as one JSON file under ``tests/faults_corpus/`` capturing the
full scenario — program source, packet stream, fault plan, degradation
policy, and the injector/deployment seeds — plus the expected outcome
once fixed.  The corpus regression test replays each entry through the
fault oracle.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional

from repro.difftest.oracle import StreamSpec
from repro.faults.oracle import (
    FaultOracleResult,
    FaultOutcome,
    run_fault_oracle,
)
from repro.faults.plan import FaultPlan
from repro.runtime.degradation import DegradationPolicy

#: Default corpus location (checked into the repository).
CORPUS_DIR = Path(__file__).resolve().parents[3] / "tests" / "faults_corpus"


@dataclass
class FaultCorpusEntry:
    """One fault-scenario reproducer plus its provenance."""

    name: str
    source: str
    stream: StreamSpec
    fault_plan: FaultPlan
    policy: DegradationPolicy
    injector_seed: int = 0
    deployment_seed: int = 0
    expect: str = FaultOutcome.DEGRADED_OK.value
    description: str = ""
    found_by_seed: Optional[int] = None
    #: replay on the bounded-cache deployment instead of full replication
    cached: bool = False
    #: replay on the active-standby failover deployment
    failover: bool = False
    #: serialized :class:`repro.telemetry.diff.TraceDiff` captured when
    #: the bug was found — the first divergent semantic event between the
    #: reference and the faulty deployment, kept as historical provenance.
    trace_diff: Optional[dict] = None

    def to_dict(self) -> dict:
        data = {
            "name": self.name,
            "description": self.description,
            "found_by_seed": self.found_by_seed,
            "expect": self.expect,
            "cached": self.cached,
            "failover": self.failover,
            "stream": self.stream.to_dict(),
            "fault_plan": self.fault_plan.to_dict(),
            "policy": self.policy.to_dict(),
            "injector_seed": self.injector_seed,
            "deployment_seed": self.deployment_seed,
            "source": self.source.splitlines(),
        }
        if self.trace_diff is not None:
            data["trace_diff"] = self.trace_diff
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FaultCorpusEntry":
        source = data["source"]
        if isinstance(source, list):
            source = "\n".join(source) + "\n"
        return cls(
            name=data["name"],
            source=source,
            stream=StreamSpec.from_dict(data["stream"]),
            fault_plan=FaultPlan.from_dict(data["fault_plan"]),
            policy=DegradationPolicy.from_dict(data.get("policy", {})),
            injector_seed=int(data.get("injector_seed", 0)),
            deployment_seed=int(data.get("deployment_seed", 0)),
            expect=data.get("expect", FaultOutcome.DEGRADED_OK.value),
            description=data.get("description", ""),
            found_by_seed=data.get("found_by_seed"),
            cached=bool(data.get("cached", False)),
            failover=bool(data.get("failover", False)),
            trace_diff=data.get("trace_diff"),
        )


def save_entry(entry: FaultCorpusEntry, directory: Path = CORPUS_DIR) -> Path:
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{entry.name}.json"
    path.write_text(json.dumps(entry.to_dict(), indent=2) + "\n")
    return path


def load_corpus(directory: Path = CORPUS_DIR) -> List[FaultCorpusEntry]:
    if not directory.is_dir():
        return []
    return [
        FaultCorpusEntry.from_dict(json.loads(path.read_text()))
        for path in sorted(directory.glob("*.json"))
    ]


def replay_entry(entry: FaultCorpusEntry) -> FaultOracleResult:
    """Run one corpus entry through the fault oracle."""
    return run_fault_oracle(
        entry.source,
        entry.stream,
        entry.fault_plan,
        policy=entry.policy,
        injector_seed=entry.injector_seed,
        deployment_seed=entry.deployment_seed,
        cached=entry.cached,
        failover=entry.failover,
    )
