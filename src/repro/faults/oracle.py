"""Fault-aware oracle: degradation must be declared, never silent.

The plain difftest oracle proves the deployment equivalent to the
unpartitioned baseline under ideal conditions.  Under injected faults
strict equivalence is impossible — packets legitimately vanish, fail open,
or queue — so this oracle checks the strongest property that *is*
guaranteed:

1. **Effect-log equivalence.**  The faulty deployment records an ordered
   ``fault_log`` of every semantic effect (pre-pipeline ingress, punt
   completion, punt discard, fallback run, crash resync).  The oracle
   replays that log against a *clean* reference deployment of the same
   compiled program (whose equivalence to the baseline is difftest's
   theorem) and requires every delivered packet's observable — verdict,
   egress port, all header fields — to match, and the final switch+server
   state of both deployments to agree exactly.
2. **Policy conformance.**  Every non-delivered packet must be accounted
   with a reason, and its observable must be exactly what the declared
   :class:`DegradationPolicy` dictates (fail-closed drop, or fail-open
   forwarding of the pristine packet on the bypass pair).
3. **Post-recovery convergence.**  After faults clear and recovery runs,
   replicated switch tables must equal the server's authoritative copy,
   and a fresh verification stream must behave identically on the
   recovered deployment and the reference — the system returned to full
   functional equivalence.

Any breach is a :class:`FaultViolation` — by construction a real bug in
the runtime's fault handling (or a latent compiler bug), never noise.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple

from repro.difftest.oracle import (
    DEFAULT_PORT_PAIRS,
    StreamSpec,
    _observe_fields,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.net.packet import RawPacket
from repro.partition.constraints import SwitchResources
from repro.partition.partitioner import PartitionError
from repro.partition.plan import PlacementKind
from repro.runtime.cache import (
    CacheConfigurationError,
    CachedGalliumMiddlebox,
)
from repro.runtime.degradation import (
    DegradationPolicy,
    UNSALVAGEABLE_REASONS,
)
from repro.runtime.deployment import (
    GalliumMiddlebox,
    PacketJourney,
    PuntCompletion,
    compile_middlebox,
)
from repro.runtime.cached_failover import CachedFailoverDeployment
from repro.runtime.failover import FailoverDeployment
from repro.runtime.pool import PooledDeployment, default_member_names
from repro.switchsim.program import SwitchProgramError
from repro.switchsim.switch_model import SwitchOutput

#: XOR'd into the stream seed to derive the post-recovery verification
#: stream (must differ from the fault-phase stream).
VERIFY_SALT = 0xFA17

Observation = Tuple[str, Optional[int], Optional[Dict[str, int]]]


class FaultOutcome(str, Enum):
    #: no fault fired (plan windows missed the traffic); full equivalence
    CLEAN = "clean"
    #: faults fired; every degradation declared and policy-conformant,
    #: state converged, post-recovery equivalence verified
    DEGRADED_OK = "degraded_ok"
    #: compiler legitimately refused the program
    REJECTED = "rejected"
    #: a guarantee was breached (silent loss, divergence, bad accounting)
    VIOLATION = "violation"
    #: unhandled exception anywhere in the pipeline
    CRASH = "crash"


@dataclass
class FaultViolation:
    kind: str  # "observable" | "path" | "policy" | "state" | "accounting" | "convergence" | "post_recovery"
    packet_index: Optional[int]
    detail: str

    def __str__(self) -> str:
        where = (
            f"packet #{self.packet_index}"
            if self.packet_index is not None else "final state"
        )
        return f"[{self.kind}] {where}: {self.detail}"


@dataclass
class PacketRecord:
    """What the faulty deployment did with one packet."""

    index: int
    kind: str  # "delivered" | "lost" | "degraded_drop" | "failed_open" | "queued"
    observation: Observation
    punted: bool = False
    fallback: bool = False
    queued: bool = False
    reason: Optional[str] = None


@dataclass
class FaultOracleResult:
    outcome: FaultOutcome
    violation: Optional[FaultViolation] = None
    error: Optional[str] = None
    packets_run: int = 0
    delivered: int = 0
    degraded: int = 0
    accounting: Dict = field(default_factory=dict)
    injected: Dict[str, int] = field(default_factory=dict)
    fault_kinds: Tuple[str, ...] = ()
    #: True when the scenario ran the bounded-cache deployment
    cached_mode: bool = False
    #: True when the scenario ran the active-standby failover deployment
    failover_mode: bool = False
    #: whether the failover DUT actually promoted its standby
    promoted: bool = False
    #: True when the scenario ran the punt-path server pool deployment
    pool_mode: bool = False
    #: pool member count (0 when not in pool mode)
    pool_servers: int = 0
    #: flow-state migrations the pool DUT ran (crash + drain)
    migrations: int = 0
    #: control-plane batches the DUT rolled back during the scenario
    #: (the ``control_plane.batches_rolled_back`` counter at finish)
    rollbacks: int = 0
    #: side-by-side trace provenance for a VIOLATION outcome: the scenario
    #: re-ran with tracing on both the DUT and the reference and the first
    #: divergent semantic event was pinpointed
    #: (:class:`repro.telemetry.diff.TraceDiff`); ``None`` when provenance
    #: was disabled or collection failed.
    trace_diff: Optional[object] = None


def _journey_observation(journey: PacketJourney) -> Observation:
    if journey.verdict != "send":
        return ("drop", None, None)
    if not journey.emitted:
        return ("send", None, None)
    port, packet = journey.emitted[0]
    return ("send", port, _observe_fields(packet))


def _switch_observation(out: SwitchOutput) -> Observation:
    if out.dropped or not out.emitted:
        return ("drop", None, None)
    port, packet = out.emitted[0]
    return ("send", port, _observe_fields(packet))


def _completion_observation(comp: PuntCompletion) -> Observation:
    if comp.verdict != "send" or not comp.emitted:
        return ("drop", None, None)
    port, packet = comp.emitted[0]
    return ("send", port, _observe_fields(packet))


def _record(journey: PacketJourney) -> PacketRecord:
    index = journey.packet_index
    assert index is not None
    if journey.queued and journey.verdict == "queued":
        return PacketRecord(index, "queued", ("drop", None, None),
                            punted=True, queued=True)
    observation = _journey_observation(journey)
    if journey.degraded:
        if journey.degraded_reason in UNSALVAGEABLE_REASONS:
            kind = "lost"
        elif journey.verdict == "send":
            kind = "failed_open"
        else:
            kind = "degraded_drop"
        return PacketRecord(
            index, kind, observation, punted=journey.punted,
            queued=journey.queued, reason=journey.degraded_reason,
        )
    return PacketRecord(
        index, "delivered", observation, punted=journey.punted,
        fallback=journey.fallback, queued=journey.queued,
    )


def run_fault_oracle(
    source_or_lowered,
    stream: StreamSpec,
    fault_plan: FaultPlan,
    policy: Optional[DegradationPolicy] = None,
    injector_seed: int = 0,
    deployment_seed: int = 0,
    limits: Optional[SwitchResources] = None,
    config: Optional[Dict[int, list]] = None,
    verify_packets: int = 12,
    cached: bool = False,
    cache_entries: int = 2,
    failover: bool = False,
    detection: str = "phi",
    pool: int = 0,
    provenance: bool = True,
    _telemetry: Optional[tuple] = None,
) -> FaultOracleResult:
    """Drive one program through one fault schedule and verify it.

    With ``cached`` the deployment under test (and its clean reference)
    is the bounded-table :class:`CachedGalliumMiddlebox`; programs that
    cannot run in cache mode (no replicated tables, or a register-mutating
    switch pipeline) are REJECTED, mirroring the compile-time refusals.

    With ``failover`` the deployment under test is the active-standby
    :class:`FailoverDeployment`; the reference stays a clean single-switch
    deployment, and the ``("promote",)`` effect-log tag replays as a
    no-op — the promotion resync leaves the pair exactly where a healthy
    single switch would be, which is precisely the property under test.

    ``detection`` picks the failover DUT's crash detector: ``"phi"``
    (default) drives promotion from the φ-accrual heartbeat monitor —
    the promotion window's length is the *measured* detection latency —
    while ``"exact"`` keeps the fault-window-boundary oracle reference.
    Both replay cleanly: the reference replays the DUT's own effect log,
    so a φ-extended window simply contributes more ``("fallback", ...)``
    entries.

    ``cached`` and ``failover`` compose: the deployment under test becomes
    the :class:`CachedFailoverDeployment` (bounded tables over an
    active-standby pair), the reference stays the clean cached deployment,
    and the ``("promote",)`` tag mirrors a cached bulk resync onto the
    reference — the promotion rebuilds the promoted switch's bounded cache
    and FIFO eviction order from the server's authoritative copy, so the
    reference must re-converge its own cache at the same log point.

    With ``provenance`` (the default), a VIOLATION outcome re-runs the
    whole scenario with per-packet tracing on both deployments (the run is
    fully seeded, so it reproduces exactly) and attaches the trace diff
    pinpointing the first divergent semantic event.  Shrinker predicates
    pass ``provenance=False``.  ``_telemetry`` is the internal hook the
    provenance re-run uses: a ``(dut_telemetry, reference_telemetry)``
    pair threaded into the two deployments.

    With ``pool`` > 0 the deployment under test is the punt-path
    :class:`~repro.runtime.pool.PooledDeployment` with that many members;
    the reference stays the clean single-server deployment (all members
    execute against one authoritative store, so a correct pool *is*
    byte-equivalent to it) and the ``("pool_down", ...)`` /
    ``("pool_migrate", ...)`` effect-log tags replay as no-ops — a
    correct migration is an identity transform on committed state, which
    the observable/final-state/convergence checks then verify.  The
    extra :func:`_check_pool` pass asserts the no-fallback-while-
    survivors-exist guarantee and bounds the blast radius of each member
    outage to the flows an independently rebuilt selector says the
    member owned.
    """
    if pool and (cached or failover):
        raise ValueError(
            "pool mode does not compose with cached/failover scenarios yet"
            " — run them separately"
        )
    pool_members = default_member_names(pool) if pool else []
    policy = policy or DegradationPolicy()
    dut_telemetry = _telemetry[0] if _telemetry is not None else None
    ref_telemetry = _telemetry[1] if _telemetry is not None else None
    try:
        plan, program = compile_middlebox(source_or_lowered, limits)
    except (PartitionError, SwitchProgramError) as exc:
        # Both are deliberate refusals: the partitioner could not satisfy
        # the resource constraints, or the generated switch program blew
        # an architectural budget (e.g. the Constraint-5 shim limit).
        return FaultOracleResult(FaultOutcome.REJECTED, error=str(exc))
    except Exception:
        return FaultOracleResult(
            FaultOutcome.CRASH, error=f"compile:\n{traceback.format_exc()}"
        )

    injector = FaultInjector(
        fault_plan, seed=injector_seed,
        max_attempts=policy.retry.max_attempts,
    )

    def deploy(
        failover_dut: bool = False, pool_dut: bool = False, **kwargs
    ) -> GalliumMiddlebox:
        if pool_dut:
            box = PooledDeployment(
                plan, program, servers=pool,
                port_pairs=dict(DEFAULT_PORT_PAIRS),
                config=config, seed=deployment_seed, **kwargs,
            )
            box.install()
            return box
        if cached and failover_dut:
            box = CachedFailoverDeployment(
                plan, program, cache_entries=cache_entries,
                port_pairs=dict(DEFAULT_PORT_PAIRS),
                config=config, seed=deployment_seed,
                detection=detection, **kwargs,
            )
        elif cached:
            box = CachedGalliumMiddlebox(
                plan, program, cache_entries=cache_entries,
                port_pairs=dict(DEFAULT_PORT_PAIRS),
                config=config, seed=deployment_seed, **kwargs,
            )
        elif failover_dut:
            box = FailoverDeployment(
                plan, program, port_pairs=dict(DEFAULT_PORT_PAIRS),
                config=config, seed=deployment_seed,
                detection=detection, **kwargs,
            )
        else:
            box = GalliumMiddlebox(
                plan, program, port_pairs=dict(DEFAULT_PORT_PAIRS),
                config=config, seed=deployment_seed, **kwargs,
            )
        box.install()
        return box

    try:
        dut = deploy(failover_dut=failover, pool_dut=bool(pool),
                     policy=policy, injector=injector,
                     telemetry=dut_telemetry)
        reference = deploy(telemetry=ref_telemetry)
    except CacheConfigurationError as exc:
        return FaultOracleResult(
            FaultOutcome.REJECTED, error=str(exc), cached_mode=True
        )
    except Exception:
        return FaultOracleResult(
            FaultOutcome.CRASH, error=f"deploy:\n{traceback.format_exc()}",
            cached_mode=cached,
        )

    packets = stream.build()
    records: Dict[int, PacketRecord] = {}
    try:
        for index, (packet, ingress) in enumerate(packets):
            journey = dut.process_packet(packet.copy(), ingress)
            records[journey.packet_index] = _record(journey)
            for deferred in dut.drain_deferred():
                records[deferred.packet_index] = _record(deferred)
        dut.recover()
        for deferred in dut.drain_deferred():
            records[deferred.packet_index] = _record(deferred)
    except Exception:
        return FaultOracleResult(
            FaultOutcome.CRASH, packets_run=len(records),
            error=f"fault run:\n{traceback.format_exc()}",
            cached_mode=cached,
        )

    def finish(violation: Optional[FaultViolation]) -> FaultOracleResult:
        degraded = sum(
            1 for record in records.values() if record.kind != "delivered"
        )
        faulted = bool(injector.injected) or degraded or (
            dut.accounting.server_restarts
            or dut.accounting.fallback_packets
            or dut.accounting.queued
        )
        if violation is not None:
            outcome = FaultOutcome.VIOLATION
        elif faulted:
            outcome = FaultOutcome.DEGRADED_OK
        else:
            outcome = FaultOutcome.CLEAN
        return FaultOracleResult(
            outcome=outcome,
            violation=violation,
            packets_run=len(packets),
            delivered=len(records) - degraded,
            degraded=degraded,
            accounting=dut.accounting.as_dict(),
            injected=dict(injector.injected),
            fault_kinds=fault_plan.kinds(),
            cached_mode=cached,
            failover_mode=failover,
            promoted=bool(getattr(dut, "promoted", False)),
            pool_mode=bool(pool),
            pool_servers=pool,
            migrations=dut.telemetry.metrics.counter_value(
                "pool.migrations"
            ) if pool else 0,
            rollbacks=dut.telemetry.metrics.counter_value(
                "control_plane.batches_rolled_back"
            ),
        )

    violation = _check_accounting(dut, records, len(packets))
    if violation is None and pool:
        violation = _check_pool(
            dut, records, packets, fault_plan, pool_members, deployment_seed
        )
    if violation is None:
        try:
            violation = _replay_reference(
                reference, dut, records, packets, policy, cached=cached
            )
        except Exception:
            return FaultOracleResult(
                FaultOutcome.CRASH, packets_run=len(packets),
                error=f"reference replay:\n{traceback.format_exc()}",
                cached_mode=cached,
            )
    if violation is None:
        violation = _check_convergence(dut) or _check_final_state(
            dut, reference
        )
    if violation is None:
        try:
            violation = _verify_recovered(
                dut, reference, stream, verify_packets
            )
        except Exception:
            return FaultOracleResult(
                FaultOutcome.CRASH, packets_run=len(packets),
                error=f"post-recovery verify:\n{traceback.format_exc()}",
                cached_mode=cached,
            )
    result = finish(violation)
    if (
        provenance
        and _telemetry is None
        and result.outcome is FaultOutcome.VIOLATION
    ):
        result.trace_diff = _collect_fault_provenance(
            source_or_lowered, stream, fault_plan, policy=policy,
            injector_seed=injector_seed, deployment_seed=deployment_seed,
            limits=limits, config=config, verify_packets=verify_packets,
            cached=cached, cache_entries=cache_entries, failover=failover,
            detection=detection, pool=pool,
        )
    return result


def _collect_fault_provenance(source_or_lowered, stream, fault_plan,
                              **kwargs):
    """Re-run the violating scenario with tracing on both deployments.

    Everything is seeded and tracing never consumes randomness, so the
    re-run reproduces the violation exactly; the reference's replayed
    events are attributed to the DUT's packet indices (see
    :func:`_replay_reference`).  Best-effort: any exception yields
    ``None`` rather than masking the violation.
    """
    from repro.telemetry import Telemetry
    from repro.telemetry.diff import diff_traces

    try:
        dut_telemetry = Telemetry(tracing=True)
        ref_telemetry = Telemetry(tracing=True)
        run_fault_oracle(
            source_or_lowered, stream, fault_plan,
            provenance=False, _telemetry=(dut_telemetry, ref_telemetry),
            **kwargs,
        )
        return diff_traces(
            ref_telemetry.tracer, dut_telemetry.tracer,
            lhs_label="reference", rhs_label="deployment",
        )
    except Exception:
        return None


# ---------------------------------------------------------------------------
# Checks
# ---------------------------------------------------------------------------


def _check_accounting(
    dut: GalliumMiddlebox, records: Dict[int, PacketRecord], total: int
) -> Optional[FaultViolation]:
    """Every packet classified, no punts stranded in the queue, and the
    drop ledger agrees with the per-packet records."""
    missing = [index for index in range(total) if index not in records]
    if missing:
        return FaultViolation(
            "accounting", missing[0],
            f"{len(missing)} packets have no journey at all: {missing[:5]}",
        )
    stuck = [r.index for r in records.values() if r.kind == "queued"]
    if stuck:
        return FaultViolation(
            "accounting", stuck[0],
            f"punts still queued after recovery: {stuck[:5]}",
        )
    recorded_degraded = sum(
        1 for record in records.values() if record.kind != "delivered"
    )
    if recorded_degraded != dut.accounting.degraded_total:
        return FaultViolation(
            "accounting", None,
            f"drop ledger says {dut.accounting.degraded_total} degraded,"
            f" journeys say {recorded_degraded}",
        )
    return None


def _check_pool(
    dut: GalliumMiddlebox,
    records: Dict[int, PacketRecord],
    packets: List[Tuple[RawPacket, int]],
    fault_plan,
    pool_members: List[str],
    deployment_seed: int,
) -> Optional[FaultViolation]:
    """Pool-specific guarantees, checked against an independent rebuild.

    A member outage must degrade only the flows that member owns — never
    the whole punt path — so: (1) full fallback never engages while at
    least one member survives (generated pool plans always leave one),
    (2) every stalled packet was attributed to a member that really was
    down at that index, and whose slot the oracle's own reconstruction
    of the member table (a pure function of names, seed, and slots)
    assigns to that member, (3) every queue/degrade event with a pool
    reason maps back to an attributed packet and vice versa, and (4)
    each membership-change spec ran exactly one migration.
    """
    pool_specs = [
        spec
        for kind in ("pool_member_crash", "pool_member_drain")
        for spec in fault_plan.by_kind(kind)
    ]
    for event in dut.fault_log:
        if event[0] == "fallback":
            return FaultViolation(
                "pool", event[1],
                "full fallback engaged while pool members survived"
                f" (live: {sorted(dut.pool.members)})",
            )
    migrations = dut.telemetry.metrics.counter_value("pool.migrations")
    if migrations != len(pool_specs):
        return FaultViolation(
            "pool", None,
            f"{len(pool_specs)} membership-change specs but"
            f" {migrations} migrations ran",
        )

    def members_at(index: int) -> List[str]:
        gone = {
            spec.member for spec in pool_specs
            if spec.at_packet + spec.window_length <= index
        }
        return [name for name in pool_members if name not in gone]

    for index in sorted(dut.pool.affected):
        member, slot = dut.pool.affected[index]
        if not any(
            spec.member == member and spec.active(index)
            for spec in pool_specs
        ):
            return FaultViolation(
                "pool", index,
                f"packet stalled on member {member!r} outside any"
                " membership-change window",
            )
        selector = PooledDeployment.build_selector(
            members_at(index), deployment_seed,
            slots=dut.pool.selector.slots,
        )
        if selector.member_table()[slot] != member:
            return FaultViolation(
                "pool", index,
                f"blast radius mismatch: DUT pinned slot {slot} to"
                f" {member!r} but the rebuilt member table assigns it to"
                f" {selector.member_table()[slot]!r}",
            )
        record = records.get(index)
        if record is None or not (
            record.queued or record.reason == "pool_member_down"
        ):
            return FaultViolation(
                "pool", index,
                "packet attributed to a member outage but its journey"
                f" shows neither queueing nor a pool degrade"
                f" (kind={getattr(record, 'kind', None)!r})",
            )
    for record in records.values():
        if (
            record.reason == "pool_member_down"
            and record.index not in dut.pool.affected
        ):
            return FaultViolation(
                "pool", record.index,
                "packet degraded with reason 'pool_member_down' but no"
                " member outage was attributed to it",
            )
    return None


def _pristine(packets: List[Tuple[RawPacket, int]], index: int) -> RawPacket:
    packet, ingress = packets[index]
    clone = packet.copy()
    clone.ingress_port = ingress
    return clone


def _replay_reference(
    reference: GalliumMiddlebox,
    dut: GalliumMiddlebox,
    records: Dict[int, PacketRecord],
    packets: List[Tuple[RawPacket, int]],
    policy: DegradationPolicy,
    cached: bool = False,
) -> Optional[FaultViolation]:
    """Replay the DUT's effect log on the clean reference deployment and
    compare every delivered observable (plus policy conformance of every
    degraded packet).

    In cache mode the hit/miss decision depends on transient cache
    content (refill batches the DUT's faults perturbed), so punt paths
    may legitimately differ between DUT and reference.  Correctness does
    not: a hit executes the read-only pre/post projections, a miss the
    complete program — both equivalent.  The cached replay therefore
    forces the DUT's punt decisions onto the reference (serving a punt
    the reference fast-pathed is effect-free beyond cache refills, and
    vice versa) instead of requiring the paths to match.
    """
    held: Dict[int, RawPacket] = {}
    expected: Dict[int, Observation] = {}
    # Replayed reference events are attributed to the DUT's packet index
    # (the replay bypasses process_packet, so the tracer must be told).
    ref_tracer = reference.telemetry.active_tracer
    # Which packets the DUT's pre-pipeline punted, derived from the log
    # itself: every punt ends in exactly one "serve" or "drop_punt".
    dut_punts = {
        event[1]
        for event in dut.fault_log
        if event[0] in ("serve", "drop_punt")
    }
    for event in dut.fault_log:
        tag = event[0]
        if tag in ("pool_down", "pool_migrate"):
            # Pool membership changes replay as no-ops: the DUT's
            # migration must be an identity transform on committed state
            # (delete + rebuild from the switch copy / server-only
            # checkpoint), so a buggy migration surfaces in the
            # observable / convergence / final-state checks instead.
            continue
        if ref_tracer is not None and len(event) > 1:
            ref_tracer.begin_packet(event[1])
        if tag == "ingress":
            _, index, ingress = event
            out = reference.switch.receive(packets[index][0].copy(), ingress)
            dut_punted = index in dut_punts
            if cached:
                if dut_punted:
                    held[index] = _pristine(packets, index)
                elif out.punted:
                    # The DUT hit its cache; the reference missed.  Serve
                    # the miss now so refills land on the reference too.
                    completion = reference.complete_punt(
                        _pristine(packets, index)
                    )
                    expected[index] = _completion_observation(completion)
                else:
                    expected[index] = _switch_observation(out)
                continue
            if out.punted != dut_punted:
                return FaultViolation(
                    "path", index,
                    f"reference {'punted' if out.punted else 'fast-pathed'}"
                    f" but deployment {'punted' if dut_punted else 'fast-pathed'}"
                    " — switch state diverged before this packet",
                )
            if out.punted:
                held[index] = out.emitted[0][1]
            else:
                expected[index] = _switch_observation(out)
        elif tag == "serve":
            index = event[1]
            if index not in held:
                return FaultViolation(
                    "path", index,
                    "deployment served a punt the reference never emitted",
                )
            completion = reference.complete_punt(held.pop(index))
            expected[index] = _completion_observation(completion)
        elif tag == "drop_punt":
            held.pop(event[1], None)
        elif tag == "fallback":
            _, index, ingress = event
            # Align the reference's internal packet counter so its traced
            # events carry the DUT's index for this packet.
            reference.packets_processed = index
            journey = reference.process_packet(
                packets[index][0].copy(), ingress
            )
            expected[index] = _journey_observation(journey)
        elif tag == "crash":
            reference.crash_resync()
        elif tag == "resync":
            if cached:
                # The DUT's bulk resync rebuilt its bounded cache view
                # deterministically from authoritative state; mirror it so
                # the two caches re-converge at the same point.
                reference.sync_all_state()
        elif tag == "promote":
            # The DUT promoted its standby and bulk-resynced it from the
            # server's authoritative copy.  A full-replication reference
            # needs no action: replicated state equality follows from the
            # batch applies it already mirrored, and switch-authoritative
            # registers line up because the DUT's per-packet checkpoint fed
            # the fallback window the same values the reference's live
            # switch held.  A cached reference must mirror the resync —
            # the promotion rebuilt the DUT's bounded cache and FIFO order
            # from authoritative state, same as the "resync" tag.
            if cached:
                reference.sync_all_state()
        else:  # pragma: no cover - log tags are closed
            raise AssertionError(f"unknown fault-log tag {tag!r}")
    if held:
        index = sorted(held)[0]
        return FaultViolation(
            "path", index,
            f"reference still holds {len(held)} punts the deployment"
            " neither served nor discarded",
        )

    for index, record in sorted(records.items()):
        if record.kind == "delivered":
            want = expected.get(index)
            if want is None:
                return FaultViolation(
                    "observable", index,
                    "delivered packet has no corresponding effect-log entry",
                )
            if record.observation != want:
                return FaultViolation(
                    "observable", index,
                    f"deployment={record.observation!r}"
                    f" reference={want!r}",
                )
        elif record.kind == "lost":
            if record.observation[0] != "drop":
                return FaultViolation(
                    "policy", index,
                    f"lost packet ({record.reason}) must observe as a drop,"
                    f" got {record.observation!r}",
                )
        elif record.kind == "degraded_drop":
            if policy.fail_open:
                return FaultViolation(
                    "policy", index,
                    f"fail-open policy but packet dropped ({record.reason})",
                )
            if record.observation[0] != "drop":
                return FaultViolation(
                    "policy", index,
                    f"fail-closed degradation must drop,"
                    f" got {record.observation!r}",
                )
        elif record.kind == "failed_open":
            if not policy.fail_open:
                return FaultViolation(
                    "policy", index,
                    f"fail-closed policy but packet forwarded"
                    f" ({record.reason})",
                )
            packet, ingress = packets[index]
            want_port = DEFAULT_PORT_PAIRS.get(ingress, ingress)
            want = ("send", want_port, _observe_fields(packet))
            if record.observation != want:
                return FaultViolation(
                    "policy", index,
                    "fail-open must forward the pristine packet on the"
                    f" bypass pair: got {record.observation!r},"
                    f" want {want!r}",
                )
    return None


def _check_convergence(dut: GalliumMiddlebox) -> Optional[FaultViolation]:
    """Post-recovery: the switch's replicated copies must equal the
    server's authoritative state — the no-silent-divergence guarantee.

    Bounded cache tables hold a *subset* by design, so for them the check
    weakens to coherence: every cached entry must match the authoritative
    value, and the cache must respect its size bound.
    """
    cached_tables = frozenset(getattr(dut, "cached_tables", ()))
    for name, placement in dut.plan.placements.items():
        if placement.kind is not PlacementKind.REPLICATED_TABLE:
            continue
        snapshot = dut.switch.tables[name].snapshot()
        if name in cached_tables:
            server_map = dut.state.maps[name]
            stale = {
                keys: value
                for keys, value in snapshot.items()
                if server_map.get(keys) != value
            }
            if stale:
                return FaultViolation(
                    "convergence", None,
                    f"cached table {name!r} holds entries with no"
                    f" authoritative backing: {stale!r}",
                )
            if len(snapshot) > dut.cache_entries:
                return FaultViolation(
                    "convergence", None,
                    f"cached table {name!r} holds {len(snapshot)} entries"
                    f" (bound is {dut.cache_entries})",
                )
            continue
        if placement.member.kind == "map":
            switch_copy = dict(snapshot)
            server_copy = dict(dut.state.maps[name])
        else:
            # Vectors replicate as index-keyed entries; zero-valued slots
            # may or may not be materialized on the switch, so compare the
            # non-zero support.
            switch_copy = {k: v for k, v in snapshot.items() if v}
            server_copy = {
                (index,): value
                for index, value in enumerate(dut.state.vectors[name])
                if value
            }
        if switch_copy != server_copy:
            return FaultViolation(
                "convergence", None,
                f"replicated table {name!r} diverged:"
                f" switch={switch_copy!r} server={server_copy!r}",
            )
    return None


def _normalized_state(deployment: GalliumMiddlebox) -> dict:
    state = deployment.state.snapshot()
    for name, placement in deployment.plan.placements.items():
        if placement.kind in (
            PlacementKind.SWITCH_REGISTER,
            PlacementKind.REPLICATED_REGISTER,
        ):
            # The switch copy is the one the data plane reads.
            state["scalars"][name] = deployment.switch.registers[name].value
    return state


def _check_final_state(
    dut: GalliumMiddlebox, reference: GalliumMiddlebox
) -> Optional[FaultViolation]:
    dut_state = _normalized_state(dut)
    ref_state = _normalized_state(reference)
    for section in ("maps", "scalars", "vectors"):
        if dut_state[section] != ref_state[section]:
            return FaultViolation(
                "state", None,
                f"{section}: deployment={dut_state[section]!r}"
                f" reference={ref_state[section]!r}",
            )
    return None


def _verify_recovered(
    dut: GalliumMiddlebox,
    reference: GalliumMiddlebox,
    stream: StreamSpec,
    verify_packets: int,
) -> Optional[FaultViolation]:
    """Faults are cleared: the recovered deployment must be functionally
    equivalent to the reference again on fresh traffic."""
    if verify_packets <= 0:
        return None
    # Align packet counters so traced verification events carry the same
    # packet indices on both sides (the reference replay advanced its
    # counter only for fallback packets).
    reference.packets_processed = dut.packets_processed
    verify_stream = StreamSpec(
        seed=stream.seed ^ VERIFY_SALT, count=verify_packets,
        udp_ratio=stream.udp_ratio,
    )
    for offset, (packet, ingress) in enumerate(verify_stream.build()):
        dut_journey = dut.process_packet(packet.copy(), ingress)
        ref_journey = reference.process_packet(packet.copy(), ingress)
        dut_obs = _journey_observation(dut_journey)
        ref_obs = _journey_observation(ref_journey)
        if dut_obs != ref_obs:
            return FaultViolation(
                "post_recovery", offset,
                f"verification packet diverged: recovered={dut_obs!r}"
                f" reference={ref_obs!r}",
            )
        if dut_journey.degraded or dut_journey.queued:
            return FaultViolation(
                "post_recovery", offset,
                "recovered deployment still degrading after faults cleared:"
                f" {dut_journey.degraded_reason}",
            )
    return _check_final_state(dut, reference)
