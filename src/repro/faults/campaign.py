"""The fault campaign behind ``python -m repro faults``.

Each run derives — from one master seed — a generated middlebox program
(the difftest generator), a packet stream, a random fault schedule, a
random degradation policy, and the injector/deployment seeds, then drives
the deployment through the fault-aware oracle.  Everything is a pure
function of the master seed, so every campaign scenario is its own
reproducer: failures print a one-line ``--seed-override`` reproduce
command exactly like the difftest gauntlet.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.difftest.generator import GenProgram, generate_program
from repro.difftest.oracle import StreamSpec
from repro.difftest.runner import _STREAM_SALT, derive_seeds
from repro.faults.oracle import (
    FaultOracleResult,
    FaultOutcome,
    run_fault_oracle,
)
from repro.faults.plan import ALL_FAULT_KINDS, FaultPlan, generate_plan
from repro.partition.constraints import SwitchResources
from repro.runtime.degradation import DegradationPolicy
from repro.runtime.pool import default_member_names
from repro.switchsim.control_plane import RetryPolicy

#: XOR'd into the program seed to derive the fault-plan seed.
_PLAN_SALT = 0xFA111
#: XOR'd into the program seed to derive the injector seed.
_INJECT_SALT = 0x1D_E7EC
#: XOR'd into the program seed to derive the deployment (jitter) seed.
_DEPLOY_SALT = 0xD1CE5


def seeds_for_program(program_seed: int) -> tuple:
    """(program_seed, stream_seed, plan_seed, injector_seed, deploy_seed)
    — every per-scenario seed is a pure function of the program seed, so a
    ``--seed-override`` reproduce regenerates the identical scenario."""
    return (
        program_seed,
        program_seed ^ _STREAM_SALT,
        program_seed ^ _PLAN_SALT,
        program_seed ^ _INJECT_SALT,
        program_seed ^ _DEPLOY_SALT,
    )


def derive_fault_seeds(master_seed: int, index: int) -> tuple:
    """Scenario seeds for run ``index`` under ``master_seed``."""
    program_seed, _ = derive_seeds(master_seed, index)
    return seeds_for_program(program_seed)


def random_policy(rng: random.Random) -> DegradationPolicy:
    """Draw a random (but sane) degradation policy for one scenario."""
    return DegradationPolicy(
        fail_open=rng.random() < 0.5,
        punt_queue_depth=rng.choice([2, 4, 8]),
        retry=RetryPolicy(max_attempts=rng.choice([3, 4, 5])),
    )


@dataclass
class FaultFailure:
    """One campaign scenario that breached a guarantee."""

    index: int
    program_seed: int
    stream: StreamSpec
    program: GenProgram
    fault_plan: FaultPlan
    policy: DegradationPolicy
    injector_seed: int
    deployment_seed: int
    result: FaultOracleResult
    cached: bool = False
    failover: bool = False
    pool_servers: int = 0
    minimized_program: Optional[GenProgram] = None
    minimized_stream: Optional[StreamSpec] = None
    minimized_plan: Optional[FaultPlan] = None

    def report(self) -> str:
        plan = (
            self.minimized_plan
            if self.minimized_plan is not None else self.fault_plan
        )
        lines = [
            f"=== fault-campaign failure (run #{self.index}) ===",
            f"program seed : {self.program_seed}",
            f"stream       : seed={self.stream.seed} count={self.stream.count}"
            f" udp_ratio={self.stream.udp_ratio}",
            f"fault plan   : {plan.describe()}"
            + (" (minimized)" if self.minimized_plan is not None else ""),
            f"policy       : fail_open={self.policy.fail_open}"
            f" queue={self.policy.punt_queue_depth}"
            f" retries={self.policy.retry.max_attempts}",
            f"outcome      : {self.result.outcome.value}",
            "reproduce    : python -m repro faults --runs 1"
            f" --seed-override {self.program_seed}"
            + (" --cached" if self.cached else "")
            + (" --failover" if self.failover else "")
            + (f" --servers {self.pool_servers}" if self.pool_servers else ""),
        ]
        if self.result.violation is not None:
            lines.append(f"violation    : {self.result.violation}")
        if self.result.error:
            lines.append(f"error        : {self.result.error.rstrip()}")
        if self.result.injected:
            injected = ", ".join(
                f"{label}={count}"
                for label, count in sorted(self.result.injected.items())
            )
            lines.append(f"injected     : {injected}")
        source = (
            self.minimized_program.source()
            if self.minimized_program is not None
            else self.program.source()
        )
        label = "minimized" if self.minimized_program is not None else "program"
        lines.append(f"--- {label} source ---")
        lines.append(source.rstrip())
        if self.minimized_stream is not None:
            lines.append(
                f"minimized stream: seed={self.minimized_stream.seed}"
                f" count={self.minimized_stream.count}"
            )
        if self.result.trace_diff is not None:
            lines.append("--- trace provenance ---")
            lines.append(self.result.trace_diff.render().rstrip())
        return "\n".join(lines)

    def corpus_entry(self, name: str, description: str = ""):
        """Package this failure (minimized when available) as a
        :class:`~repro.faults.corpus.FaultCorpusEntry` ready for
        ``tests/faults_corpus/``."""
        from repro.faults.corpus import FaultCorpusEntry

        program = self.minimized_program or self.program
        return FaultCorpusEntry(
            name=name,
            source=program.source(),
            stream=self.minimized_stream or self.stream,
            fault_plan=(
                self.minimized_plan
                if self.minimized_plan is not None else self.fault_plan
            ),
            policy=self.policy,
            injector_seed=self.injector_seed,
            deployment_seed=self.deployment_seed,
            description=description,
            found_by_seed=self.program_seed,
            cached=self.cached,
            failover=self.failover,
            trace_diff=(
                self.result.trace_diff.to_dict()
                if self.result.trace_diff is not None else None
            ),
        )


#: spec attribute holding the fault's window length, per fault kind.
#: Kinds absent here are probabilistic (no bounded window to measure).
_WINDOW_ATTRS = {
    "crash": "outage",
    "reprogram": "duration",
    "switch_crash": "promotion_window",
    "crash_batch": "promotion_window",
    "pool_member_crash": "migration_window",
    "pool_member_drain": "drain_window",
}


def _window_length(spec) -> Optional[int]:
    attr = _WINDOW_ATTRS.get(spec.kind)
    return getattr(spec, attr) if attr is not None else None


@dataclass
class CampaignStats:
    runs: int = 0
    clean: int = 0
    degraded_ok: int = 0
    violations: int = 0
    crashes: int = 0
    rejected: int = 0
    #: scenarios per fault class that actually injected something
    coverage: Dict[str, int] = field(
        default_factory=lambda: {kind: 0 for kind in ALL_FAULT_KINDS}
    )
    #: total injected-fault events by label, campaign-wide
    injected: Dict[str, int] = field(default_factory=dict)
    degraded_packets: int = 0
    delivered_packets: int = 0
    elapsed_s: float = 0.0
    #: scenarios whose plan contained the kind (regardless of outcome)
    scenarios_by_kind: Dict[str, int] = field(default_factory=dict)
    #: control-plane batches rolled back, campaign-wide
    rollbacks: int = 0
    #: scenarios per fault kind that saw at least one rollback
    rollback_scenarios_by_kind: Dict[str, int] = field(default_factory=dict)
    #: fault-window lengths (packets) drawn per kind, campaign-wide
    window_lengths: Dict[str, List[int]] = field(default_factory=dict)
    #: flow-state migrations run by pooled deployments, campaign-wide
    pool_migrations: int = 0

    def record(self, plan: FaultPlan, result: FaultOracleResult) -> None:
        self.runs += 1
        self.rollbacks += result.rollbacks
        self.pool_migrations += result.migrations
        for kind in plan.kinds():
            self.scenarios_by_kind[kind] = (
                self.scenarios_by_kind.get(kind, 0) + 1
            )
            if result.rollbacks:
                self.rollback_scenarios_by_kind[kind] = (
                    self.rollback_scenarios_by_kind.get(kind, 0) + 1
                )
        for spec in plan.faults:
            length = _window_length(spec)
            if length is not None:
                self.window_lengths.setdefault(spec.kind, []).append(length)
        if result.outcome is FaultOutcome.CLEAN:
            self.clean += 1
        elif result.outcome is FaultOutcome.DEGRADED_OK:
            self.degraded_ok += 1
        elif result.outcome is FaultOutcome.VIOLATION:
            self.violations += 1
        elif result.outcome is FaultOutcome.CRASH:
            self.crashes += 1
        else:
            self.rejected += 1
        if result.outcome in (FaultOutcome.CLEAN, FaultOutcome.DEGRADED_OK):
            self.degraded_packets += result.degraded
            self.delivered_packets += result.delivered
        if result.outcome is FaultOutcome.DEGRADED_OK:
            for kind in plan.kinds():
                self.coverage[kind] = self.coverage.get(kind, 0) + 1
        for label, count in result.injected.items():
            self.injected[label] = self.injected.get(label, 0) + count

    @property
    def failures(self) -> int:
        return self.violations + self.crashes

    def summary_dict(self) -> dict:
        """Deterministic cross-scenario rollup for ``--summary-json``:
        outcome counts, per-kind scenario coverage, the distribution of
        fault-window lengths drawn per kind (promotion windows, outages,
        reprogram durations), and rollback rates by fault kind."""
        windows = {
            kind: {
                "count": len(lengths),
                "min": min(lengths),
                "max": max(lengths),
                "mean": round(sum(lengths) / len(lengths), 3),
                "total_packets": sum(lengths),
            }
            for kind, lengths in sorted(self.window_lengths.items())
        }
        def _member_counts(prefix: str) -> Dict[str, int]:
            counts: Dict[str, int] = {}
            for label, count in self.injected.items():
                if label.startswith(prefix + "[") and label.endswith("]"):
                    member = label[len(prefix) + 1:-1]
                    counts[member] = counts.get(member, 0) + count
            return dict(sorted(counts.items()))

        pool = {
            "migrations": self.pool_migrations,
            "member_crashes": _member_counts("pool_member_crash"),
            "member_drains": _member_counts("pool_member_drain"),
        }
        rollback_rates = {
            kind: {
                "scenarios": scenarios,
                "with_rollbacks": self.rollback_scenarios_by_kind.get(
                    kind, 0
                ),
                "rate": round(
                    self.rollback_scenarios_by_kind.get(kind, 0) / scenarios,
                    3,
                ),
            }
            for kind, scenarios in sorted(self.scenarios_by_kind.items())
        }
        return {
            "runs": self.runs,
            "outcomes": {
                "clean": self.clean,
                "degraded_ok": self.degraded_ok,
                "violations": self.violations,
                "crashes": self.crashes,
                "rejected": self.rejected,
            },
            "packets": {
                "delivered": self.delivered_packets,
                "degraded": self.degraded_packets,
            },
            "coverage": dict(sorted(self.coverage.items())),
            "injected": dict(sorted(self.injected.items())),
            "scenarios_by_kind": dict(sorted(self.scenarios_by_kind.items())),
            "promotion_windows": windows,
            "pool": pool,
            "rollbacks": {
                "total": self.rollbacks,
                "by_kind": rollback_rates,
            },
            "elapsed_s": round(self.elapsed_s, 3),
        }

    def summary(self) -> str:
        covered = ", ".join(
            f"{kind}={count}" for kind, count in sorted(self.coverage.items())
        )
        return (
            f"{self.runs} scenarios: {self.degraded_ok} degraded-ok,"
            f" {self.clean} clean, {self.violations} violations,"
            f" {self.crashes} crashes, {self.rejected} rejected"
            f" in {self.elapsed_s:.1f}s\n"
            f"packets: {self.delivered_packets} delivered with full"
            f" semantics, {self.degraded_packets} degraded (all declared)\n"
            f"coverage: {covered}"
        )


def run_campaign(
    runs: int,
    seed: int,
    packets: int = 25,
    limits: Optional[SwitchResources] = None,
    max_failures: int = 10,
    time_budget_s: Optional[float] = None,
    seed_override: Optional[int] = None,
    log: Optional[Callable[[str], None]] = None,
    shrink_failures: bool = False,
    cached: bool = False,
    cache_entries: int = 2,
    failover: bool = False,
    pool_servers: int = 0,
) -> Tuple[CampaignStats, List[FaultFailure]]:
    """Run the fault campaign; returns ``(stats, failures)``.

    ``cached`` drives every scenario on the bounded-table cache
    deployment instead of the full-replication one (scenarios whose
    programs cannot run in cache mode count as rejected);
    ``failover`` drives every scenario on the active-standby
    :class:`~repro.runtime.failover.FailoverDeployment` under
    failover-specific fault plans (primary crashes, stale standby
    replays); both together drive the composed
    :class:`~repro.runtime.cached_failover.CachedFailoverDeployment`
    (bounded caches on an active-standby pair, rebuilt at promotion);
    ``shrink_failures`` delta-debugs each failure — fault plan, program,
    and stream — before it is reported or written to the corpus.
    ``pool_servers`` (≥2 to be interesting) drives every scenario on the
    punt-path :class:`~repro.runtime.pool.PooledDeployment` under
    pool-specific fault plans (member crashes and drains with live
    flow-state migration); it does not compose with ``cached`` or
    ``failover``.
    """
    stats = CampaignStats()
    pool_names = default_member_names(pool_servers) if pool_servers else None
    failures: List[FaultFailure] = []
    started = time.monotonic()
    for index in range(runs):
        if (
            time_budget_s is not None
            and time.monotonic() - started > time_budget_s
        ):
            break
        if seed_override is not None:
            scenario_seeds = seeds_for_program(seed_override + index)
        else:
            scenario_seeds = derive_fault_seeds(seed, index)
        (
            program_seed, stream_seed, plan_seed, injector_seed, deploy_seed,
        ) = scenario_seeds
        program = generate_program(program_seed)
        stream = StreamSpec(seed=stream_seed, count=packets)
        scenario_rng = random.Random(plan_seed)
        fault_plan = generate_plan(
            scenario_rng, packets, failover=failover,
            pool_members=pool_names,
        )
        policy = random_policy(scenario_rng)
        result = run_fault_oracle(
            program.source(),
            stream,
            fault_plan,
            policy=policy,
            injector_seed=injector_seed,
            deployment_seed=deploy_seed,
            limits=limits,
            cached=cached,
            cache_entries=cache_entries,
            failover=failover,
            pool=pool_servers,
        )
        stats.record(fault_plan, result)
        if result.outcome in (FaultOutcome.VIOLATION, FaultOutcome.CRASH):
            failure = FaultFailure(
                index, program_seed, stream, program, fault_plan, policy,
                injector_seed, deploy_seed, result, cached=cached,
                failover=failover, pool_servers=pool_servers,
            )
            if shrink_failures:
                (
                    failure.minimized_program,
                    failure.minimized_stream,
                    failure.minimized_plan,
                ) = _shrink_failure(
                    failure, limits, cached=cached,
                    cache_entries=cache_entries, failover=failover,
                    pool_servers=pool_servers,
                )
                if failure.minimized_program is not None:
                    # Re-collect provenance on the minimized scenario so
                    # the trace diff matches the source the report shows.
                    replay = run_fault_oracle(
                        failure.minimized_program.source(),
                        failure.minimized_stream,
                        failure.minimized_plan,
                        policy=policy,
                        injector_seed=injector_seed,
                        deployment_seed=deploy_seed,
                        limits=limits,
                        cached=cached,
                        cache_entries=cache_entries,
                        failover=failover,
                        pool=pool_servers,
                    )
                    if replay.trace_diff is not None:
                        failure.result.trace_diff = replay.trace_diff
            failures.append(failure)
            if log is not None:
                log(failure.report())
            if len(failures) >= max_failures:
                if log is not None:
                    log(f"stopping after {max_failures} failures")
                break
        elif log is not None and (index + 1) % 100 == 0:
            log(f"... {index + 1}/{runs}")
    stats.elapsed_s = time.monotonic() - started
    return stats, failures


def _shrink_failure(
    failure: FaultFailure,
    limits: Optional[SwitchResources],
    cached: bool = False,
    cache_entries: int = 2,
    failover: bool = False,
    pool_servers: int = 0,
):
    """Minimize (fault plan, program, stream) preserving the outcome class
    and, for violations, the violation kind."""
    from repro.faults.shrink import shrink_fault_case

    want_outcome = failure.result.outcome
    want_kind = (
        failure.result.violation.kind
        if failure.result.violation is not None else None
    )

    def predicate(
        candidate: GenProgram, candidate_stream: StreamSpec,
        candidate_plan: FaultPlan,
    ) -> bool:
        # No provenance in the shrink loop: it replays the oracle hundreds
        # of times and only the surviving case's report needs a diff.
        replay = run_fault_oracle(
            candidate.source(),
            candidate_stream,
            candidate_plan,
            policy=failure.policy,
            injector_seed=failure.injector_seed,
            deployment_seed=failure.deployment_seed,
            limits=limits,
            cached=cached,
            cache_entries=cache_entries,
            failover=failover,
            pool=pool_servers,
            provenance=False,
        )
        if replay.outcome is not want_outcome:
            return False
        if want_kind is not None and (
            replay.violation is None or replay.violation.kind != want_kind
        ):
            return False
        return True

    try:
        return shrink_fault_case(
            failure.program, failure.stream, failure.fault_plan, predicate,
            trace_diff=failure.result.trace_diff,
        )
    except ValueError:
        # Non-reproducible under re-run (should not happen: everything is
        # seeded); keep the original case rather than lose the report.
        return None, None, None
