"""The fault-plan DSL: declarative, serializable fault schedules.

A :class:`FaultPlan` is a tuple of fault specs, each a frozen dataclass
describing one injectable fault class and when it is active.  Plans are
pure data: the deterministic randomness lives in the
:class:`~repro.faults.injector.FaultInjector` that executes a plan under a
seed.  Plans serialize to JSON (``to_dict``/``from_dict``) so every
campaign failure can be committed as a reproducer, exactly like the
difftest corpus.

Fault classes
-------------
:class:`LinkFault`
    Per-frame loss or corruption on the switch↔server punt path, in one
    direction, with a probability, over a packet-index window.  A
    corrupted frame fails the receiver's FCS check and is discarded, so
    corruption degrades like loss but is accounted separately.
:class:`BatchFault`
    Control-plane RPC trouble: per-attempt transient failures
    (``"fail"`` = vetoed before the switch mutates, ``"timeout"`` = the
    batch lands but the confirmation is lost) plus a per-batch
    ``doom_probability`` for batches that fail every retry.
:class:`WritebackOverflow`
    Per-batch probability that the write-back stage reports capacity
    exhaustion — a permanent, non-retryable failure.
:class:`ServerCrash`
    The server dies at a packet index and stays down for a window; with
    ``lose_state`` the restart resynchronizes from the authoritative
    switch copy.
:class:`SwitchReprogram`
    The switch pipelines are unavailable for a window; the deployment
    runs server-only fallback and bulk-resyncs afterwards.
:class:`StaleReplication`
    Batches in the window take extra microseconds to become visible
    (replication lag); output commit stretches, semantics must not.
:class:`PuntReorder`
    Punts buffered during an outage drain in a shuffled order.

Failover fault classes (active-standby deployments only)
--------------------------------------------------------
:class:`PrimarySwitchCrash`
    The primary switch dies at a packet boundary; the deployment serves
    a promotion window on the server, then promotes the warm standby.
:class:`CrashDuringBatch`
    The primary's control-plane connection dies *mid batch*: the batch
    resolves transactionally from the undo log (roll forward or back),
    then the supervisor declares the primary dead from the next packet.
:class:`StandbyStaleReplay`
    Committed batches are probabilistically dropped on the replication
    path to the standby, so promotion must repair a stale standby via
    the bulk resync.

Failover plans are generated with ``generate_plan(..., failover=True)``
and never mix in server crashes, switch reprogramming, or punt
reordering — those assume a single-switch deployment.

Pool fault classes (punt-path server pools only)
------------------------------------------------
:class:`PoolMemberCrash`
    One named pool member dies at a packet boundary and its flows stall
    through the bounded migration window; at the window's close the
    control plane migrates the member's owned flow state to the
    survivors (rebuilt from the switch's replicated copy and the
    server-only checkpoint).
:class:`PoolMemberDrain`
    One named member quiesces (stops accepting new punts) through a
    drain window, then hands its flow state off gracefully — same
    migration mechanics, zero reconstruction.

Pool plans are generated with ``generate_plan(..., pool_members=[...])``
and guarantee at least one surviving member; they never mix in
single-server crash/reprogram kinds (a member outage must *not* trigger
full switch-side fallback — that is the property under test).

Tenancy fault classes (multi-tenant deployments only)
-----------------------------------------------------
:class:`TenantLinkFault`
    A :class:`LinkFault` scoped to one named tenant of a
    :class:`~repro.tenancy.deployment.MultiTenantDeployment`: only that
    tenant's punt-path frames are at risk.  The isolation oracle pins
    that the faulted tenant degrades exactly as it would solo under the
    same faults, while every co-resident tenant stays byte-exact clean.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, fields as dataclass_fields
from typing import Dict, List, Optional, Tuple, Type


@dataclass(frozen=True)
class LinkFault:
    kind = "link"
    direction: str = "to_server"  # "to_server" | "to_switch"
    mode: str = "loss"  # "loss" | "corrupt"
    probability: float = 0.1
    start: int = 0
    stop: Optional[int] = None

    def active(self, index: int) -> bool:
        return _in_window(index, self.start, self.stop)


@dataclass(frozen=True)
class BatchFault:
    kind = "batch"
    mode: str = "fail"  # "fail" | "timeout"
    probability: float = 0.2
    doom_probability: float = 0.0
    start: int = 0
    stop: Optional[int] = None

    def active(self, index: int) -> bool:
        return _in_window(index, self.start, self.stop)


@dataclass(frozen=True)
class WritebackOverflow:
    kind = "overflow"
    probability: float = 0.1
    start: int = 0
    stop: Optional[int] = None

    def active(self, index: int) -> bool:
        return _in_window(index, self.start, self.stop)


@dataclass(frozen=True)
class ServerCrash:
    kind = "crash"
    at_packet: int = 5
    outage: int = 5
    lose_state: bool = True

    def active(self, index: int) -> bool:
        return self.at_packet <= index < self.at_packet + self.outage


@dataclass(frozen=True)
class SwitchReprogram:
    kind = "reprogram"
    at_packet: int = 5
    duration: int = 5

    def active(self, index: int) -> bool:
        return self.at_packet <= index < self.at_packet + self.duration


@dataclass(frozen=True)
class StaleReplication:
    kind = "stale"
    extra_us: float = 2_000.0
    probability: float = 0.5
    start: int = 0
    stop: Optional[int] = None

    def active(self, index: int) -> bool:
        return _in_window(index, self.start, self.stop)


@dataclass(frozen=True)
class PuntReorder:
    kind = "reorder"

    def active(self, index: int) -> bool:  # applies at drain time
        return True


@dataclass(frozen=True)
class PrimarySwitchCrash:
    kind = "switch_crash"
    at_packet: int = 5
    #: packets served on the server before the standby is promoted
    promotion_window: int = 3

    def active(self, index: int) -> bool:
        return self.at_packet <= index < self.at_packet + self.promotion_window


@dataclass(frozen=True)
class CrashDuringBatch:
    kind = "crash_batch"
    probability: float = 0.5
    promotion_window: int = 3
    start: int = 0
    stop: Optional[int] = None

    def active(self, index: int) -> bool:
        return _in_window(index, self.start, self.stop)


@dataclass(frozen=True)
class StandbyStaleReplay:
    kind = "standby_stale"
    probability: float = 0.3
    start: int = 0
    stop: Optional[int] = None

    def active(self, index: int) -> bool:
        return _in_window(index, self.start, self.stop)


@dataclass(frozen=True)
class TenantLinkFault:
    kind = "tenant_link"
    tenant: str = ""
    direction: str = "to_server"  # "to_server" | "to_switch"
    mode: str = "loss"  # "loss" | "corrupt"
    probability: float = 0.1
    start: int = 0
    stop: Optional[int] = None

    def active(self, index: int) -> bool:
        return _in_window(index, self.start, self.stop)

    def as_link_fault(self) -> "LinkFault":
        """The equivalent unscoped fault, for the tenant's own injector
        (and for replaying the tenant solo under identical conditions)."""
        return LinkFault(
            direction=self.direction, mode=self.mode,
            probability=self.probability, start=self.start, stop=self.stop,
        )


@dataclass(frozen=True)
class PoolMemberCrash:
    kind = "pool_member_crash"
    member: str = "srv0"
    at_packet: int = 5
    #: packets before the crash migration completes (flows the member
    #: owned queue or degrade per policy while it is open)
    migration_window: int = 3

    def active(self, index: int) -> bool:
        return (
            self.at_packet <= index < self.at_packet + self.migration_window
        )

    @property
    def window_length(self) -> int:
        return self.migration_window


@dataclass(frozen=True)
class PoolMemberDrain:
    kind = "pool_member_drain"
    member: str = "srv0"
    at_packet: int = 5
    #: packets the member quiesces for before the graceful handoff
    drain_window: int = 3

    def active(self, index: int) -> bool:
        return self.at_packet <= index < self.at_packet + self.drain_window

    @property
    def window_length(self) -> int:
        return self.drain_window


def _in_window(index: int, start: int, stop: Optional[int]) -> bool:
    return index >= start and (stop is None or index < stop)


#: kind tag -> spec class, for (de)serialization.  Append-only: new
#: classes register at the end so ``ALL_FAULT_KINDS`` (and every summary
#: keyed on it) stays stable for existing scenarios.
FAULT_KINDS: Dict[str, Type] = {
    cls.kind: cls
    for cls in (
        LinkFault, BatchFault, WritebackOverflow, ServerCrash,
        SwitchReprogram, StaleReplication, PuntReorder,
        PrimarySwitchCrash, CrashDuringBatch, StandbyStaleReplay,
        TenantLinkFault, PoolMemberCrash, PoolMemberDrain,
    )
}

#: every fault-class tag, in campaign-coverage order.
ALL_FAULT_KINDS: Tuple[str, ...] = tuple(FAULT_KINDS)

#: kinds the single-switch campaign draws from.  Kept separate from
#: ``ALL_FAULT_KINDS`` so registering the failover kinds did not change
#: the shuffle below — base-campaign scenarios stay seed-stable.
BASE_FAULT_KINDS: Tuple[str, ...] = (
    "link", "batch", "overflow", "crash", "reprogram", "stale", "reorder",
)

#: kinds exclusive to active-standby failover plans.
FAILOVER_FAULT_KINDS: Tuple[str, ...] = (
    "switch_crash", "crash_batch", "standby_stale",
)

#: base kinds a failover plan may additionally mix in.  Server crashes,
#: reprogramming windows, and punt reordering are excluded: they assume a
#: single-switch deployment (and the reference replay models them so).
FAILOVER_EXTRA_KINDS: Tuple[str, ...] = ("link", "batch", "stale", "overflow")

#: kinds exclusive to multi-tenant deployments (tenant-scoped faults).
TENANCY_FAULT_KINDS: Tuple[str, ...] = ("tenant_link",)

#: kinds exclusive to punt-path server pools (membership changes).
POOL_FAULT_KINDS: Tuple[str, ...] = ("pool_member_crash", "pool_member_drain")

#: base kinds a pool plan may additionally mix in — the same benign set
#: as failover plans; single-server crash/reprogram kinds are excluded
#: because a member outage must never look like a full server or switch
#: outage.
POOL_EXTRA_KINDS: Tuple[str, ...] = FAILOVER_EXTRA_KINDS


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of faults for one deployment run."""

    faults: Tuple = ()

    def kinds(self) -> Tuple[str, ...]:
        return tuple(sorted({spec.kind for spec in self.faults}))

    def by_kind(self, kind: str) -> List:
        return [spec for spec in self.faults if spec.kind == kind]

    def describe(self) -> str:
        if not self.faults:
            return "no faults"
        return "; ".join(_describe(spec) for spec in self.faults)

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        return {"faults": [_spec_to_dict(spec) for spec in self.faults]}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(
            faults=tuple(
                _spec_from_dict(item) for item in data.get("faults", [])
            )
        )


def _spec_to_dict(spec) -> dict:
    out = {"kind": spec.kind}
    for spec_field in dataclass_fields(spec):
        out[spec_field.name] = getattr(spec, spec_field.name)
    return out


def _spec_from_dict(data: dict) -> object:
    kind = data["kind"]
    cls = FAULT_KINDS.get(kind)
    if cls is None:
        raise ValueError(f"unknown fault kind {kind!r}")
    kwargs = {
        spec_field.name: data[spec_field.name]
        for spec_field in dataclass_fields(cls)
        if spec_field.name in data
    }
    return cls(**kwargs)


def _describe(spec) -> str:
    if isinstance(spec, LinkFault):
        return (
            f"link {spec.mode} {spec.direction} p={spec.probability}"
            f" [{spec.start},{spec.stop})"
        )
    if isinstance(spec, BatchFault):
        return (
            f"batch {spec.mode} p={spec.probability}"
            f" doom={spec.doom_probability}"
        )
    if isinstance(spec, WritebackOverflow):
        return f"writeback overflow p={spec.probability}"
    if isinstance(spec, ServerCrash):
        state = "lose-state" if spec.lose_state else "keep-state"
        return f"server crash @{spec.at_packet}+{spec.outage} {state}"
    if isinstance(spec, SwitchReprogram):
        return f"switch reprogram @{spec.at_packet}+{spec.duration}"
    if isinstance(spec, StaleReplication):
        return f"stale replication +{spec.extra_us}µs p={spec.probability}"
    if isinstance(spec, PuntReorder):
        return "punt reorder on drain"
    if isinstance(spec, PrimarySwitchCrash):
        return (
            f"primary switch crash @{spec.at_packet}"
            f"+{spec.promotion_window}"
        )
    if isinstance(spec, CrashDuringBatch):
        return (
            f"crash during batch p={spec.probability}"
            f" window={spec.promotion_window} [{spec.start},{spec.stop})"
        )
    if isinstance(spec, StandbyStaleReplay):
        return (
            f"standby stale replay p={spec.probability}"
            f" [{spec.start},{spec.stop})"
        )
    if isinstance(spec, TenantLinkFault):
        return (
            f"tenant {spec.tenant!r} link {spec.mode} {spec.direction}"
            f" p={spec.probability} [{spec.start},{spec.stop})"
        )
    if isinstance(spec, PoolMemberCrash):
        return (
            f"pool member {spec.member!r} crash"
            f" @{spec.at_packet}+{spec.migration_window}"
        )
    if isinstance(spec, PoolMemberDrain):
        return (
            f"pool member {spec.member!r} drain"
            f" @{spec.at_packet}+{spec.drain_window}"
        )
    return repr(spec)


# ---------------------------------------------------------------------------
# Randomized plan generation (the campaign's scenario source)
# ---------------------------------------------------------------------------


def _draw_link(rng: random.Random, stream_len: int) -> LinkFault:
    start = rng.randrange(0, max(1, stream_len // 2))
    return LinkFault(
        direction=rng.choice(["to_server", "to_switch"]),
        mode=rng.choice(["loss", "loss", "corrupt"]),
        probability=rng.choice([0.05, 0.15, 0.3]),
        start=start,
        stop=rng.choice([None, start + rng.randint(3, stream_len)]),
    )


def _draw_batch(rng: random.Random) -> BatchFault:
    return BatchFault(
        mode=rng.choice(["fail", "timeout"]),
        probability=rng.choice([0.1, 0.25, 0.5]),
        doom_probability=rng.choice([0.0, 0.0, 0.1]),
    )


def _draw_overflow(rng: random.Random) -> WritebackOverflow:
    return WritebackOverflow(probability=rng.choice([0.05, 0.15]))


def _draw_stale(rng: random.Random) -> StaleReplication:
    return StaleReplication(
        extra_us=rng.choice([500.0, 2_000.0, 10_000.0]),
        probability=rng.choice([0.25, 0.75]),
    )


def generate_plan(
    rng: random.Random,
    stream_len: int,
    failover: bool = False,
    pool_members: Optional[List[str]] = None,
) -> FaultPlan:
    """Draw a random, internally consistent fault schedule.

    Picks 1–3 fault classes.  Crash and reprogram windows are placed
    inside the stream and never overlap each other (overlap is the
    degenerate total-outage case, exercised separately by the runtime's
    defensive path, not worth most of the budget).

    With ``failover=True`` the plan targets an active-standby pair:
    exactly one primary-crash kind (clean boundary crash or mid-batch
    connection crash), an optional stale-standby replay fault, and up to
    two extra kinds from :data:`FAILOVER_EXTRA_KINDS`.

    With ``pool_members`` the plan targets a punt-path server pool:
    member crashes and/or drains of *distinct* members with windows
    placed inside the stream, always leaving at least one survivor, plus
    up to two extras from :data:`POOL_EXTRA_KINDS`.
    """
    if pool_members is not None:
        return _generate_pool_plan(rng, stream_len, pool_members)
    if failover:
        return _generate_failover_plan(rng, stream_len)
    choices = list(BASE_FAULT_KINDS)
    rng.shuffle(choices)
    picked = choices[: rng.randint(1, 3)]
    specs: List = []
    #: packet indices already owned by an outage window
    reserved: List[Tuple[int, int]] = []

    def place_window(length: int) -> Optional[int]:
        for _ in range(8):
            at = rng.randrange(0, max(1, stream_len - 1))
            if all(at + length <= lo or at >= hi for lo, hi in reserved):
                reserved.append((at, at + length))
                return at
        return None

    for kind in picked:
        if kind == "link":
            specs.append(_draw_link(rng, stream_len))
        elif kind == "batch":
            specs.append(_draw_batch(rng))
        elif kind == "overflow":
            specs.append(_draw_overflow(rng))
        elif kind == "crash":
            outage = rng.randint(2, max(3, stream_len // 4))
            at = place_window(outage)
            if at is not None:
                specs.append(ServerCrash(
                    at_packet=at, outage=outage,
                    lose_state=rng.random() < 0.75,
                ))
        elif kind == "reprogram":
            duration = rng.randint(2, max(3, stream_len // 4))
            at = place_window(duration)
            if at is not None:
                specs.append(SwitchReprogram(at_packet=at, duration=duration))
        elif kind == "stale":
            specs.append(_draw_stale(rng))
        elif kind == "reorder":
            specs.append(PuntReorder())
            # Reorder only matters when something queues punts: pair it
            # with a crash window if none was drawn.
            if not any(isinstance(s, ServerCrash) for s in specs):
                outage = rng.randint(2, max(3, stream_len // 4))
                at = place_window(outage)
                if at is not None:
                    specs.append(ServerCrash(
                        at_packet=at, outage=outage,
                        lose_state=rng.random() < 0.5,
                    ))
    return FaultPlan(faults=tuple(specs))


def _generate_pool_plan(
    rng: random.Random, stream_len: int, pool_members: List[str],
) -> FaultPlan:
    """Pool schedule: membership changes of distinct members (≥1 survivor
    always) plus up to two benign extras.

    With a single member there is nothing to safely remove, so the plan
    degenerates to extras only — the campaign still exercises the pooled
    punt path under link/batch/stale pressure.
    """
    specs: List = []
    members = list(pool_members)
    reserved: List[Tuple[int, int]] = []

    def place_window(length: int) -> Optional[int]:
        for _ in range(8):
            at = rng.randrange(0, max(1, stream_len - 1))
            if all(at + length <= lo or at >= hi for lo, hi in reserved):
                reserved.append((at, at + length))
                return at
        return None

    removable = len(members) - 1
    if removable >= 1:
        pick = rng.randrange(3)  # 0: crash, 1: drain, 2: both
        if pick == 2 and removable < 2:
            pick = rng.randrange(2)
        kinds = []
        if pick in (0, 2):
            kinds.append("pool_member_crash")
        if pick in (1, 2):
            kinds.append("pool_member_drain")
        shuffled = members[:]
        rng.shuffle(shuffled)
        for position, kind in enumerate(kinds):
            member = shuffled[position]
            window = rng.randint(2, max(3, stream_len // 4))
            at = place_window(window)
            if at is None:
                continue
            if kind == "pool_member_crash":
                specs.append(PoolMemberCrash(
                    member=member, at_packet=at, migration_window=window,
                ))
            else:
                specs.append(PoolMemberDrain(
                    member=member, at_packet=at, drain_window=window,
                ))
    extras = list(POOL_EXTRA_KINDS)
    rng.shuffle(extras)
    for kind in extras[: rng.randint(0, 2)]:
        if kind == "link":
            specs.append(_draw_link(rng, stream_len))
        elif kind == "batch":
            specs.append(_draw_batch(rng))
        elif kind == "stale":
            specs.append(_draw_stale(rng))
        elif kind == "overflow":
            specs.append(_draw_overflow(rng))
    return FaultPlan(faults=tuple(specs))


def _generate_failover_plan(rng: random.Random, stream_len: int) -> FaultPlan:
    """Failover schedule: exactly one primary-crash kind, plus optional
    stale-standby replay and up to two benign extras."""
    specs: List = []
    window = rng.randint(2, max(3, stream_len // 4))
    if rng.random() < 0.5:
        # Clean packet-boundary crash with a placed promotion window.
        at = rng.randrange(1, max(2, stream_len - 1))
        specs.append(PrimarySwitchCrash(at_packet=at, promotion_window=window))
    else:
        # Mid-batch control-plane connection crash; fires on the first
        # punted batch the probability hits inside the window.
        start = rng.randrange(0, max(1, stream_len // 2))
        specs.append(CrashDuringBatch(
            probability=rng.choice([0.25, 0.5, 1.0]),
            promotion_window=window,
            start=start,
            stop=rng.choice([None, start + rng.randint(3, stream_len)]),
        ))
    if rng.random() < 0.6:
        specs.append(StandbyStaleReplay(
            probability=rng.choice([0.25, 0.5, 1.0]),
        ))
    extras = list(FAILOVER_EXTRA_KINDS)
    rng.shuffle(extras)
    for kind in extras[: rng.randint(0, 2)]:
        if kind == "link":
            specs.append(_draw_link(rng, stream_len))
        elif kind == "batch":
            specs.append(_draw_batch(rng))
        elif kind == "stale":
            specs.append(_draw_stale(rng))
        elif kind == "overflow":
            specs.append(_draw_overflow(rng))
    return FaultPlan(faults=tuple(specs))
