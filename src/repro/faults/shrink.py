"""Delta-debugging for fault-campaign failures.

A campaign failure is a triple ``(program, stream, fault_plan)``; the
difftest shrinker only knows the first two.  This module minimizes the
fault plan itself — drop whole specs, narrow activity windows, halve
probabilities — and then reuses :func:`repro.difftest.shrink.shrink_case`
with the plan held fixed, so the reproducer committed to
``tests/faults_corpus/`` is minimal along every axis.

The predicate contract mirrors the difftest shrinker:
``predicate(program, stream, fault_plan) -> bool``, True iff the
interesting behaviour (usually "the fault oracle still reports the same
violation kind") persists.  ``shrink_fault_case`` never returns a triple
that fails the predicate.
"""

from __future__ import annotations

import copy
import dataclasses
from typing import Callable, List, Tuple

from repro.difftest.generator import GenProgram
from repro.difftest.oracle import StreamSpec
from repro.difftest.shrink import ShrinkHints, shrink_case
from repro.faults.plan import FaultPlan

FaultPredicate = Callable[[GenProgram, StreamSpec, FaultPlan], bool]

_NO_HINTS = ShrinkHints()

#: Probability floor below which halving stops (a fault that fires with
#: p < 1% on a 25-packet stream is effectively off, and the predicate
#: would reject it anyway).
_MIN_PROBABILITY = 0.01


def _try(
    predicate: FaultPredicate,
    program: GenProgram,
    stream: StreamSpec,
    plan: FaultPlan,
) -> bool:
    try:
        return bool(predicate(program, stream, plan))
    except Exception:
        return False


def _spec_covers(spec, packet: int) -> bool:
    active = getattr(spec, "active", None)
    if active is None:
        return True
    try:
        return bool(active(packet))
    except Exception:
        return True


def _drop_one_spec(
    program: GenProgram,
    stream: StreamSpec,
    plan: FaultPlan,
    predicate: FaultPredicate,
    hints: ShrinkHints = _NO_HINTS,
) -> Tuple[FaultPlan, bool]:
    order = list(range(len(plan.faults)))
    if hints.packet is not None:
        # Specs that were not even active at the divergent packet are the
        # likeliest dead weight — try dropping those first (stable sort
        # keeps the blind order within each class).
        order.sort(key=lambda i: _spec_covers(plan.faults[i], hints.packet))
    for index in order:
        candidate = FaultPlan(
            faults=plan.faults[:index] + plan.faults[index + 1:]
        )
        if _try(predicate, program, stream, candidate):
            return candidate, True
    return plan, False


def _spec_variants(spec, stream_len: int) -> List:
    """Strictly-smaller variants of one fault spec, most aggressive first."""
    variants: List = []

    def replace(**kwargs) -> None:
        candidate = dataclasses.replace(spec, **kwargs)
        if candidate != spec and candidate not in variants:
            variants.append(candidate)

    for name in ("probability", "doom_probability"):
        value = getattr(spec, name, None)
        if value and value / 2 >= _MIN_PROBABILITY:
            replace(**{name: value / 2})
    start = getattr(spec, "start", None)
    stop = getattr(spec, "stop", None)
    if start is not None:
        if stop is None:
            replace(stop=stream_len)
        elif stop - start > 1:
            mid = (start + stop + 1) // 2
            replace(stop=mid)
            replace(start=(start + stop) // 2)
    for name in ("outage", "duration"):
        value = getattr(spec, name, None)
        if value is not None and value > 1:
            replace(**{name: value // 2})
    return variants


def _hint_variants(spec, hints: ShrinkHints, stream_len: int) -> List:
    """Trace-guided variants: snap the spec's activity window to the
    divergent packet.

    Packets after the divergence cannot have caused it, and the window
    before it is usually dead weight too — so the single most promising
    candidate collapses the whole window onto that one packet.  The blind
    binary narrowing in :func:`_spec_variants` reaches the same plan
    eventually but needs O(log window) predicate (= oracle) calls per end;
    a correct hint gets there in one.
    """
    packet = hints.packet
    if packet is None or not 0 <= packet < stream_len:
        return []
    variants: List = []

    def replace(**kwargs) -> None:
        candidate = dataclasses.replace(spec, **kwargs)
        if candidate != spec and candidate not in variants:
            variants.append(candidate)

    start = getattr(spec, "start", None)
    stop = getattr(spec, "stop", None)
    if start is not None and packet >= start and (
        stop is None or packet < stop
    ):
        # Most aggressive first: the one-packet window, then each end
        # snapped separately (in case the fault needs lead-in or rampdown).
        replace(start=packet, stop=packet + 1)
        replace(stop=packet + 1)
        replace(start=packet)
    at_packet = getattr(spec, "at_packet", None)
    if at_packet is not None and at_packet <= packet:
        # One-shot specs: shorten the effect to just cover the divergence.
        needed = packet - at_packet + 1
        for name in ("outage", "duration"):
            value = getattr(spec, name, None)
            if value is not None and needed < value:
                replace(**{name: needed})
    return variants


def _shrink_one_spec(
    program: GenProgram,
    stream: StreamSpec,
    plan: FaultPlan,
    predicate: FaultPredicate,
    hints: ShrinkHints = _NO_HINTS,
) -> Tuple[FaultPlan, bool]:
    for index, spec in enumerate(plan.faults):
        variants = _hint_variants(spec, hints, stream.count)
        for blind in _spec_variants(spec, stream.count):
            if blind not in variants:
                variants.append(blind)
        for variant in variants:
            candidate = FaultPlan(
                faults=plan.faults[:index] + (variant,)
                + plan.faults[index + 1:]
            )
            if _try(predicate, program, stream, candidate):
                return candidate, True
    return plan, False


def shrink_plan(
    program: GenProgram,
    stream: StreamSpec,
    plan: FaultPlan,
    predicate: FaultPredicate,
    max_rounds: int = 200,
    trace_diff=None,
) -> FaultPlan:
    """Minimize the fault plan alone, program and stream held fixed."""
    hints = ShrinkHints.from_trace_diff(trace_diff)
    for _ in range(max_rounds):
        plan, dropped = _drop_one_spec(program, stream, plan, predicate,
                                       hints)
        if dropped:
            continue
        plan, narrowed = _shrink_one_spec(program, stream, plan, predicate,
                                          hints)
        if not narrowed:
            break
    return plan


def shrink_fault_case(
    program: GenProgram,
    stream: StreamSpec,
    plan: FaultPlan,
    predicate: FaultPredicate,
    max_rounds: int = 500,
    trace_diff=None,
) -> Tuple[GenProgram, StreamSpec, FaultPlan]:
    """Reduce ``(program, stream, fault_plan)`` while ``predicate`` holds.

    ``trace_diff`` (the failure's first-divergent-event provenance)
    orders candidates on every axis: fault specs inactive at the
    divergent packet are dropped first, the stream is truncated right
    after it, and statements never touching the divergent state members
    are deleted first.  Raises ``ValueError`` if the initial triple does
    not satisfy the predicate (nothing to shrink).
    """
    program = copy.deepcopy(program)
    if not _try(predicate, program, stream, plan):
        raise ValueError(
            "shrink_fault_case: initial case does not satisfy the predicate"
        )
    # Plan first: fewer active faults usually lets far more of the program
    # be deleted in the second phase.
    plan = shrink_plan(program, stream, plan, predicate,
                       trace_diff=trace_diff)

    def fixed_plan_predicate(p: GenProgram, s: StreamSpec) -> bool:
        return _try(predicate, p, s, plan)

    program, stream = shrink_case(
        program, stream, fixed_plan_predicate, max_rounds=max_rounds,
        trace_diff=trace_diff,
    )
    # A shorter stream may admit narrower windows; one more plan pass.
    plan = shrink_plan(program, stream, plan, predicate,
                       trace_diff=trace_diff)
    return program, stream, plan
