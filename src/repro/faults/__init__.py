"""Fault injection and graceful-degradation verification.

The paper's deployment model (§5) assumes a healthy testbed: every punt
reaches the server, every update batch commits, nothing restarts.  This
package stress-tests the parts the paper takes for granted:

* :mod:`repro.faults.plan` — a declarative, JSON-serializable DSL of fault
  schedules (link loss/corruption on the punt path, control-plane batch
  failures and timeouts, write-back overflow, server crash + state resync,
  switch reprogramming windows, stale replication, punt reordering),
* :mod:`repro.faults.injector` — deterministic seed-driven execution of a
  plan (same plan + seed → identical faults, so every run reproduces),
* :mod:`repro.faults.oracle` — the fault-aware extension of the difftest
  oracle: replays the deployment's effect log on a clean reference and
  proves equivalence-or-declared-degradation, never silent divergence,
* :mod:`repro.faults.campaign` — the randomized campaign runner behind
  ``python -m repro faults`` / ``make faults-smoke``,
* :mod:`repro.faults.shrink` — delta-debugging of campaign failures over
  all three axes (fault plan, program, packet stream),
* :mod:`repro.faults.corpus` — committed reproducers for bugs the
  campaign found, replayed as regression tests,
* :mod:`repro.faults.timeline` — discrete-event recovery-time model used
  by the eval's fault-recovery experiment.
"""

from repro.faults.campaign import (
    CampaignStats,
    FaultFailure,
    derive_fault_seeds,
    run_campaign,
)
from repro.faults.injector import FaultInjector
from repro.faults.oracle import (
    FaultOracleResult,
    FaultOutcome,
    FaultViolation,
    run_fault_oracle,
)
from repro.faults.shrink import shrink_fault_case, shrink_plan
from repro.faults.plan import (
    ALL_FAULT_KINDS,
    BASE_FAULT_KINDS,
    FAILOVER_FAULT_KINDS,
    BatchFault,
    CrashDuringBatch,
    FaultPlan,
    LinkFault,
    PrimarySwitchCrash,
    PuntReorder,
    ServerCrash,
    StaleReplication,
    StandbyStaleReplay,
    SwitchReprogram,
    WritebackOverflow,
    generate_plan,
)

__all__ = [
    "ALL_FAULT_KINDS",
    "BASE_FAULT_KINDS",
    "FAILOVER_FAULT_KINDS",
    "BatchFault",
    "CampaignStats",
    "CrashDuringBatch",
    "FaultFailure",
    "FaultInjector",
    "FaultOracleResult",
    "FaultOutcome",
    "FaultPlan",
    "FaultViolation",
    "LinkFault",
    "PrimarySwitchCrash",
    "PuntReorder",
    "ServerCrash",
    "StaleReplication",
    "StandbyStaleReplay",
    "SwitchReprogram",
    "WritebackOverflow",
    "derive_fault_seeds",
    "generate_plan",
    "run_campaign",
    "run_fault_oracle",
    "shrink_fault_case",
    "shrink_plan",
]
