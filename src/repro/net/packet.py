"""Raw packets: a byte buffer plus parsed header views.

``RawPacket`` is the wire-level representation used by the simulator, the
switch model, and the NIC queues.  The Click substrate wraps it in a
higher-level ``repro.click.packet.Packet`` that exposes the Click API
(``network_header()`` etc.).

A ``RawPacket`` owns its bytes.  Header accessors parse lazily and cache;
mutating a parsed header view marks the packet dirty so the bytes are
re-serialized on demand.  This mirrors how Click packets carry both an
annotation area and the underlying buffer.
"""

from __future__ import annotations

from typing import Optional

from repro.net.headers import (
    ETHERTYPE_IPV4,
    IPPROTO_TCP,
    IPPROTO_UDP,
    EthernetHeader,
    Ipv4Header,
    TcpHeader,
    UdpHeader,
)


class PacketBuildError(ValueError):
    """Raised when a packet cannot be constructed or parsed."""


class RawPacket:
    """A wire packet: Ethernet frame bytes with lazily parsed header views."""

    __slots__ = (
        "_eth",
        "_ip",
        "_l4",
        "_payload",
        "ingress_port",
        "metadata",
    )

    def __init__(
        self,
        eth: EthernetHeader,
        ip: Optional[Ipv4Header] = None,
        l4=None,
        payload: bytes = b"",
        ingress_port: int = 0,
    ):
        self._eth = eth
        self._ip = ip
        self._l4 = l4
        self._payload = payload
        self.ingress_port = ingress_port
        # Free-form annotation area (like Click packet annotations); the
        # simulator uses it for timestamps, the runtime for shim state.
        self.metadata: dict = {}

    # -- constructors -----------------------------------------------------

    @classmethod
    def make_tcp(
        cls,
        eth: EthernetHeader,
        ip: Ipv4Header,
        tcp: TcpHeader,
        payload: bytes = b"",
    ) -> "RawPacket":
        ip.protocol = IPPROTO_TCP
        ip.total_length = Ipv4Header.SIZE + TcpHeader.SIZE + len(payload)
        return cls(eth, ip, tcp, payload)

    @classmethod
    def make_udp(
        cls,
        eth: EthernetHeader,
        ip: Ipv4Header,
        udp: UdpHeader,
        payload: bytes = b"",
    ) -> "RawPacket":
        ip.protocol = IPPROTO_UDP
        ip.total_length = Ipv4Header.SIZE + UdpHeader.SIZE + len(payload)
        udp.length = UdpHeader.SIZE + len(payload)
        return cls(eth, ip, udp, payload)

    @classmethod
    def parse(cls, data: bytes, ingress_port: int = 0) -> "RawPacket":
        """Parse an Ethernet frame into header views."""
        eth = EthernetHeader.unpack(data)
        offset = EthernetHeader.SIZE
        ip_header = None
        l4 = None
        payload = b""
        if eth.ethertype == ETHERTYPE_IPV4:
            ip_header = Ipv4Header.unpack(data[offset:])
            offset += ip_header.ihl * 4
            if ip_header.protocol == IPPROTO_TCP:
                l4 = TcpHeader.unpack(data[offset:])
                offset += l4.data_offset * 4
            elif ip_header.protocol == IPPROTO_UDP:
                l4 = UdpHeader.unpack(data[offset:])
                offset += UdpHeader.SIZE
            payload = data[offset:]
        else:
            payload = data[offset:]
        return cls(eth, ip_header, l4, payload, ingress_port)

    # -- header views ------------------------------------------------------

    @property
    def eth(self) -> EthernetHeader:
        return self._eth

    @property
    def ip(self) -> Optional[Ipv4Header]:
        return self._ip

    @property
    def tcp(self) -> Optional[TcpHeader]:
        if isinstance(self._l4, TcpHeader):
            return self._l4
        return None

    @property
    def udp(self) -> Optional[UdpHeader]:
        if isinstance(self._l4, UdpHeader):
            return self._l4
        return None

    @property
    def l4(self):
        return self._l4

    @property
    def payload(self) -> bytes:
        return self._payload

    @payload.setter
    def payload(self, value: bytes) -> None:
        self._payload = value
        if self._ip is not None:
            l4_size = 0
            if isinstance(self._l4, TcpHeader):
                l4_size = self._l4.data_offset * 4
            elif isinstance(self._l4, UdpHeader):
                l4_size = UdpHeader.SIZE
                self._l4.length = UdpHeader.SIZE + len(value)
            self._ip.total_length = self._ip.ihl * 4 + l4_size + len(value)

    # -- five tuple ---------------------------------------------------------

    def five_tuple(self):
        """Return (saddr, daddr, sport, dport, proto) or None if not L4."""
        if self._ip is None or self._l4 is None:
            return None
        return (
            int(self._ip.saddr),
            int(self._ip.daddr),
            self._l4.sport,
            self._l4.dport,
            self._ip.protocol,
        )

    # -- serialization -------------------------------------------------------

    def pack(self) -> bytes:
        parts = [self._eth.pack()]
        if self._ip is not None:
            parts.append(self._ip.pack())
        if self._l4 is not None:
            parts.append(self._l4.pack())
        parts.append(self._payload)
        return b"".join(parts)

    def wire_length(self) -> int:
        length = EthernetHeader.SIZE
        if self._ip is not None:
            length += self._ip.ihl * 4
        if isinstance(self._l4, TcpHeader):
            length += self._l4.data_offset * 4
        elif isinstance(self._l4, UdpHeader):
            length += UdpHeader.SIZE
        return length + len(self._payload)

    def adopt(self, other: "RawPacket") -> None:
        """Take over ``other``'s headers and payload (same wire identity).

        Used when processing happened on a clone (e.g. the table-cache
        runtime's pristine copy) and the caller's handle must reflect the
        final packet contents.
        """
        self._eth = other._eth
        self._ip = other._ip
        self._l4 = other._l4
        self._payload = other._payload

    def copy(self) -> "RawPacket":
        pkt = RawPacket(
            self._eth.copy(),
            self._ip.copy() if self._ip is not None else None,
            self._l4.copy() if self._l4 is not None else None,
            self._payload,
            self.ingress_port,
        )
        pkt.metadata = dict(self.metadata)
        return pkt

    def __repr__(self) -> str:
        if self._ip is None:
            return f"<RawPacket eth type={self._eth.ethertype:#06x} len={self.wire_length()}>"
        proto = {IPPROTO_TCP: "tcp", IPPROTO_UDP: "udp"}.get(
            self._ip.protocol, str(self._ip.protocol)
        )
        l4 = ""
        if self._l4 is not None:
            l4 = f" {self._l4.sport}->{self._l4.dport}"
        return (
            f"<RawPacket {proto} {self._ip.saddr}->{self._ip.daddr}{l4}"
            f" len={self.wire_length()}>"
        )
