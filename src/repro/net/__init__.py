"""Network substrate: addresses, checksums, protocol headers, raw packets.

This package provides the byte-level plumbing that every other layer in the
reproduction builds on.  It deliberately mirrors the small slice of a real
network stack that Gallium's evaluation exercises: Ethernet framing, IPv4,
TCP and UDP headers, plus the synthesized Gallium "shim" header that carries
temporary state between the programmable switch and the middlebox server
(paper Figure 5).
"""

from repro.net.addresses import (
    MacAddress,
    Ipv4Address,
    mac,
    ip,
)
from repro.net.checksum import internet_checksum
from repro.net.headers import (
    EthernetHeader,
    Ipv4Header,
    TcpHeader,
    UdpHeader,
    TcpFlags,
    ETHERTYPE_IPV4,
    ETHERTYPE_GALLIUM,
    IPPROTO_TCP,
    IPPROTO_UDP,
)
from repro.net.packet import RawPacket, PacketBuildError

__all__ = [
    "MacAddress",
    "Ipv4Address",
    "mac",
    "ip",
    "internet_checksum",
    "EthernetHeader",
    "Ipv4Header",
    "TcpHeader",
    "UdpHeader",
    "TcpFlags",
    "ETHERTYPE_IPV4",
    "ETHERTYPE_GALLIUM",
    "IPPROTO_TCP",
    "IPPROTO_UDP",
    "RawPacket",
    "PacketBuildError",
]
