"""MAC and IPv4 address value types.

Both types are immutable, hashable, and carry explicit conversions to and
from the wire representation.  They are used pervasively: by the Click
substrate when middleboxes rewrite headers, by the switch model when it
matches on header fields, and by the traffic generators.
"""

from __future__ import annotations

import re

_MAC_RE = re.compile(r"^([0-9a-fA-F]{2}[:\-]){5}[0-9a-fA-F]{2}$")
_IP_RE = re.compile(r"^(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})$")


class MacAddress:
    """A 48-bit Ethernet MAC address."""

    __slots__ = ("_value",)

    def __init__(self, value: int):
        if not 0 <= value < (1 << 48):
            raise ValueError(f"MAC address out of range: {value:#x}")
        self._value = value

    @classmethod
    def from_string(cls, text: str) -> "MacAddress":
        if not _MAC_RE.match(text):
            raise ValueError(f"malformed MAC address: {text!r}")
        parts = re.split(r"[:\-]", text)
        value = 0
        for part in parts:
            value = (value << 8) | int(part, 16)
        return cls(value)

    @classmethod
    def from_bytes(cls, data: bytes) -> "MacAddress":
        if len(data) != 6:
            raise ValueError(f"MAC address needs 6 bytes, got {len(data)}")
        return cls(int.from_bytes(data, "big"))

    @classmethod
    def broadcast(cls) -> "MacAddress":
        return cls((1 << 48) - 1)

    def to_bytes(self) -> bytes:
        return self._value.to_bytes(6, "big")

    @property
    def value(self) -> int:
        return self._value

    @property
    def is_broadcast(self) -> bool:
        return self._value == (1 << 48) - 1

    @property
    def is_multicast(self) -> bool:
        return bool((self._value >> 40) & 0x01)

    def __int__(self) -> int:
        return self._value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MacAddress):
            return self._value == other._value
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("mac", self._value))

    def __str__(self) -> str:
        raw = self.to_bytes()
        return ":".join(f"{b:02x}" for b in raw)

    def __repr__(self) -> str:
        return f"MacAddress({str(self)!r})"


class Ipv4Address:
    """A 32-bit IPv4 address."""

    __slots__ = ("_value",)

    def __init__(self, value: int):
        if not 0 <= value < (1 << 32):
            raise ValueError(f"IPv4 address out of range: {value:#x}")
        self._value = value

    @classmethod
    def from_string(cls, text: str) -> "Ipv4Address":
        match = _IP_RE.match(text)
        if not match:
            raise ValueError(f"malformed IPv4 address: {text!r}")
        octets = [int(g) for g in match.groups()]
        if any(o > 255 for o in octets):
            raise ValueError(f"IPv4 octet out of range: {text!r}")
        value = 0
        for octet in octets:
            value = (value << 8) | octet
        return cls(value)

    @classmethod
    def from_bytes(cls, data: bytes) -> "Ipv4Address":
        if len(data) != 4:
            raise ValueError(f"IPv4 address needs 4 bytes, got {len(data)}")
        return cls(int.from_bytes(data, "big"))

    def to_bytes(self) -> bytes:
        return self._value.to_bytes(4, "big")

    @property
    def value(self) -> int:
        return self._value

    def in_subnet(self, network: "Ipv4Address", prefix_len: int) -> bool:
        """Return True if this address falls in ``network/prefix_len``."""
        if not 0 <= prefix_len <= 32:
            raise ValueError(f"prefix length out of range: {prefix_len}")
        if prefix_len == 0:
            return True
        mask = ((1 << prefix_len) - 1) << (32 - prefix_len)
        return (self._value & mask) == (network._value & mask)

    def __int__(self) -> int:
        return self._value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Ipv4Address):
            return self._value == other._value
        return NotImplemented

    def __lt__(self, other: "Ipv4Address") -> bool:
        return self._value < other._value

    def __hash__(self) -> int:
        return hash(("ipv4", self._value))

    def __str__(self) -> str:
        raw = self.to_bytes()
        return ".".join(str(b) for b in raw)

    def __repr__(self) -> str:
        return f"Ipv4Address({str(self)!r})"


def mac(text_or_int) -> MacAddress:
    """Convenience constructor: accepts ``"aa:bb:cc:dd:ee:ff"`` or an int."""
    if isinstance(text_or_int, MacAddress):
        return text_or_int
    if isinstance(text_or_int, int):
        return MacAddress(text_or_int)
    return MacAddress.from_string(text_or_int)


def ip(text_or_int) -> Ipv4Address:
    """Convenience constructor: accepts ``"10.0.0.1"`` or an int."""
    if isinstance(text_or_int, Ipv4Address):
        return text_or_int
    if isinstance(text_or_int, int):
        return Ipv4Address(text_or_int)
    return Ipv4Address.from_string(text_or_int)
