"""RFC 1071 Internet checksum.

Used by the IPv4 header serializer and by tests that validate that header
rewrites performed on the switch keep packets well-formed (real Tofino
pipelines recompute the checksum in the deparser; our switch model does the
same).
"""

from __future__ import annotations


def internet_checksum(data: bytes, initial: int = 0) -> int:
    """Compute the 16-bit ones-complement Internet checksum of ``data``.

    ``initial`` lets callers chain partial sums (e.g. a TCP pseudo-header
    followed by the segment body).
    """
    total = initial
    length = len(data)
    # Sum 16-bit words; pad the final odd byte with a zero low byte.
    for i in range(0, length - 1, 2):
        total += (data[i] << 8) | data[i + 1]
    if length % 2:
        total += data[-1] << 8
    # Fold carries.
    while total > 0xFFFF:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


def verify_checksum(data: bytes) -> bool:
    """Return True if ``data`` (including its checksum field) sums to zero.

    Valid data ones-complement-sums to 0xFFFF, so its computed checksum
    (the complement of that sum) is exactly zero.
    """
    return internet_checksum(data) == 0
