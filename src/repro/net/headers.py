"""Protocol header codecs: Ethernet, IPv4, TCP, UDP.

Each header class is a small mutable record with ``pack``/``unpack``
round-trips.  Field names intentionally match the names the Click substrate
and the generated P4 programs use (``saddr``, ``daddr``, ``sport``,
``dport``, ...), so the same identifiers appear end to end: in the C++-subset
middlebox sources, in the IR, in the dependency graph, and in the emitted P4.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.net.addresses import Ipv4Address, MacAddress
from repro.net.checksum import internet_checksum

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_ARP = 0x0806
# EtherType for frames carrying a Gallium shim header between the switch and
# the middlebox server (paper §4.3.2: the extra fields sit between the
# Ethernet header and the IP header).
ETHERTYPE_GALLIUM = 0x88B5  # local experimental ethertype

IPPROTO_ICMP = 1
IPPROTO_TCP = 6
IPPROTO_UDP = 17


class TcpFlags:
    """TCP flag bit masks."""

    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10
    URG = 0x20

    @staticmethod
    def describe(flags: int) -> str:
        names = []
        for name in ("FIN", "SYN", "RST", "PSH", "ACK", "URG"):
            if flags & getattr(TcpFlags, name):
                names.append(name)
        return "|".join(names) if names else "none"


@dataclass
class EthernetHeader:
    """14-byte Ethernet II header."""

    dst: MacAddress = field(default_factory=lambda: MacAddress(0))
    src: MacAddress = field(default_factory=lambda: MacAddress(0))
    ethertype: int = ETHERTYPE_IPV4

    SIZE = 14

    def pack(self) -> bytes:
        return self.dst.to_bytes() + self.src.to_bytes() + struct.pack(
            "!H", self.ethertype
        )

    @classmethod
    def unpack(cls, data: bytes) -> "EthernetHeader":
        if len(data) < cls.SIZE:
            raise ValueError(f"short Ethernet header: {len(data)} bytes")
        return cls(
            dst=MacAddress.from_bytes(data[0:6]),
            src=MacAddress.from_bytes(data[6:12]),
            ethertype=struct.unpack("!H", data[12:14])[0],
        )

    def copy(self) -> "EthernetHeader":
        return EthernetHeader(self.dst, self.src, self.ethertype)


@dataclass
class Ipv4Header:
    """20-byte IPv4 header (options unsupported; Gallium never emits them)."""

    version: int = 4
    ihl: int = 5
    tos: int = 0
    total_length: int = 20
    identification: int = 0
    flags: int = 0
    frag_offset: int = 0
    ttl: int = 64
    protocol: int = IPPROTO_TCP
    checksum: int = 0
    saddr: Ipv4Address = field(default_factory=lambda: Ipv4Address(0))
    daddr: Ipv4Address = field(default_factory=lambda: Ipv4Address(0))

    SIZE = 20

    def pack(self, *, fill_checksum: bool = True) -> bytes:
        header = struct.pack(
            "!BBHHHBBH4s4s",
            (self.version << 4) | self.ihl,
            self.tos,
            self.total_length,
            self.identification,
            (self.flags << 13) | self.frag_offset,
            self.ttl,
            self.protocol,
            0 if fill_checksum else self.checksum,
            self.saddr.to_bytes(),
            self.daddr.to_bytes(),
        )
        if fill_checksum:
            csum = internet_checksum(header)
            header = header[:10] + struct.pack("!H", csum) + header[12:]
        return header

    @classmethod
    def unpack(cls, data: bytes) -> "Ipv4Header":
        if len(data) < cls.SIZE:
            raise ValueError(f"short IPv4 header: {len(data)} bytes")
        (
            ver_ihl,
            tos,
            total_length,
            identification,
            flags_frag,
            ttl,
            protocol,
            checksum,
            saddr,
            daddr,
        ) = struct.unpack("!BBHHHBBH4s4s", data[:20])
        return cls(
            version=ver_ihl >> 4,
            ihl=ver_ihl & 0x0F,
            tos=tos,
            total_length=total_length,
            identification=identification,
            flags=flags_frag >> 13,
            frag_offset=flags_frag & 0x1FFF,
            ttl=ttl,
            protocol=protocol,
            checksum=checksum,
            saddr=Ipv4Address.from_bytes(saddr),
            daddr=Ipv4Address.from_bytes(daddr),
        )

    def copy(self) -> "Ipv4Header":
        return Ipv4Header(
            self.version,
            self.ihl,
            self.tos,
            self.total_length,
            self.identification,
            self.flags,
            self.frag_offset,
            self.ttl,
            self.protocol,
            self.checksum,
            self.saddr,
            self.daddr,
        )


@dataclass
class TcpHeader:
    """20-byte TCP header (no options)."""

    sport: int = 0
    dport: int = 0
    seq: int = 0
    ack: int = 0
    data_offset: int = 5
    flags: int = 0
    window: int = 65535
    checksum: int = 0
    urgent: int = 0

    SIZE = 20

    def pack(self) -> bytes:
        return struct.pack(
            "!HHIIBBHHH",
            self.sport,
            self.dport,
            self.seq,
            self.ack,
            self.data_offset << 4,
            self.flags,
            self.window,
            self.checksum,
            self.urgent,
        )

    @classmethod
    def unpack(cls, data: bytes) -> "TcpHeader":
        if len(data) < cls.SIZE:
            raise ValueError(f"short TCP header: {len(data)} bytes")
        (
            sport,
            dport,
            seq,
            ack,
            offset_reserved,
            flags,
            window,
            checksum,
            urgent,
        ) = struct.unpack("!HHIIBBHHH", data[:20])
        return cls(
            sport=sport,
            dport=dport,
            seq=seq,
            ack=ack,
            data_offset=offset_reserved >> 4,
            flags=flags,
            window=window,
            checksum=checksum,
            urgent=urgent,
        )

    @property
    def is_syn(self) -> bool:
        return bool(self.flags & TcpFlags.SYN) and not bool(
            self.flags & TcpFlags.ACK
        )

    @property
    def is_synack(self) -> bool:
        return bool(self.flags & TcpFlags.SYN) and bool(self.flags & TcpFlags.ACK)

    @property
    def is_fin(self) -> bool:
        return bool(self.flags & TcpFlags.FIN)

    @property
    def is_rst(self) -> bool:
        return bool(self.flags & TcpFlags.RST)

    def copy(self) -> "TcpHeader":
        return TcpHeader(
            self.sport,
            self.dport,
            self.seq,
            self.ack,
            self.data_offset,
            self.flags,
            self.window,
            self.checksum,
            self.urgent,
        )


@dataclass
class UdpHeader:
    """8-byte UDP header."""

    sport: int = 0
    dport: int = 0
    length: int = 8
    checksum: int = 0

    SIZE = 8

    def pack(self) -> bytes:
        return struct.pack("!HHHH", self.sport, self.dport, self.length, self.checksum)

    @classmethod
    def unpack(cls, data: bytes) -> "UdpHeader":
        if len(data) < cls.SIZE:
            raise ValueError(f"short UDP header: {len(data)} bytes")
        sport, dport, length, checksum = struct.unpack("!HHHH", data[:8])
        return cls(sport=sport, dport=dport, length=length, checksum=checksum)

    def copy(self) -> "UdpHeader":
        return UdpHeader(self.sport, self.dport, self.length, self.checksum)
