"""Top-level Gallium compiler driver.

One call — :func:`compile_source` — runs the whole paper pipeline
(Figure 2): parse → lower to IR → dependency extraction → partitioning →
shim synthesis → switch-program construction → P4 and C++ emission, and
returns a :class:`CompilationResult` with every artifact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.codegen.cpp import emit_cpp_program
from repro.codegen.headers import ShimLayout, synthesize_shim_layouts
from repro.codegen.p4 import emit_p4_program
from repro.ir.lowering import LoweredMiddlebox, lower_program
from repro.lang.parser import parse_program
from repro.partition.constraints import SwitchResources
from repro.partition.partitioner import partition_middlebox
from repro.partition.plan import PartitionPlan
from repro.switchsim.program import SwitchProgram


@dataclass
class CompilationResult:
    """Everything the compiler produces for one middlebox."""

    lowered: LoweredMiddlebox
    plan: PartitionPlan
    switch_program: SwitchProgram
    shim_to_server: ShimLayout
    shim_to_switch: ShimLayout
    p4_source: str
    cpp_source: str
    #: translation-validation report when the compile ran with
    #: ``symbolic=True`` (:class:`repro.verify.symbolic.SymbolicReport`).
    symbolic_report: Optional[object] = None

    @property
    def name(self) -> str:
        return self.lowered.name

    # -- Table 1 metrics ------------------------------------------------------

    def input_loc(self) -> int:
        return self.lowered.program.source_line_count()

    def p4_loc(self) -> int:
        return _loc(self.p4_source)

    def cpp_loc(self) -> int:
        return _loc(self.cpp_source)


def _loc(source: str) -> int:
    count = 0
    for line in source.splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith(("//", "/*", "*")):
            count += 1
    return count


def compile_source(
    source: str,
    limits: Optional[SwitchResources] = None,
    filename: str = "<middlebox>",
    verify: bool = True,
    symbolic: bool = False,
) -> CompilationResult:
    """Run the full Gallium pipeline on middlebox source text."""
    lowered = lower_program(parse_program(source, filename))
    return compile_lowered(lowered, limits, verify=verify, symbolic=symbolic,
                           source=source)


def compile_lowered(
    lowered: LoweredMiddlebox,
    limits: Optional[SwitchResources] = None,
    verify: bool = True,
    symbolic: bool = False,
    source: Optional[str] = None,
) -> CompilationResult:
    """Run the pipeline from an already-lowered middlebox.

    With ``verify`` (the default) the static verification layer runs over
    the compiled artifacts and any error-severity diagnostic aborts the
    compilation with a :class:`repro.verify.VerificationError`.

    With ``symbolic`` the translation validator additionally proves the
    compiled composition equivalent to the source function on the bounded
    symbolic packet space; a disproof or an inconclusive proof aborts the
    same way (``SYM00x`` diagnostics), and the full
    :class:`~repro.verify.symbolic.SymbolicReport` lands on
    ``result.symbolic_report``.  ``source`` (original text) lets disproof
    counterexamples be appended to the difftest corpus.
    """
    plan = partition_middlebox(lowered, limits)
    shim_to_server, shim_to_switch = synthesize_shim_layouts(
        plan.to_server, plan.to_switch
    )
    switch_program = SwitchProgram.from_plan(plan, shim_to_server, shim_to_switch)
    p4_source = emit_p4_program(switch_program)
    cpp_source = emit_cpp_program(plan, shim_to_server, shim_to_switch)
    result = CompilationResult(
        lowered=lowered,
        plan=plan,
        switch_program=switch_program,
        shim_to_server=shim_to_server,
        shim_to_switch=shim_to_switch,
        p4_source=p4_source,
        cpp_source=cpp_source,
    )
    if verify or symbolic:
        from repro.verify import VerificationError, verify_compilation

        report = verify_compilation(result)
        if symbolic:
            from repro.verify.symbolic import verify_symbolic

            sym = verify_symbolic(plan, switch_program, source=source)
            result.symbolic_report = sym
            report.extend(sym.diagnostics)
        if verify and not report.ok:
            raise VerificationError(report)
    return result
