"""Compile IR functions to specialized Python code (the fast path).

The :class:`~repro.ir.interp.Interpreter` re-dispatches every instruction
on every packet: an ``isinstance`` ladder, operand boxing, field-map
lookups, and width resolution all run per instruction executed.  This
module removes that overhead the way the NetKAT compiler removes
interpretation overhead from its pipeline: each basic block is compiled
**once** into a specialized Python function in which

* operand reads are inlined ``env['name']`` subscripts or literal ints,
* result masks (``& 0xff`` ...) are resolved from the register types at
  compile time,
* header field paths (``packet.raw.ip.saddr`` ...) are resolved from the
  field map at compile time, including the TCP/UDP port aliasing and the
  absent-header semantics,
* state calls carry literal member names and RMW widths, and
* terminators return the integer index of the successor block (or ``None``
  when the function is done), so the driver loop is a tuple unpack and a
  call per *block*, not per instruction.

The interpreter stays the oracle: ``difftest --compiled`` runs every
generated program through both engines and demands byte-identical
verdicts, environments, journals, and state (the Gauntlet discipline —
the fast path never replaces the reference semantics, it is checked
against them).

Equivalence caveats, by construction:

* The step limit is enforced per *block* (the compiled engine counts a
  block's instructions before running it), so a runaway program raises
  the same :class:`InterpreterError` as the interpreter but may execute
  up to one block fewer.  No terminating program is affected: a block's
  instructions always execute atomically (terminators are last).
* Deep tracing (one event per executed instruction) falls back to the
  interpreter — specialization would have to emit a trace call per
  instruction, which is exactly the overhead being removed.
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Optional, Set, Tuple

from repro.lang.types import BOOL, IntType
from repro.ir import instructions as irin
from repro.ir.externs import ExternHost
from repro.ir.function import Function
from repro.ir.interp import (
    ExecutionResult,
    Interpreter,
    InterpreterError,
    _FIELD_MAP,
    _MAX_STEPS,
    _width_of,
)
from repro.ir.values import Const, Reg
from repro.net.addresses import Ipv4Address, MacAddress


def _no_packet():
    raise InterpreterError("packet access without a packet")


#: Binary operators as inline source templates, mirroring ``_apply_binop``
#: exactly (division by zero yields 0, shifts mask the amount to 6 bits,
#: comparisons and logicals produce 0/1).
_BINOP_SRC = {
    irin.BinOpKind.ADD: "({a} + {b})",
    irin.BinOpKind.SUB: "({a} - {b})",
    irin.BinOpKind.MUL: "({a} * {b})",
    irin.BinOpKind.DIV: "(({a} // {b}) if {b} else 0)",
    irin.BinOpKind.MOD: "(({a} % {b}) if {b} else 0)",
    irin.BinOpKind.AND: "({a} & {b})",
    irin.BinOpKind.OR: "({a} | {b})",
    irin.BinOpKind.XOR: "({a} ^ {b})",
    irin.BinOpKind.SHL: "({a} << ({b} & 63))",
    irin.BinOpKind.SHR: "({a} >> ({b} & 63))",
    irin.BinOpKind.EQ: "(1 if {a} == {b} else 0)",
    irin.BinOpKind.NE: "(1 if {a} != {b} else 0)",
    irin.BinOpKind.LT: "(1 if {a} < {b} else 0)",
    irin.BinOpKind.LE: "(1 if {a} <= {b} else 0)",
    irin.BinOpKind.GT: "(1 if {a} > {b} else 0)",
    irin.BinOpKind.GE: "(1 if {a} >= {b} else 0)",
    irin.BinOpKind.LAND: "(1 if ({a} and {b}) else 0)",
    irin.BinOpKind.LOR: "(1 if ({a} or {b}) else 0)",
}


class _BlockCompiler:
    """Emits the source of one specialized block function."""

    def __init__(self, function: Function, block_index: Dict[str, int],
                 reg_reads: Set[str]):
        self.function = function
        self.block_index = block_index
        self.reg_reads = reg_reads
        self.lines: List[str] = []
        self._packet_guarded = False

    # -- expression fragments ------------------------------------------------

    def operand(self, operand) -> str:
        if isinstance(operand, Const):
            return repr(int(operand.value))
        if isinstance(operand, Reg):
            self.reg_reads.add(operand.name)
            return f"env[{operand.name!r}]"
        raise InterpreterError(f"bad operand {operand!r}")

    @staticmethod
    def wrap(expr: str, reg: Reg) -> str:
        """Inline the interpreter's ``_wrap`` with the mask resolved now."""
        type_ = reg.type
        if type_ is BOOL:
            return f"(1 if {expr} else 0)"
        if isinstance(type_, IntType):
            return f"({expr} & {type_.mask:#x})"
        return f"({expr} & 0xFFFFFFFFFFFFFFFF)"

    def keys(self, operands) -> str:
        parts = [self.operand(k) for k in operands]
        if len(parts) == 1:
            return f"({parts[0]},)"
        return "(" + ", ".join(parts) + ")"

    # -- emission ------------------------------------------------------------

    def emit(self, line: str) -> None:
        self.lines.append("    " + line)

    def emit_guard(self) -> None:
        # A superblock is straight-line code, so ``packet`` cannot change
        # between its instructions: one guard at the first packet access
        # raises at exactly the program point the interpreter would.
        if self._packet_guarded:
            return
        self._packet_guarded = True
        self.emit("if packet is None:")
        self.emit("    _no_packet()")

    def emit_header(self, region: str, field: str) -> None:
        """Bind ``_h`` to the region's header (or ``None`` when absent)."""
        if region == "ip":
            self.emit("_h = packet.raw.ip")
        elif region == "udp":
            self.emit("_h = packet.raw.udp")
        else:
            # Inlined ``PacketView._header('tcp', ...)``: Click's
            # transport_header() aliases the TCP/UDP port fields (same
            # offsets); other TCP fields read 0 / drop writes on UDP.
            self.emit("_h = packet.raw.tcp")
            if field in ("sport", "dport"):
                self.emit("if _h is None:")
                self.emit("    _h = packet.raw.udp")

    def load_packet_field(self, inst: irin.LoadPacketField) -> None:
        self.emit_guard()
        region, fname = inst.region, inst.field
        dst = f"env[{inst.dst.name!r}]"
        if region == "meta":
            if fname != "ingress_port":
                msg = f"unknown meta field {fname!r}"
                self.emit(f"raise InterpreterError({msg!r})")
                return
            value = "packet.raw.ingress_port"
            self.emit(f"{dst} = {self.wrap(value, inst.dst)}")
            return
        if region == "eth":
            if fname == "h_dest":
                value = "int(packet.raw.eth.dst)"
            elif fname == "h_source":
                value = "int(packet.raw.eth.src)"
            elif fname == "h_proto":
                value = "packet.raw.eth.ethertype"
            else:
                msg = f"unknown eth field {fname!r}"
                self.emit(f"raise InterpreterError({msg!r})")
                return
            self.emit(f"{dst} = {self.wrap(value, inst.dst)}")
            return
        mapping = _FIELD_MAP.get((region, fname))
        if mapping is None:
            msg = f"unknown field {region}.{fname}"
            self.emit(f"raise InterpreterError({msg!r})")
            return
        _, attr, is_addr = mapping
        self.emit_header(region, fname)
        access = f"int(_h.{attr})" if is_addr else f"_h.{attr}"
        value = f"(0 if _h is None else {access})"
        self.emit(f"{dst} = {self.wrap(value, inst.dst)}")

    def store_packet_field(self, inst: irin.StorePacketField) -> None:
        self.emit_guard()
        region, fname = inst.region, inst.field
        self.emit(f"_v = {self.operand(inst.src)}")
        if region == "eth":
            if fname == "h_dest":
                self.emit("packet.raw.eth.dst = MacAddress(_v &"
                          " 0xFFFFFFFFFFFF)")
            elif fname == "h_source":
                self.emit("packet.raw.eth.src = MacAddress(_v &"
                          " 0xFFFFFFFFFFFF)")
            elif fname == "h_proto":
                self.emit("packet.raw.eth.ethertype = _v & 0xFFFF")
            else:
                msg = f"unknown eth field {fname!r}"
                self.emit(f"raise InterpreterError({msg!r})")
                return
        else:
            mapping = _FIELD_MAP.get((region, fname))
            if mapping is None:
                msg = f"unknown field {region}.{fname}"
                self.emit(f"raise InterpreterError({msg!r})")
                return
            _, attr, is_addr = mapping
            self.emit_header(region, fname)
            self.emit("if _h is not None:")
            if is_addr:
                self.emit(f"    _h.{attr} = Ipv4Address(_v & 0xFFFFFFFF)")
            else:
                self.emit(f"    _h.{attr} = _v")
        # The interpreter traces the write whether or not the header was
        # present (writes to absent headers drop silently but still trace).
        self.emit("if tracer is not None:")
        self.emit(f"    tracer.record('packet_write', region={region!r},"
                  f" field={fname!r}, value=_v)")

    def instruction(self, inst) -> None:
        if isinstance(inst, irin.Assign):
            self.emit(f"env[{inst.dst.name!r}] ="
                      f" {self.wrap(self.operand(inst.src), inst.dst)}")
        elif isinstance(inst, irin.BinOp):
            src = _BINOP_SRC.get(inst.op)
            if src is None:
                raise InterpreterError(f"unknown binop {inst.op}")
            expr = src.format(a=self.operand(inst.lhs),
                              b=self.operand(inst.rhs))
            self.emit(f"env[{inst.dst.name!r}] = {self.wrap(expr, inst.dst)}")
        elif isinstance(inst, irin.UnOp):
            src = self.operand(inst.src)
            if inst.op is irin.UnOpKind.NEG:
                expr = f"(-{src})"
            elif inst.op is irin.UnOpKind.NOT:
                expr = f"(~{src})"
            else:  # LNOT
                expr = f"(0 if {src} else 1)"
            self.emit(f"env[{inst.dst.name!r}] = {self.wrap(expr, inst.dst)}")
        elif isinstance(inst, irin.Cast):
            self.emit(f"env[{inst.dst.name!r}] ="
                      f" {self.wrap(self.operand(inst.src), inst.dst)}")
        elif isinstance(inst, irin.LoadPacketField):
            self.load_packet_field(inst)
        elif isinstance(inst, irin.StorePacketField):
            self.store_packet_field(inst)
        elif isinstance(inst, irin.LoadState):
            expr = f"state.load_scalar({inst.state!r})"
            self.emit(f"env[{inst.dst.name!r}] = {self.wrap(expr, inst.dst)}")
        elif isinstance(inst, irin.StoreState):
            self.emit(f"state.store_scalar({inst.state!r},"
                      f" {self.operand(inst.src)})")
        elif isinstance(inst, irin.RegisterRMW):
            width = _width_of(inst.dst.type)
            expr = (f"state.rmw_scalar({inst.state!r}, _K.{inst.op.name},"
                    f" {self.operand(inst.operand)}, {width})")
            self.emit(f"env[{inst.dst.name!r}] = {self.wrap(expr, inst.dst)}")
        elif isinstance(inst, irin.MapFind):
            self.emit(f"_f, _v = state.map_find({inst.state!r},"
                      f" {self.keys(inst.keys)})")
            self.emit(f"env[{inst.found.name!r}] = int(_f)")
            if inst.value is not None:
                # Deliberately unwrapped, like the interpreter.
                self.emit(f"env[{inst.value.name!r}] = _v")
        elif isinstance(inst, irin.MapInsert):
            self.emit(f"state.map_insert({inst.state!r},"
                      f" {self.keys(inst.keys)},"
                      f" {self.operand(inst.value)})")
        elif isinstance(inst, irin.MapErase):
            self.emit(f"state.map_erase({inst.state!r},"
                      f" {self.keys(inst.keys)})")
        elif isinstance(inst, irin.VectorGet):
            self.emit(f"env[{inst.dst.name!r}] ="
                      f" state.vector_get({inst.state!r},"
                      f" {self.operand(inst.index)})")
        elif isinstance(inst, irin.VectorLen):
            self.emit(f"env[{inst.dst.name!r}] ="
                      f" state.vector_len({inst.state!r})")
        elif isinstance(inst, irin.VectorPush):
            self.emit(f"state.vector_push({inst.state!r},"
                      f" {self.operand(inst.value)})")
        elif isinstance(inst, irin.ExternCall):
            args = ", ".join(self.operand(a) for a in inst.args)
            self.emit(f"_r = externs.call({inst.name!r}, [{args}], packet)")
            if inst.dst is not None:
                self.emit(f"env[{inst.dst.name!r}] ="
                          f" {self.wrap('_r', inst.dst)}")
        elif isinstance(inst, irin.SendTo):
            self.emit(f"_p = {self.operand(inst.port)}")
            self.emit("out[0] = 'send'")
            self.emit("out[1] = _p")
            self.emit("if packet is not None:")
            self.emit("    packet.send(_p)")
            self.emit("return None")
        elif isinstance(inst, irin.Send):
            self.emit("out[0] = 'send'")
            self.emit("if packet is not None:")
            self.emit("    packet.send()")
            self.emit("return None")
        elif isinstance(inst, irin.Drop):
            self.emit("out[0] = 'drop'")
            self.emit("if packet is not None:")
            self.emit("    packet.drop()")
            self.emit("return None")
        elif isinstance(inst, irin.Jump):
            self.emit(f"return {self.block_index[inst.target]}")
        elif isinstance(inst, irin.Branch):
            cond = self.operand(inst.cond)
            self.emit(f"return {self.block_index[inst.if_true]} if {cond}"
                      f" else {self.block_index[inst.if_false]}")
        elif isinstance(inst, irin.Return):
            self.emit("return None")
        else:
            raise InterpreterError(
                f"unhandled instruction {type(inst).__name__}"
            )


def _superblocks(function: Function) -> List[List[str]]:
    """Merge ``Jump`` chains into superblocks.

    A block whose terminator is an unconditional ``Jump`` to a block with
    exactly one predecessor is fused with its successor: the jump itself
    is still *counted* (the interpreter executes it) but no dispatch
    through the driver loop happens.  Entry blocks and join points keep
    their own superblock, so every remaining Jump/Branch target is a
    superblock head.
    """
    preds: Dict[str, int] = {name: 0 for name in function.blocks}
    for block in function.blocks.values():
        for inst in block.instructions:
            if isinstance(inst, irin.Jump):
                preds[inst.target] += 1
            elif isinstance(inst, irin.Branch):
                preds[inst.if_true] += 1
                preds[inst.if_false] += 1

    def merges_into(name: str) -> Optional[str]:
        block = function.blocks[name]
        if not block.instructions:
            return None
        last = block.instructions[-1]
        if not isinstance(last, irin.Jump):
            return None
        target = last.target
        if target == name or target == function.entry:
            return None
        return target if preds[target] == 1 else None

    merged = {
        target for name in function.blocks
        if (target := merges_into(name)) is not None
    }
    chains: List[List[str]] = []
    for name in function.blocks:
        if name in merged and name != function.entry:
            continue  # emitted inside its predecessor's chain
        chain = [name]
        while (target := merges_into(chain[-1])) is not None:
            chain.append(target)
        chains.append(chain)
    return chains


class CompiledFunction:
    """One IR function compiled to per-superblock specialized Python."""

    def __init__(self, function: Function):
        self.function = function
        chains = _superblocks(function)
        block_index = {chain[0]: i for i, chain in enumerate(chains)}
        reg_reads: Set[str] = set()
        lines: List[str] = []
        for i, chain in enumerate(chains):
            compiler = _BlockCompiler(function, block_index, reg_reads)
            lines.append(
                f"def _b{i}(env, packet, state, externs, tracer, out):"
            )
            for position, name in enumerate(chain):
                instructions = function.blocks[name].instructions
                for inst in instructions:
                    if (position < len(chain) - 1
                            and inst is instructions[-1]):
                        break  # fused Jump: counted, not dispatched
                    compiler.instruction(inst)
            compiler.emit("return None")
            lines.extend(compiler.lines)
            lines.append("")
        self.source = "\n".join(lines)
        namespace = {
            "InterpreterError": InterpreterError,
            "Ipv4Address": Ipv4Address,
            "MacAddress": MacAddress,
            "_K": irin.BinOpKind,
            "_no_packet": _no_packet,
        }
        exec(compile(self.source, f"<compiled {function.name}>", "exec"),
             namespace)
        #: (block_fn, instruction_count, instruction_ids) per superblock;
        #: counts and ids include the fused jumps, matching the
        #: interpreter's per-instruction accounting exactly.
        self._blocks: List[Tuple] = []
        for i, chain in enumerate(chains):
            ids: List[int] = []
            for name in chain:
                ids.extend(
                    inst.id for inst in function.blocks[name].instructions
                )
            self._blocks.append((namespace[f"_b{i}"], len(ids), ids))
        self._entry = block_index[function.entry]
        self._reg_reads = frozenset(reg_reads)
        self._uses_externs = any(
            isinstance(inst, irin.ExternCall)
            for block in function.blocks.values()
            for inst in block.instructions
        )

    def run(
        self,
        state,
        externs: Optional[ExternHost] = None,
        packet=None,
        initial_env: Optional[Dict[str, int]] = None,
        collect_ids: bool = False,
    ) -> ExecutionResult:
        tracer = getattr(state, "tracer", None)
        if tracer is not None and getattr(tracer, "deep", False):
            # Deep tracing wants one event per executed instruction; the
            # interpreter is the engine that can provide it.
            return Interpreter(self.function, state, externs).run(
                packet=packet, initial_env=initial_env,
                collect_ids=collect_ids,
            )
        if externs is None and self._uses_externs:
            externs = ExternHost()
        env: Dict[str, int] = dict(initial_env or {})
        out: List = [None, None]
        steps = 0
        executed: List[int] = []
        blocks = self._blocks
        index: Optional[int] = self._entry
        name = self.function.name
        try:
            while index is not None:
                fn, count, ids = blocks[index]
                steps += count
                if steps > _MAX_STEPS:
                    raise InterpreterError(
                        f"{name}: step limit exceeded (runaway loop?)"
                    )
                if collect_ids:
                    executed.extend(ids)
                index = fn(env, packet, state, externs, tracer, out)
        except KeyError as exc:
            if exc.args and exc.args[0] in self._reg_reads:
                raise InterpreterError(
                    f"{name}: read of undefined register %{exc.args[0]}"
                ) from None
            raise
        return ExecutionResult(
            verdict=out[0],
            egress_port=out[1],
            instructions_executed=steps,
            executed_ids=executed,
            env=env,
        )


_CACHE: "weakref.WeakKeyDictionary[Function, CompiledFunction]" = (
    weakref.WeakKeyDictionary()
)


def compile_function(function: Function) -> CompiledFunction:
    """Compile (or fetch the cached compilation of) one IR function."""
    compiled = _CACHE.get(function)
    if compiled is None:
        compiled = CompiledFunction(function)
        _CACHE[function] = compiled
    return compiled
