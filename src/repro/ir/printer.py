"""Human-readable IR printing (for docs, debugging, and golden tests)."""

from __future__ import annotations

from repro.ir import instructions as ir
from repro.ir.function import Function


def format_instruction(inst: ir.Instruction) -> str:
    if isinstance(inst, ir.Assign):
        return f"{inst.dst} = {inst.src}"
    if isinstance(inst, ir.BinOp):
        return f"{inst.dst} = {inst.lhs} {inst.op.value} {inst.rhs}"
    if isinstance(inst, ir.UnOp):
        return f"{inst.dst} = {inst.op.value}{inst.src}"
    if isinstance(inst, ir.Cast):
        return f"{inst.dst} = ({inst.to_type}) {inst.src}"
    if isinstance(inst, ir.LoadPacketField):
        return f"{inst.dst} = pkt.{inst.region}.{inst.field}"
    if isinstance(inst, ir.StorePacketField):
        return f"pkt.{inst.region}.{inst.field} = {inst.src}"
    if isinstance(inst, ir.LoadState):
        return f"{inst.dst} = state.{inst.state}"
    if isinstance(inst, ir.StoreState):
        return f"state.{inst.state} = {inst.src}"
    if isinstance(inst, ir.RegisterRMW):
        return (
            f"{inst.dst} = rmw state.{inst.state} {inst.op.value} {inst.operand}"
        )
    if isinstance(inst, ir.MapFind):
        keys = ", ".join(str(k) for k in inst.keys)
        value = f", {inst.value}" if inst.value is not None else ""
        return f"{inst.found}{value} = map_find state.{inst.state} [{keys}]"
    if isinstance(inst, ir.MapInsert):
        keys = ", ".join(str(k) for k in inst.keys)
        return f"map_insert state.{inst.state} [{keys}] <- {inst.value}"
    if isinstance(inst, ir.MapErase):
        keys = ", ".join(str(k) for k in inst.keys)
        return f"map_erase state.{inst.state} [{keys}]"
    if isinstance(inst, ir.VectorGet):
        return f"{inst.dst} = state.{inst.state}[{inst.index}]"
    if isinstance(inst, ir.VectorLen):
        return f"{inst.dst} = len state.{inst.state}"
    if isinstance(inst, ir.VectorPush):
        return f"vector_push state.{inst.state} <- {inst.value}"
    if isinstance(inst, ir.ExternCall):
        args = ", ".join(str(a) for a in inst.args)
        prefix = f"{inst.dst} = " if inst.dst is not None else ""
        return f"{prefix}extern {inst.name}({args})"
    if isinstance(inst, ir.SendTo):
        return f"send_to {inst.port}"
    if isinstance(inst, ir.Send):
        return "send"
    if isinstance(inst, ir.Drop):
        return "drop"
    if isinstance(inst, ir.Jump):
        return f"jump {inst.target}"
    if isinstance(inst, ir.Branch):
        return f"branch {inst.cond} ? {inst.if_true} : {inst.if_false}"
    if isinstance(inst, ir.Return):
        suffix = f" {inst.value}" if inst.value is not None else ""
        return f"return{suffix}"
    return f"<unknown {type(inst).__name__}>"


def format_function(function: Function, show_stmt_ids: bool = False) -> str:
    lines = [f"function {function.name} (entry={function.entry}):"]
    for block_name in function.block_order():
        block = function.blocks[block_name]
        lines.append(f"{block_name}:")
        for inst in block.instructions:
            text = format_instruction(inst)
            if show_stmt_ids and inst.stmt_id >= 0:
                text = f"{text:<50} ; stmt {inst.stmt_id}"
            lines.append(f"  {text}")
    return "\n".join(lines)
