"""Gallium's intermediate representation.

The paper builds its analyses on LLVM IR ("because LLVM's syntax is simpler
than C++ ... and a statement in the LLVM IR can be mapped to a corresponding
switch pipeline statement").  This package is the from-scratch equivalent: a
three-address IR over a control-flow graph of basic blocks, where

* temporaries are single-assignment, named locals are mutable registers,
* every instruction knows its read and write sets over *abstract locations*
  (variables, element state, packet regions), which is exactly the input the
  dependency extraction of §4.1 needs,
* Click API calls are first-class instructions (``MapFind``, ``MapInsert``,
  ``VectorGet`` ...), so the P4 mapping of Figure 6 is a per-opcode decision,
* each instruction records the source ``stmt_id`` it was lowered from, so
  analyses can be reported at paper-figure (statement) granularity.
"""

from repro.ir.values import Location, LocKind, Operand, Const, Reg
from repro.ir.instructions import (
    Instruction,
    Assign,
    BinOp,
    UnOp,
    Cast,
    LoadPacketField,
    StorePacketField,
    LoadState,
    StoreState,
    RegisterRMW,
    MapFind,
    MapInsert,
    MapErase,
    VectorGet,
    VectorLen,
    VectorPush,
    ExternCall,
    Send,
    SendTo,
    Drop,
    Jump,
    Branch,
    Return,
    BinOpKind,
    UnOpKind,
    P4_SUPPORTED_BINOPS,
)
from repro.ir.function import BasicBlock, Function
from repro.ir.builder import FunctionBuilder
from repro.ir.lowering import lower_program, LoweredMiddlebox, LoweringError
from repro.ir.printer import format_function
from repro.ir.validate import validate_function, IRValidationError
from repro.ir.interp import Interpreter, ExecutionResult, PacketView, StateStore

__all__ = [
    "Location",
    "LocKind",
    "Operand",
    "Const",
    "Reg",
    "Instruction",
    "Assign",
    "BinOp",
    "UnOp",
    "Cast",
    "LoadPacketField",
    "StorePacketField",
    "LoadState",
    "StoreState",
    "RegisterRMW",
    "MapFind",
    "MapInsert",
    "MapErase",
    "VectorGet",
    "VectorLen",
    "VectorPush",
    "ExternCall",
    "Send",
    "SendTo",
    "Drop",
    "Jump",
    "Branch",
    "Return",
    "BinOpKind",
    "UnOpKind",
    "P4_SUPPORTED_BINOPS",
    "BasicBlock",
    "Function",
    "FunctionBuilder",
    "lower_program",
    "LoweredMiddlebox",
    "LoweringError",
    "format_function",
    "validate_function",
    "IRValidationError",
    "Interpreter",
    "ExecutionResult",
    "PacketView",
    "StateStore",
]
