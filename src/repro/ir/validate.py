"""IR structural validation.

Run after lowering and after every transformation (partition projection,
peephole passes) to catch compiler bugs early:

* every block ends with exactly one terminator, which is the last instruction,
* every branch/jump target exists,
* temporaries are assigned exactly once (SSA for temps),
* every register use is dominated by a definition (conservatively checked
  via reachability of at least one def before use on every path).
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.ir import instructions as ir
from repro.ir.function import Function
from repro.ir.values import Reg


class IRValidationError(Exception):
    """Raised when an IR function is structurally invalid."""


def validate_function(function: Function, check_defs: bool = True) -> None:
    """Raise :class:`IRValidationError` on the first violation found."""
    if function.entry not in function.blocks:
        raise IRValidationError(
            f"{function.name}: entry block {function.entry!r} missing"
        )
    temp_defs: Dict[str, int] = {}
    for name, block in function.blocks.items():
        if not block.instructions:
            raise IRValidationError(f"{function.name}/{name}: empty block")
        term = block.instructions[-1]
        if not term.is_terminator:
            raise IRValidationError(
                f"{function.name}/{name}: does not end with a terminator"
            )
        for inst in block.instructions[:-1]:
            if inst.is_terminator:
                raise IRValidationError(
                    f"{function.name}/{name}: terminator in block body"
                )
        for target in block.successors():
            if target not in function.blocks:
                raise IRValidationError(
                    f"{function.name}/{name}: branch to unknown block {target!r}"
                )
        for inst in block.instructions:
            defined = _defined_regs(inst)
            for reg in defined:
                if reg.is_temp:
                    temp_defs[reg.name] = temp_defs.get(reg.name, 0) + 1
    for temp_name, count in temp_defs.items():
        if count > 1:
            raise IRValidationError(
                f"{function.name}: temp %{temp_name} assigned {count} times"
            )
    if check_defs:
        _check_defs_before_use(function)


def _defined_regs(inst: ir.Instruction) -> List[Reg]:
    regs: List[Reg] = []
    result = inst.result()
    if result is not None:
        regs.append(result)
    found = getattr(inst, "found", None)
    if isinstance(found, Reg) and (result is None or found.name != result.name):
        regs.append(found)
    return regs


def _used_regs(inst: ir.Instruction) -> List[Reg]:
    return [op for op in inst.operands() if isinstance(op, Reg)]


def _check_defs_before_use(function: Function) -> None:
    """Forward dataflow: the set of definitely-defined regs at block entry."""
    preds = function.predecessors()
    order = function.block_order()
    # Initialize to "all regs" (top) except the entry, and iterate to fixpoint.
    all_regs: Set[str] = set()
    for inst in function.instructions():
        for reg in _defined_regs(inst):
            all_regs.add(reg.name)
    defined_in: Dict[str, Set[str]] = {
        name: set(all_regs) for name in function.blocks
    }
    defined_in[function.entry] = set()
    changed = True
    while changed:
        changed = False
        for name in order:
            if name == function.entry:
                incoming: Set[str] = set()
            else:
                pred_list = preds.get(name, [])
                if not pred_list:
                    # Unreachable block: skip def-before-use checking.
                    continue
                incoming = set(all_regs)
                for pred in pred_list:
                    incoming &= _defined_out(function, pred, defined_in[pred])
            if incoming != defined_in[name]:
                defined_in[name] = incoming
                changed = True
    for name, block in function.blocks.items():
        if name != function.entry and not preds.get(name):
            continue
        defined = set(defined_in[name])
        for inst in block.instructions:
            for reg in _used_regs(inst):
                if reg.name not in defined:
                    raise IRValidationError(
                        f"{function.name}/{name}: %{reg.name} used before"
                        f" definition in '{inst!r}'"
                    )
            for reg in _defined_regs(inst):
                defined.add(reg.name)


def _defined_out(function: Function, block_name: str, defined_in: Set[str]) -> Set[str]:
    defined = set(defined_in)
    for inst in function.blocks[block_name].instructions:
        for reg in _defined_regs(inst):
            defined.add(reg.name)
    return defined


def unsatisfied_uses(function: Function) -> Dict[str, Reg]:
    """Registers that may be read before any definition in ``function``.

    Uses the same forward definitely-defined dataflow as the def-before-use
    check, but collects the offending registers instead of raising.  The
    partition splitter uses this to compute shim transfer sets: a
    projection's unsatisfied uses are exactly the values earlier partitions
    must hand over.
    """
    preds = function.predecessors()
    order = function.block_order()
    all_regs: Set[str] = set()
    for inst in function.instructions():
        for reg in _defined_regs(inst):
            all_regs.add(reg.name)
    defined_in: Dict[str, Set[str]] = {
        name: set(all_regs) for name in function.blocks
    }
    defined_in[function.entry] = set()
    changed = True
    while changed:
        changed = False
        for name in order:
            if name == function.entry:
                incoming: Set[str] = set()
            else:
                pred_list = preds.get(name, [])
                if not pred_list:
                    continue
                incoming = set(all_regs)
                for pred in pred_list:
                    incoming &= _defined_out(function, pred, defined_in[pred])
            if incoming != defined_in[name]:
                defined_in[name] = incoming
                changed = True
    needs: Dict[str, Reg] = {}
    for name, block in function.blocks.items():
        if name != function.entry and not preds.get(name):
            continue
        defined = set(defined_in[name])
        for inst in block.instructions:
            for reg in _used_regs(inst):
                if reg.name not in defined and reg.name not in needs:
                    needs[reg.name] = reg
            for reg in _defined_regs(inst):
                defined.add(reg.name)
    return needs
