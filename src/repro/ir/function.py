"""Basic blocks and functions (the IR's control-flow graph)."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.ir.instructions import Branch, Instruction, Jump, Terminator
from repro.ir.values import Location, Reg


class BasicBlock:
    """A straight-line sequence of instructions ending in a terminator."""

    def __init__(self, name: str):
        self.name = name
        self.instructions: List[Instruction] = []

    @property
    def terminator(self) -> Optional[Terminator]:
        if self.instructions and isinstance(self.instructions[-1], Terminator):
            return self.instructions[-1]
        return None

    @property
    def body(self) -> List[Instruction]:
        """Instructions excluding the terminator."""
        if self.terminator is not None:
            return self.instructions[:-1]
        return list(self.instructions)

    def successors(self) -> List[str]:
        term = self.terminator
        return term.successors() if term is not None else []

    def append(self, instruction: Instruction) -> None:
        if self.terminator is not None:
            raise ValueError(
                f"block {self.name!r} already terminated; cannot append"
            )
        self.instructions.append(instruction)

    def __repr__(self) -> str:
        return f"<BasicBlock {self.name} ({len(self.instructions)} insts)>"


class Function:
    """An IR function: named basic blocks with a designated entry."""

    def __init__(self, name: str, entry: str = "entry"):
        self.name = name
        self.entry = entry
        self.blocks: Dict[str, BasicBlock] = {}

    def block(self, name: str) -> BasicBlock:
        return self.blocks[name]

    def add_block(self, name: str) -> BasicBlock:
        if name in self.blocks:
            raise ValueError(f"duplicate block name {name!r}")
        block = BasicBlock(name)
        self.blocks[name] = block
        return block

    # -- traversal ------------------------------------------------------------

    def instructions(self) -> Iterator[Instruction]:
        """All instructions, in block order (entry-first RPO where possible)."""
        for block_name in self.block_order():
            yield from self.blocks[block_name].instructions

    def block_order(self) -> List[str]:
        """Reverse post-order from the entry, then any unreachable blocks."""
        order: List[str] = []
        visited: Set[str] = set()

        def visit(name: str) -> None:
            if name in visited or name not in self.blocks:
                return
            visited.add(name)
            for succ in self.blocks[name].successors():
                visit(succ)
            order.append(name)

        visit(self.entry)
        order.reverse()
        for name in self.blocks:
            if name not in visited:
                order.append(name)
        return order

    def predecessors(self) -> Dict[str, List[str]]:
        preds: Dict[str, List[str]] = {name: [] for name in self.blocks}
        for name, block in self.blocks.items():
            for succ in block.successors():
                if succ in preds:
                    preds[succ].append(name)
        return preds

    def instruction_count(self) -> int:
        return sum(len(b.instructions) for b in self.blocks.values())

    def find_instruction(self, inst_id: int) -> Optional[Instruction]:
        for inst in self.instructions():
            if inst.id == inst_id:
                return inst
        return None

    def block_of(self, instruction: Instruction) -> Optional[str]:
        for name, block in self.blocks.items():
            if any(inst.id == instruction.id for inst in block.instructions):
                return name
        return None

    # -- derived info -----------------------------------------------------------

    def defined_regs(self) -> Dict[str, Reg]:
        """All registers defined anywhere in the function, by name."""
        regs: Dict[str, Reg] = {}
        for inst in self.instructions():
            result = inst.result()
            if result is not None:
                regs[result.name] = result
            # MapFind defines `found` too.
            found = getattr(inst, "found", None)
            if isinstance(found, Reg):
                regs[found.name] = found
        return regs

    def global_states(self) -> Set[str]:
        """Names of element-state members the function touches."""
        out: Set[str] = set()
        for inst in self.instructions():
            for loc in inst.reads() | inst.writes():
                if loc.is_global:
                    out.add(loc.name)
        return out

    def __repr__(self) -> str:
        return (
            f"<Function {self.name}: {len(self.blocks)} blocks,"
            f" {self.instruction_count()} insts>"
        )
