"""IR operands and abstract memory locations.

*Operands* are what instructions consume and produce: constants and
registers.  *Locations* are what the dependency analysis reasons about: a
register's slot, a piece of element state, or a packet region.  The paper's
read/write sets (§4.1) are sets of these locations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.lang.types import BOOL, IntType, Type


class LocKind(enum.Enum):
    """The kind of an abstract location."""

    VAR = "var"  # a local variable or temporary
    STATE = "state"  # element member (global, cross-packet state)
    PACKET = "packet"  # a packet region: ip / tcp / udp / eth / payload / meta


@dataclass(frozen=True)
class Location:
    """An abstract memory location used in read/write sets."""

    kind: LocKind
    name: str

    @classmethod
    def var(cls, name: str) -> "Location":
        return cls(LocKind.VAR, name)

    @classmethod
    def state(cls, name: str) -> "Location":
        return cls(LocKind.STATE, name)

    @classmethod
    def packet(cls, region: str) -> "Location":
        return cls(LocKind.PACKET, aliased_packet_region(region))

    @property
    def is_global(self) -> bool:
        """True for cross-packet (element) state."""
        return self.kind is LocKind.STATE

    @property
    def is_packet(self) -> bool:
        return self.kind is LocKind.PACKET

    def __str__(self) -> str:
        return f"{self.kind.value}:{self.name}"


#: All header packet regions a switch can touch (payload excluded: §2.2,
#: switches only read the start of the packet).
HEADER_REGIONS = ("eth", "ip", "tcp", "udp")


def aliased_packet_region(region: str) -> str:
    """Collapse aliasing packet regions to one dependency location.

    Click's ``transport_header()`` exposes a single L4 view: TCP and UDP
    share byte offsets for the port fields, and the interpreter honours
    that aliasing (``tcp->sport`` on a UDP packet reads the UDP source
    port).  A ``udp`` store therefore conflicts with a ``tcp`` load and
    vice versa — tracking them as separate locations would let the
    partitioner reorder across the alias (hoisting a port load above a
    store to the other protocol's view of the same bytes).
    """
    return "l4" if region in ("tcp", "udp") else region
ALL_PACKET_REGIONS = HEADER_REGIONS + ("payload", "meta")


class Operand:
    """Base class for instruction operands."""

    type: Type


@dataclass(frozen=True)
class Const(Operand):
    """An integer (or bool) literal operand."""

    value: int
    type: Type

    def __str__(self) -> str:
        if self.type is BOOL:
            return "true" if self.value else "false"
        return str(self.value)


@dataclass(frozen=True)
class Reg(Operand):
    """A register: a temporary (single assignment) or a named local."""

    name: str
    type: Type
    is_temp: bool = True

    @property
    def location(self) -> Location:
        return Location.var(self.name)

    def __str__(self) -> str:
        return f"%{self.name}"


def const_bool(value: bool) -> Const:
    return Const(1 if value else 0, BOOL)


def const_int(value: int, bits: int = 32) -> Const:
    int_type = IntType(bits)
    return Const(int_type.wrap(value), int_type)
